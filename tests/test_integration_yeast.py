"""Whole-pipeline integration tests on the yeast benchmark workloads.

These are the repository's "does it all hang together" tests: full
compression → kernel → algorithm → expansion runs on realistic networks,
cross-method consistency at benchmark scale, and the biological sanity of
the computed modes.
"""

import numpy as np
import pytest

from repro.efm import analysis
from repro.efm.api import compute_efms
from repro.models.variants import yeast_1_small, yeast_2_small
from repro.network.stoichiometry import stoichiometric_matrix


@pytest.fixture(scope="module")
def y1():
    return yeast_1_small()


@pytest.fixture(scope="module")
def y1_efms(y1):
    return compute_efms(y1)


class TestYeast1Pipeline:
    def test_count_stable(self, y1_efms):
        """530 modes for this variant — a regression anchor for the whole
        pipeline (compression, splitting, enumeration, folding)."""
        assert y1_efms.n_efms == 530

    def test_steady_state_and_signs(self, y1, y1_efms):
        n = stoichiometric_matrix(y1)
        assert np.allclose(n @ y1_efms.fluxes.T, 0.0, atol=1e-6)
        irr = ~np.array(y1.reversibility)
        assert (y1_efms.fluxes[:, irr] >= -1e-9).all()

    def test_minimality(self, y1_efms):
        y1_efms.validate()  # includes the O(n^2) support check

    def test_parallel_and_dnc_agree(self, y1, y1_efms):
        parallel = compute_efms(y1, method="parallel", n_ranks=4)
        dnc = compute_efms(y1, method="combined", partition=("R13r", "R32r"))
        assert y1_efms.same_modes_as(parallel)
        assert y1_efms.same_modes_as(dnc)

    def test_distributed_agrees(self, y1, y1_efms):
        distributed = compute_efms(y1, method="distributed", n_ranks=4)
        assert y1_efms.same_modes_as(distributed)

    def test_biology_ppp_knockout_is_growth_lethal(self, y1, y1_efms):
        """The small variant deletes the pentose-phosphate pathway; the
        biomass reaction R70 requires R5P and E4P, which only the PPP can
        make — so compression proves R70 blocked and no growth mode
        exists.  (EFM-based lethality prediction, refs [4]-[7].)"""
        from repro.network.compression import compress_network

        assert y1_efms.with_active("R70").n_efms == 0
        assert "R70" in compress_network(y1).blocked

    def test_biology_ethanol_modes_consume_glucose(self, y1, y1_efms):
        """Every fermenting mode must consume glucose (R62 is the only
        carbon source of this variant)."""
        ferment = y1_efms.with_active("R66")
        assert ferment.n_efms > 0
        j62 = y1.reaction_index("R62")
        assert (np.abs(ferment.fluxes[:, j62]) > 1e-9).all()

    def test_biology_ethanol_yield_bounded(self, y1, y1_efms):
        y = analysis.yields(y1_efms, "R66", "R62")
        assert np.nanmax(y) <= 2.0 + 1e-9  # 2 ethanol per glucose, hard cap

    def test_biology_co2_balance(self, y1, y1_efms):
        """Respiring modes (TCA flux through R24) must release CO2."""
        respiring = y1_efms.with_active("R24")
        if respiring.n_efms:
            j69 = y1.reaction_index("R69")
            assert (respiring.fluxes[:, j69] > -1e-9).all()

    def test_knockout_closure_at_scale(self, y1, y1_efms):
        survivors = analysis.knockout(y1_efms, ["R38"])
        recomputed = compute_efms(y1.without_reactions(["R38"]))
        kept = [
            y1.reaction_index(n) for n in recomputed.network.reaction_names
        ]
        from tests.conftest import assert_same_modes

        assert_same_modes(survivors.fluxes[:, kept], recomputed.fluxes)


class TestYeast2Pipeline:
    def test_count_stable(self):
        assert compute_efms(yeast_2_small()).n_efms == 7331

    def test_oxphos_modes_consume_oxygen(self):
        """Network II's NADH-driven oxidative phosphorylation (R56)
        requires O2 import (R68) — Figure 5's whole point."""
        net = yeast_2_small()
        result = compute_efms(net)
        j68 = net.reaction_index("R68")
        oxphos = result.with_active("R56")
        assert oxphos.n_efms > 0
        assert (np.abs(oxphos.fluxes[:, j68]) > 1e-9).all()

    def test_fadh_branch_structurally_dead(self):
        """Figures 3-5 give cytosolic FADH no producer (only R27 and R57
        consume it), so the FADH oxidative-phosphorylation branch can
        never run — a documented quirk of the transcribed model."""
        net = yeast_2_small()
        result = compute_efms(net)
        assert result.with_active("R57").n_efms == 0
        assert result.with_active("R27").n_efms == 0

    def test_network2_has_more_modes_than_network1(self):
        """Figure 5's additions multiply the mode count (paper: 1.5M ->
        49.8M); the constrained variants preserve the direction."""
        n1 = compute_efms(yeast_1_small()).n_efms
        n2 = compute_efms(yeast_2_small()).n_efms
        assert n2 > n1
