"""Property tests for ModeMatrix algebra and checkpoint round-trips."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.state import ModeMatrix

SETTINGS = dict(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(0, 12), st.integers(1, 10)),
    elements=st.floats(-5, 5, allow_nan=False, width=32),
)


@given(a=matrices)
@settings(**SETTINGS)
def test_normalization_idempotent(a):
    m1 = ModeMatrix(a)
    m2 = ModeMatrix(m1.values)
    assert np.array_equal(m1.values, m2.values)


@given(a=matrices)
@settings(**SETTINGS)
def test_dedup_idempotent(a):
    m = ModeMatrix(a).dedup()
    assert m.dedup().n_modes == m.n_modes


@given(a=matrices)
@settings(**SETTINGS)
def test_dedup_supports_unique(a):
    m = ModeMatrix(a).dedup()
    words = m.supports.words
    assert np.unique(words, axis=0).shape[0] == words.shape[0]


@given(a=matrices, b=matrices)
@settings(**SETTINGS)
def test_concat_counts_add(a, b):
    # Align widths: crop to the smaller q.
    q = min(a.shape[1], b.shape[1])
    ma = ModeMatrix(a[:, :q])
    mb = ModeMatrix(b[:, :q])
    assert ma.concat(mb).n_modes == ma.n_modes + mb.n_modes


@given(a=matrices)
@settings(**SETTINGS)
def test_select_all_is_identity(a):
    m = ModeMatrix(a)
    sel = m.select(np.arange(m.n_modes))
    assert np.array_equal(sel.values, m.values)
    assert np.array_equal(sel.supports.words, m.supports.words)


@given(a=matrices)
@settings(**SETTINGS)
def test_supports_match_values_always(a):
    m = ModeMatrix(a)
    assert np.array_equal(m.supports.to_bool().T, m.values != 0.0)


@given(a=matrices)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_from_parts_roundtrip_through_serialization(a, tmp_path_factory):
    """What checkpointing relies on: values + words reconstruct the same
    matrix byte-for-byte through an npz file."""
    import io as _io

    from repro.linalg.bitset import PackedSupports

    m = ModeMatrix(a)
    buf = _io.BytesIO()
    np.savez(buf, values=m.values, words=m.supports.words,
             n_rows=np.int64(m.q))
    buf.seek(0)
    with np.load(buf) as data:
        back = ModeMatrix.from_parts(
            np.ascontiguousarray(data["values"]),
            PackedSupports(data["words"], int(data["n_rows"])),
        )
    assert np.array_equal(back.values, m.values)
    assert np.array_equal(back.supports.words, m.supports.words)
