"""Property tests for the reaction-equation parser: print/parse
round-trips over generated reactions."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.network.model import Reaction
from repro.network.parser import format_reaction, parse_reaction

met_names = st.from_regex(r"[A-Z][A-Za-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: not s.lower().endswith("ext")
)

coefficients = st.one_of(
    st.integers(1, 5000).map(Fraction),
    st.builds(Fraction, st.integers(1, 9), st.integers(1, 4)),
)


@st.composite
def reactions(draw):
    n_sub = draw(st.integers(1, 4))
    n_prod = draw(st.integers(0, 4))
    mets = draw(
        st.lists(
            met_names, min_size=n_sub + n_prod, max_size=n_sub + n_prod,
            unique=True,
        )
    )
    stoich = {}
    for i, m in enumerate(mets):
        c = draw(coefficients)
        stoich[m] = -c if i < n_sub else c
    reversible = draw(st.booleans())
    return Reaction(name="RX", stoich=stoich, reversible=reversible)


@given(rxn=reactions())
@settings(max_examples=80, deadline=None)
def test_format_parse_roundtrip(rxn):
    back = parse_reaction(format_reaction(rxn))
    assert back.stoich == rxn.stoich
    assert back.reversible == rxn.reversible


@given(rxn=reactions())
@settings(max_examples=80, deadline=None)
def test_substrates_products_partition_support(rxn):
    names = set(rxn.substrates) | set(rxn.products)
    assert names == set(rxn.stoich)
    assert not (set(rxn.substrates) & set(rxn.products))


@given(rxn=reactions())
@settings(max_examples=40, deadline=None)
def test_reversed_copy_involution(rxn):
    assert rxn.reversed_copy().reversed_copy().stoich == rxn.stoich
