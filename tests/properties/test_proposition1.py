"""Property tests of Proposition 1 — the paper's theoretical core.

"If the Nullspace Algorithm is stopped at its (q - q')th iteration, then
the set of elementary flux modes with all the last q' reactions having
non-zero flux values coincides with the set of columns in the current
nullspace matrix having non-zero flux values in the last q' elements."
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster.memory import MemoryModel
from repro.core.kernel import build_problem
from repro.core.serial import nullspace_algorithm
from repro.dnc.adaptive import adaptive_combined
from repro.efm.api import compute_efms
from repro.efm.targeted import efms_through
from repro.errors import ReproError
from repro.models.generators import random_network
from repro.network.compression import compress_network
from tests.conftest import assert_same_modes, canonical_rows

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

network_params = st.fixed_dictionaries(
    {
        "n_metabolites": st.integers(3, 6),
        "n_reactions": st.integers(6, 10),
        "seed": st.integers(0, 10_000),
        "reversible_fraction": st.sampled_from([0.0, 0.3]),
    }
)


@given(params=network_params)
@settings(**SETTINGS)
def test_stop_early_nonzero_tail_equals_filtered_full(params):
    """Literal Proposition 1 on the prepared problem: stop one row early;
    the stopped matrix's columns with non-zero last entry equal the full
    run's EFMs with non-zero last entry."""
    net = random_network(**params)
    rec = compress_network(net)
    if rec.reduced.n_reactions < 3:
        return
    try:
        problem = build_problem(rec.reduced)
    except ReproError:
        return  # needs splitting; covered by the query-level test below
    if problem.reversible[problem.q - 1] == False:  # noqa: E712
        # For an irreversible last row Proposition 1 needs the sign
        # filter; restrict the literal test to the reversible case and
        # let the query-level test cover the rest.
        return
    partial = nullspace_algorithm(problem, stop_row=problem.q - 1)
    full = nullspace_algorithm(problem)
    last = problem.q - 1
    stopped = partial.modes.values[partial.modes.values[:, last] != 0.0]
    finished = full.modes.values[full.modes.values[:, last] != 0.0]
    a = canonical_rows(stopped)
    b = canonical_rows(finished)
    assert a.shape == b.shape and np.allclose(a, b, atol=1e-7)


@given(params=network_params, data=st.data())
@settings(**SETTINGS)
def test_targeted_queries_equal_filters(params, data):
    """Query-level Proposition 1: through/avoiding answers equal filtering
    the full EFM set, for any target reaction."""
    net = random_network(**params)
    full = compute_efms(net)
    target = data.draw(st.sampled_from(list(net.reaction_names)))
    from repro.efm.targeted import efms_avoiding

    through = efms_through(net, target)
    avoiding = efms_avoiding(net, target)
    assert_same_modes(through.fluxes, full.with_active(target).fluxes)
    assert_same_modes(avoiding.fluxes, full.without_active(target).fluxes)
    assert through.n_efms + avoiding.n_efms == full.n_efms


@given(params=network_params)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_adaptive_refinement_preserves_efm_set(params):
    """Under an artificially tight memory model, adaptive refinement must
    still produce exactly the full EFM set (or report failure, never a
    wrong set)."""
    net = random_network(**params)
    rec = compress_network(net)
    if rec.reduced.n_reactions < 4:
        return
    full = compute_efms(net)
    probe = MemoryModel(capacity_bytes=1, enforcing=False)
    try:
        problem = build_problem(rec.reduced)
        nullspace_algorithm(problem, memory_check=probe.check)
    except ReproError:
        return
    cap = max(64, int(probe.peak_bytes * 0.9))
    partition = rec.reduced.reaction_names[-1:]
    adaptive = adaptive_combined(
        rec.reduced, partition, 1, MemoryModel(capacity_bytes=cap), max_depth=3
    )
    if not adaptive.complete:
        return  # refusal is acceptable; wrong answers are not
    reduced_efms = adaptive.combined.efms()
    expanded = rec.expand_fluxes(reduced_efms.T).T
    singles = rec.singleton_flux_matrix().T
    if singles.shape[0]:
        expanded = (
            np.concatenate([expanded, singles]) if expanded.size else singles
        )
    assert_same_modes(expanded, full.fluxes)
