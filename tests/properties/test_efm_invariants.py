"""Property-based tests of the defining EFM invariants on random networks.

Hypothesis draws network shapes/seeds; every computed EFM set must satisfy
steady state, thermodynamic feasibility, support minimality, and agreement
with the independent brute-force oracle on tiny instances.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.efm.api import compute_efms
from repro.models.generators import random_network
from repro.network.stoichiometry import stoichiometric_matrix
from tests.conftest import brute_force_efms, canonical_rows

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

network_params = st.fixed_dictionaries(
    {
        "n_metabolites": st.integers(3, 6),
        "n_reactions": st.integers(6, 11),
        "seed": st.integers(0, 10_000),
        "reversible_fraction": st.sampled_from([0.0, 0.2, 0.5]),
    }
)


@given(params=network_params)
@settings(**SETTINGS)
def test_steady_state_and_feasibility(params):
    net = random_network(**params)
    result = compute_efms(net)
    n = stoichiometric_matrix(net)
    if result.n_efms:
        assert np.allclose(n @ result.fluxes.T, 0.0, atol=1e-7)
        irr = ~np.array(net.reversibility)
        assert (result.fluxes[:, irr] >= -1e-9).all()


@given(params=network_params)
@settings(**SETTINGS)
def test_support_minimality(params):
    net = random_network(**params)
    result = compute_efms(net)
    sup = result.supports()
    for i in range(result.n_efms):
        contains = (sup & sup[i] == sup).all(axis=1)
        contains[i] = False
        assert not contains.any(), "a mode's support strictly contains another's"


@given(params=network_params)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_matches_brute_force_oracle(params):
    net = random_network(**params)
    result = compute_efms(net)
    oracle = brute_force_efms(net)
    got = canonical_rows(result.fluxes)
    assert got.shape == oracle.shape, (
        f"EFM count mismatch: nullspace algorithm {got.shape[0]}, "
        f"oracle {oracle.shape[0]}"
    )
    assert np.allclose(got, oracle, atol=1e-7)


@given(params=network_params, scale=st.floats(0.5, 20.0))
@settings(**SETTINGS)
def test_efms_invariant_under_network_scaling(params, scale):
    """Scaling all stoichiometric coefficients of a reaction rescales
    nothing: the EFM supports are unchanged (rays rescale)."""
    net = random_network(**params)
    base = compute_efms(net)
    # Scale every coefficient of the first internal reaction.
    from fractions import Fraction
    import dataclasses

    target = net.reactions[0]
    scaled_rxn = dataclasses.replace(
        target,
        stoich={
            m: c * Fraction(scale).limit_denominator(100)
            for m, c in target.stoich.items()
        },
    )
    net2 = type(net)(
        net.name, net.metabolites, (scaled_rxn,) + net.reactions[1:]
    )
    scaled = compute_efms(net2)
    a = {tuple(r) for r in base.supports().astype(int)}
    b = {tuple(r) for r in scaled.supports().astype(int)}
    assert a == b
