"""Property tests of the substrates: bitsets, rational kernel, compression."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st
from hypothesis import assume
from hypothesis.extra import numpy as hnp

from repro.linalg import bitset, rational
from repro.linalg.numeric import kernel_identity_form
from repro.models.generators import random_network
from repro.network.compression import compress_network
from repro.network.stoichiometry import stoichiometric_matrix

SETTINGS = dict(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


masks = hnp.arrays(
    dtype=bool,
    shape=st.tuples(st.integers(1, 150), st.integers(0, 20)),
    elements=st.booleans(),
)


@given(mask=masks)
@settings(**SETTINGS)
def test_bitset_pack_roundtrip(mask):
    words = bitset.pack_supports(mask)
    assert np.array_equal(bitset.unpack_supports(words, mask.shape[0]), mask)


@given(mask=masks)
@settings(**SETTINGS)
def test_bitset_popcount_matches_sum(mask):
    words = bitset.pack_supports(mask)
    assert np.array_equal(bitset.popcount(words), mask.sum(axis=0))


@given(mask=masks)
@settings(**SETTINGS)
def test_bitset_subset_reflexive_and_consistent(mask):
    assume(mask.shape[1] >= 1)
    words = bitset.pack_supports(mask)
    # Every row is a subset of itself.
    assert bitset.subset_rows(words, words).all()
    # subset_count >= 1 (self) always.
    assert (bitset.subset_count_rows(words, words) >= 1).all()


@given(mask=masks)
@settings(**SETTINGS)
def test_bitset_unique_is_set(mask):
    words = bitset.pack_supports(mask)
    uniq, first = bitset.unique_rows(words)
    assert uniq.shape[0] == np.unique(words, axis=0).shape[0]
    assert np.array_equal(uniq, words[first])


int_matrices = hnp.arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(1, 5), st.integers(1, 8)),
    elements=st.integers(-4, 4),
)


@given(a=int_matrices)
@settings(**SETTINGS)
def test_exact_nullspace_annihilates_and_spans(a):
    fm = rational.to_fraction_matrix(a.tolist())
    basis = rational.exact_nullspace(fm)
    assert rational.is_zero_matrix(rational.fraction_matmul(fm, basis))
    n_cols = len(basis[0]) if basis else 0
    assert n_cols == a.shape[1] - rational.exact_rank(fm)


@given(a=int_matrices)
@settings(**SETTINGS)
def test_kernel_identity_form_properties(a):
    assume(np.linalg.matrix_rank(a.astype(float)) < a.shape[1])
    kernel, perm = kernel_identity_form(a.astype(float))
    assert sorted(perm.tolist()) == list(range(a.shape[1]))
    assert np.allclose(a.astype(float)[:, perm] @ kernel, 0.0, atol=1e-6)
    n_free = kernel.shape[1]
    top = kernel[:n_free]
    assert np.allclose(top - np.diag(np.diag(top)), 0.0)


network_params = st.fixed_dictionaries(
    {
        "n_metabolites": st.integers(3, 7),
        "n_reactions": st.integers(6, 12),
        "seed": st.integers(0, 10_000),
        "reversible_fraction": st.sampled_from([0.0, 0.3, 0.6]),
    }
)


@given(params=network_params)
@settings(**SETTINGS)
def test_compression_preserves_nullspace_dimension_structure(params):
    """Compression must not create or destroy steady-state degrees of
    freedom beyond what it extracts (blocked reactions and singletons)."""
    net = random_network(**params)
    rec = compress_network(net)
    n_orig = stoichiometric_matrix(net)
    dim_orig = n_orig.shape[1] - np.linalg.matrix_rank(n_orig)
    if rec.reduced.n_reactions:
        n_red = stoichiometric_matrix(rec.reduced)
        dim_red = n_red.shape[1] - np.linalg.matrix_rank(n_red)
    else:
        dim_red = 0
    # Every reduced DOF plus every extracted singleton came from an
    # original DOF.  Blocking may legitimately remove linear DOFs (a
    # direction the sign constraints kill), so equality holds only when
    # nothing was blocked.
    assert dim_red + len(rec.singletons) <= dim_orig
    if not rec.blocked:
        assert dim_red + len(rec.singletons) == dim_orig


@given(params=network_params)
@settings(**SETTINGS)
def test_compression_expansion_maps_into_original_nullspace(params):
    net = random_network(**params)
    rec = compress_network(net)
    if rec.reduced.n_reactions == 0:
        return
    rng = np.random.default_rng(0)
    n_red = stoichiometric_matrix(rec.reduced)
    n_orig = stoichiometric_matrix(net)
    # Random reduced steady-state vectors expand to original ones.
    from repro.linalg.numeric import _float_nullspace
    from repro.config import DEFAULT_POLICY

    basis = _float_nullspace(n_red, DEFAULT_POLICY)
    if basis.shape[1] == 0:
        return
    v = basis @ rng.normal(size=(basis.shape[1], 3))
    full = rec.expand_fluxes(v)
    assert np.allclose(n_orig @ full, 0.0, atol=1e-7)


@given(params=network_params)
@settings(**SETTINGS)
def test_blocked_reactions_really_blocked(params):
    """Every reaction compression declares blocked carries zero flux in
    every steady-state solution of the original network."""
    net = random_network(**params)
    rec = compress_network(net)
    if not rec.blocked:
        return
    n = stoichiometric_matrix(net)
    from repro.linalg.numeric import _float_nullspace
    from repro.config import DEFAULT_POLICY

    basis = _float_nullspace(n, DEFAULT_POLICY)
    # Blocked means: zero in the nullspace? No — blocked under SIGN
    # constraints.  Verify via the EFM set instead: no mode uses them.
    from repro.efm.api import compute_efms
    from repro.errors import AlgorithmError

    try:
        result = compute_efms(net)
    except AlgorithmError:
        return  # trivial nullspace: no modes at all, vacuously blocked
    for name in rec.blocked:
        j = net.reaction_index(name)
        if result.n_efms:
            assert np.abs(result.fluxes[:, j]).max() <= 1e-9
