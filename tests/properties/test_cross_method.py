"""Property tests: every algorithm variant computes the same EFM set.

This is the reproduction's central equivalence claim — serial Algorithm 1,
combinatorial parallel Algorithm 2 (any rank count, any pair strategy),
the column-partitioned variant, and divide-and-conquer Algorithm 3 (any
valid partition) are different schedules of the same enumeration.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import AlgorithmOptions
from repro.efm.api import compute_efms
from repro.models.generators import random_network
from repro.network.compression import compress_network

SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

network_params = st.fixed_dictionaries(
    {
        "n_metabolites": st.integers(3, 6),
        "n_reactions": st.integers(6, 10),
        "seed": st.integers(0, 10_000),
        "reversible_fraction": st.sampled_from([0.0, 0.3]),
    }
)


@given(params=network_params, n_ranks=st.integers(1, 5))
@settings(**SETTINGS)
def test_parallel_equals_serial(params, n_ranks):
    net = random_network(**params)
    serial = compute_efms(net)
    parallel = compute_efms(net, method="parallel", n_ranks=n_ranks)
    assert serial.same_modes_as(parallel)


@given(params=network_params, n_ranks=st.integers(1, 4))
@settings(**SETTINGS)
def test_distributed_equals_serial(params, n_ranks):
    net = random_network(**params)
    serial = compute_efms(net)
    distributed = compute_efms(net, method="distributed", n_ranks=n_ranks)
    assert serial.same_modes_as(distributed)


@given(params=network_params, q_sub=st.integers(1, 3), data=st.data())
@settings(**SETTINGS)
def test_combined_equals_serial_any_partition(params, q_sub, data):
    net = random_network(**params)
    reduced = compress_network(net).reduced
    if reduced.n_reactions <= q_sub + 1:
        return
    names = data.draw(
        st.permutations(list(reduced.reaction_names)).map(lambda p: p[:q_sub])
    )
    serial = compute_efms(net)
    combined = compute_efms(net, method="combined", partition=tuple(names))
    assert serial.same_modes_as(combined)


@given(params=network_params)
@settings(**SETTINGS)
def test_pair_strategies_equal(params):
    net = random_network(**params)
    a = compute_efms(net, method="parallel", n_ranks=3, pair_strategy="strided")
    b = compute_efms(net, method="parallel", n_ranks=3, pair_strategy="block")
    c = compute_efms(net, method="parallel", n_ranks=3, pair_strategy="tiled")
    assert a.same_modes_as(b)
    assert a.same_modes_as(c)


@given(params=network_params)
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_exact_equals_float(params):
    net = random_network(**params)
    by_float = compute_efms(net)
    by_exact = compute_efms(net, options=AlgorithmOptions(arithmetic="exact"))
    assert by_float.same_modes_as(by_exact)


@given(params=network_params)
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_bittree_equals_rank(params):
    net = random_network(**params)
    by_rank = compute_efms(net)
    by_tree = compute_efms(net, options=AlgorithmOptions(acceptance="bittree"))
    assert by_rank.same_modes_as(by_tree)


@given(params=network_params)
@settings(**SETTINGS)
def test_compression_preserves_efms(params):
    net = random_network(**params)
    compressed = compute_efms(net, compress=True)
    uncompressed = compute_efms(net, compress=False)
    assert compressed.same_modes_as(uncompressed)
