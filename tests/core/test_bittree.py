"""Unit tests for the bit-pattern tree and the adjacency test."""

import numpy as np
import pytest

from repro.core.bittree import (
    AdjacencyTest,
    BitPatternTree,
    SupportIndex,
    processed_rows_mask,
    subset_exists_vectorized,
)
from repro.linalg import bitset


def _pack(rows_of_bits, n_rows):
    mask = np.zeros((n_rows, len(rows_of_bits)), dtype=bool)
    for j, bits in enumerate(rows_of_bits):
        for b in bits:
            mask[b, j] = True
    return bitset.pack_supports(mask)


class TestBitPatternTree:
    def test_finds_subset(self):
        words = _pack([{0, 1}, {2}, {0, 3}], 8)
        tree = BitPatternTree(words)
        query = _pack([{0, 1, 5}], 8)[0]
        assert tree.has_subset_of(query)

    def test_no_subset(self):
        words = _pack([{0, 1}, {2, 3}], 8)
        tree = BitPatternTree(words)
        query = _pack([{1, 4}], 8)[0]
        assert not tree.has_subset_of(query)

    def test_equal_pattern_counts(self):
        words = _pack([{0, 1}], 8)
        tree = BitPatternTree(words)
        assert tree.has_subset_of(_pack([{0, 1}], 8)[0])

    def test_empty_tree(self):
        tree = BitPatternTree(np.zeros((0, 1), dtype=np.uint64))
        assert not tree.has_subset_of(_pack([{0}], 8)[0])

    @pytest.mark.parametrize("leaf_size", [1, 2, 16])
    def test_matches_vectorized_on_random(self, leaf_size):
        rng = np.random.default_rng(leaf_size)
        mask = rng.random((40, 60)) < 0.25
        refs = bitset.pack_supports(mask)
        queries = bitset.pack_supports(rng.random((40, 30)) < 0.5)
        tree = BitPatternTree(refs, leaf_size=leaf_size)
        want = subset_exists_vectorized(queries, refs)
        got = tree.query_batch(queries)
        assert np.array_equal(got, want)

    def test_identical_patterns_forced_leaf(self):
        words = _pack([{1, 2}, {1, 2}, {1, 2}], 8)
        tree = BitPatternTree(words, leaf_size=1)
        assert tree.has_subset_of(_pack([{1, 2, 3}], 8)[0])


class TestProcessedRowsMask:
    def test_mask_excludes_current_row(self):
        mask = processed_rows_mask(10, 4)  # rows 0..3
        bits = bitset.unpack_supports(mask[None, :], 10)[:, 0]
        assert bits.tolist() == [True] * 4 + [False] * 6

    def test_mask_zero(self):
        mask = processed_rows_mask(70, 0)
        assert (mask == 0).all()


class TestAdjacencyTest:
    def test_only_parents_adjacent(self):
        # current modes: p={0,2}, n={1,2}, other={3}
        words = _pack([{0, 2}, {1, 2}, {3}], 8)
        adj = AdjacencyTest(words, n_rows=8, k=4)
        union = words[0] | words[1]
        assert adj.adjacent(union[None, :])[0]

    def test_third_subset_witness_blocks(self):
        # witness {0} is a subset of the union {0,1,2} -> count 3 -> reject
        words = _pack([{0, 2}, {1, 2}, {0}], 8)
        adj = AdjacencyTest(words, n_rows=8, k=4)
        union = words[0] | words[1]
        assert not adj.adjacent(union[None, :])[0]

    def test_unprocessed_bits_ignored(self):
        # The witness differs only in row 6, beyond the processed prefix
        # (k=5): it still blocks because masked supports collide.
        words = _pack([{0, 2}, {1, 2}, {0, 6}], 8)
        adj = AdjacencyTest(words, n_rows=8, k=5)
        union = words[0] | words[1]
        assert not adj.adjacent(union[None, :])[0]

    def test_batch_shape(self):
        words = _pack([{0}, {1}, {2}], 8)
        adj = AdjacencyTest(words, n_rows=8, k=3)
        unions = np.stack([words[0] | words[1], words[1] | words[2]])
        assert adj.adjacent(unions).shape == (2,)


class TestSupportIndex:
    def test_empty_index_sees_nothing(self):
        idx = SupportIndex(1)
        probe = _pack([{0}, {1, 2}], 8)
        assert not idx.seen(probe).any()
        assert len(idx) == 0
        assert idx.n_probes == 2

    def test_add_then_seen(self):
        idx = SupportIndex(1)
        words = _pack([{0, 1}, {2}], 8)
        idx.add(words)
        assert len(idx) == 2
        probe = _pack([{0, 1}, {3}, {2}], 8)
        assert idx.seen(probe).tolist() == [True, False, True]

    def test_frozen_rows_probed_not_copied(self):
        frozen = _pack([{4, 5}], 8)
        idx = SupportIndex(1, frozen=frozen)
        assert idx.frozen is frozen  # borrowed reference, no copy
        probe = _pack([{4, 5}, {4}], 8)
        assert idx.seen(probe).tolist() == [True, False]
        # Frozen rows are charged to their owner (the mode matrix), not
        # the index; before any add() the index owns no buffer at all.
        assert idx.nbytes() == 0

    def test_nbytes_tracks_buffer_capacity(self):
        idx = SupportIndex(2)
        idx.add(np.ones((1, 2), dtype=bitset.WORD))
        # Geometric growth allocates capacity ahead of fill.
        assert idx.nbytes() >= 1 * 2 * 8
        cap_after_one = idx.nbytes()
        idx.add(np.full((3, 2), 7, dtype=bitset.WORD))
        assert len(idx) == 4
        assert idx.nbytes() >= cap_after_one

    def test_growth_preserves_earlier_rows(self):
        idx = SupportIndex(1)
        rng = np.random.default_rng(0)
        all_rows = rng.integers(1, 2**20, size=(300, 1)).astype(bitset.WORD)
        all_rows = np.unique(all_rows, axis=0)
        for start in range(0, all_rows.shape[0], 37):
            idx.add(all_rows[start : start + 37])
        assert idx.seen(all_rows).all()
        assert np.array_equal(idx.words, all_rows)

    def test_add_empty_is_noop(self):
        idx = SupportIndex(1)
        idx.add(np.empty((0, 1), dtype=bitset.WORD))
        assert len(idx) == 0
        assert idx.nbytes() == 0
