"""Unit tests for the algebraic rank test."""

import numpy as np
import pytest

from repro.core.ranktest import rank_test
from repro.core.state import ModeMatrix
from repro.errors import AlgorithmError
from repro.linalg import rational


class TestRankTest:
    def test_accepts_nullity_one(self, toy_problem):
        # The r3-iteration candidate (0,2,0,1,0,0,0,-1): the paper computes
        # nullity 1 for its support submatrix.
        cand = ModeMatrix(np.array([[0, 2, 0, 1, 0, 0, 0, -1]], dtype=float))
        accept = rank_test(cand, toy_problem.n_perm, toy_problem.rank)
        assert accept[0]

    def test_rejects_oversized_support(self, toy_problem):
        # A dense nullspace vector (sum of kernel columns) has support 7 >
        # rank+1 = 5 -> summary rejection.
        dense = toy_problem.kernel.sum(axis=1)
        cand = ModeMatrix(dense[None, :])
        accept = rank_test(cand, toy_problem.n_perm, toy_problem.rank)
        assert not accept[0]

    def test_rejects_nullity_two(self):
        # N = one zero row over 3 reactions: any 2-support has nullity...
        # use N = [[1,-1,0]]: support {0,1} nullity 1 (accept); support
        # {0,1,2} has rank 1, nullity 2 (reject).
        n = np.array([[1.0, -1.0, 0.0]])
        good = ModeMatrix(np.array([[1.0, 1.0, 0.0]]))
        bad = ModeMatrix(np.array([[1.0, 1.0, 1.0]]))
        assert rank_test(good, n, 1)[0]
        assert not rank_test(bad, n, 2)[0]

    def test_empty_batch(self, toy_problem):
        cand = ModeMatrix.empty(toy_problem.q)
        assert rank_test(cand, toy_problem.n_perm, toy_problem.rank).shape == (0,)

    def test_width_mismatch(self, toy_problem):
        cand = ModeMatrix(np.ones((1, 3)))
        with pytest.raises(AlgorithmError):
            rank_test(cand, toy_problem.n_perm, toy_problem.rank)

    def test_exact_agrees_with_float(self, toy_problem):
        rng = np.random.default_rng(7)
        n_exact = rational.from_numpy(toy_problem.n_perm)
        # random nullspace combinations as candidates
        coeffs = rng.normal(size=(10, toy_problem.n_free))
        cand = ModeMatrix(coeffs @ toy_problem.kernel.T)
        by_float = rank_test(cand, toy_problem.n_perm, toy_problem.rank)
        by_exact = rank_test(
            cand, toy_problem.n_perm, toy_problem.rank, n_exact=n_exact
        )
        assert np.array_equal(by_float, by_exact)

    def test_single_reaction_support_rejected(self):
        # A lone non-zero column cannot balance: rank 1, nullity 0.
        n = np.array([[1.0, -1.0]])
        cand = ModeMatrix(np.array([[1.0, 0.0]]))
        assert not rank_test(cand, n, 1)[0]
