"""PairSpace zone maps: bound soundness, partition exactness, config.

The load-bearing invariant is *skip-only*: a tile pruned by a zone-map
bound may contain no pair the per-pair prefilter would keep, and a
"known-pass" tile may contain no surviving pair the prefilter would
reject.  Violating either silently changes the EFM set, so these tests
check the bounds directly against the brute-force prefilter on random
support sets, independent of the enumeration machinery on top.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AlgorithmOptions
from repro.core.pairspace import PairSpace, resolve_block
from repro.linalg import bitset


def random_space(seed, n_modes=150, n_rows=40, density=0.25, rank_bound=8,
                 block=4, prune=True):
    # n_modes and the split window keep n_pairs above MIN_PRUNE_PAIRS so
    # the zone-map bounds are actually built (the gate is internal).
    rng = np.random.default_rng(seed)
    mask = rng.random((n_modes, n_rows)) < density
    words = bitset.pack_support_rows(mask)
    split = rng.integers(40, n_modes - 40)
    perm = rng.permutation(n_modes)
    pos_idx = np.sort(perm[:split])
    neg_idx = np.sort(perm[split:])
    space = PairSpace(
        words, pos_idx, neg_idx, rank_bound, block=block, prune=prune
    )
    return words, pos_idx, neg_idx, space


def reference_keep(words, pos_idx, neg_idx, max_union):
    """Brute-force per-pair prefilter verdicts, shape (n_pos, n_neg)."""
    pw = words[pos_idx]
    nw = words[neg_idx]
    union = pw[:, None, :] | nw[None, :, :]
    pc = np.bitwise_count(union).sum(axis=2, dtype=np.int64)
    return pc <= max_union


class TestBoundSoundness:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("block", [1, 3, 8])
    def test_pair_masks_skip_only(self, seed, block):
        words, pos_idx, neg_idx, space = random_space(seed, block=block)
        ref = reference_keep(words, pos_idx, neg_idx, space.max_union)
        a, b = np.divmod(np.arange(space.n_pairs), space.n_neg)
        keep, known = space.pair_masks(a, b)
        flat = ref[a, b]
        # Dropped pairs must all fail the real prefilter ...
        assert not flat[~keep].any()
        # ... and known-pass pairs (that survive) must all pass it.
        assert flat[keep & known].all()

    @pytest.mark.parametrize("seed", range(6))
    def test_pruned_tiles_contain_no_passing_pair(self, seed):
        words, pos_idx, neg_idx, space = random_space(seed, block=3)
        ref = reference_keep(words, pos_idx, neg_idx, space.max_union)
        elig = space.elig_pos[:, None] & space.elig_neg[None, :]
        inv_p = np.empty(space.n_pos, dtype=np.intp)
        inv_p[space.porder] = np.arange(space.n_pos)
        inv_n = np.empty(space.n_neg, dtype=np.intp)
        inv_n[space.norder] = np.arange(space.n_neg)
        live = space.live[(inv_p // space.block)[:, None],
                          (inv_n // space.block)[None, :]]
        # Every pair of eligible parents inside a dead tile fails.
        assert not ref[elig & ~live].any()
        # Ineligible parents always fail on their own.
        assert not ref[~elig].any()
        # Sanity: on these densities some tiles actually prune and at
        # least one survives (the bounds are doing nontrivial work).
        assert 0 < space.n_tiles_pruned < space.n_tiles

    @pytest.mark.parametrize("seed", range(4))
    def test_tiled_enumeration_is_skip_only_and_order_preserving(self, seed):
        _, _, _, on = random_space(seed, block=4, prune=True)
        words, pos_idx, neg_idx, off = random_space(seed, block=4, prune=False)
        ref = reference_keep(words, pos_idx, neg_idx, on.max_union)

        def collect(space):
            pairs, skipped = [], 0
            tiles = np.arange(space.n_tiles, dtype=np.intp)
            for a, b, _, n_skip in space.iter_share_chunks(tiles, chunk=37):
                pairs.append(np.stack([a, b], axis=1))
                skipped += n_skip
            return np.concatenate(pairs) if pairs else np.empty((0, 2), int), skipped

        full, skip_off = collect(off)
        kept, skip_on = collect(on)
        assert skip_off == 0
        assert full.shape[0] == off.n_pairs
        assert kept.shape[0] + skip_on == on.n_pairs
        # Every skipped pair fails the prefilter; survivors appear in the
        # same relative order as the unpruned enumeration (subsequence).
        key_full = full[:, 0] * off.n_neg + full[:, 1]
        key_kept = kept[:, 0] * on.n_neg + kept[:, 1]
        pos_in_full = {int(k): i for i, k in enumerate(key_full)}
        order = [pos_in_full[int(k)] for k in key_kept]
        assert order == sorted(order)
        dropped = np.setdiff1d(key_full, key_kept)
        da, db = np.divmod(dropped, on.n_neg)
        assert not ref[da, db].any()


class TestTilePartition:
    @pytest.mark.parametrize("size", [1, 2, 3, 5])
    def test_shares_partition_all_tiles(self, size):
        _, _, _, space = random_space(11, block=4)
        shares = [space.tile_share(r, size) for r in range(size)]
        combined = np.concatenate(shares)
        assert np.array_equal(np.sort(combined), np.arange(space.n_tiles))
        assert sum(space.share_pair_count(s) for s in shares) == space.n_pairs

    def test_partition_independent_of_pruning(self):
        _, _, _, on = random_space(11, block=4, prune=True)
        _, _, _, off = random_space(11, block=4, prune=False)
        for r in range(3):
            assert np.array_equal(on.tile_share(r, 3), off.tile_share(r, 3))

    def test_zone_map_bytes_accounted(self):
        _, _, _, on = random_space(5, block=4, prune=True)
        _, _, _, off = random_space(5, block=4, prune=False)
        assert on.zone_map_nbytes() > off.zone_map_nbytes() > 0


class TestResolveBlock:
    def test_auto_scales_with_space(self):
        assert resolve_block("auto", 1 << 17) == 1
        assert resolve_block("auto", (1 << 17) + 1) == 4

    def test_explicit_passthrough_and_floor(self):
        assert resolve_block(5, 10**9) == 5
        assert resolve_block(0, 100) == 1


class TestConfig:
    def test_rejects_unknown_pruning(self):
        with pytest.raises(ValueError, match="pair pruning"):
            AlgorithmOptions(pair_pruning="fancy")

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError, match="pair_block"):
            AlgorithmOptions(pair_block=0)
        with pytest.raises(ValueError, match="pair_block"):
            AlgorithmOptions(pair_block="huge")

    def test_env_default_aliases(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAIR_PRUNING", "off")
        assert AlgorithmOptions().pair_pruning == "none"
        monkeypatch.setenv("REPRO_PAIR_PRUNING", "on")
        assert AlgorithmOptions().pair_pruning == "tiles"
        monkeypatch.delenv("REPRO_PAIR_PRUNING")
        assert AlgorithmOptions().pair_pruning == "tiles"
