"""Tests for configuration validation and the exception hierarchy."""

import pytest

from repro import errors
from repro.config import AlgorithmOptions, NumericPolicy


class TestNumericPolicy:
    def test_defaults_sane(self):
        p = NumericPolicy()
        assert 0 < p.zero_tol < 1e-2
        assert 0 < p.rank_tol < 1e-2

    @pytest.mark.parametrize("bad", [0.0, -1e-9, 0.5, 1.0])
    def test_zero_tol_range(self, bad):
        with pytest.raises(ValueError):
            NumericPolicy(zero_tol=bad)

    @pytest.mark.parametrize("bad", [0.0, 0.5])
    def test_rank_tol_range(self, bad):
        with pytest.raises(ValueError):
            NumericPolicy(rank_tol=bad)

    def test_frozen(self):
        with pytest.raises(Exception):
            NumericPolicy().zero_tol = 1e-5  # type: ignore[misc]


class TestAlgorithmOptions:
    def test_defaults(self):
        o = AlgorithmOptions()
        assert o.arithmetic == "float"
        assert o.acceptance == "rank"
        assert o.ordering == "dynamic"
        assert o.selection_lookahead == 4

    @pytest.mark.parametrize(
        "field,value",
        [
            ("arithmetic", "quantum"),
            ("acceptance", "vibes"),
            ("ordering", "alphabetical"),
            ("selection_lookahead", -1),
            ("selection_lookahead", 2.5),
            ("selection_lookahead", True),
            ("pair_chunk", 0),
            ("iter_streaming", "maybe"),
            ("iter_chunk_bytes", 0),
            ("iter_chunk_bytes", -1),
            ("iter_chunk_bytes", "big"),
            ("iter_chunk_bytes", 3.5),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            AlgorithmOptions(**{field: value})

    def test_streaming_defaults_follow_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ITER_STREAMING", raising=False)
        monkeypatch.delenv("REPRO_ITER_CHUNK_BYTES", raising=False)
        o = AlgorithmOptions()
        assert o.iter_streaming == "on"
        assert o.iter_chunk_bytes == "auto"
        monkeypatch.setenv("REPRO_ITER_STREAMING", "off")
        monkeypatch.setenv("REPRO_ITER_CHUNK_BYTES", "65536")
        o = AlgorithmOptions()
        assert o.iter_streaming == "off"
        assert o.iter_chunk_bytes == 65536
        # explicit arguments always win over the environment
        o = AlgorithmOptions(iter_streaming="on", iter_chunk_bytes="auto")
        assert o.iter_streaming == "on"
        assert o.iter_chunk_bytes == "auto"

    def test_ordering_default_follows_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ORDERING", raising=False)
        assert AlgorithmOptions().ordering == "dynamic"
        monkeypatch.setenv("REPRO_ORDERING", "paper")
        assert AlgorithmOptions().ordering == "paper"
        # explicit arguments always win over the environment
        assert AlgorithmOptions(ordering="natural").ordering == "natural"

    def test_custom_policy_carried(self):
        p = NumericPolicy(zero_tol=1e-10)
        assert AlgorithmOptions(policy=p).policy.zero_tol == 1e-10


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.NetworkError,
            errors.ParseError,
            errors.CompressionError,
            errors.LinAlgError,
            errors.AlgorithmError,
            errors.PartitionError,
            errors.CommunicatorError,
            errors.OutOfMemoryError,
            errors.ReversibleIdentityError,
            errors.DependentPartitionError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_parse_error_is_network_error(self):
        assert issubclass(errors.ParseError, errors.NetworkError)

    def test_algorithm_subtypes(self):
        assert issubclass(errors.ReversibleIdentityError, errors.AlgorithmError)
        assert issubclass(errors.DependentPartitionError, errors.AlgorithmError)

    def test_oom_context(self):
        e = errors.OutOfMemoryError(
            "x", iteration=3, required_bytes=10, capacity_bytes=5
        )
        assert (e.iteration, e.required_bytes, e.capacity_bytes) == (3, 10, 5)

    def test_reversible_identity_carries_names(self):
        e = errors.ReversibleIdentityError("x", reactions=("a", "b"))
        assert e.reactions == ("a", "b")

    def test_one_except_clause_catches_everything(self, toy):
        from repro import compute_efms

        try:
            compute_efms(toy, method="nope")  # type: ignore[arg-type]
        except errors.ReproError:
            pass
        else:  # pragma: no cover
            pytest.fail("ReproError not raised")
