"""Ordering parity: the EFM *set* is independent of the elimination order.

The Nullspace Algorithm's final EFM set is a property of the network, not
of the row-processing order — any permutation of the processed row set
(and any run-time dynamic selection within it) must reproduce the same
modes up to scaling and enumeration order.  These tests pin that
invariant across ``ordering`` x candidate pipeline x streaming on every
driver; the slow property extends the pin to the 530-EFM yeast-I-small
acceptance workload.  Comparisons are canonicalized (unit max-norm,
rounded, lexsorted) because different orderings legitimately emit the
same set in different orders and scalings.
"""

from __future__ import annotations

import pytest

from repro.config import AlgorithmOptions
from repro.core.serial import nullspace_algorithm
from repro.efm.api import compute_efms
from repro.models.variants import yeast_1_small
from repro.parallel.combinatorial import combinatorial_parallel
from repro.parallel.distributed import distributed_parallel
from tests.conftest import assert_same_modes

ORDERINGS = ("dynamic", "paper", "natural", "random")


def _opts(ordering, pipeline="deferred", streaming="off", **kw):
    return AlgorithmOptions(
        ordering=ordering,
        candidate_pipeline=pipeline,
        iter_streaming=streaming,
        **kw,
    )


@pytest.fixture(scope="module")
def toy_reference(request):
    problem = request.getfixturevalue("toy_problem")
    return nullspace_algorithm(
        problem, options=_opts("paper")
    ).efms_input_order()


class TestToyOrderingParity:
    @pytest.mark.parametrize("streaming", ["off", "on"])
    @pytest.mark.parametrize("pipeline", ["deferred", "eager"])
    @pytest.mark.parametrize("ordering", ORDERINGS)
    def test_serial(self, toy_problem, toy_reference, ordering, pipeline, streaming):
        res = nullspace_algorithm(
            toy_problem, options=_opts(ordering, pipeline, streaming)
        )
        assert_same_modes(res.efms_input_order(), toy_reference)

    @pytest.mark.parametrize("pipeline", ["deferred", "eager"])
    @pytest.mark.parametrize("ordering", ORDERINGS)
    def test_combinatorial(self, toy_problem, toy_reference, ordering, pipeline):
        res = combinatorial_parallel(
            toy_problem, 2, options=_opts(ordering, pipeline)
        )
        assert_same_modes(res.result.efms_input_order(), toy_reference)

    @pytest.mark.parametrize("ordering", ORDERINGS)
    def test_distributed(self, toy_problem, toy_reference, ordering):
        res = distributed_parallel(
            toy_problem, 3, options=_opts(ordering)
        )
        assert_same_modes(res.efms_input_order(), toy_reference)

    @pytest.mark.parametrize("ordering", ORDERINGS)
    def test_streaming_combinatorial(self, toy_problem, toy_reference, ordering):
        res = combinatorial_parallel(
            toy_problem, 2, options=_opts(ordering, streaming="on")
        )
        assert_same_modes(res.result.efms_input_order(), toy_reference)

    def test_dynamic_realizes_a_different_order(self, toy_problem):
        """The dynamic selector must actually *exercise* out-of-order
        elimination somewhere in this suite; the toy network's live
        pair-count trajectory departs from the static layout."""
        from repro.core.ordering import RowSelector
        from repro.core.state import ModeMatrix

        opts = _opts("dynamic")
        sel = RowSelector(toy_problem, toy_problem.q, opts)
        modes = ModeMatrix.from_kernel(
            toy_problem.kernel, policy=opts.policy
        )
        first = sel.next_row(modes)
        static = RowSelector(toy_problem, toy_problem.q, _opts("paper"))
        # Not asserted unequal (the heuristics may agree on tiny inputs) —
        # but both must be in-window and deterministic.
        assert toy_problem.first_row <= first < toy_problem.q
        assert static.next_row() == toy_problem.first_row


@pytest.mark.slow
def test_yeast_small_ordering_sweep():
    """Acceptance pin: yeast-I-small emits the identical canonical 530-EFM
    set for every ordering on every driver, streaming on and off."""
    net = yeast_1_small()
    reference = compute_efms(net, options=_opts("paper"))
    assert reference.n_efms == 530

    for ordering in ORDERINGS:
        for streaming in ("off", "on"):
            runs = [
                compute_efms(net, options=_opts(ordering, streaming=streaming)),
                compute_efms(
                    net, method="parallel", n_ranks=3,
                    options=_opts(ordering, streaming=streaming),
                ),
                compute_efms(
                    net, method="combined", partition=5,
                    options=_opts(ordering, streaming=streaming),
                ),
            ]
            for label, res in zip(("serial", "parallel-3", "combined-5"), runs):
                assert res.n_efms == 530, (ordering, streaming, label)
                assert_same_modes(res.fluxes, reference.fluxes)
