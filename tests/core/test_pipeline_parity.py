"""Eager vs deferred candidate-pipeline parity.

The support-first (deferred) pipeline must be an exact refactoring of the
eager reference: identical canonical supports out of generation, identical
survivors out of dedup + rank test, and bit-identical dense values after
materialization.  The fast tests pin the numerically delicate case — a
combination that cancels entries *beyond* the annihilated row — and full
toy runs on every driver; the slow property test is the acceptance
criterion from the pipeline work: yeast-I-small, serial + combinatorial
(P in {2, 4}) + combined (q_sub = 5), bit-identical EFM sets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AlgorithmOptions
from repro.core.candidates import full_range, generate_candidates
from repro.core.serial import nullspace_algorithm
from repro.core.state import CandidateBatch, ModeMatrix
from repro.core.stats import IterationStats
from repro.efm.api import compute_efms
from repro.linalg import bitset
from repro.models.variants import yeast_1_small
from repro.parallel.combinatorial import combinatorial_parallel
from repro.parallel.distributed import distributed_parallel

EAGER = AlgorithmOptions(candidate_pipeline="eager")
DEFERRED = AlgorithmOptions(candidate_pipeline="deferred")


def _stats():
    return IterationStats(position=0, reaction="x", reversible=False)


class TestCancellationParity:
    """A combination can zero entries beyond the annihilated row; the
    deferred supports must reflect the numeric cancellation, not the
    pair's support union."""

    def test_support_strictly_smaller_than_union_minus_row(self):
        # mode0 + mode1 cancels column 2 in addition to the paired row 0.
        modes = ModeMatrix(
            np.array(
                [
                    [1.0, 1.0, 1.0, 0.0],
                    [-1.0, 1.0, -1.0, 0.0],
                ]
            )
        )
        out = {}
        for name, opts in (("eager", EAGER), ("deferred", DEFERRED)):
            cand = generate_candidates(
                modes, 0, np.array([0]), np.array([1]), full_range(1),
                rank_bound=4, options=opts, stats=_stats(),
            )
            assert cand.n_modes == 1
            out[name] = cand
        batch = out["deferred"]
        assert isinstance(batch, CandidateBatch)
        union = modes.supports.words[0] | modes.supports.words[1]
        union_minus_k = int(bitset.popcount(union[None, :])[0]) - 1
        support_size = int(bitset.popcount(batch.supports.words)[0])
        # {1} is strictly inside (union minus row 0) = {1, 2}.
        assert support_size < union_minus_k
        assert np.array_equal(batch.supports.words, out["eager"].supports.words)
        dense = batch.materialize(modes.values)
        assert np.array_equal(dense.values, out["eager"].values)
        assert np.array_equal(dense.supports.words, out["eager"].supports.words)


class TestToyFullRunParity:
    def test_serial(self, toy_problem):
        a = nullspace_algorithm(toy_problem, options=EAGER)
        b = nullspace_algorithm(toy_problem, options=DEFERRED)
        assert np.array_equal(a.efms_input_order(), b.efms_input_order())

    @pytest.mark.parametrize("n_ranks", [2, 4])
    def test_combinatorial(self, toy_problem, n_ranks):
        a = combinatorial_parallel(toy_problem, n_ranks, options=EAGER)
        b = combinatorial_parallel(toy_problem, n_ranks, options=DEFERRED)
        assert np.array_equal(
            a.result.efms_input_order(), b.result.efms_input_order()
        )

    def test_distributed(self, toy_problem):
        a = distributed_parallel(toy_problem, 2, options=EAGER)
        b = distributed_parallel(toy_problem, 2, options=DEFERRED)
        assert np.array_equal(a.efms_input_order(), b.efms_input_order())

    def test_deferred_ships_fewer_allgather_bytes(self, toy_problem):
        a = combinatorial_parallel(toy_problem, 2, options=EAGER)
        b = combinatorial_parallel(toy_problem, 2, options=DEFERRED)
        eager_bytes = sum(t.allgather_bytes for t in a.rank_traces)
        deferred_bytes = sum(t.allgather_bytes for t in b.rank_traces)
        assert 0 < deferred_bytes < eager_bytes


@pytest.mark.slow
def test_yeast_small_pipeline_parity_property():
    """Acceptance property: yeast-I-small, serial + combinatorial
    (P in {2, 4}) + combined (q_sub = 5) — the eager and deferred
    pipelines produce bit-identical EFM sets on every driver."""
    net = yeast_1_small()
    runs: dict[str, list] = {}
    for name, opts in (("eager", EAGER), ("deferred", DEFERRED)):
        runs[name] = [
            compute_efms(net, options=opts),
            compute_efms(net, method="parallel", n_ranks=2, options=opts),
            compute_efms(net, method="parallel", n_ranks=4, options=opts),
            compute_efms(net, method="combined", partition=5, options=opts),
        ]
    for label, a, b in zip(
        ("serial", "parallel-2", "parallel-4", "combined-5"),
        runs["eager"],
        runs["deferred"],
    ):
        assert a.n_efms == b.n_efms, label
        assert np.array_equal(a.fluxes, b.fluxes), (
            f"{label}: eager and deferred EFM sets differ"
        )
    assert runs["deferred"][0].n_efms == 530
