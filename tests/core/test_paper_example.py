"""End-to-end reproduction of the paper's worked example (§II.C, Figures
1-2, eqs. (2)-(7)).  These are the strongest correctness anchors in the
suite: every number asserted below appears literally in the paper."""

import numpy as np
import pytest

from repro.config import AlgorithmOptions
from repro.core.serial import nullspace_algorithm
from repro.efm.api import compute_efms
from tests.conftest import assert_same_modes, canonical_rows

#: eq. (7): the 8 EFMs of the toy network, columns of the paper's matrix,
#: transcribed as rows (reaction order r1..r9).
EQ7_EFMS = np.array(
    [
        [1, 1, 0, 0, 0, -1, 0, 1, 0],
        [0, 0, 1, 1, 0, 1, 0, -1, 1],
        [1, 0, 0, 0, 1, 0, 0, 1, 0],
        [0, 0, 0, 2, 0, 0, 1, -1, 0],
        [1, 1, 1, 1, 0, 0, 0, 0, 1],
        [1, 1, 0, 2, 0, -1, 1, 0, 0],
        [1, 0, 1, 1, 1, 1, 0, 0, 1],
        [1, 0, 0, 2, 1, 0, 1, 0, 0],
    ],
    dtype=float,
)


class TestKernelForm:
    def test_row_order_matches_eq5(self, toy_problem):
        assert toy_problem.names == ("r2", "r4", "r5", "r7", "r1", "r3", "r6r", "r8r")

    def test_kernel_matches_eq5(self, toy_problem):
        expected = np.array(
            [
                [1, 0, 0, 0],
                [0, 1, 0, 0],
                [0, 0, 1, 0],
                [0, 0, 0, 1],
                [1, 0, 1, 0],
                [0, 1, 0, -2],
                [-1, 1, 0, -2],
                [1, -1, 1, 1],
            ],
            dtype=float,
        )
        assert np.array_equal(toy_problem.kernel, expected)

    def test_nperm_matches_eq6(self, toy_problem):
        expected = np.array(
            [
                [-1, 0, -1, 0, 1, 0, 0, 0],
                [0, 0, 1, -1, 0, 0, -1, -1],
                [1, 0, 0, 0, 0, -1, 1, 0],
                [0, -1, 0, 2, 0, 1, 0, 0],
            ],
            dtype=float,
        )
        assert np.array_equal(toy_problem.n_perm, expected)

    def test_dimensions(self, toy_problem):
        assert toy_problem.n_free == 4
        assert toy_problem.rank == 4
        assert toy_problem.first_row == 4


class TestIterationNarrative:
    """§II.C's walk-through, iteration by iteration."""

    @pytest.fixture(scope="class")
    def result(self, toy_problem):
        return nullspace_algorithm(toy_problem)

    def test_r1_no_candidates(self, result):
        it = result.stats.iterations[0]
        assert it.reaction == "r1"
        assert it.n_pairs == 0 and it.n_neg == 0

    def test_r3_single_candidate_accepted(self, result):
        it = result.stats.iterations[1]
        assert it.reaction == "r3"
        assert (it.n_pos, it.n_neg) == (1, 1)
        assert it.n_pairs == 1 and it.n_accepted == 1
        assert it.n_neg_removed == 1  # irreversible: the (-2) column goes

    def test_r6r_single_candidate_no_removal(self, result):
        it = result.stats.iterations[2]
        assert it.reaction == "r6r"
        assert it.n_pairs == 1 and it.n_accepted == 1
        assert it.n_neg_removed == 0  # reversible: negatives kept

    def test_r8r_four_candidates_one_duplicate_three_probed(self, result):
        it = result.stats.iterations[3]
        assert it.reaction == "r8r"
        assert (it.n_pos, it.n_neg) == (2, 2)
        assert it.n_pairs == 4
        assert it.n_duplicates == 1  # "two of these columns are duplicates"
        assert it.n_tested == 3  # "only three are probed"
        assert it.n_accepted == 3  # all three pass: K(4)'s 5 columns + 3 = 8
        assert it.n_modes_end == 8

    def test_r3_candidate_vector(self, toy_problem):
        """The candidate at r3 is (0,2,0,1,0,0,0,-1) in permuted order."""
        options = AlgorithmOptions(arithmetic="exact", record_trace=True)
        result = nullspace_algorithm(toy_problem, options=options)
        k3 = result.trace[1].matrix  # after the r3 iteration
        target = np.array([0, 2, 0, 1, 0, 0, 0, -1], dtype=float)
        cols = [k3[:, j] for j in range(k3.shape[1])]
        assert any(np.array_equal(c, target) for c in cols)

    def test_r6r_candidate_vector(self, toy_problem):
        options = AlgorithmOptions(arithmetic="exact", record_trace=True)
        result = nullspace_algorithm(toy_problem, options=options)
        k4 = result.trace[2].matrix
        target = np.array([1, 1, 0, 0, 1, 1, 0, 0], dtype=float)
        cols = [k4[:, j] for j in range(k4.shape[1])]
        assert any(np.array_equal(c, target) for c in cols)


class TestFinalEFMs:
    def test_eight_efms_matching_eq7(self, toy):
        result = compute_efms(toy)
        assert result.n_efms == 8
        assert_same_modes(result.fluxes, EQ7_EFMS)

    def test_exact_arithmetic_same_set(self, toy):
        result = compute_efms(toy, options=AlgorithmOptions(arithmetic="exact"))
        assert_same_modes(result.fluxes, EQ7_EFMS)

    def test_validates(self, toy):
        compute_efms(toy).validate()

    def test_integerized_rows_are_eq7_columns(self, toy):
        result = compute_efms(toy)
        got = canonical_rows(result.integerized())
        want = canonical_rows(EQ7_EFMS)
        assert np.allclose(got, want)


class TestDncPartitions:
    def test_r6r_r8r_partition_sizes(self, toy_record):
        """§III.A: each of the four subsets holds exactly 2 EFMs."""
        from repro.dnc.combined import combined_parallel

        run = combined_parallel(toy_record.reduced, ("r6r", "r8r"), 1)
        assert [s.n_efms for s in run.subsets] == [2, 2, 2, 2]
        assert run.n_efms == 8

    def test_r8r_r9_partition_sizes_in_original_space(self, toy):
        """§II.E: partitioning the 8 EFMs across (r8r, r9) gives subsets
        {6,8}, {1,3,4}, {5,7}, {2} — sizes 2, 3, 2, 1."""
        result = compute_efms(toy)
        j8 = toy.reaction_index("r8r")
        j9 = toy.reaction_index("r9")
        sizes = []
        for bits in range(4):
            want8 = bool(bits & 1)
            want9 = bool(bits & 2)
            count = sum(
                1
                for row in result.fluxes
                if (abs(row[j8]) > 1e-9) == want8 and (abs(row[j9]) > 1e-9) == want9
            )
            sizes.append(count)
        assert sorted(sizes) == [1, 2, 2, 3]

    def test_dnc_union_equals_eq7(self, toy):
        result = compute_efms(toy, method="combined", partition=("r6r", "r8r"))
        assert_same_modes(result.fluxes, EQ7_EFMS)
