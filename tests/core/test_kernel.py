"""Unit tests for problem setup (kernel construction, permutations)."""

import numpy as np
import pytest

from repro.config import AlgorithmOptions
from repro.core.kernel import build_problem, problem_from_matrices
from repro.errors import AlgorithmError, ReversibleIdentityError
from repro.models.generators import random_network
from repro.network.compression import compress_network
from repro.network.stoichiometry import stoichiometric_matrix


class TestProblemInvariants:
    def test_kernel_annihilated(self, toy_record):
        p = build_problem(toy_record.reduced)
        assert np.allclose(p.n_perm @ p.kernel, 0.0)

    def test_perm_is_bijection(self, toy_record):
        p = build_problem(toy_record.reduced)
        assert sorted(p.perm.tolist()) == list(range(p.q))
        inv = p.inverse_perm()
        assert np.array_equal(p.perm[inv], np.arange(p.q))

    def test_names_follow_perm(self, toy_record):
        p = build_problem(toy_record.reduced)
        reduced_names = toy_record.reduced.reaction_names
        assert p.names == tuple(reduced_names[i] for i in p.perm)

    def test_identity_block_irreversible(self, toy_record):
        p = build_problem(toy_record.reduced)
        assert not p.reversible[: p.n_free].any()

    def test_reversible_rows_processed_last(self, toy_record):
        p = build_problem(toy_record.reduced)
        rev_positions = np.nonzero(p.reversible)[0]
        irr_tail = [
            i for i in range(p.first_row, p.q) if not p.reversible[i]
        ]
        assert rev_positions.min() > max(irr_tail)

    def test_random_networks_well_formed(self):
        for seed in range(10):
            net = random_network(5, 9, seed=seed, reversible_fraction=0.2)
            rec = compress_network(net)
            if rec.reduced.n_reactions == 0:
                continue
            try:
                p = build_problem(rec.reduced)
            except (ReversibleIdentityError, AlgorithmError):
                continue
            assert np.allclose(p.n_perm @ p.kernel, 0.0, atol=1e-8)
            assert p.rank == p.q - p.n_free


class TestForceLast:
    def test_forced_rows_at_bottom_in_order(self, toy_record):
        p = build_problem(toy_record.reduced, force_last=("r6r", "r8r"))
        assert p.names[-2:] == ("r6r", "r8r")

    def test_forced_reaction_preferred_as_pivot(self, toy_record):
        # Partition rows need sign diversity: forcing r4 pulls it out of
        # the identity block and into the pivot (processed) part.
        p = build_problem(toy_record.reduced, force_last=("r4",))
        assert p.names[-1] == "r4"
        assert p.first_row == p.n_free  # block structure intact

    def test_dependent_forced_irreversible_resets_first_row(self):
        # Two identical irreversible columns can't both be pivots; forcing
        # both leaves one in the identity block, so every row must be
        # processed (first_row == 0).
        n = np.array([[1.0, -1.0, -1.0]])
        p = problem_from_matrices(
            n, np.zeros(3, dtype=bool), ["a", "b", "c"], force_last=("b", "c")
        )
        assert p.names[-2:] == ("b", "c")
        assert p.first_row == 0

    def test_unknown_force_last(self, toy_record):
        with pytest.raises(AlgorithmError):
            build_problem(toy_record.reduced, force_last=("nope",))


class TestFreeHint:
    def test_hint_honored(self, toy_record):
        p = build_problem(toy_record.reduced, free_hint=("r2", "r4", "r5", "r7"))
        assert set(p.names[:4]) == {"r2", "r4", "r5", "r7"}

    def test_reversible_hint_rejected(self, toy_record):
        with pytest.raises(AlgorithmError, match="reversible"):
            build_problem(toy_record.reduced, free_hint=("r6r",))

    def test_unknown_hint_rejected(self, toy_record):
        with pytest.raises(AlgorithmError):
            build_problem(toy_record.reduced, free_hint=("zzz",))


class TestReversibleIdentityGuard:
    def test_too_many_reversibles_raises_with_names(self):
        # 1 metabolite, 3 reversible reactions: rank 1, nullspace dim 2,
        # no irreversible columns at all.
        from repro.network.parser import network_from_equations

        net = network_from_equations(
            "t", ["a : Aext <=> M", "b : M <=> Bext", "c : M <=> Cext"]
        )
        with pytest.raises(ReversibleIdentityError) as exc_info:
            build_problem(net)
        assert len(exc_info.value.reactions) >= 1


class TestProblemFromMatrices:
    def test_shape_validation(self):
        with pytest.raises(AlgorithmError):
            problem_from_matrices(
                np.zeros((2, 3)), np.zeros(2, dtype=bool), ["a", "b", "c"]
            )

    def test_duplicate_names(self):
        with pytest.raises(AlgorithmError):
            problem_from_matrices(
                np.zeros((1, 2)), np.zeros(2, dtype=bool), ["a", "a"]
            )

    def test_trivial_nullspace(self):
        n = np.eye(3)
        with pytest.raises(AlgorithmError, match="trivial nullspace"):
            problem_from_matrices(n, np.zeros(3, dtype=bool), ["a", "b", "c"])

    def test_matches_build_problem(self, toy_record):
        red = toy_record.reduced
        p1 = build_problem(red)
        p2 = problem_from_matrices(
            stoichiometric_matrix(red),
            np.array(red.reversibility),
            red.reaction_names,
        )
        assert p1.names == p2.names
        assert np.array_equal(p1.kernel, p2.kernel)

    def test_position_of(self, toy_problem):
        assert toy_problem.position_of("r8r") == 7
        with pytest.raises(AlgorithmError):
            toy_problem.position_of("zzz")
