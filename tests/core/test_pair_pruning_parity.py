"""Pair-pruning parity: zone-map tiles vs the unpruned reference.

Pruning is a pure skip layer — every pair it drops would have failed the
union-popcount prefilter, every prefilter it elides would have passed —
so the EFM set must be bit-identical with ``pair_pruning="tiles"`` and
``"none"`` under every pair strategy (strided / block / tiled) and both
candidate pipelines.  The slow test is the acceptance criterion:
yeast-I-small, serial + combinatorial (P in {2, 4}, tiled strategy) +
combined (q_sub = 5), bit-identical EFM sets and a non-trivial number of
pairs actually skipped.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import AlgorithmOptions
from repro.efm.api import compute_efms
from repro.models.generators import random_network
from repro.models.variants import yeast_1_small

SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

network_params = st.fixed_dictionaries(
    {
        "n_metabolites": st.integers(3, 6),
        "n_reactions": st.integers(6, 10),
        "seed": st.integers(0, 10_000),
        "reversible_fraction": st.sampled_from([0.0, 0.3]),
    }
)


def opts(pruning, pipeline="deferred", block="auto"):
    return AlgorithmOptions(
        pair_pruning=pruning, candidate_pipeline=pipeline, pair_block=block
    )


@given(params=network_params, pipeline=st.sampled_from(["deferred", "eager"]))
@settings(**SETTINGS)
def test_serial_pruning_parity(params, pipeline):
    net = random_network(**params)
    a = compute_efms(net, options=opts("none", pipeline))
    b = compute_efms(net, options=opts("tiles", pipeline))
    assert np.array_equal(a.fluxes, b.fluxes)


@given(
    params=network_params,
    strategy=st.sampled_from(["strided", "block", "tiled"]),
    block=st.sampled_from(["auto", 1, 3]),
)
@settings(**SETTINGS)
def test_parallel_pruning_parity_all_strategies(params, strategy, block):
    net = random_network(**params)
    a = compute_efms(
        net, method="parallel", n_ranks=3, pair_strategy=strategy,
        options=opts("none", block=block),
    )
    b = compute_efms(
        net, method="parallel", n_ranks=3, pair_strategy=strategy,
        options=opts("tiles", block=block),
    )
    assert np.array_equal(a.fluxes, b.fluxes)


@given(params=network_params)
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_combined_pruning_parity(params):
    net = random_network(**params)
    a = compute_efms(net, method="combined", partition=2,
                     pair_strategy="tiled", options=opts("none"))
    b = compute_efms(net, method="combined", partition=2,
                     pair_strategy="tiled", options=opts("tiles"))
    assert np.array_equal(a.fluxes, b.fluxes)


def test_tiled_counters_populate():
    """The tiled strategy always builds the tile map, so the new counters
    flow through IterationStats into the RunStats totals."""
    net = random_network(n_metabolites=5, n_reactions=12, seed=7)
    run = compute_efms(net, method="parallel", n_ranks=2,
                       pair_strategy="tiled", options=opts("tiles"))
    assert run.stats is not None
    total_tiles = sum(it.n_tiles_total for it in run.stats.iterations)
    assert total_tiles > 0
    assert run.stats.total_pairs_skipped >= 0
    assert run.stats.peak_prefilter_bytes > 0


@pytest.mark.slow
def test_yeast_small_pruning_parity_property():
    """Acceptance property: yeast-I-small, serial + combinatorial
    (P in {2, 4}, tiled strategy) + combined (q_sub = 5) — tiles and
    none produce bit-identical EFM sets, and tiles actually skips work."""
    net = yeast_1_small()
    runs: dict[str, list] = {}
    for name in ("none", "tiles"):
        o = opts(name)
        runs[name] = [
            compute_efms(net, options=o),
            compute_efms(net, method="parallel", n_ranks=2,
                         pair_strategy="tiled", options=o),
            compute_efms(net, method="parallel", n_ranks=4,
                         pair_strategy="tiled", options=o),
            compute_efms(net, method="combined", partition=5,
                         pair_strategy="tiled", options=o),
        ]
    for label, a, b in zip(
        ("serial", "parallel-2", "parallel-4", "combined-5"),
        runs["none"],
        runs["tiles"],
    ):
        assert a.n_efms == b.n_efms, label
        assert np.array_equal(a.fluxes, b.fluxes), (
            f"{label}: pruned and unpruned EFM sets differ"
        )
    assert runs["tiles"][0].n_efms == 530
    skipped = [r.stats.total_pairs_skipped
               for r in runs["tiles"][:3] if r.stats is not None]
    assert sum(skipped) > 0
