"""Unit tests for candidate generation and pair ranges."""

import numpy as np
import pytest

from repro.config import AlgorithmOptions
from repro.core.candidates import (
    PairRange,
    block_range,
    full_range,
    generate_candidates,
    strided_range,
)
from repro.core.state import CandidateBatch, ModeMatrix
from repro.core.stats import IterationStats


def _stats():
    return IterationStats(position=0, reaction="x", reversible=False)


EAGER = AlgorithmOptions(candidate_pipeline="eager")
# Pin explicitly: the default is env-sensitive (REPRO_CANDIDATE_PIPELINE),
# and the CI candidate-pipeline leg flips it to "eager".
DEFERRED = AlgorithmOptions(candidate_pipeline="deferred")


class TestPairRanges:
    def test_full_range_counts_all(self):
        assert full_range(17).count() == 17

    @pytest.mark.parametrize("n_pairs,size", [(10, 3), (7, 7), (5, 8), (0, 4)])
    def test_strided_partition_is_exact(self, n_pairs, size):
        seen = []
        for r in range(size):
            pr = strided_range(n_pairs, r, size)
            idx = list(range(pr.start, pr.stop, pr.step))
            assert len(idx) == pr.count()
            seen.extend(idx)
        assert sorted(seen) == list(range(n_pairs))

    @pytest.mark.parametrize("n_pairs,size", [(10, 3), (7, 7), (5, 8), (0, 4)])
    def test_block_partition_is_exact(self, n_pairs, size):
        seen = []
        for r in range(size):
            pr = block_range(n_pairs, r, size)
            seen.extend(range(pr.start, pr.stop))
        assert sorted(seen) == list(range(n_pairs))

    def test_block_balance(self):
        counts = [block_range(10, r, 3).count() for r in range(3)]
        assert max(counts) - min(counts) <= 1

    def test_empty_range_count(self):
        assert PairRange(5, 5).count() == 0
        assert PairRange(6, 5).count() == 0


class TestGenerateCandidates:
    def _setup(self):
        # 3 modes over 4 reactions; row 2 has signs (+, -, 0).
        vals = np.array(
            [
                [1.0, 0.0, 1.0, 0.0],
                [0.0, 1.0, -1.0, 0.0],
                [1.0, 1.0, 0.0, 1.0],
            ]
        )
        return ModeMatrix(vals)

    def test_combination_annihilates_row(self):
        modes = self._setup()
        stats = _stats()
        cand = generate_candidates(
            modes,
            2,
            np.array([0]),
            np.array([1]),
            full_range(1),
            rank_bound=3,
            options=EAGER,
            stats=stats,
        )
        assert cand.n_modes == 1
        assert cand.values[0, 2] == 0.0
        # a = -(-1) = 1, b = 1 -> mode0 + mode1 = (1,1,0,0) normalized
        assert np.allclose(cand.values[0], [1.0, 1.0, 0.0, 0.0])

    def test_deferred_batch_materializes_to_eager_rows(self):
        modes = self._setup()
        eager = generate_candidates(
            modes, 2, np.array([0]), np.array([1]), full_range(1),
            rank_bound=3, options=EAGER, stats=_stats(),
        )
        batch = generate_candidates(
            modes, 2, np.array([0]), np.array([1]), full_range(1),
            rank_bound=3, options=DEFERRED, stats=_stats(),
        )
        assert isinstance(batch, CandidateBatch)
        assert batch.n_modes == eager.n_modes == 1
        # Supports computed from transient values match the eager supports.
        assert np.array_equal(batch.supports.words, eager.supports.words)
        dense = batch.materialize(modes.values)
        assert np.array_equal(dense.values, eager.values)
        assert np.array_equal(dense.supports.words, eager.supports.words)

    def test_deferred_batch_is_smaller_than_eager(self):
        rng = np.random.default_rng(3)
        modes = ModeMatrix(rng.normal(size=(20, 64)))
        col = modes.column(0)
        pos = np.nonzero(col > 0)[0]
        neg = np.nonzero(col < 0)[0]
        n_pairs = pos.size * neg.size
        eager = generate_candidates(
            modes, 0, pos, neg, full_range(n_pairs), 64, EAGER, _stats(),
        )
        batch = generate_candidates(
            modes, 0, pos, neg, full_range(n_pairs), 64,
            DEFERRED, _stats(),
        )
        assert batch.n_modes == eager.n_modes > 0
        assert batch.nbytes() * 4 <= eager.nbytes()

    def test_prefilter_rejects_oversized_union(self):
        modes = ModeMatrix(
            np.array([[1.0, 1.0, 1.0, 1.0, 0.0], [0.0, 0.0, 1.0, -1.0, 1.0]])
        )
        stats = _stats()
        cand = generate_candidates(
            modes,
            3,
            np.array([0]),
            np.array([1]),
            full_range(1),
            rank_bound=2,  # union popcount 6 > rank+2=4 -> reject
            options=EAGER,
            stats=stats,
        )
        assert cand.n_modes == 0
        assert stats.n_prefilter_kept == 0

    def test_chunking_equivalence(self):
        rng = np.random.default_rng(0)
        vals = rng.normal(size=(12, 6))
        modes = ModeMatrix(vals)
        col = modes.column(0)
        pos = np.nonzero(col > 0)[0]
        neg = np.nonzero(col < 0)[0]
        outs = []
        for chunk in (1, 3, 10_000):
            stats = _stats()
            cand = generate_candidates(
                modes, 0, pos, neg, full_range(pos.size * neg.size),
                rank_bound=6,
                options=AlgorithmOptions(
                    pair_chunk=chunk, candidate_pipeline="eager"
                ),
                stats=stats,
            )
            outs.append(np.sort(cand.values, axis=0))
        assert np.allclose(outs[0], outs[1])
        assert np.allclose(outs[0], outs[2])

    def test_strided_shares_cover_all_pairs(self):
        rng = np.random.default_rng(1)
        modes = ModeMatrix(rng.normal(size=(10, 5)))
        col = modes.column(1)
        pos = np.nonzero(col > 0)[0]
        neg = np.nonzero(col < 0)[0]
        n_pairs = pos.size * neg.size
        full_stats = _stats()
        full = generate_candidates(
            modes, 1, pos, neg, full_range(n_pairs), 5,
            EAGER, full_stats,
        )
        pieces = []
        for r in range(3):
            s = _stats()
            part = generate_candidates(
                modes, 1, pos, neg, strided_range(n_pairs, r, 3), 5,
                EAGER, s,
            )
            if part.n_modes:
                pieces.append(part.values)
        union = np.concatenate(pieces, axis=0)
        assert union.shape[0] == full.n_modes
        # Same multiset of rows.
        a = union[np.lexsort(union.T)]
        b = full.values[np.lexsort(full.values.T)]
        assert np.allclose(a, b)
