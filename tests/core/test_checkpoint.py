"""Tests for checkpoint/resume of long runs."""

import numpy as np
import pytest

from repro.config import AlgorithmOptions
from repro.core.checkpoint import (
    Checkpoint,
    checkpointed_nullspace_algorithm,
    problem_fingerprint,
)
from repro.core.kernel import build_problem
from repro.core.serial import nullspace_algorithm
from repro.errors import AlgorithmError, OutOfMemoryError
from repro.models.variants import yeast_1_small
from repro.network.compression import compress_network
from tests.conftest import assert_same_modes


class TestFingerprint:
    def test_stable(self, toy_problem):
        a = problem_fingerprint(toy_problem, AlgorithmOptions())
        b = problem_fingerprint(toy_problem, AlgorithmOptions())
        assert a == b

    def test_sensitive_to_options(self, toy_problem):
        a = problem_fingerprint(toy_problem, AlgorithmOptions())
        b = problem_fingerprint(
            toy_problem, AlgorithmOptions(acceptance="bittree")
        )
        assert a != b

    def test_sensitive_to_problem(self, toy_problem, toy_record):
        other = build_problem(toy_record.reduced, force_last=("r6r",))
        a = problem_fingerprint(toy_problem, AlgorithmOptions())
        b = problem_fingerprint(other, AlgorithmOptions())
        assert a != b


class TestRunAndResume:
    def test_fresh_run_matches_plain(self, toy_problem, tmp_path):
        path = tmp_path / "run.ckpt"
        res = checkpointed_nullspace_algorithm(toy_problem, path)
        plain = nullspace_algorithm(toy_problem)
        assert_same_modes(res.efms_input_order(), plain.efms_input_order())
        assert path.exists()

    def test_interrupt_and_resume(self, toy_problem, tmp_path):
        path = tmp_path / "run.ckpt"

        # Simulate the paper's interruption: blow up mid-run.
        calls = {"n": 0}

        def bomb(k, modes):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OutOfMemoryError("simulated node death", iteration=k)

        with pytest.raises(OutOfMemoryError):
            checkpointed_nullspace_algorithm(
                toy_problem, path, checkpoint_every=1, memory_check=bomb
            )
        assert path.exists()
        partial = Checkpoint.load(path)
        assert partial.next_row < toy_problem.q

        # Resume to completion; the result must equal an uninterrupted run.
        res = checkpointed_nullspace_algorithm(toy_problem, path)
        plain = nullspace_algorithm(toy_problem)
        assert_same_modes(res.efms_input_order(), plain.efms_input_order())
        # Statistics cover all iterations exactly once.
        assert len(res.stats.iterations) == len(plain.stats.iterations)
        assert res.stats.total_candidates == plain.stats.total_candidates

    def test_resume_noop_when_complete(self, toy_problem, tmp_path):
        path = tmp_path / "run.ckpt"
        first = checkpointed_nullspace_algorithm(toy_problem, path)
        again = checkpointed_nullspace_algorithm(toy_problem, path)
        assert again.n_efms == first.n_efms
        assert len(again.stats.iterations) == len(first.stats.iterations)

    def test_wrong_problem_rejected(self, toy_problem, toy_record, tmp_path):
        path = tmp_path / "run.ckpt"
        checkpointed_nullspace_algorithm(toy_problem, path)
        other = build_problem(toy_record.reduced, force_last=("r6r",))
        with pytest.raises(AlgorithmError, match="different problem"):
            checkpointed_nullspace_algorithm(other, path)

    def test_checkpoint_every_n(self, toy_problem, tmp_path):
        path = tmp_path / "run.ckpt"
        res = checkpointed_nullspace_algorithm(
            toy_problem, path, checkpoint_every=3
        )
        assert res.n_efms == 8
        # Final snapshot always written.
        assert Checkpoint.load(path).next_row == toy_problem.q

    def test_exact_mode_rejected(self, toy_problem, tmp_path):
        with pytest.raises(AlgorithmError):
            checkpointed_nullspace_algorithm(
                toy_problem,
                tmp_path / "x.ckpt",
                options=AlgorithmOptions(arithmetic="exact"),
            )

    def test_stats_roundtrip_through_disk(self, toy_problem, tmp_path):
        path = tmp_path / "run.ckpt"
        res = checkpointed_nullspace_algorithm(toy_problem, path)
        ck = Checkpoint.load(path)
        assert ck.stats.total_candidates == res.stats.total_candidates
        assert [it.reaction for it in ck.stats.iterations] == [
            it.reaction for it in res.stats.iterations
        ]

    def test_medium_network_resume_equivalence(self, tmp_path):
        """Interrupt a real workload halfway; the resumed result equals
        the straight-through run bit-for-bit on supports."""
        rec = compress_network(yeast_1_small())
        from repro.efm.api import build_problem_with_split

        problem, _ = build_problem_with_split(rec.reduced)
        path = tmp_path / "yeast.ckpt"
        mid = (problem.first_row + problem.q) // 2

        res_partial = checkpointed_nullspace_algorithm(
            problem, path, stop_row=mid
        )
        assert not res_partial.complete
        res = checkpointed_nullspace_algorithm(problem, path)
        plain = nullspace_algorithm(problem)
        assert np.array_equal(
            np.sort(res.modes.supports.words, axis=0),
            np.sort(plain.modes.supports.words, axis=0),
        )


class TestRealizedRowOrder:
    def test_row_order_roundtrips(self, toy_problem, tmp_path):
        path = tmp_path / "run.ckpt"
        opts = AlgorithmOptions(ordering="dynamic")
        checkpointed_nullspace_algorithm(toy_problem, path, options=opts)
        ck = Checkpoint.load(path)
        assert ck.ordering == "dynamic"
        assert sorted(ck.row_order) == list(
            range(toy_problem.first_row, toy_problem.q)
        )
        assert ck.next_row == toy_problem.first_row + len(ck.row_order)

    def test_dynamic_interrupt_and_resume(self, toy_problem, tmp_path):
        path = tmp_path / "run.ckpt"
        opts = AlgorithmOptions(ordering="dynamic")
        calls = {"n": 0}

        def bomb(k, modes):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OutOfMemoryError("simulated node death", iteration=k)

        with pytest.raises(OutOfMemoryError):
            checkpointed_nullspace_algorithm(
                toy_problem, path, checkpoint_every=1, memory_check=bomb,
                options=opts,
            )
        partial = Checkpoint.load(path)
        assert len(partial.row_order) >= 1
        # Resume replays the realized prefix and completes identically to
        # an uninterrupted dynamic run.
        res = checkpointed_nullspace_algorithm(toy_problem, path, options=opts)
        plain = nullspace_algorithm(toy_problem, options=opts)
        assert_same_modes(res.efms_input_order(), plain.efms_input_order())
        assert len(res.stats.iterations) == len(plain.stats.iterations)

    def test_ordering_mismatch_rejected(self, toy_problem, tmp_path):
        path = tmp_path / "run.ckpt"
        checkpointed_nullspace_algorithm(
            toy_problem, path, checkpoint_every=1,
            stop_row=toy_problem.first_row + 2,
            options=AlgorithmOptions(ordering="dynamic"),
        )
        with pytest.raises(AlgorithmError, match="ordering"):
            checkpointed_nullspace_algorithm(
                toy_problem, path, options=AlgorithmOptions(ordering="natural")
            )
