"""Unit tests for the serial Nullspace Algorithm driver."""

import numpy as np
import pytest

from repro.config import AlgorithmOptions
from repro.core.kernel import build_problem
from repro.core.serial import nullspace_algorithm
from repro.errors import AlgorithmError, OutOfMemoryError
from repro.models.generators import random_network
from repro.network.compression import compress_network
from repro.network.stoichiometry import stoichiometric_matrix


class TestBasicRun:
    def test_result_flags(self, toy_problem):
        res = nullspace_algorithm(toy_problem)
        assert res.complete
        assert res.stopped_at == toy_problem.q
        assert res.n_efms == 8

    def test_efms_satisfy_steady_state(self, toy_record, toy_problem):
        res = nullspace_algorithm(toy_problem)
        efms = res.efms_input_order()
        n = stoichiometric_matrix(toy_record.reduced)
        assert np.allclose(n @ efms.T, 0.0, atol=1e-9)

    def test_irreversible_nonnegative(self, toy_record, toy_problem):
        res = nullspace_algorithm(toy_problem)
        efms = res.efms_input_order()
        irr = ~np.array(toy_record.reduced.reversibility)
        assert (efms[:, irr] >= -1e-12).all()

    def test_stats_totals(self, toy_problem):
        res = nullspace_algorithm(toy_problem)
        assert res.stats.total_candidates == 6  # 0 + 1 + 1 + 4
        assert res.stats.n_efms == 8
        assert res.stats.t_total > 0
        assert res.stats.peak_mode_bytes > 0

    def test_ordering_invariance(self, toy_record):
        base = None
        for ordering in ("paper", "natural", "most-nonzeros", "random"):
            p = build_problem(
                toy_record.reduced, options=AlgorithmOptions(ordering=ordering)
            )
            res = nullspace_algorithm(p)
            if base is None:
                base = res.n_efms
            assert res.n_efms == base


class TestStopRow:
    def test_stop_early_marks_incomplete(self, toy_problem):
        res = nullspace_algorithm(toy_problem, stop_row=toy_problem.q - 1)
        assert not res.complete
        with pytest.raises(AlgorithmError):
            _ = res.n_efms
        with pytest.raises(AlgorithmError):
            res.efms_input_order()

    def test_stop_early_error_names_position(self, toy_problem):
        """The early-stop guard must say where the run stopped and how to
        get at the intermediate matrix, not just refuse."""
        res = nullspace_algorithm(toy_problem, stop_row=toy_problem.q - 1)
        with pytest.raises(AlgorithmError, match=r"stopped early at row"):
            res.efms_input_order()
        with pytest.raises(AlgorithmError, match=r"\.modes"):
            _ = res.n_efms

    def test_stop_row_bounds_checked(self, toy_problem):
        with pytest.raises(AlgorithmError):
            nullspace_algorithm(toy_problem, stop_row=toy_problem.q + 1)
        with pytest.raises(AlgorithmError):
            nullspace_algorithm(toy_problem, stop_row=toy_problem.first_row - 1)

    def test_proposition_1(self, toy_problem):
        """Stop before the last row: columns with non-zero last entry ==
        EFMs with non-zero flux in that reaction (Proposition 1)."""
        last = toy_problem.q - 1
        partial = nullspace_algorithm(toy_problem, stop_row=last)
        full = nullspace_algorithm(toy_problem)
        # last row is r8r (reversible): non-zero entries of either sign.
        col = partial.modes.values[:, last]
        stopped_nonzero = partial.modes.values[col != 0.0]
        full_nonzero = full.modes.values[full.modes.values[:, last] != 0.0]
        a = np.sort(np.round(stopped_nonzero, 9), axis=0)
        b = np.sort(np.round(full_nonzero, 9), axis=0)
        assert a.shape == b.shape and np.allclose(a, b)


class TestMemoryCheck:
    def test_callback_invoked_each_iteration(self, toy_problem):
        seen = []
        nullspace_algorithm(
            toy_problem, memory_check=lambda k, modes: seen.append(k)
        )
        assert seen == list(range(toy_problem.first_row, toy_problem.q))

    def test_oom_propagates(self, toy_problem):
        def boom(k, modes):
            raise OutOfMemoryError("cap", iteration=k)

        with pytest.raises(OutOfMemoryError):
            nullspace_algorithm(toy_problem, memory_check=boom)


class TestTrace:
    def test_trace_disabled_by_default(self, toy_problem):
        assert nullspace_algorithm(toy_problem).trace == []

    def test_trace_snapshots(self, toy_problem):
        options = AlgorithmOptions(record_trace=True)
        res = nullspace_algorithm(toy_problem, options=options)
        assert len(res.trace) == 4
        assert res.trace[-1].matrix.shape == (8, 8)
        assert "r8r" in res.trace[-1].render()


class TestAcceptanceGuard:
    def test_bittree_rejected_on_reversible_rows(self, toy_problem):
        with pytest.raises(AlgorithmError, match="irreversible"):
            nullspace_algorithm(
                toy_problem, options=AlgorithmOptions(acceptance="bittree")
            )

    def test_bittree_ok_on_irreversible_network(self):
        net = random_network(4, 8, seed=0, reversible_fraction=0.0)
        rec = compress_network(net)
        p = build_problem(rec.reduced)
        by_rank = nullspace_algorithm(p)
        by_tree = nullspace_algorithm(
            p, options=AlgorithmOptions(acceptance="bittree")
        )
        assert by_rank.n_efms == by_tree.n_efms
