"""Unit tests for run statistics containers."""

import time

import pytest

from repro.core.stats import IterationStats, PhaseTimer, RunStats, iter_phase_names


def _iteration(pairs=10, tested=5, accepted=2, t_gen=0.5):
    return IterationStats(
        position=0,
        reaction="r",
        reversible=False,
        n_pairs=pairs,
        n_tested=tested,
        n_accepted=accepted,
        n_modes_end=7,
        t_gen_cand=t_gen,
        t_rank_test=0.1,
        t_merge=0.01,
        t_communicate=0.02,
    )


class TestRunStats:
    def test_totals(self):
        stats = RunStats()
        stats.add(_iteration(pairs=10))
        stats.add(_iteration(pairs=32))
        assert stats.total_candidates == 42
        assert stats.total_rank_tests == 10
        assert stats.n_efms == 7

    def test_phase_times(self):
        stats = RunStats(t_total=1.5)
        stats.add(_iteration())
        pt = stats.phase_times()
        assert set(pt) == set(iter_phase_names())
        assert pt["gen_cand"] == pytest.approx(0.5)
        assert pt["total"] == 1.5

    def test_empty_run(self):
        assert RunStats().n_efms == 0
        assert RunStats().total_candidates == 0

    def test_merged_with_bulk_synchronous_semantics(self):
        a = RunStats(t_total=2.0, bytes_sent=10, messages_sent=1, peak_mode_bytes=100)
        b = RunStats(t_total=3.0, bytes_sent=20, messages_sent=2, peak_mode_bytes=50)
        a.add(_iteration(pairs=10, t_gen=0.5))
        b.add(_iteration(pairs=20, t_gen=0.7))
        merged = a.merged_with(b)
        it = merged.iterations[0]
        assert it.n_pairs == 30  # counters sum
        assert it.t_gen_cand == pytest.approx(0.7)  # times take the max
        assert merged.t_total == 3.0
        assert merged.bytes_sent == 30
        assert merged.peak_mode_bytes == 100

    def test_merged_with_length_mismatch(self):
        a, b = RunStats(), RunStats()
        a.add(_iteration())
        with pytest.raises(ValueError):
            a.merged_with(b)


class TestPhaseTimer:
    def test_accumulates(self):
        it = IterationStats(position=0, reaction="r", reversible=False)
        with PhaseTimer(it, "t_gen_cand"):
            time.sleep(0.01)
        with PhaseTimer(it, "t_gen_cand"):
            time.sleep(0.01)
        assert it.t_gen_cand >= 0.02


class TestStreamingCounters:
    def _iter(self, chunks, peak, probes):
        return IterationStats(
            position=0, reaction="r", reversible=False,
            n_chunks=chunks, peak_chunk_bytes=peak, n_dedup_probes=probes,
        )

    def test_merged_with_semantics(self):
        a, b = RunStats(), RunStats()
        a.add(self._iter(3, 1000, 50))
        b.add(self._iter(2, 4000, 30))
        it = a.merged_with(b).iterations[0]
        assert it.n_chunks == 5  # counters sum across ranks
        assert it.peak_chunk_bytes == 4000  # peaks take the max
        assert it.n_dedup_probes == 80

    def test_run_totals(self):
        stats = RunStats()
        stats.add(self._iter(3, 1000, 50))
        stats.add(self._iter(4, 2000, 60))
        assert stats.total_stream_chunks == 7
        assert stats.total_dedup_probes == 110
        assert stats.peak_stream_chunk_bytes == 2000

    def test_csv_round_trip(self):
        from repro.bench.export import dumps_stats, load_stats_rows
        import io

        stats = RunStats()
        stats.add(self._iter(3, 1000, 50))
        rows = load_stats_rows(io.StringIO(dumps_stats(stats)))
        assert rows[0]["n_chunks"] == 3
        assert rows[0]["peak_chunk_bytes"] == 1000
        assert rows[0]["n_dedup_probes"] == 50
