"""Unit tests for the ModeMatrix container."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.state import ModeMatrix
from repro.errors import AlgorithmError


class TestConstruction:
    def test_normalizes_rows_to_unit_max(self):
        m = ModeMatrix(np.array([[2.0, -4.0], [0.5, 0.0]]))
        assert np.allclose(np.abs(m.values).max(axis=1), 1.0)

    def test_snaps_small_values(self):
        m = ModeMatrix(np.array([[1.0, 1e-13]]))
        assert m.values[0, 1] == 0.0
        assert not m.supports.to_bool()[1, 0]

    def test_supports_sync_with_values(self):
        m = ModeMatrix(np.array([[1.0, 0.0, -3.0], [0.0, 2.0, 0.0]]))
        assert np.array_equal(
            m.supports.to_bool().T, m.values != 0.0
        )

    def test_exact_mode_integerizes(self):
        vals = np.empty((1, 2), dtype=object)
        vals[0, 0] = Fraction(1, 2)
        vals[0, 1] = Fraction(3, 2)
        m = ModeMatrix(vals)
        assert [int(x) for x in m.values[0]] == [1, 3]
        assert m.exact

    def test_from_kernel_transposes(self):
        kernel = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, -1.0]])
        m = ModeMatrix.from_kernel(kernel)
        assert m.n_modes == 2 and m.q == 3

    def test_empty(self):
        m = ModeMatrix.empty(5)
        assert m.n_modes == 0 and m.q == 5


class TestOperations:
    def test_select_keeps_supports(self):
        m = ModeMatrix(np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]))
        sel = m.select(np.array([2, 0]))
        assert sel.n_modes == 2
        assert np.array_equal(sel.supports.to_bool().T, sel.values != 0.0)

    def test_select_bool_mask(self):
        m = ModeMatrix(np.array([[1.0, 0.0], [0.0, 1.0]]))
        sel = m.select(np.array([True, False]))
        assert sel.n_modes == 1

    def test_concat(self):
        a = ModeMatrix(np.array([[1.0, 0.0]]))
        b = ModeMatrix(np.array([[0.0, 1.0]]))
        c = a.concat(b)
        assert c.n_modes == 2

    def test_concat_width_mismatch(self):
        with pytest.raises(AlgorithmError):
            ModeMatrix(np.ones((1, 2))).concat(ModeMatrix(np.ones((1, 3))))

    def test_concat_exact_float_mismatch(self):
        vals = np.empty((1, 2), dtype=object)
        vals[0, :] = [Fraction(1), Fraction(2)]
        with pytest.raises(AlgorithmError):
            ModeMatrix(np.ones((1, 2))).concat(ModeMatrix(vals))

    def test_dedup_by_support_keeps_first(self):
        m = ModeMatrix(np.array([[1.0, 0.0], [2.0, 0.0], [0.0, 1.0]]))
        d = m.dedup()
        assert d.n_modes == 2
        # first occurrence of support {0} kept (normalized value 1.0)
        assert d.values[0, 0] == 1.0

    def test_dedup_noop_returns_self(self):
        m = ModeMatrix(np.array([[1.0, 0.0], [0.0, 1.0]]))
        assert m.dedup() is m

    def test_column_accessor(self):
        m = ModeMatrix(np.array([[1.0, -0.5], [0.0, 1.0]]))
        assert np.allclose(m.column(1), m.values[:, 1])

    def test_modes_as_columns_matches_paper_orientation(self):
        m = ModeMatrix(np.array([[1.0, 0.0], [0.0, 1.0]]))
        cols = m.modes_as_columns()
        assert cols.shape == (2, 2)
        assert np.array_equal(cols, m.values.T)

    def test_nbytes_positive_and_grows(self):
        small = ModeMatrix(np.ones((2, 4)))
        big = ModeMatrix(np.ones((200, 4)))
        assert 0 < small.nbytes() < big.nbytes()

    def test_from_parts_skips_normalization(self):
        m = ModeMatrix(np.array([[1.0, 0.5]]))
        rebuilt = ModeMatrix.from_parts(m.values, m.supports, m.policy)
        assert np.array_equal(rebuilt.values, m.values)

    def test_from_parts_count_mismatch(self):
        m = ModeMatrix(np.array([[1.0, 0.5], [0.0, 1.0]]))
        with pytest.raises(AlgorithmError):
            ModeMatrix.from_parts(m.values[:1], m.supports, m.policy)
