"""Unit tests for the ModeMatrix container."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.state import CandidateBatch, ModeMatrix, canonical_support_mask
from repro.errors import AlgorithmError
from repro.linalg.bitset import PackedSupports


class TestConstruction:
    def test_normalizes_rows_to_unit_max(self):
        m = ModeMatrix(np.array([[2.0, -4.0], [0.5, 0.0]]))
        assert np.allclose(np.abs(m.values).max(axis=1), 1.0)

    def test_snaps_small_values(self):
        m = ModeMatrix(np.array([[1.0, 1e-13]]))
        assert m.values[0, 1] == 0.0
        assert not m.supports.to_bool()[1, 0]

    def test_supports_sync_with_values(self):
        m = ModeMatrix(np.array([[1.0, 0.0, -3.0], [0.0, 2.0, 0.0]]))
        assert np.array_equal(
            m.supports.to_bool().T, m.values != 0.0
        )

    def test_exact_mode_integerizes(self):
        vals = np.empty((1, 2), dtype=object)
        vals[0, 0] = Fraction(1, 2)
        vals[0, 1] = Fraction(3, 2)
        m = ModeMatrix(vals)
        assert [int(x) for x in m.values[0]] == [1, 3]
        assert m.exact

    def test_from_kernel_transposes(self):
        kernel = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, -1.0]])
        m = ModeMatrix.from_kernel(kernel)
        assert m.n_modes == 2 and m.q == 3

    def test_empty(self):
        m = ModeMatrix.empty(5)
        assert m.n_modes == 0 and m.q == 5


class TestOperations:
    def test_select_keeps_supports(self):
        m = ModeMatrix(np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]))
        sel = m.select(np.array([2, 0]))
        assert sel.n_modes == 2
        assert np.array_equal(sel.supports.to_bool().T, sel.values != 0.0)

    def test_select_bool_mask(self):
        m = ModeMatrix(np.array([[1.0, 0.0], [0.0, 1.0]]))
        sel = m.select(np.array([True, False]))
        assert sel.n_modes == 1

    def test_concat(self):
        a = ModeMatrix(np.array([[1.0, 0.0]]))
        b = ModeMatrix(np.array([[0.0, 1.0]]))
        c = a.concat(b)
        assert c.n_modes == 2

    def test_concat_width_mismatch(self):
        with pytest.raises(AlgorithmError):
            ModeMatrix(np.ones((1, 2))).concat(ModeMatrix(np.ones((1, 3))))

    def test_concat_exact_float_mismatch(self):
        vals = np.empty((1, 2), dtype=object)
        vals[0, :] = [Fraction(1), Fraction(2)]
        with pytest.raises(AlgorithmError):
            ModeMatrix(np.ones((1, 2))).concat(ModeMatrix(vals))

    def test_dedup_by_support_keeps_first(self):
        m = ModeMatrix(np.array([[1.0, 0.0], [2.0, 0.0], [0.0, 1.0]]))
        d = m.dedup()
        assert d.n_modes == 2
        # first occurrence of support {0} kept (normalized value 1.0)
        assert d.values[0, 0] == 1.0

    def test_dedup_noop_returns_self(self):
        m = ModeMatrix(np.array([[1.0, 0.0], [0.0, 1.0]]))
        assert m.dedup() is m

    def test_column_accessor(self):
        m = ModeMatrix(np.array([[1.0, -0.5], [0.0, 1.0]]))
        assert np.allclose(m.column(1), m.values[:, 1])

    def test_modes_as_columns_matches_paper_orientation(self):
        m = ModeMatrix(np.array([[1.0, 0.0], [0.0, 1.0]]))
        cols = m.modes_as_columns()
        assert cols.shape == (2, 2)
        assert np.array_equal(cols, m.values.T)

    def test_nbytes_positive_and_grows(self):
        small = ModeMatrix(np.ones((2, 4)))
        big = ModeMatrix(np.ones((200, 4)))
        assert 0 < small.nbytes() < big.nbytes()

    def test_from_parts_skips_normalization(self):
        m = ModeMatrix(np.array([[1.0, 0.5]]))
        rebuilt = ModeMatrix.from_parts(m.values, m.supports, m.policy)
        assert np.array_equal(rebuilt.values, m.values)

    def test_from_parts_count_mismatch(self):
        m = ModeMatrix(np.array([[1.0, 0.5], [0.0, 1.0]]))
        with pytest.raises(AlgorithmError):
            ModeMatrix.from_parts(m.values[:1], m.supports, m.policy)


class TestNbytesCountsSigns:
    def test_sign_cache_included_once_primed(self):
        m = ModeMatrix(np.array([[1.0, -0.5, 0.0], [0.0, 1.0, 2.0]]))
        base = m.nbytes()
        m.sign_matrix()  # prime the cache
        assert m.nbytes() == base + m.sign_matrix().nbytes

    def test_exact_mode_counts_signs_too(self):
        vals = np.empty((1, 2), dtype=object)
        vals[0, :] = [Fraction(1), Fraction(-2)]
        m = ModeMatrix(vals)
        base = m.nbytes()
        m.sign_matrix()
        assert m.nbytes() == base + m.sign_matrix().nbytes


class TestCanonicalSupportMask:
    def test_matches_constructor_supports(self):
        rng = np.random.default_rng(7)
        vals = rng.normal(size=(40, 10))
        # Sprinkle exact zeros and sub-threshold noise.
        vals[rng.random(vals.shape) < 0.3] = 0.0
        vals[0, 1] = 1e-13
        m = ModeMatrix(vals)
        mask = canonical_support_mask(vals, m.policy)
        assert np.array_equal(mask, m.supports.to_bool().T)

    def test_all_zero_row_stays_empty(self):
        mask = canonical_support_mask(np.zeros((2, 5)), ModeMatrix(np.ones((1, 1))).policy)
        assert not mask.any()

    def test_empty_input(self):
        mask = canonical_support_mask(np.zeros((0, 5)), ModeMatrix(np.ones((1, 1))).policy)
        assert mask.shape == (0, 5)


class TestFromPairs:
    def test_matches_eager_construction(self):
        rng = np.random.default_rng(11)
        source = ModeMatrix(rng.normal(size=(6, 8))).values
        pair_i = np.array([0, 2, 4])
        pair_j = np.array([1, 3, 5])
        a = np.abs(rng.normal(size=3)) + 0.1
        b = np.abs(rng.normal(size=3)) + 0.1
        eager = ModeMatrix(source[pair_i] * a[:, None] + source[pair_j] * b[:, None])
        deferred = ModeMatrix.from_pairs(source, pair_i, pair_j, a, b)
        assert np.array_equal(eager.values, deferred.values)
        assert np.array_equal(eager.supports.words, deferred.supports.words)

    def test_empty_pairs(self):
        m = ModeMatrix.from_pairs(
            np.ones((3, 5)), np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64), np.zeros(0), np.zeros(0),
        )
        assert m.n_modes == 0 and m.q == 5


class TestCandidateBatch:
    def _batch(self):
        # Row k = 1 has one positive mode (0) and two negative (1, 2):
        # the natural pairs are (0, 1) and (0, 2), with coefficients
        # a = -col[j] > 0, b = col[i] > 0 derived from the column.
        source = ModeMatrix(np.array([
            [1.0, 1.0, 0.0, 0.0],
            [0.0, -1.0, 1.0, 0.0],
            [0.0, -2.0, 0.0, 1.0],
        ]))
        k = 1
        col = source.values[:, k]
        pair_i = np.array([0, 0])
        pair_j = np.array([1, 2])
        vals = (
            source.values[pair_i] * (-col[pair_j])[:, None]
            + source.values[pair_j] * col[pair_i][:, None]
        )
        mask = canonical_support_mask(vals, source.policy)
        batch = CandidateBatch(
            PackedSupports.from_bool(mask.T), pair_i, pair_j, k,
            policy=source.policy,
        )
        return source, batch

    def test_protocol_surface(self):
        _, batch = self._batch()
        assert batch.n_modes == len(batch) == 2
        assert batch.q == 4
        assert batch.exact is False
        assert batch.row == 1
        assert batch.nbytes() == batch.supports.nbytes() + 2 * 2 * 8
        assert "2 candidates" in repr(batch)

    def test_materialize_matches_eager(self):
        source, batch = self._batch()
        dense = batch.materialize(source.values)
        col = source.values[:, batch.row]
        eager = ModeMatrix(
            source.values[batch.pair_i] * (-col[batch.pair_j])[:, None]
            + source.values[batch.pair_j] * col[batch.pair_i][:, None]
        )
        assert np.array_equal(dense.values, eager.values)
        assert np.array_equal(dense.supports.words, batch.supports.words)

    def test_select_and_concat(self):
        _, batch = self._batch()
        one = batch.select(np.array([1]))
        assert one.n_modes == 1 and one.pair_j[0] == 2
        assert one.row == batch.row
        both = one.concat(batch.select(np.array([0])))
        assert both.n_modes == 2
        assert list(both.pair_j) == [2, 1]

    def test_concat_q_mismatch(self):
        _, batch = self._batch()
        with pytest.raises(AlgorithmError):
            batch.concat(CandidateBatch.empty(7))

    def test_concat_row_mismatch(self):
        _, batch = self._batch()
        other = CandidateBatch(
            batch.supports, batch.pair_i, batch.pair_j, batch.row + 1,
            policy=batch.policy,
        )
        with pytest.raises(AlgorithmError):
            batch.concat(other)

    def test_concat_empty_adopts_row(self):
        _, batch = self._batch()
        # An empty batch has no row of its own; concat takes the other's.
        out = CandidateBatch.empty(batch.q).concat(batch)
        assert out.row == batch.row and out.n_modes == batch.n_modes

    def test_dedup_keeps_first_occurrence(self):
        _, batch = self._batch()
        doubled = batch.concat(batch)
        deduped = doubled.dedup()
        assert deduped.n_modes == 2
        assert list(deduped.pair_j) == list(batch.pair_j)

    def test_dedup_noop_returns_self(self):
        _, batch = self._batch()
        assert batch.dedup() is batch

    def test_wire_roundtrip(self):
        # The wire is supports + int32 pair indices only; the receiver
        # supplies the iteration row from its own (lockstep) loop counter
        # and derives the coefficients at materialization.
        source, batch = self._batch()
        back = CandidateBatch.from_wire(
            batch.to_wire(), batch.q, batch.row, batch.policy
        )
        assert np.array_equal(back.supports.words, batch.supports.words)
        assert np.array_equal(back.pair_i, batch.pair_i)
        assert np.array_equal(back.pair_j, batch.pair_j)
        assert back.row == batch.row
        assert np.array_equal(
            back.materialize(source.values).values,
            batch.materialize(source.values).values,
        )

    def test_length_mismatch_rejected(self):
        _, batch = self._batch()
        with pytest.raises(AlgorithmError):
            CandidateBatch(
                batch.supports, batch.pair_i[:1], batch.pair_j, batch.row
            )

    def test_empty(self):
        e = CandidateBatch.empty(9)
        assert e.n_modes == 0 and e.q == 9 and e.nbytes() >= 0


class TestDedupIndexAccounting:
    """The streaming dedup index travels with its result object; memory
    accounting must see it for as long as the candidates are alive."""

    def _index(self, n_words, rows=4):
        from repro.core.bittree import SupportIndex

        idx = SupportIndex(n_words)
        idx.add(np.arange(1, rows + 1, dtype=np.uint64).reshape(rows, 1)
                if n_words == 1 else
                np.arange(1, rows * n_words + 1, dtype=np.uint64)
                .reshape(rows, n_words))
        return idx

    def test_mode_matrix_nbytes_includes_index(self):
        m = ModeMatrix(np.eye(5))
        base = m.nbytes()
        m.dedup_index = self._index(m.supports.words.shape[1])
        assert m.nbytes() == base + m.dedup_index.nbytes()
        assert m.dedup_index.nbytes() > 0

    def test_candidate_batch_nbytes_includes_index(self):
        mask = np.zeros((3, 6), dtype=bool)
        mask[:, 0] = True
        batch = CandidateBatch(
            PackedSupports.from_bool(mask.T),
            np.array([0, 1, 2]), np.array([3, 4, 5]), 0,
        )
        base = batch.nbytes()
        batch.dedup_index = self._index(batch.supports.words.shape[1])
        assert batch.nbytes() == base + batch.dedup_index.nbytes()

    def test_derived_matrices_drop_the_index(self):
        # select/concat build new matrices for the *next* iteration — the
        # finished iteration's streaming state must not be charged to them.
        m = ModeMatrix(np.eye(4))
        m.dedup_index = self._index(m.supports.words.shape[1])
        assert m.select(np.array([0, 1])).dedup_index is None
        assert m.concat(ModeMatrix(np.eye(4))).dedup_index is None
