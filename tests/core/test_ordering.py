"""Unit tests for row-ordering heuristics."""

import numpy as np
import pytest

from repro.config import AlgorithmOptions
from repro.core.ordering import order_rows
from repro.errors import AlgorithmError


def _kernel():
    # 6 rows, 2 free; tail rows with nnz 3, 1, 2, 2.
    return np.array(
        [
            [1.0, 0.0],
            [0.0, 1.0],
            [1.0, 1.0],  # pos 2: nnz 2... recount below
            [0.0, 2.0],  # pos 3: nnz 1
            [1.0, -1.0],  # pos 4: nnz 2
            [3.0, 4.0],  # pos 5: nnz 2
        ]
    )


class TestOrderings:
    def test_paper_sorts_by_nnz_reversibles_last(self):
        kernel = _kernel()
        rev = np.array([False, False, False, False, True, False])
        order = order_rows(kernel, rev, 2, AlgorithmOptions(ordering="paper"))
        # irreversible tail rows by nnz: pos3 (1), then pos2/pos5 (2 each,
        # tie by position), then reversible pos4 last.
        assert order.tolist() == [3, 2, 5, 4]

    def test_natural_keeps_order(self):
        kernel = _kernel()
        rev = np.zeros(6, dtype=bool)
        order = order_rows(kernel, rev, 2, AlgorithmOptions(ordering="natural"))
        assert order.tolist() == [2, 3, 4, 5]

    def test_most_nonzeros_is_adversarial(self):
        kernel = _kernel()
        rev = np.zeros(6, dtype=bool)
        order = order_rows(
            kernel, rev, 2, AlgorithmOptions(ordering="most-nonzeros")
        )
        nnz = [(kernel[p] != 0).sum() for p in order]
        assert nnz == sorted(nnz, reverse=True)

    def test_random_is_seeded_permutation(self):
        kernel = _kernel()
        rev = np.zeros(6, dtype=bool)
        o1 = order_rows(kernel, rev, 2, AlgorithmOptions(ordering="random", ordering_seed=1))
        o2 = order_rows(kernel, rev, 2, AlgorithmOptions(ordering="random", ordering_seed=1))
        o3 = order_rows(kernel, rev, 2, AlgorithmOptions(ordering="random", ordering_seed=2))
        assert o1.tolist() == o2.tolist()
        assert sorted(o1.tolist()) == [2, 3, 4, 5]
        assert sorted(o3.tolist()) == [2, 3, 4, 5]

    def test_all_rows_free(self):
        kernel = np.eye(3)
        order = order_rows(kernel, np.zeros(3, dtype=bool), 3, AlgorithmOptions())
        assert order.size == 0

    def test_bad_n_free(self):
        with pytest.raises(AlgorithmError):
            order_rows(np.eye(3), np.zeros(3, dtype=bool), 5, AlgorithmOptions())


# ---------------------------------------------------------------------------
# RowSelector
# ---------------------------------------------------------------------------

from repro.core.kernel import NullspaceProblem
from repro.core.ordering import RowSelector
from repro.core.state import ModeMatrix


def _problem(q, n_free, reversible=None):
    """Minimal NullspaceProblem stub: identity block on top, zero tail."""
    if reversible is None:
        reversible = np.zeros(q, dtype=bool)
    kernel = np.zeros((q, n_free))
    kernel[:n_free] = np.eye(n_free)
    return NullspaceProblem(
        n_perm=np.zeros((1, q)),
        kernel=kernel,
        reversible=np.asarray(reversible, dtype=bool),
        names=tuple(f"r{i}" for i in range(q)),
        perm=np.arange(q, dtype=np.intp),
        n_free=n_free,
        rank=q - n_free,
        first_row=n_free,
    )


def _modes(rows):
    """ModeMatrix from an explicit (n_modes, q) value matrix."""
    return ModeMatrix(np.asarray(rows, dtype=np.float64))


class TestRowSelectorStatic:
    def test_replays_window_in_order(self):
        p = _problem(5, 2)
        sel = RowSelector(p, 5, AlgorithmOptions(ordering="paper"))
        assert sel.n_remaining == 3
        picks = [sel.next_row() for _ in range(3)]
        assert picks == [2, 3, 4]
        assert sel.realized == [2, 3, 4]
        assert not sel.has_next()
        with pytest.raises(AlgorithmError):
            sel.next_row()

    def test_stop_limits_window(self):
        p = _problem(6, 2)
        sel = RowSelector(p, 4, AlgorithmOptions(ordering="paper"))
        assert sel.remaining_rows().tolist() == [2, 3]

    def test_stop_out_of_range(self):
        p = _problem(5, 2)
        with pytest.raises(AlgorithmError):
            RowSelector(p, 6, AlgorithmOptions())
        with pytest.raises(AlgorithmError):
            RowSelector(p, 1, AlgorithmOptions())

    def test_no_score_telemetry(self):
        p = _problem(4, 2)
        sel = RowSelector(p, 4, AlgorithmOptions(ordering="natural"))
        sel.next_row()
        assert sel.last_score == 0
        assert sel.last_evaluated == 0


class TestRowSelectorDynamic:
    def test_requires_live_modes(self):
        p = _problem(4, 2)
        sel = RowSelector(p, 4, AlgorithmOptions(ordering="dynamic"))
        with pytest.raises(AlgorithmError, match="live mode matrix"):
            sel.next_row()

    def test_picks_min_active_count(self):
        # row2: 2 pos + 2 neg = 4 active; row3: 1+1 = 2 active.
        p = _problem(4, 2)
        modes = _modes(
            [
                [0, 0, 1, 0],
                [0, 0, 1, 0],
                [0, 0, -1, 1],
                [0, 0, -1, -1],
            ]
        )
        sel = RowSelector(
            p, 4, AlgorithmOptions(ordering="dynamic", selection_lookahead=0)
        )
        assert sel.next_row(modes) == 3
        assert sel.last_score == 1  # 1 pos * 1 neg
        assert sel.last_evaluated == 2

    def test_pair_count_breaks_active_ties(self):
        # Both rows have 4 active modes; row2 splits 2x2 (4 pairs),
        # row3 splits 3x1 (3 pairs) -> row3 wins.
        p = _problem(4, 2)
        modes = _modes(
            [
                [0, 0, 1, 1],
                [0, 0, 1, 1],
                [0, 0, -1, 1],
                [0, 0, -1, -1],
            ]
        )
        sel = RowSelector(
            p, 4, AlgorithmOptions(ordering="dynamic", selection_lookahead=0)
        )
        assert sel.next_row(modes) == 3

    def test_position_breaks_full_ties(self):
        p = _problem(4, 2)
        modes = _modes([[0, 0, 1, 1], [0, 0, -1, -1]])
        sel = RowSelector(
            p, 4, AlgorithmOptions(ordering="dynamic", selection_lookahead=0)
        )
        assert sel.next_row(modes) == 2

    def test_reversible_rows_deferred(self):
        # Reversible row2 is far cheaper but must wait until no
        # irreversible row remains in the window.
        rev = np.array([False, False, True, False])
        p = _problem(4, 2, rev)
        modes = _modes(
            [
                [0, 0, 1, 1],
                [0, 0, 0, 1],
                [0, 0, 0, -1],
                [0, 0, 0, -1],
            ]
        )
        sel = RowSelector(
            p, 4, AlgorithmOptions(ordering="dynamic", selection_lookahead=0)
        )
        assert sel.next_row(modes) == 3
        assert sel.next_row(modes) == 2
        assert sel.realized == [3, 2]

    def test_lookahead_credit_flips_pick(self):
        # Base key prefers row2 (2 active, 1 pair).  Row3 has 3 active but
        # eliminating it (irreversible RemoveNegColumns) drops the two
        # modes carrying ALL the support of rows 4 and 5, making both
        # free follow-up eliminations: credit 2 -> key (1, 2, 3) wins.
        p = _problem(6, 2)
        modes = _modes(
            [
                [0, 0, 1, 0, 0, 0],
                [0, 0, -1, 0, 0, 0],
                [0, 0, 0, 1, 0, 0],
                [0, 0, 0, -1, 1, -1],
                [0, 0, 0, -1, -1, 1],
            ]
        )
        greedy = RowSelector(
            p, 6, AlgorithmOptions(ordering="dynamic", selection_lookahead=1)
        )
        assert greedy.next_row(modes) == 2
        deep = RowSelector(
            p, 6, AlgorithmOptions(ordering="dynamic", selection_lookahead=4)
        )
        assert deep.next_row(modes) == 3

    def test_selection_invariant_to_mode_row_order(self):
        p = _problem(5, 2)
        vals = np.array(
            [
                [0, 0, 1, 2, 0],
                [0, 0, -1, 0, 3],
                [0, 0, 1, -2, 0],
                [0, 0, 0, -1, -3],
            ],
            dtype=np.float64,
        )
        opts = AlgorithmOptions(ordering="dynamic")
        a = RowSelector(p, 5, opts)
        b = RowSelector(p, 5, opts)
        assert a.next_row(_modes(vals)) == b.next_row(_modes(vals[::-1]))


class TestRowSelectorCounts:
    def test_count_matrix_alignment_and_sharded_sum(self):
        # Two "ranks" each holding half the modes: the element-wise sum of
        # their count matrices equals the full-matrix counts, and feeding
        # it to next_row_from_counts reproduces the local pick.
        p = _problem(5, 2)
        vals = np.array(
            [
                [0, 0, 1, 1, 0],
                [0, 0, 1, -1, 2],
                [0, 0, -1, 1, 0],
                [0, 0, -1, -1, -2],
            ],
            dtype=np.float64,
        )
        opts = AlgorithmOptions(ordering="dynamic", selection_lookahead=0)
        full = RowSelector(p, 5, opts)
        sharded = RowSelector(p, 5, opts)
        parts = [
            sharded.count_matrix(_modes(vals[:2])),
            sharded.count_matrix(_modes(vals[2:])),
        ]
        totals = parts[0] + parts[1]
        np.testing.assert_array_equal(
            totals, full.count_matrix(_modes(vals))
        )
        k_full = full.next_row(_modes(vals))
        k_sharded = sharded.next_row_from_counts(totals[0], totals[1])
        assert k_full == k_sharded

    def test_misaligned_counts_rejected(self):
        p = _problem(5, 2)
        sel = RowSelector(p, 5, AlgorithmOptions(ordering="dynamic"))
        with pytest.raises(AlgorithmError, match="misaligned"):
            sel.next_row_from_counts(np.zeros(2), np.zeros(2))

    def test_empty_modes_count_matrix(self):
        p = _problem(4, 2)
        sel = RowSelector(p, 4, AlgorithmOptions(ordering="dynamic"))
        counts = sel.count_matrix(_modes(np.zeros((0, 4))))
        assert counts.shape == (2, 2)
        assert not counts.any()


class TestRowSelectorProcessed:
    def test_duplicates_rejected(self):
        p = _problem(5, 2)
        with pytest.raises(AlgorithmError, match="duplicates"):
            RowSelector(p, 5, AlgorithmOptions(), processed=(2, 2))

    def test_out_of_window_rejected(self):
        p = _problem(5, 2)
        with pytest.raises(AlgorithmError, match="outside the selection"):
            RowSelector(p, 4, AlgorithmOptions(), processed=(4,))

    def test_static_requires_prefix(self):
        p = _problem(5, 2)
        with pytest.raises(AlgorithmError, match="different ordering"):
            RowSelector(
                p, 5, AlgorithmOptions(ordering="paper"), processed=(3,)
            )

    def test_static_prefix_resumes(self):
        p = _problem(5, 2)
        sel = RowSelector(
            p, 5, AlgorithmOptions(ordering="paper"), processed=(2, 3)
        )
        assert sel.realized == [2, 3]
        assert sel.next_row() == 4

    def test_dynamic_accepts_any_subset(self):
        p = _problem(5, 2)
        sel = RowSelector(
            p, 5, AlgorithmOptions(ordering="dynamic"), processed=(4,)
        )
        assert sel.realized == [4]
        assert sel.remaining_rows().tolist() == [2, 3]


class TestRowSelectorIntrospection:
    def test_adjacency_rows_exclude_in_flight(self):
        p = _problem(5, 2)
        sel = RowSelector(p, 5, AlgorithmOptions(ordering="paper"))
        # Before any pick: identity block only.
        assert sel.adjacency_rows().tolist() == [0, 1]
        sel.next_row()
        # One pick in flight: still identity block only.
        assert sel.adjacency_rows().tolist() == [0, 1]
        sel.next_row()
        assert sel.adjacency_rows().tolist() == [0, 1, 2]

    def test_fingerprint_row_order_invariant(self):
        p = _problem(4, 2)
        vals = np.array(
            [[0, 0, 1, 2], [0, 0, -1, 3], [0, 0, 2, -1]], dtype=np.float64
        )
        sel = RowSelector(p, 4, AlgorithmOptions(ordering="dynamic"))
        assert sel.fingerprint(2, _modes(vals)) == sel.fingerprint(
            2, _modes(vals[::-1])
        )

    def test_annotate_stamps_iteration(self):
        p = _problem(4, 2)
        modes = _modes([[0, 0, 1, 1], [0, 0, -1, -1]])
        sel = RowSelector(p, 4, AlgorithmOptions(ordering="dynamic"))
        sel.next_row(modes)

        class It:
            sel_score = -1
            sel_evaluated = -1

        it = It()
        sel.annotate(it)
        assert it.sel_score == sel.last_score
        assert it.sel_evaluated == sel.last_evaluated
