"""Unit tests for row-ordering heuristics."""

import numpy as np
import pytest

from repro.config import AlgorithmOptions
from repro.core.ordering import order_rows
from repro.errors import AlgorithmError


def _kernel():
    # 6 rows, 2 free; tail rows with nnz 3, 1, 2, 2.
    return np.array(
        [
            [1.0, 0.0],
            [0.0, 1.0],
            [1.0, 1.0],  # pos 2: nnz 2... recount below
            [0.0, 2.0],  # pos 3: nnz 1
            [1.0, -1.0],  # pos 4: nnz 2
            [3.0, 4.0],  # pos 5: nnz 2
        ]
    )


class TestOrderings:
    def test_paper_sorts_by_nnz_reversibles_last(self):
        kernel = _kernel()
        rev = np.array([False, False, False, False, True, False])
        order = order_rows(kernel, rev, 2, AlgorithmOptions(ordering="paper"))
        # irreversible tail rows by nnz: pos3 (1), then pos2/pos5 (2 each,
        # tie by position), then reversible pos4 last.
        assert order.tolist() == [3, 2, 5, 4]

    def test_natural_keeps_order(self):
        kernel = _kernel()
        rev = np.zeros(6, dtype=bool)
        order = order_rows(kernel, rev, 2, AlgorithmOptions(ordering="natural"))
        assert order.tolist() == [2, 3, 4, 5]

    def test_most_nonzeros_is_adversarial(self):
        kernel = _kernel()
        rev = np.zeros(6, dtype=bool)
        order = order_rows(
            kernel, rev, 2, AlgorithmOptions(ordering="most-nonzeros")
        )
        nnz = [(kernel[p] != 0).sum() for p in order]
        assert nnz == sorted(nnz, reverse=True)

    def test_random_is_seeded_permutation(self):
        kernel = _kernel()
        rev = np.zeros(6, dtype=bool)
        o1 = order_rows(kernel, rev, 2, AlgorithmOptions(ordering="random", ordering_seed=1))
        o2 = order_rows(kernel, rev, 2, AlgorithmOptions(ordering="random", ordering_seed=1))
        o3 = order_rows(kernel, rev, 2, AlgorithmOptions(ordering="random", ordering_seed=2))
        assert o1.tolist() == o2.tolist()
        assert sorted(o1.tolist()) == [2, 3, 4, 5]
        assert sorted(o3.tolist()) == [2, 3, 4, 5]

    def test_all_rows_free(self):
        kernel = np.eye(3)
        order = order_rows(kernel, np.zeros(3, dtype=bool), 3, AlgorithmOptions())
        assert order.size == 0

    def test_bad_n_free(self):
        with pytest.raises(AlgorithmError):
            order_rows(np.eye(3), np.zeros(3, dtype=bool), 5, AlgorithmOptions())
