"""Parity suite: the batched and modular rank-test engines vs. the loop
reference.

Both accelerated backends must be pure optimizations —
decision-for-decision identical to the per-candidate loop on every
input: random networks, float and exact policies, reversible and
irreversible rows, degenerate buckets, cold and warm caches, across
divide-and-conquer subproblems sharing one memo, and across the full
pipeline x streaming x pair-strategy option matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AlgorithmOptions, DEFAULT_POLICY
from repro.core.kernel import build_problem
from repro.core.ranktest import rank_test
from repro.core.state import ModeMatrix
from repro.core.stats import IterationStats
from repro.dnc.combined import combined_parallel, shared_rank_cache
from repro.dnc.selection import select_partition_reactions
from repro.efm.api import compute_efms
from repro.linalg import rational
from repro.linalg.batched import (
    CacheBinding,
    RankCache,
    bucketed_ranks,
    problem_token,
)
from repro.linalg.bitset import pack_supports
from repro.models.generators import random_network
from repro.models.registry import get_network
from repro.network.compression import compress_network

from tests.conftest import assert_same_modes


def _candidate_batch(problem, seed: int) -> ModeMatrix:
    """A diverse candidate batch: nullspace combinations (realistic
    supports), plus crafted degenerate rows — a zero row, single-column
    supports, and a dense row that summary rejection must discard."""
    rng = np.random.default_rng(seed)
    q, f = problem.q, problem.n_free
    coeffs = rng.normal(size=(25, f))
    # Sparsify some combinations for small supports.
    coeffs[rng.random(size=coeffs.shape) < 0.5] = 0.0
    vals = coeffs @ problem.kernel.T
    vals[np.abs(vals) < 1e-10] = 0.0
    crafted = np.zeros((3, q))
    crafted[1, rng.integers(q)] = 1.0
    crafted[2, :] = rng.normal(size=q)  # dense: support q > rank + 1
    return ModeMatrix(np.concatenate([vals, crafted], axis=0))


def _problem_for(seed: int):
    from repro.errors import AlgorithmError

    # Some seeds compress to a trivial nullspace; step until one doesn't.
    for attempt in range(seed, seed + 1000, 100):
        net = random_network(
            6 + attempt % 4, 12 + attempt % 5, seed=attempt,
            reversible_fraction=0.4,
        )
        reduced = compress_network(net).reduced
        try:
            return build_problem(reduced)
        except AlgorithmError:
            continue
    raise RuntimeError("no usable random network found")


class TestFloatParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_masks_bit_identical_on_random_networks(self, seed):
        problem = _problem_for(seed)
        cand = _candidate_batch(problem, seed)
        by_loop = rank_test(
            cand, problem.n_perm, problem.rank, backend="loop"
        )
        for backend in ("batched", "modular"):
            mask = rank_test(
                cand, problem.n_perm, problem.rank, backend=backend
            )
            assert np.array_equal(by_loop, mask), backend

    @pytest.mark.parametrize("seed", range(12))
    def test_masks_bit_identical_with_cache(self, seed):
        problem = _problem_for(seed)
        cand = _candidate_batch(problem, seed)
        by_loop = rank_test(
            cand, problem.n_perm, problem.rank, backend="loop"
        )
        for backend in ("batched", "modular"):
            binding = CacheBinding(
                RankCache(),
                problem_token(problem.n_perm, DEFAULT_POLICY, False),
            )
            cold = rank_test(
                cand, problem.n_perm, problem.rank,
                backend=backend, cache=binding,
            )
            warm = rank_test(
                cand, problem.n_perm, problem.rank,
                backend=backend, cache=binding,
            )
            assert np.array_equal(by_loop, cold), backend
            assert np.array_equal(by_loop, warm), backend
            # Second pass served from the memo.
            assert binding.cache.hits > 0, backend

    def test_modular_hits_entries_stored_by_batched(self):
        """The memo is backend-agnostic: entries certified by one backend
        must serve lookups from the other (same keys, same ranks)."""
        problem = _problem_for(5)
        cand = _candidate_batch(problem, 5)
        binding = CacheBinding(
            RankCache(), problem_token(problem.n_perm, DEFAULT_POLICY, False)
        )
        by_batched = rank_test(
            cand, problem.n_perm, problem.rank,
            backend="batched", cache=binding,
        )
        misses_before = binding.cache.misses
        by_modular = rank_test(
            cand, problem.n_perm, problem.rank,
            backend="modular", cache=binding,
        )
        assert np.array_equal(by_batched, by_modular)
        assert binding.cache.misses == misses_before  # every lookup hit
        assert {tag for _, tag in binding.cache._table.values()} == {
            "batched"
        }

    def test_stats_counters_populated(self):
        problem = _problem_for(3)
        cand = _candidate_batch(problem, 3)
        binding = CacheBinding(
            RankCache(), problem_token(problem.n_perm, DEFAULT_POLICY, False)
        )
        it = IterationStats(position=0, reaction="r", reversible=False)
        rank_test(
            cand,
            problem.n_perm,
            problem.rank,
            backend="batched",
            cache=binding,
            stats=it,
        )
        assert it.n_rank_batches >= 1
        assert it.rank_batch_max >= 1
        rank_test(
            cand,
            problem.n_perm,
            problem.rank,
            backend="batched",
            cache=binding,
            stats=it,
        )
        assert it.n_rank_cache_hits > 0


class TestExactParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_masks_bit_identical_exact(self, seed):
        problem = _problem_for(seed)
        n_exact = rational.from_numpy(problem.n_perm)
        cand = _candidate_batch(problem, seed)
        by_loop = rank_test(
            cand, problem.n_perm, problem.rank, n_exact=n_exact, backend="loop"
        )
        for backend in ("batched", "modular"):
            mask = rank_test(
                cand,
                problem.n_perm,
                problem.rank,
                n_exact=n_exact,
                backend=backend,
            )
            assert np.array_equal(by_loop, mask), backend

    def test_exact_cache_hits_agree(self):
        problem = _problem_for(1)
        n_exact = rational.from_numpy(problem.n_perm)
        cand = _candidate_batch(problem, 1)
        binding = CacheBinding(
            RankCache(), problem_token(problem.n_perm, DEFAULT_POLICY, True)
        )
        cold = rank_test(
            cand,
            problem.n_perm,
            problem.rank,
            n_exact=n_exact,
            backend="batched",
            cache=binding,
        )
        warm = rank_test(
            cand,
            problem.n_perm,
            problem.rank,
            n_exact=n_exact,
            backend="batched",
            cache=binding,
        )
        assert np.array_equal(cold, warm)
        assert binding.cache.hits > 0


class TestDegenerateBuckets:
    def test_empty_batch(self, toy_problem):
        cand = ModeMatrix.empty(toy_problem.q)
        for backend in ("loop", "batched", "modular"):
            mask = rank_test(
                cand, toy_problem.n_perm, toy_problem.rank, backend=backend
            )
            assert mask.shape == (0,)

    def test_zero_support_row(self, toy_problem):
        cand = ModeMatrix(np.zeros((2, toy_problem.q)))
        for backend in ("loop", "batched", "modular"):
            mask = rank_test(
                cand, toy_problem.n_perm, toy_problem.rank, backend=backend
            )
            assert not mask.any()

    def test_all_summarily_rejected(self, toy_problem):
        dense = np.ones((3, toy_problem.q))
        cand = ModeMatrix(dense)
        binding = CacheBinding(
            RankCache(), problem_token(toy_problem.n_perm, DEFAULT_POLICY, False)
        )
        mask = rank_test(
            cand,
            toy_problem.n_perm,
            toy_problem.rank,
            backend="batched",
            cache=binding,
        )
        assert not mask.any()
        assert len(binding.cache) == 0  # engine never invoked

    def test_single_candidate_bucket(self, toy_problem):
        cand = ModeMatrix(np.array([[0, 2, 0, 1, 0, 0, 0, -1]], dtype=float))
        for backend in ("loop", "batched", "modular"):
            assert rank_test(
                cand, toy_problem.n_perm, toy_problem.rank, backend=backend
            )[0]

    def test_duplicate_supports_one_bucket(self, toy_problem):
        # Same support, different values: one bucket, duplicate cache keys.
        base = np.array([0, 2, 0, 1, 0, 0, 0, -1], dtype=float)
        cand = ModeMatrix(np.stack([base, 2 * base, -base]))
        binding = CacheBinding(
            RankCache(), problem_token(toy_problem.n_perm, DEFAULT_POLICY, False)
        )
        mask = rank_test(
            cand,
            toy_problem.n_perm,
            toy_problem.rank,
            backend="batched",
            cache=binding,
        )
        assert mask.all()


class TestCanonicalCacheKeys:
    """Cross-subproblem sharing: permuted, sign-flipped and duplicated
    columns must address the same memo entries."""

    def _ranks(self, n, mask, binding):
        sizes = mask.sum(axis=0).astype(np.int64)
        words = pack_supports(mask)
        return bucketed_ranks(
            n,
            mask,
            sizes,
            policy=DEFAULT_POLICY,
            words=words,
            cache=binding,
        )

    def test_permuted_and_flipped_columns_hit(self):
        rng = np.random.default_rng(0)
        n = rng.normal(size=(5, 8))
        cache = RankCache()
        token = b"tok"
        ident = CacheBinding(cache, token, np.arange(8))
        mask = rng.random(size=(8, 10)) < 0.4
        r1 = self._ranks(n, mask, ident)

        perm = rng.permutation(8)
        signs = rng.choice([-1.0, 1.0], size=8)
        n2 = n[:, perm] * signs
        binding2 = CacheBinding(cache, token, perm)
        misses_before = cache.misses
        # The same column selections, expressed in the permuted frame.
        inv_mask = mask[perm]
        r2 = self._ranks(n2, inv_mask, binding2)
        assert np.array_equal(r1, r2)
        assert cache.misses == misses_before  # every lookup hit

    def test_split_column_copies_hit(self):
        rng = np.random.default_rng(1)
        n = rng.normal(size=(4, 6))
        cache = RankCache()
        ident = CacheBinding(cache, b"t", np.arange(6))
        mask = np.zeros((6, 2), dtype=bool)
        mask[[0, 2], 0] = True
        mask[[1, 3, 4], 1] = True
        r1 = self._ranks(n, mask, ident)

        # A work network where column 0 was split into fwd/bwd copies:
        # local column 6 is -N[:, 0], canonical id 0.
        n_split = np.concatenate([n, -n[:, [0]]], axis=1)
        binding = CacheBinding(cache, b"t", np.array([0, 1, 2, 3, 4, 5, 0]))
        mask_bwd = np.zeros((7, 2), dtype=bool)
        mask_bwd[[2, 6], 0] = True  # {bwd-copy of 0, 2} == {0, 2}
        mask_bwd[[1, 3, 4], 1] = True
        misses_before = cache.misses
        r2 = self._ranks(n_split, mask_bwd, binding)
        assert np.array_equal(r1, r2)
        assert cache.misses == misses_before


class TestDnCSharedCache:
    def test_two_subproblems_share_entries(self):
        """The memo primed by one subset must serve (and not corrupt) the
        next: a combined run with the shared cache matches the loop
        backend's EFM set exactly, with cross-subproblem hits observed."""
        net = get_network("yeast-I-small")
        reduced = compress_network(net).reduced
        part = select_partition_reactions(
            reduced, 2, method="tail", options=AlgorithmOptions()
        )
        runs = {}
        for backend in ("loop", "batched", "modular"):
            runs[backend] = combined_parallel(
                reduced, part, 1, options=AlgorithmOptions(rank_backend=backend)
            )
        for backend in ("batched", "modular"):
            assert runs["loop"].n_efms == runs[backend].n_efms, backend
            assert_same_modes(runs["loop"].efms(), runs[backend].efms())
            hits = sum(
                s.stats.total_rank_cache_hits
                for s in runs[backend].subsets
                if s.stats is not None
            )
            assert hits > 0, backend
        reused = sum(
            s.stats.total_prefix_reused_cols
            for s in runs["modular"].subsets
            if s.stats is not None
        )
        assert reused > 0  # elimination-prefix sharing actually engaged

    def test_shared_cache_off_for_loop_backend(self):
        net = get_network("toy")
        reduced = compress_network(net).reduced
        assert (
            shared_rank_cache(reduced, AlgorithmOptions(rank_backend="loop"))
            is None
        )
        memo = shared_rank_cache(
            reduced, AlgorithmOptions(rank_backend="modular")
        )
        assert memo is not None and isinstance(memo[0], RankCache)


class TestRegistryEquivalence:
    """Identical EFM sets from all three backends on the registry
    workloads that finish at test speed (the medium variants run in the
    benchmark suite, same assertion)."""

    @pytest.mark.parametrize(
        "name", ["toy", "yeast-I-small", "yeast-II-small"]
    )
    def test_same_efms(self, name):
        net = get_network(name)
        results = {
            be: compute_efms(net, options=AlgorithmOptions(rank_backend=be))
            for be in ("loop", "batched", "modular")
        }
        for be in ("batched", "modular"):
            assert results["loop"].n_efms == results[be].n_efms, be
            assert results["loop"].same_modes_as(results[be]), be

    @pytest.mark.parametrize("backend", ["batched", "modular"])
    @pytest.mark.parametrize("method", ["serial", "parallel", "distributed"])
    def test_methods_agree(self, method, backend):
        net = get_network("yeast-I-small")
        kwargs = {} if method == "serial" else {"n_ranks": 2}
        res = compute_efms(
            net,
            method=method,
            options=AlgorithmOptions(rank_backend=backend),
            **kwargs,
        )
        assert res.n_efms == 530


class TestOptionMatrixParity:
    """The 530-EFM yeast-I-small pin must hold for every backend across
    the candidate-pipeline x streaming x pair-pruning option matrix, with
    all three backends producing the same mode set per combination."""

    @pytest.mark.parametrize("pair_pruning", ["tiles", "none"])
    @pytest.mark.parametrize("iter_streaming", ["on", "off"])
    @pytest.mark.parametrize("candidate_pipeline", ["deferred", "eager"])
    def test_yeast_pin_across_backends(
        self, candidate_pipeline, iter_streaming, pair_pruning
    ):
        net = get_network("yeast-I-small")
        results = {}
        for be in ("loop", "batched", "modular"):
            opts = AlgorithmOptions(
                rank_backend=be,
                candidate_pipeline=candidate_pipeline,
                iter_streaming=iter_streaming,
                pair_pruning=pair_pruning,
            )
            results[be] = compute_efms(net, options=opts)
            assert results[be].n_efms == 530, be
        for be in ("batched", "modular"):
            assert results["loop"].same_modes_as(results[be]), be
