"""Streaming vs batch iteration parity.

The streaming iteration engine (:mod:`repro.core.iterstream`) must be an
exact refactoring of the batch ``generate → dedup → rank-test`` body:
bit-identical EFM sets on every driver, both candidate pipelines, and any
chunk budget — chunking never reorders the pair enumeration and dedup is
keep-first on both paths (see the module docstring's invariant).  The
fast tests pin the multi-chunk path on the toy network with a budget tiny
enough to force one-pair chunks; the slow property extends the 530-EFM
yeast-I-small pin to a streaming x chunk-size sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AlgorithmOptions
from repro.core.serial import nullspace_algorithm
from repro.efm.api import compute_efms
from repro.models.variants import yeast_1_small
from repro.parallel.combinatorial import combinatorial_parallel
from repro.parallel.distributed import distributed_parallel

#: A budget small enough that every toy iteration needs several chunks.
TINY = 256


def _opts(streaming, pipeline="deferred", chunk="auto", **kw):
    return AlgorithmOptions(
        iter_streaming=streaming,
        iter_chunk_bytes=chunk,
        candidate_pipeline=pipeline,
        **kw,
    )


class TestToyStreamingParity:
    @pytest.mark.parametrize("pipeline", ["deferred", "eager"])
    @pytest.mark.parametrize("chunk", ["auto", TINY])
    def test_serial(self, toy_problem, pipeline, chunk):
        off = nullspace_algorithm(toy_problem, options=_opts("off", pipeline))
        on = nullspace_algorithm(
            toy_problem, options=_opts("on", pipeline, chunk)
        )
        assert np.array_equal(
            off.efms_input_order(), on.efms_input_order()
        )

    @pytest.mark.parametrize("pipeline", ["deferred", "eager"])
    @pytest.mark.parametrize("n_ranks", [2, 3])
    def test_combinatorial(self, toy_problem, pipeline, n_ranks):
        off = combinatorial_parallel(
            toy_problem, n_ranks, options=_opts("off", pipeline)
        )
        on = combinatorial_parallel(
            toy_problem, n_ranks, options=_opts("on", pipeline, TINY)
        )
        assert np.array_equal(
            off.result.efms_input_order(), on.result.efms_input_order()
        )

    @pytest.mark.parametrize("pipeline", ["deferred", "eager"])
    def test_distributed(self, toy_problem, pipeline):
        off = distributed_parallel(
            toy_problem, 3, options=_opts("off", pipeline)
        )
        on = distributed_parallel(
            toy_problem, 3, options=_opts("on", pipeline, TINY)
        )
        assert np.array_equal(
            off.efms_input_order(), on.efms_input_order()
        )

    @pytest.mark.parametrize("strategy", ["strided", "block", "tiled"])
    def test_pair_strategies(self, toy_problem, strategy):
        off = combinatorial_parallel(
            toy_problem, 2, pair_strategy=strategy, options=_opts("off")
        )
        on = combinatorial_parallel(
            toy_problem, 2, pair_strategy=strategy, options=_opts("on", chunk=TINY)
        )
        assert np.array_equal(
            off.result.efms_input_order(), on.result.efms_input_order()
        )


class TestStreamingCounters:
    def test_tiny_budget_forces_multiple_chunks(self, toy_problem):
        res = nullspace_algorithm(toy_problem, options=_opts("on", chunk=TINY))
        assert res.stats.total_stream_chunks > len(res.stats.iterations)
        assert res.stats.total_dedup_probes > 0
        assert res.stats.peak_stream_chunk_bytes > 0
        # The tiny budget bounds every chunk's transient well below the
        # batch path's whole-iteration candidate peak.
        batch = nullspace_algorithm(toy_problem, options=_opts("off"))
        assert res.stats.peak_stream_chunk_bytes <= max(
            it.candidate_bytes for it in batch.stats.iterations
        )

    def test_batch_path_leaves_counters_zero(self, toy_problem):
        res = nullspace_algorithm(toy_problem, options=_opts("off"))
        assert res.stats.total_stream_chunks == 0
        assert res.stats.total_dedup_probes == 0
        assert res.stats.peak_stream_chunk_bytes == 0

    def test_exact_arithmetic_takes_batch_path(self, toy_problem):
        res = nullspace_algorithm(
            toy_problem,
            options=_opts("on", chunk=TINY, arithmetic="exact"),
        )
        assert res.stats.total_stream_chunks == 0


@pytest.mark.slow
def test_yeast_small_streaming_chunk_sweep():
    """Acceptance property: yeast-I-small, streaming x chunk-size sweep —
    every (driver, chunk budget) combination reproduces the batch path's
    530-EFM set bit-identically."""
    net = yeast_1_small()

    def runs(opts):
        return [
            compute_efms(net, options=opts),
            compute_efms(net, method="parallel", n_ranks=3, options=opts),
            compute_efms(net, method="combined", partition=5, options=opts),
        ]

    batch = runs(_opts("off"))
    assert batch[0].n_efms == 530
    for chunk in ("auto", 64 << 10, 8 << 10):
        streamed = runs(_opts("on", chunk=chunk))
        for label, a, b in zip(("serial", "parallel-3", "combined-5"), batch, streamed):
            assert a.n_efms == b.n_efms, (label, chunk)
            assert np.array_equal(a.fluxes, b.fluxes), (
                f"{label} with iter_chunk_bytes={chunk}: streaming EFM set "
                "differs from batch"
            )
