"""Unit tests for exact rational linear algebra."""

from fractions import Fraction

import numpy as np
import pytest

from repro.errors import LinAlgError
from repro.linalg import rational


class TestToFractionMatrix:
    def test_ints_convert_losslessly(self):
        m = rational.to_fraction_matrix([[1, -2], [3, 0]])
        assert m[0][1] == Fraction(-2)
        assert all(isinstance(x, Fraction) for row in m for x in row)

    def test_small_rational_floats_cleaned(self):
        m = rational.to_fraction_matrix([[0.5, 1 / 3]])
        assert m[0][0] == Fraction(1, 2)
        assert m[0][1] == Fraction(1, 3)

    def test_fractions_pass_through(self):
        f = Fraction(7, 11)
        assert rational.to_fraction_matrix([[f]])[0][0] is f

    def test_ragged_rejected(self):
        with pytest.raises(LinAlgError):
            rational.to_fraction_matrix([[1, 2], [3]])


class TestRref:
    def test_identity_unchanged(self):
        eye = rational.to_fraction_matrix(np.eye(3).tolist())
        r, pivots = rational.rref(eye)
        assert pivots == [0, 1, 2]
        assert r == eye

    def test_known_rref(self):
        m = rational.to_fraction_matrix([[1, 2, 3], [2, 4, 6], [1, 0, 1]])
        r, pivots = rational.rref(m)
        assert len(pivots) == 2  # rank 2
        # Pivot columns reduce to unit vectors.
        for row_idx, p in enumerate(pivots):
            col = [r[i][p] for i in range(3)]
            assert col[row_idx] == 1
            assert sum(x != 0 for x in col) == 1

    def test_input_not_mutated(self):
        m = rational.to_fraction_matrix([[1, 2], [3, 4]])
        snapshot = [row[:] for row in m]
        rational.rref(m)
        assert m == snapshot

    def test_zero_matrix(self):
        m = rational.to_fraction_matrix([[0, 0], [0, 0]])
        _, pivots = rational.rref(m)
        assert pivots == []


class TestRankAndNullity:
    def test_full_rank(self):
        m = rational.to_fraction_matrix([[2, 1], [1, 1]])
        assert rational.exact_rank(m) == 2
        assert rational.exact_nullity(m) == 0

    def test_rank_deficient(self):
        m = rational.to_fraction_matrix([[1, 2, 3], [2, 4, 6]])
        assert rational.exact_rank(m) == 1
        assert rational.exact_nullity(m) == 2

    def test_big_coefficients_exact(self):
        # Rank decisions that float arithmetic gets wrong: a nearly
        # dependent row differing at the 1e-20 level.
        eps = Fraction(1, 10**20)
        m = [
            [Fraction(1), Fraction(2)],
            [Fraction(2), Fraction(4) + eps],
        ]
        assert rational.exact_rank(m) == 2


class TestNullspace:
    def test_annihilates(self):
        m = rational.to_fraction_matrix([[1, -1, 0, 0], [0, 1, -1, -1]])
        basis = rational.exact_nullspace(m)
        prod = rational.fraction_matmul(m, basis)
        assert rational.is_zero_matrix(prod)
        assert len(basis[0]) == 2  # q - rank = 4 - 2

    def test_empty_rows_gives_identity(self):
        basis = rational.exact_nullspace([])
        assert basis == []

    def test_trivial_nullspace(self):
        m = rational.to_fraction_matrix([[1, 0], [0, 1]])
        basis = rational.exact_nullspace(m)
        assert len(basis) == 2 and len(basis[0]) == 0

    def test_dimension_formula_random(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            a = rng.integers(-3, 4, size=(3, 6))
            m = rational.to_fraction_matrix(a.tolist())
            basis = rational.exact_nullspace(m)
            assert len(basis[0]) == 6 - rational.exact_rank(m)
            assert rational.is_zero_matrix(rational.fraction_matmul(m, basis))


class TestIntegerize:
    def test_halves_scale_to_integers(self):
        m = rational.to_fraction_matrix([["1/2"], ["3/2"]])
        ints = rational.integerize_columns(m)
        assert [row[0] for row in ints] == [1, 3]

    def test_gcd_reduced(self):
        m = rational.to_fraction_matrix([[4], [6]])
        ints = rational.integerize_columns(m)
        assert [row[0] for row in ints] == [2, 3]

    def test_sign_preserved(self):
        m = rational.to_fraction_matrix([["-1/3"], ["2/3"]])
        ints = rational.integerize_columns(m)
        assert [row[0] for row in ints] == [-1, 2]

    def test_zero_column(self):
        m = rational.to_fraction_matrix([[0], [0]])
        assert rational.integerize_columns(m) == [[0], [0]]


class TestMatmulAndUtils:
    def test_matmul_matches_numpy(self):
        rng = np.random.default_rng(11)
        a = rng.integers(-5, 6, size=(3, 4))
        b = rng.integers(-5, 6, size=(4, 2))
        exact = rational.fraction_matmul(
            rational.to_fraction_matrix(a.tolist()),
            rational.to_fraction_matrix(b.tolist()),
        )
        assert np.array_equal(rational.to_numpy(exact), a @ b)

    def test_matmul_shape_mismatch(self):
        with pytest.raises(LinAlgError):
            rational.fraction_matmul(
                rational.to_fraction_matrix([[1]]),
                rational.to_fraction_matrix([[1], [2]]),
            )

    def test_select_columns(self):
        m = rational.to_fraction_matrix([[1, 2, 3], [4, 5, 6]])
        sel = rational.select_columns(m, [2, 0])
        assert rational.to_numpy(sel).tolist() == [[3, 1], [6, 4]]

    def test_roundtrip_numpy(self):
        a = np.array([[1.0, -0.5], [0.25, 3.0]])
        assert np.allclose(rational.to_numpy(rational.from_numpy(a)), a)
