"""Unit tests for packed support bitsets."""

import numpy as np
import pytest

from repro.errors import LinAlgError
from repro.linalg import bitset
from repro.linalg.bitset import PackedSupports


def _random_mask(n_rows, n_modes, seed=0, p=0.4):
    rng = np.random.default_rng(seed)
    return rng.random((n_rows, n_modes)) < p


class TestPackUnpack:
    @pytest.mark.parametrize("n_rows", [1, 5, 63, 64, 65, 130])
    def test_roundtrip(self, n_rows):
        mask = _random_mask(n_rows, 7, seed=n_rows)
        words = bitset.pack_supports(mask)
        assert words.shape == (7, bitset.n_words_for(n_rows))
        assert np.array_equal(bitset.unpack_supports(words, n_rows), mask)

    def test_bit_placement(self):
        mask = np.zeros((70, 1), dtype=bool)
        mask[65, 0] = True
        words = bitset.pack_supports(mask)
        assert words[0, 0] == 0
        assert words[0, 1] == np.uint64(1) << np.uint64(1)

    def test_empty(self):
        words = bitset.pack_supports(np.zeros((10, 0), dtype=bool))
        assert words.shape == (0, 1)

    def test_high_bit(self):
        mask = np.zeros((64, 1), dtype=bool)
        mask[63, 0] = True
        words = bitset.pack_supports(mask)
        assert words[0, 0] == np.uint64(1) << np.uint64(63)


class TestPopcount:
    def test_matches_mask_sum(self):
        mask = _random_mask(100, 20, seed=1)
        words = bitset.pack_supports(mask)
        assert np.array_equal(bitset.popcount(words), mask.sum(axis=0))

    def test_union_popcount_simple(self):
        mask = np.array([[1, 0], [1, 1], [0, 1]], dtype=bool)  # m0={0,1}, m1={1,2}
        a = bitset.pack_supports(mask)
        assert bitset.union_popcount(a[[0]], a[[1]])[0] == 3

    def test_union_popcount_exhaustive(self):
        mask = _random_mask(70, 10, seed=2)
        words = bitset.pack_supports(mask)
        i = np.arange(10)
        j = (i + 3) % 10
        got = bitset.union_popcount(words[i], words[j])
        want = (mask[:, i] | mask[:, j]).sum(axis=0)
        assert np.array_equal(got, want)


class TestSubsetQueries:
    def test_subset_rows(self):
        mask = np.array(
            [[1, 1, 0], [0, 1, 0], [0, 1, 1]], dtype=bool
        )  # rows=3 bits, cols=3 modes
        words = bitset.pack_supports(mask)
        # mode1 = {0,1,2}; mode0 = {0}; mode2 = {2}
        hit = bitset.subset_rows(words[[1]], words[[0, 2]])
        assert hit[0]  # mode0 subset of mode1
        hit2 = bitset.subset_rows(words[[0]], words[[1]])
        assert not hit2[0]  # mode1 not subset of mode0

    def test_subset_count_rows(self):
        mask = np.array([[1, 1, 0, 1], [0, 1, 0, 1], [0, 0, 1, 1]], dtype=bool)
        words = bitset.pack_supports(mask)
        # supports: m0={0}, m1={0,1}, m2={2}, m3={0,1,2}
        counts = bitset.subset_count_rows(words, words)
        assert counts.tolist() == [1, 2, 1, 4]

    def test_empty_inputs(self):
        empty = np.zeros((0, 1), dtype=np.uint64)
        some = bitset.pack_supports(np.ones((3, 2), dtype=bool))
        assert bitset.subset_rows(empty, some).shape == (0,)
        assert not bitset.subset_rows(some, empty).any()

    def test_chunking_consistency(self):
        # Force the chunk loop with a larger batch.
        mask = _random_mask(130, 300, seed=3)
        words = bitset.pack_supports(mask)
        got = bitset.subset_rows(words, words[:50])
        want = np.array(
            [
                any(
                    (mask[:, r] & mask[:, c]).sum() == mask[:, r].sum()
                    for r in range(50)
                )
                for c in range(300)
            ]
        )
        assert np.array_equal(got, want)


class TestUniqueAndMembership:
    def test_unique_rows_first_occurrence(self):
        mask = np.array([[1, 0, 1, 0], [0, 1, 0, 1]], dtype=bool)
        words = bitset.pack_supports(mask)
        uniq, first = bitset.unique_rows(words)
        assert first.tolist() == [0, 1]
        assert uniq.shape[0] == 2

    def test_unique_rows_empty(self):
        empty = np.zeros((0, 2), dtype=np.uint64)
        uniq, first = bitset.unique_rows(empty)
        assert uniq.shape[0] == 0 and first.size == 0

    def test_rows_in(self):
        mask = _random_mask(40, 12, seed=4)
        words = bitset.pack_supports(mask)
        member = bitset.rows_in(words[:6], words[3:])
        assert member.tolist() == [False, False, False, True, True, True]

    def test_lexsort_rows(self):
        mask = np.array([[0, 1, 1], [1, 0, 1]], dtype=bool)
        words = bitset.pack_supports(mask)
        order = bitset.lexsort_rows(words)
        sorted_words = words[order]
        assert (np.diff(sorted_words[:, 0].astype(np.int64)) >= 0).all()


class TestPackedSupports:
    def test_from_bool_and_back(self):
        mask = _random_mask(33, 6, seed=5)
        ps = PackedSupports.from_bool(mask)
        assert np.array_equal(ps.to_bool(), mask)
        assert len(ps) == 6
        assert ps.n_rows == 33

    def test_test_bit(self):
        mask = np.zeros((70, 3), dtype=bool)
        mask[65, 1] = True
        ps = PackedSupports.from_bool(mask)
        assert ps.test_bit(65).tolist() == [False, True, False]

    def test_getitem_scalar_and_slice(self):
        ps = PackedSupports.from_bool(_random_mask(10, 5, seed=6))
        assert len(ps[2]) == 1
        assert len(ps[np.array([0, 3])]) == 2

    def test_concat(self):
        a = PackedSupports.from_bool(_random_mask(10, 2, seed=7))
        b = PackedSupports.from_bool(_random_mask(10, 3, seed=8))
        assert len(a.concat(b)) == 5

    def test_concat_mismatch(self):
        a = PackedSupports.from_bool(_random_mask(10, 2))
        b = PackedSupports.from_bool(_random_mask(11, 2))
        with pytest.raises(LinAlgError):
            a.concat(b)

    def test_word_count_validation(self):
        with pytest.raises(LinAlgError):
            PackedSupports(np.zeros((2, 3), dtype=np.uint64), n_rows=64)

    def test_equality(self):
        mask = _random_mask(12, 4, seed=9)
        assert PackedSupports.from_bool(mask) == PackedSupports.from_bool(mask)
        other = mask.copy()
        other[0, 0] = ~other[0, 0]
        assert PackedSupports.from_bool(mask) != PackedSupports.from_bool(other)
