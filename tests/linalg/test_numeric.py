"""Unit tests for tolerant floating linear algebra."""

import numpy as np
import pytest

from repro.config import NumericPolicy
from repro.errors import LinAlgError
from repro.linalg import numeric


class TestColumnNormalize:
    def test_unit_max_norm(self):
        cols = np.array([[2.0, -10.0], [1.0, 5.0]])
        out = numeric.column_normalize(cols)
        assert np.allclose(np.abs(out).max(axis=0), 1.0)

    def test_zero_column_untouched(self):
        cols = np.array([[0.0, 1.0], [0.0, 2.0]])
        out = numeric.column_normalize(cols)
        assert np.allclose(out[:, 0], 0.0)

    def test_in_place(self):
        cols = np.array([[4.0], [2.0]])
        out = numeric.column_normalize(cols, out=cols)
        assert out is cols and cols[0, 0] == 1.0

    def test_1d_rejected(self):
        with pytest.raises(LinAlgError):
            numeric.column_normalize(np.ones(3))


class TestSupportAndClean:
    def test_support_threshold_scales_with_column(self):
        # Threshold is relative to the column max: 1e-4 is "zero" next to
        # 1e6 (threshold 1e-3) but non-zero next to 1.0 (threshold 1e-9).
        policy = NumericPolicy(zero_tol=1e-9)
        cols = np.array([[1e6, 1.0], [1e-4, 1e-4]])
        sup = numeric.support_of(cols, policy)
        assert sup[0].all()
        assert not sup[1, 0]
        assert sup[1, 1]

    def test_support_exact(self):
        policy = NumericPolicy(zero_tol=1e-9)
        cols = np.array([[1.0, 0.5], [1e-12, 0.0]])
        sup = numeric.support_of(cols, policy)
        assert sup.tolist() == [[True, True], [False, False]]

    def test_clean_zeros_snaps(self):
        cols = np.array([[1.0], [1e-13]])
        numeric.clean_zeros(cols)
        assert cols[1, 0] == 0.0


class TestRank:
    def test_full_rank(self):
        assert numeric.numeric_rank(np.eye(4)) == 4

    def test_rank_deficient(self):
        a = np.array([[1.0, 2.0], [2.0, 4.0]])
        assert numeric.numeric_rank(a) == 1

    def test_zero_and_empty(self):
        assert numeric.numeric_rank(np.zeros((3, 3))) == 0
        assert numeric.numeric_rank(np.zeros((0, 3))) == 0

    def test_nullity(self):
        a = np.array([[1.0, 1.0, 0.0]])
        assert numeric.nullity(a) == 2

    def test_scale_invariance(self):
        a = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        assert numeric.numeric_rank(a) == numeric.numeric_rank(a * 1e8)


class TestKernelIdentityForm:
    def test_block_structure(self):
        n = np.array([[1.0, -1.0, 0.0, 0.0], [0.0, 1.0, -1.0, -2.0]])
        kernel, perm = numeric.kernel_identity_form(n)
        n_free = kernel.shape[1]
        assert n_free == 2
        # permuted stoichiometry annihilates the kernel
        assert np.allclose(n[:, perm] @ kernel, 0.0)
        # top block diagonal (scaled identity), off-diagonal zero
        top = kernel[:n_free]
        assert np.allclose(top - np.diag(np.diag(top)), 0.0)
        assert (np.diag(top) > 0).all()

    def test_perm_is_permutation(self):
        rng = np.random.default_rng(3)
        n = rng.integers(-2, 3, size=(4, 7)).astype(float)
        _, perm = numeric.kernel_identity_form(n)
        assert sorted(perm.tolist()) == list(range(7))

    def test_pivot_priority_respected(self):
        # Column 0 and 1 are identical; priority decides which is pivot.
        n = np.array([[1.0, 1.0, -1.0]])
        _, perm = numeric.kernel_identity_form(
            n, pivot_priority=np.array([1, -1, 0])
        )
        n_free = 2
        free = set(perm[:n_free].tolist())
        assert 1 not in free  # preferred pivot became the pivot

    def test_priority_length_mismatch(self):
        with pytest.raises(LinAlgError):
            numeric.kernel_identity_form(
                np.eye(2), pivot_priority=np.array([1])
            )

    def test_rank_deficient_rows_ok(self):
        n = np.array([[1.0, -1.0], [2.0, -2.0], [3.0, -3.0]])
        kernel, perm = numeric.kernel_identity_form(n)
        assert kernel.shape == (2, 1)
        assert np.allclose(n[:, perm] @ kernel, 0.0)


class TestHelpers:
    def test_gcd_reduce_rows(self):
        m = np.array([[2, 4, 6], [0, 0, 0], [3, 5, 7]])
        out = numeric.gcd_reduce_rows(m)
        assert out[0].tolist() == [1, 2, 3]
        assert out[1].tolist() == [0, 0, 0]
        assert out[2].tolist() == [3, 5, 7]

    def test_columns_proportional(self):
        a = np.array([1.0, 0.0, -2.0])
        assert numeric.columns_proportional(a, a * 3.5)
        assert not numeric.columns_proportional(a, -a)  # negative scale
        assert not numeric.columns_proportional(a, np.array([1.0, 1.0, -2.0]))
