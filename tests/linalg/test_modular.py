"""Adversarial units for the modular residue-field rank engine.

Each class targets one soundness hazard: lossy integerization,
fraction-free kernel overflow, prime-divisible entries defeating a single
residue field, non-rational inputs, and the prefix-reuse bookkeeping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DEFAULT_POLICY
from repro.core.stats import IterationStats
from repro.linalg import modular
from repro.linalg.batched import bucketed_ranks
from repro.linalg.modular import (
    ModularProblem,
    _kernel_mod_p,
    _kernel_nullities,
    _padded_complements,
    bareiss_ranks,
    int_kernel,
    integerize,
    modular_ranks,
    problem_for,
)


def _random_supports(q: int, n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    mask = rng.random(size=(q, n)) < 0.45
    mask[:2, mask.sum(axis=0) == 0] = True  # no empty supports
    sizes = mask.sum(axis=0).astype(np.int64)
    return mask, sizes


def _reference_ranks(n_perm, mask, sizes):
    return bucketed_ranks(n_perm, mask, sizes, policy=DEFAULT_POLICY)


class TestIntegerize:
    def test_integer_matrix_passes_through(self):
        a = np.array([[1.0, -3.0], [0.0, 7.0]])
        out = integerize(a)
        assert out.dtype == np.int64
        assert np.array_equal(out, [[1, -3], [0, 7]])

    def test_rational_columns_scaled_by_lcm(self):
        a = np.array([[0.5, 1 / 3], [1.5, 2 / 3]])
        out = integerize(a)
        # Column scaling: each column times its denominator lcm.
        assert np.array_equal(out, [[1, 1], [3, 2]])

    def test_scaling_preserves_subset_ranks(self):
        rng = np.random.default_rng(3)
        a = rng.integers(-4, 5, size=(5, 9)).astype(float) / 6.0
        out = integerize(a)
        assert out is not None
        for _ in range(20):
            cols = np.flatnonzero(rng.random(9) < 0.5)
            if cols.size == 0:
                continue
            assert np.linalg.matrix_rank(
                a[:, cols]
            ) == np.linalg.matrix_rank(out[:, cols].astype(float))

    def test_non_rational_entries_rejected(self):
        a = np.array([[1.0, np.pi], [0.0, 1.0]])
        assert integerize(a) is None

    def test_overflowing_rescale_rejected(self):
        # 1/997 forces a column scale of 997; the 2^30-sized entry sharing
        # the column then overflows the int-kernel guard after rescaling.
        a = np.array([[1 / 997.0], [2.0**30]])
        assert integerize(a) is None


class TestIntKernel:
    @pytest.mark.parametrize("seed", range(6))
    def test_exact_nullspace_of_random_integer_matrices(self, seed):
        rng = np.random.default_rng(seed)
        n = rng.integers(-5, 6, size=(4, 9))
        rank, B = int_kernel(n)
        assert rank == np.linalg.matrix_rank(n.astype(float))
        assert B.shape == (9, 9 - rank)
        assert not np.any(n @ B)  # exact annihilation
        assert np.linalg.matrix_rank(B.astype(float)) == B.shape[1]

    def test_rank_deficient_input(self):
        n = np.array([[1, 2, 3], [2, 4, 6], [0, 0, 0]])
        rank, B = int_kernel(n)
        assert rank == 1
        assert B.shape == (3, 2)
        assert not np.any(n @ B)

    def test_columns_gcd_reduced(self):
        n = np.array([[2, 0, -4], [0, 2, 2]])
        _, B = int_kernel(n)
        for j in range(B.shape[1]):
            assert np.gcd.reduce(np.abs(B[:, j])) == 1

    def test_huge_entries_raise_overflow(self):
        rng = np.random.default_rng(0)
        n = rng.integers(-(2**30), 2**30, size=(5, 10))
        with pytest.raises(OverflowError):
            int_kernel(n)


class TestKernelModP:
    @pytest.mark.parametrize("seed", range(4))
    def test_basis_annihilates_mod_p(self, seed):
        rng = np.random.default_rng(seed)
        n = rng.integers(-5, 6, size=(4, 9))
        p = modular.PRIMES[0]
        B = _kernel_mod_p(n, p)
        assert B.shape == (9 - np.linalg.matrix_rank(n.astype(float)), 9)
        assert not np.any((n @ B.T) % p)


class TestBareissRanks:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_numpy_on_random_stacks(self, seed):
        rng = np.random.default_rng(seed)
        stack = rng.integers(-4, 5, size=(12, 5, 7)).astype(np.float64)
        got = bareiss_ranks(stack)
        want = [np.linalg.matrix_rank(stack[i]) for i in range(12)]
        assert got.tolist() == want

    def test_rank_deficient_and_duplicate_columns(self):
        base = np.array([[1, 2, 1, 2], [3, 1, 3, 1], [0, 0, 0, 0]], dtype=float)
        stack = np.stack([base, np.zeros_like(base), np.eye(3, 4)])
        assert bareiss_ranks(stack).tolist() == [2, 0, 3]

    def test_guard_breach_raises(self):
        stack = np.full((1, 2, 2), 1e8)
        with pytest.raises(OverflowError):
            bareiss_ranks(stack)


class TestPaddedComplements:
    def test_descending_members_and_pad_repeats_smallest(self):
        mask_t = np.array(
            [[True, True, False, False, True], [True, True, True, True, False]]
        )
        sizes = mask_t.sum(axis=1).astype(np.int64)
        idx_pad, counts = _padded_complements(
            mask_t, np.arange(2), sizes
        )
        assert counts.tolist() == [2, 1]
        assert idx_pad[0].tolist() == [3, 2]
        assert idx_pad[1].tolist() == [4, 4]  # padded with its only member


class TestPrimeEscalation:
    """Hand-built problems whose first residue field lies about the rank."""

    class _FakeProb:
        """Basis-less problem stub: residue panels supplied directly."""

        def __init__(self, d, q, panels, primes):
            self.d, self.q = d, q
            self.bt = None
            self._panels = panels
            self.primes = primes

        def residue_basis(self, p):
            return self._panels.get(p)

    def test_second_prime_rescues_divisible_entry(self):
        p1, p2 = modular.PRIMES[0], modular.PRIMES[1]
        # True panel has a member column equal to (p1, 0): rank 1 over Q
        # and over F_p2, but rank 0 over F_p1 — nullity 2 vs true 1.
        bt = np.array([[1, p1, 0, 1], [0, 0, 1, 1]], dtype=np.int64)
        prob = self._FakeProb(
            2, 4, {p1: bt % p1, p2: bt % p2}, (p1, p2)
        )
        idx_pad = np.array([[1, 1]])  # complement = {1}, padded
        null, unresolved = _kernel_nullities(prob, idx_pad)
        assert null.tolist() == [1]  # min over the two primes
        assert not unresolved.any()

    def test_disagreeing_primes_escalate_to_svd(self):
        p1, p2 = modular.PRIMES[0], modular.PRIMES[1]
        # Member rows (p1*p2, 0, 0) and (p2, 0, 0): rank 1 over F_p1 but
        # rank 0 over F_p2 — both nullities >= 2 and unequal.
        bt = np.array(
            [[p1 * p2, p2, 0], [0, 0, 1], [0, 0, 0]], dtype=object
        )
        panels = {p1: (bt % p1).astype(np.int64), p2: (bt % p2).astype(np.int64)}
        prob = self._FakeProb(3, 3, panels, (p1, p2))
        idx_pad = np.array([[1, 0]])  # complement = {1, 0}
        null, unresolved = _kernel_nullities(prob, idx_pad)
        assert unresolved.tolist() == [True]

    def test_missing_first_prime_basis_flags_all(self):
        prob = self._FakeProb(2, 4, {}, modular.PRIMES[:2])
        null, unresolved = _kernel_nullities(prob, np.array([[1, 0]]))
        assert unresolved.all()


class TestModularRanksEndToEnd:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_batched_reference(self, seed):
        rng = np.random.default_rng(seed)
        n_perm = rng.integers(-4, 5, size=(6, 14)).astype(float)
        mask, sizes = _random_supports(14, 30, seed)
        got = modular_ranks(
            n_perm, mask, sizes, policy=DEFAULT_POLICY
        )
        assert np.array_equal(got, _reference_ranks(n_perm, mask, sizes))

    def test_duplicate_column_rank_deficiency(self):
        rng = np.random.default_rng(7)
        n_perm = rng.integers(-3, 4, size=(5, 10)).astype(float)
        n_perm[:, 7] = n_perm[:, 2]  # duplicated column
        n_perm[:, 9] = 2 * n_perm[:, 4] - n_perm[:, 2]
        mask, sizes = _random_supports(10, 25, 7)
        got = modular_ranks(n_perm, mask, sizes, policy=DEFAULT_POLICY)
        assert np.array_equal(got, _reference_ranks(n_perm, mask, sizes))

    def test_exact_overflow_escalates_to_residue_arm(self, monkeypatch):
        # Force the certified-float64 arm to bail immediately; the residue
        # arm must deliver identical ranks.
        rng = np.random.default_rng(11)
        n_perm = rng.integers(-4, 5, size=(6, 13)).astype(float)
        mask, sizes = _random_supports(13, 24, 11)
        want = _reference_ranks(n_perm, mask, sizes)
        monkeypatch.setattr(modular, "BAREISS_GUARD", -1.0)
        stats = IterationStats(position=0, reaction="r", reversible=False)
        got = modular_ranks(
            n_perm, mask, sizes, policy=DEFAULT_POLICY, stats=stats
        )
        assert np.array_equal(got, want)
        assert stats.n_rank_modular == 24

    def test_basis_overflow_pins_rank_mod_p(self):
        # Entries large enough that the exact Montante kernel overflows at
        # preparation time: the problem stays usable via per-prime bases.
        rng = np.random.default_rng(2)
        n_perm = rng.integers(-(2**28), 2**28, size=(5, 11)).astype(float)
        prob = problem_for(n_perm, DEFAULT_POLICY)
        assert prob.ok and prob.bt is None
        assert prob.rank == np.linalg.matrix_rank(n_perm)
        mask, sizes = _random_supports(11, 20, 2)
        got = modular_ranks(n_perm, mask, sizes, policy=DEFAULT_POLICY)
        assert np.array_equal(got, _reference_ranks(n_perm, mask, sizes))

    def test_non_rational_entries_fall_back_wholesale(self):
        rng = np.random.default_rng(5)
        n_perm = rng.normal(size=(5, 11)) * np.pi
        mask, sizes = _random_supports(11, 16, 5)
        stats = IterationStats(position=0, reaction="r", reversible=False)
        got = modular_ranks(
            n_perm, mask, sizes, policy=DEFAULT_POLICY, stats=stats
        )
        assert np.array_equal(got, _reference_ranks(n_perm, mask, sizes))
        assert stats.n_rank_fallback == 16
        assert stats.n_rank_modular == 0

    def test_prefix_reuse_counter_counts_shared_columns(self):
        rng = np.random.default_rng(9)
        # Small {-1, 0, 1} entries keep the kernel basis tiny enough for
        # the exact arm (where the prefix layer lives) to stay engaged.
        n_perm = rng.integers(-1, 2, size=(6, 16)).astype(float)
        # Columns 13..15 outside every support: all complements then share
        # the descending leading members (15, 14, 13) — few prefix
        # classes, maximal reuse.
        mask = rng.random(size=(16, 60)) < 0.75
        mask[:3] = True
        mask[13:] = False
        sizes = mask.sum(axis=0).astype(np.int64)
        stats = IterationStats(position=0, reaction="r", reversible=False)
        got = modular_ranks(
            n_perm, mask, sizes, policy=DEFAULT_POLICY, stats=stats
        )
        assert np.array_equal(got, _reference_ranks(n_perm, mask, sizes))
        assert stats.n_prefix_reused_cols > 0

    def test_full_support_candidates(self):
        rng = np.random.default_rng(13)
        n_perm = rng.integers(-3, 4, size=(4, 8)).astype(float)
        mask = np.ones((8, 3), dtype=bool)
        mask[5:, 1] = False
        sizes = mask.sum(axis=0).astype(np.int64)
        got = modular_ranks(n_perm, mask, sizes, policy=DEFAULT_POLICY)
        assert np.array_equal(got, _reference_ranks(n_perm, mask, sizes))


class TestProblemRegistry:
    def test_identity_fast_path_returns_same_problem(self):
        n = np.arange(12, dtype=float).reshape(3, 4)
        a = problem_for(n, DEFAULT_POLICY)
        b = problem_for(n, DEFAULT_POLICY)
        assert a is b

    def test_equal_content_shares_via_digest(self):
        n1 = np.arange(12, dtype=float).reshape(3, 4)
        n2 = n1.copy()
        assert problem_for(n1, DEFAULT_POLICY) is problem_for(
            n2, DEFAULT_POLICY
        )

    def test_prepared_state_is_sound(self):
        rng = np.random.default_rng(1)
        n = rng.integers(-5, 6, size=(4, 9)).astype(float)
        prob = problem_for(n, DEFAULT_POLICY)
        assert prob.ok
        assert prob.rank == np.linalg.matrix_rank(n)
        assert prob.d == 9 - prob.rank
