"""Unit tests for HPC platform models."""

import pytest

from repro.cluster.platform import (
    BLUE_GENE_P,
    CALHOUN,
    JobShape,
    bluegene_smp,
    bluegene_vn,
    get_platform,
)
from repro.errors import ReproError
from repro.mpi.tracing import CommEvent, CommTrace


class TestSpecs:
    def test_paper_numbers(self):
        # §IV: BG/P has 4 GB/node quad-core; Calhoun 16 GB two quad-cores.
        assert BLUE_GENE_P.cores_per_node == 4
        assert BLUE_GENE_P.memory_per_node == 4 * 1024**3
        assert CALHOUN.cores_per_node == 8
        assert CALHOUN.memory_per_node == 16 * 1024**3

    def test_calhoun_calibration_reproduces_table2_one_core(self):
        """The pair rate is calibrated so the paper's 1-core Network I
        generation time comes out of the paper's candidate count."""
        t = CALHOUN.t_gen_cand(159_599_700_951)
        assert t == pytest.approx(2744.76, rel=0.02)

    def test_bluegene_slower_per_core(self):
        assert BLUE_GENE_P.pair_rate < CALHOUN.pair_rate

    def test_memory_per_core(self):
        assert CALHOUN.memory_per_core(8) == 2 * 1024**3
        assert CALHOUN.memory_per_core(1) == 16 * 1024**3
        with pytest.raises(ReproError):
            CALHOUN.memory_per_core(9)

    def test_registry(self):
        assert get_platform("calhoun") is CALHOUN
        with pytest.raises(ReproError):
            get_platform("deep-thought")


class TestModeledTimes:
    def test_linear_in_work(self):
        assert CALHOUN.t_gen_cand(2_000_000) == 2 * CALHOUN.t_gen_cand(1_000_000)

    def test_communicate_latency_plus_bandwidth(self):
        trace = CommTrace(
            events=[CommEvent("send", bytes_out=2_000_000_000, bytes_in=0, peers=1)]
        )
        t = CALHOUN.t_communicate(trace)
        assert t == pytest.approx(CALHOUN.latency + 1.0, rel=1e-6)

    def test_communicate_bytes_helper(self):
        assert CALHOUN.t_communicate_bytes(0, 0) == 0.0
        assert CALHOUN.t_communicate_bytes(100, 0) == pytest.approx(100 * CALHOUN.latency)


class TestJobShape:
    def test_smp_mode(self):
        shape = bluegene_smp(256)
        assert shape.n_ranks == 256
        assert shape.memory_per_rank == 4 * 1024**3

    def test_vn_mode(self):
        shape = bluegene_vn(256)
        assert shape.n_ranks == 1024
        assert shape.memory_per_rank == 1024**3

    def test_describe(self):
        assert "256 nodes" in bluegene_smp(256).describe()

    def test_custom_shape(self):
        shape = JobShape(CALHOUN, n_nodes=4, ranks_per_node=4)
        assert shape.n_ranks == 16
        assert shape.memory_per_rank == 4 * 1024**3
