"""Unit tests for the per-node memory model."""

import numpy as np
import pytest

from repro.cluster.memory import (
    MemoryModel,
    candidate_row_bytes,
    estimate_mode_bytes,
    predict_subset_peak_bytes,
    streaming_chunk_pairs,
)
from repro.core.state import ModeMatrix
from repro.errors import OutOfMemoryError


def _modes(n, q=8):
    return ModeMatrix(np.ones((n, q)))


class TestMemoryModel:
    def test_under_capacity_records_peak(self):
        mm = MemoryModel(capacity_bytes=10**9)
        mm.charge(0, _modes(10))
        mm.charge(1, _modes(100))
        mm.charge(2, _modes(50))
        assert mm.peak_bytes == int(1.5 * _modes(100).nbytes())
        assert mm.last_iteration == 2

    def test_overflow_raises_with_context(self):
        mm = MemoryModel(capacity_bytes=100)
        with pytest.raises(OutOfMemoryError) as exc_info:
            mm.charge(7, _modes(1000))
        err = exc_info.value
        assert err.iteration == 7
        assert err.required_bytes > 100
        assert err.capacity_bytes == 100

    def test_non_enforcing_dry_run(self):
        mm = MemoryModel(capacity_bytes=1, enforcing=False)
        mm.charge(0, _modes(1000))  # no raise
        assert mm.peak_bytes > 1

    def test_working_factor(self):
        lean = MemoryModel(capacity_bytes=10**9, working_factor=1.0)
        fat = MemoryModel(capacity_bytes=10**9, working_factor=2.0)
        m = _modes(10)
        lean.charge(0, m)
        fat.charge(0, m)
        assert fat.peak_bytes == 2 * lean.peak_bytes

    def test_fresh_resets_peak_keeps_config(self):
        mm = MemoryModel(capacity_bytes=123, working_factor=1.25, enforcing=False)
        mm.charge(0, _modes(100))
        f = mm.fresh()
        assert f.peak_bytes == 0
        assert f.capacity_bytes == 123
        assert f.working_factor == 1.25
        assert f.enforcing is False

    def test_check_alias(self):
        mm = MemoryModel(capacity_bytes=10**9)
        mm.check(3, _modes(5))
        assert mm.last_iteration == 3


class TestEstimate:
    def test_matches_mode_matrix_nbytes(self):
        for n, q in [(10, 8), (100, 70), (3, 130)]:
            est = estimate_mode_bytes(n, q)
            actual = ModeMatrix(np.ones((n, q))).nbytes()
            assert est == actual

    def test_zero_modes(self):
        assert estimate_mode_bytes(0, 10) == 0


class TestCandidateRowBytes:
    def test_deferred_much_smaller_for_wide_networks(self):
        q = 64
        assert candidate_row_bytes(q, "eager") == 8 * 64 + 8
        assert candidate_row_bytes(q, "deferred") == 8 + 16
        assert candidate_row_bytes(q, "eager") >= 4 * candidate_row_bytes(q, "deferred")

    def test_word_rounding(self):
        assert candidate_row_bytes(65, "deferred") == 16 + 16
        assert candidate_row_bytes(1, "eager") == 8 + 8


class TestPipelineAwarePrediction:
    def test_deferred_prediction_not_larger(self):
        from repro.dnc.subsets import enumerate_subsets
        from repro.models.toy import toy_network
        from repro.network.compression import compress_network

        reduced = compress_network(toy_network()).reduced
        for spec in enumerate_subsets(("r6r", "r8r")):
            # The retained-set advantage is the invariant; the per-chunk
            # generation transient is *larger* on the deferred pipeline
            # (dense chunk plus mask plus packed words, all freed per
            # chunk), so bound it with a small pair_chunk — the
            # memory-tight configuration these predictions drive.
            eager = predict_subset_peak_bytes(
                reduced, spec, candidate_pipeline="eager", pair_chunk=4
            )
            deferred = predict_subset_peak_bytes(
                reduced, spec, candidate_pipeline="deferred", pair_chunk=4
            )
            assert 0 <= deferred <= eager
            # Default matches the default pipeline (deferred).
            assert predict_subset_peak_bytes(
                reduced, spec, pair_chunk=4
            ) == deferred


class TestStreamingChunkPairs:
    def test_clamped_to_pair_chunk(self):
        # A huge budget never enlarges the generation chunk beyond the
        # batch path's pair_chunk.
        assert streaming_chunk_pairs(32, 1 << 40, pair_chunk=128) == 128

    def test_tiny_budget_floors_at_one_pair(self):
        assert streaming_chunk_pairs(32, 1) == 1

    def test_budget_scales_chunk(self):
        small = streaming_chunk_pairs(64, 8 << 10, pair_chunk=1 << 20)
        big = streaming_chunk_pairs(64, 128 << 10, pair_chunk=1 << 20)
        assert 1 <= small < big

    def test_auto_uses_capacity_over_default(self):
        q, pc = 64, 1 << 20
        capped = streaming_chunk_pairs(q, "auto", pair_chunk=pc,
                                       capacity_bytes=1 << 20)
        default = streaming_chunk_pairs(q, "auto", pair_chunk=pc)
        assert capped < default  # (1 MiB)/8 budget vs the 16 MiB default

    def test_deferred_pays_more_per_pair(self):
        # Deferred's per-pair transient (dense row + mask + packed words)
        # exceeds eager's (dense row only), so the same budget buys fewer
        # pairs per chunk.
        q, budget, pc = 64, 64 << 10, 1 << 20
        assert streaming_chunk_pairs(
            q, budget, pc, pipeline="deferred"
        ) <= streaming_chunk_pairs(q, budget, pc, pipeline="eager")


class TestStreamingAwarePrediction:
    def test_streaming_prediction_at_most_batch(self):
        from repro.dnc.subsets import enumerate_subsets
        from repro.models.toy import toy_network
        from repro.network.compression import compress_network

        reduced = compress_network(toy_network()).reduced
        for spec in enumerate_subsets(("r6r", "r8r")):
            for pipeline in ("deferred", "eager"):
                batch = predict_subset_peak_bytes(
                    reduced, spec, candidate_pipeline=pipeline
                )
                streamed = predict_subset_peak_bytes(
                    reduced, spec, candidate_pipeline=pipeline,
                    iter_streaming="on", iter_chunk_bytes=4 << 10,
                )
                assert 0 <= streamed <= batch


class TestPredictionUpperBoundsMeasuredPeak:
    """Acceptance property: the a-priori prediction upper-bounds the
    *measured* peak (working-factor-weighted mode storage plus the worst
    iteration's retained-candidate + generation-transient bytes, straight
    from the run stats) across streaming on/off, all pair strategies and
    both candidate pipelines."""

    WF = 1.5

    @staticmethod
    def _measured(stats, wf):
        cand = max(
            (it.candidate_bytes + it.prefilter_bytes for it in stats.iterations),
            default=0,
        )
        return wf * stats.peak_mode_bytes + cand

    @pytest.mark.parametrize("streaming", ["on", "off"])
    @pytest.mark.parametrize("pipeline", ["deferred", "eager"])
    @pytest.mark.parametrize("strategy", ["strided", "block", "tiled"])
    def test_prediction_is_upper_bound(self, streaming, pipeline, strategy):
        from repro.config import AlgorithmOptions
        from repro.dnc.combined import solve_subset
        from repro.dnc.subsets import enumerate_subsets
        from repro.models.toy import toy_network
        from repro.network.compression import compress_network

        reduced = compress_network(toy_network()).reduced
        opts = AlgorithmOptions(
            candidate_pipeline=pipeline,
            iter_streaming=streaming,
            iter_chunk_bytes=(64 << 10) if streaming == "on" else "auto",
            pair_chunk=64,
        )
        for spec in enumerate_subsets(("r6r", "r8r")):
            predicted = predict_subset_peak_bytes(
                reduced, spec,
                working_factor=self.WF,
                candidate_pipeline=pipeline,
                pair_chunk=opts.pair_chunk,
                pair_pruning=opts.pair_pruning,
                iter_streaming=streaming,
                iter_chunk_bytes=opts.iter_chunk_bytes,
            )
            res = solve_subset(
                reduced, spec, 2, options=opts, pair_strategy=strategy
            )
            if res.stats is None:  # structurally empty subproblem
                assert predicted == 0
                continue
            measured = max(self._measured(s, self.WF) for s in res.rank_stats)
            assert measured > 0
            assert predicted >= measured, (
                f"{spec.label()}: predicted {predicted} < measured "
                f"{measured:.0f} (streaming={streaming}, {pipeline}, "
                f"{strategy})"
            )
