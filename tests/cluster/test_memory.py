"""Unit tests for the per-node memory model."""

import numpy as np
import pytest

from repro.cluster.memory import (
    MemoryModel,
    candidate_row_bytes,
    estimate_mode_bytes,
    predict_subset_peak_bytes,
)
from repro.core.state import ModeMatrix
from repro.errors import OutOfMemoryError


def _modes(n, q=8):
    return ModeMatrix(np.ones((n, q)))


class TestMemoryModel:
    def test_under_capacity_records_peak(self):
        mm = MemoryModel(capacity_bytes=10**9)
        mm.charge(0, _modes(10))
        mm.charge(1, _modes(100))
        mm.charge(2, _modes(50))
        assert mm.peak_bytes == int(1.5 * _modes(100).nbytes())
        assert mm.last_iteration == 2

    def test_overflow_raises_with_context(self):
        mm = MemoryModel(capacity_bytes=100)
        with pytest.raises(OutOfMemoryError) as exc_info:
            mm.charge(7, _modes(1000))
        err = exc_info.value
        assert err.iteration == 7
        assert err.required_bytes > 100
        assert err.capacity_bytes == 100

    def test_non_enforcing_dry_run(self):
        mm = MemoryModel(capacity_bytes=1, enforcing=False)
        mm.charge(0, _modes(1000))  # no raise
        assert mm.peak_bytes > 1

    def test_working_factor(self):
        lean = MemoryModel(capacity_bytes=10**9, working_factor=1.0)
        fat = MemoryModel(capacity_bytes=10**9, working_factor=2.0)
        m = _modes(10)
        lean.charge(0, m)
        fat.charge(0, m)
        assert fat.peak_bytes == 2 * lean.peak_bytes

    def test_fresh_resets_peak_keeps_config(self):
        mm = MemoryModel(capacity_bytes=123, working_factor=1.25, enforcing=False)
        mm.charge(0, _modes(100))
        f = mm.fresh()
        assert f.peak_bytes == 0
        assert f.capacity_bytes == 123
        assert f.working_factor == 1.25
        assert f.enforcing is False

    def test_check_alias(self):
        mm = MemoryModel(capacity_bytes=10**9)
        mm.check(3, _modes(5))
        assert mm.last_iteration == 3


class TestEstimate:
    def test_matches_mode_matrix_nbytes(self):
        for n, q in [(10, 8), (100, 70), (3, 130)]:
            est = estimate_mode_bytes(n, q)
            actual = ModeMatrix(np.ones((n, q))).nbytes()
            assert est == actual

    def test_zero_modes(self):
        assert estimate_mode_bytes(0, 10) == 0


class TestCandidateRowBytes:
    def test_deferred_much_smaller_for_wide_networks(self):
        q = 64
        assert candidate_row_bytes(q, "eager") == 8 * 64 + 8
        assert candidate_row_bytes(q, "deferred") == 8 + 16
        assert candidate_row_bytes(q, "eager") >= 4 * candidate_row_bytes(q, "deferred")

    def test_word_rounding(self):
        assert candidate_row_bytes(65, "deferred") == 16 + 16
        assert candidate_row_bytes(1, "eager") == 8 + 8


class TestPipelineAwarePrediction:
    def test_deferred_prediction_not_larger(self):
        from repro.dnc.subsets import enumerate_subsets
        from repro.models.toy import toy_network
        from repro.network.compression import compress_network

        reduced = compress_network(toy_network()).reduced
        for spec in enumerate_subsets(("r6r", "r8r")):
            # The retained-set advantage is the invariant; the per-chunk
            # generation transient is *larger* on the deferred pipeline
            # (dense chunk plus mask plus packed words, all freed per
            # chunk), so bound it with a small pair_chunk — the
            # memory-tight configuration these predictions drive.
            eager = predict_subset_peak_bytes(
                reduced, spec, candidate_pipeline="eager", pair_chunk=4
            )
            deferred = predict_subset_peak_bytes(
                reduced, spec, candidate_pipeline="deferred", pair_chunk=4
            )
            assert 0 <= deferred <= eager
            # Default matches the default pipeline (deferred).
            assert predict_subset_peak_bytes(
                reduced, spec, pair_chunk=4
            ) == deferred
