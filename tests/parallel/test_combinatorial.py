"""Tests for the combinatorial parallel Nullspace Algorithm (Algorithm 2)."""

import numpy as np
import pytest

from repro.cluster.memory import MemoryModel
from repro.core.serial import nullspace_algorithm
from repro.errors import OutOfMemoryError
from repro.parallel.combinatorial import combinatorial_parallel
from repro.parallel.pairs import get_pair_strategy, pair_share_counts
from tests.conftest import assert_same_modes


class TestEquivalenceWithSerial:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 5, 8])
    def test_same_efms_any_rank_count(self, toy_problem, n_ranks):
        serial = nullspace_algorithm(toy_problem)
        run = combinatorial_parallel(toy_problem, n_ranks)
        assert_same_modes(serial.efms_input_order(), run.result.efms_input_order())

    @pytest.mark.parametrize("strategy", ["strided", "block"])
    def test_pair_strategies_equivalent(self, toy_problem, strategy):
        serial = nullspace_algorithm(toy_problem)
        run = combinatorial_parallel(toy_problem, 3, pair_strategy=strategy)
        assert_same_modes(serial.efms_input_order(), run.result.efms_input_order())

    def test_candidate_total_invariant_across_ranks(self, toy_problem):
        totals = {
            combinatorial_parallel(toy_problem, p).stats.total_candidates
            for p in (1, 2, 4)
        }
        assert len(totals) == 1

    @pytest.mark.parametrize("backend", ["sequential", "thread"])
    def test_backends(self, toy_problem, backend):
        serial = nullspace_algorithm(toy_problem)
        run = combinatorial_parallel(toy_problem, 3, backend=backend)
        assert_same_modes(serial.efms_input_order(), run.result.efms_input_order())


class TestPerRankAccounting:
    def test_pairs_partitioned_across_ranks(self, toy_problem):
        run = combinatorial_parallel(toy_problem, 2)
        serial = nullspace_algorithm(toy_problem)
        for i, it_serial in enumerate(serial.stats.iterations):
            rank_pairs = sum(s.iterations[i].n_pairs for s in run.rank_stats)
            assert rank_pairs == it_serial.n_pairs

    def test_traces_recorded(self, toy_problem):
        run = combinatorial_parallel(toy_problem, 3)
        assert len(run.rank_traces) == 3
        # Every rank allgathers once per iteration.
        n_iter = toy_problem.q - toy_problem.first_row
        for trace in run.rank_traces:
            gathers = [e for e in trace.events if e.kind == "allgather"]
            assert len(gathers) == n_iter

    def test_aggregate_stats_max_times(self, toy_problem):
        run = combinatorial_parallel(toy_problem, 2)
        agg = run.stats
        for i in range(len(agg.iterations)):
            per_rank = [s.iterations[i].t_gen_cand for s in run.rank_stats]
            assert agg.iterations[i].t_gen_cand == pytest.approx(max(per_rank))

    def test_replicas_converge(self, toy_problem):
        # combinatorial_parallel itself asserts replica equality; run it
        # at an awkward rank count to exercise the check.
        run = combinatorial_parallel(toy_problem, 7)
        assert run.result.n_efms == 8
        assert run.n_ranks == 7


class TestStopRowAndMemory:
    def test_stop_row(self, toy_problem):
        run = combinatorial_parallel(toy_problem, 2, stop_row=toy_problem.q - 1)
        assert not run.result.complete
        serial = nullspace_algorithm(toy_problem, stop_row=toy_problem.q - 1)
        a = np.sort(np.round(serial.modes.values, 9), axis=0)
        b = np.sort(np.round(run.result.modes.values, 9), axis=0)
        assert np.allclose(a, b)

    def test_memory_model_enforced(self, toy_problem):
        with pytest.raises(OutOfMemoryError):
            combinatorial_parallel(
                toy_problem, 2, memory_model=MemoryModel(capacity_bytes=8)
            )

    def test_dry_run_probe_reports_peak(self, toy_problem):
        probe = MemoryModel(capacity_bytes=1, enforcing=False)
        combinatorial_parallel(toy_problem, 1, memory_model=probe)
        assert probe.peak_bytes > 0


class TestPairStrategies:
    def test_share_counts_sum(self):
        for name in ("strided", "block"):
            counts = pair_share_counts(103, 7, name)
            assert sum(counts) == 103
            assert max(counts) - min(counts) <= 1

    def test_strategy_factory_rejects_unknown(self):
        from repro.errors import AlgorithmError

        with pytest.raises(AlgorithmError):
            get_pair_strategy("roulette")
