"""End-to-end EFM computation over the real multiprocessing backend.

Separate module so the pickling requirements of ``fork``-spawned workers
(module-level functions, picklable problems) are exercised explicitly.
"""

import numpy as np
import pytest

from repro.core.serial import nullspace_algorithm
from repro.efm.api import compute_efms
from repro.parallel.combinatorial import combinatorial_parallel
from tests.conftest import assert_same_modes


class TestProcessBackend:
    def test_problem_pickles(self, toy_problem):
        import pickle

        blob = pickle.dumps(toy_problem)
        back = pickle.loads(blob)
        assert back.names == toy_problem.names
        assert np.array_equal(back.kernel, toy_problem.kernel)

    def test_combinatorial_over_processes(self, toy_problem):
        serial = nullspace_algorithm(toy_problem)
        run = combinatorial_parallel(toy_problem, 3, backend="process")
        assert_same_modes(
            serial.efms_input_order(), run.result.efms_input_order()
        )

    def test_compute_efms_process_backend(self, toy):
        base = compute_efms(toy)
        via_processes = compute_efms(
            toy, method="parallel", n_ranks=2, backend="process"
        )
        assert base.same_modes_as(via_processes)

    def test_traces_survive_process_boundary(self, toy_problem):
        run = combinatorial_parallel(toy_problem, 2, backend="process")
        assert len(run.rank_traces) == 2
        for trace in run.rank_traces:
            assert trace.bytes_sent > 0
