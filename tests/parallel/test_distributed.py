"""Tests for the column-partitioned distributed variant (future work #1)."""

import numpy as np
import pytest

from repro.config import AlgorithmOptions
from repro.core.serial import nullspace_algorithm
from repro.errors import AlgorithmError
from repro.models.generators import random_network
from repro.network.compression import compress_network
from repro.core.kernel import build_problem
from repro.parallel.combinatorial import combinatorial_parallel
from repro.parallel.distributed import distributed_parallel
from tests.conftest import assert_same_modes


class TestEquivalence:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 4])
    def test_same_efms(self, toy_problem, n_ranks):
        serial = nullspace_algorithm(toy_problem)
        run = distributed_parallel(toy_problem, n_ranks)
        assert run.n_efms == serial.n_efms
        assert_same_modes(serial.efms_input_order(), run.efms_input_order())

    def test_random_networks(self):
        for seed in range(5):
            net = random_network(5, 9, seed=seed, reversible_fraction=0.2)
            rec = compress_network(net)
            if rec.reduced.n_reactions == 0:
                continue
            try:
                problem = build_problem(rec.reduced)
            except AlgorithmError:
                continue
            serial = nullspace_algorithm(problem)
            run = distributed_parallel(problem, 3)
            assert_same_modes(serial.efms_input_order(), run.efms_input_order())


class TestPartitioning:
    def test_modes_sharded_not_replicated(self, toy_problem):
        run = distributed_parallel(toy_problem, 4)
        counts = [m.n_modes for m in run.rank_modes]
        assert sum(counts) == 8
        assert max(counts) < 8  # no rank holds everything

    def test_no_duplicate_ownership(self, toy_problem):
        run = distributed_parallel(toy_problem, 3)
        all_words = np.concatenate(
            [m.supports.words for m in run.rank_modes], axis=0
        )
        assert np.unique(all_words, axis=0).shape[0] == all_words.shape[0]

    def test_peak_rank_bytes_below_replicated(self, toy_problem):
        replicated = combinatorial_parallel(toy_problem, 4)
        sharded = distributed_parallel(toy_problem, 4)
        rep_peak = max(s.peak_mode_bytes for s in replicated.rank_stats)
        assert sharded.peak_rank_bytes <= rep_peak

    def test_memory_scaling_with_ranks(self):
        # On a bigger instance the per-rank peak should shrink with P.
        net = random_network(6, 14, seed=42, reversible_fraction=0.1)
        rec = compress_network(net)
        problem = build_problem(rec.reduced)
        peak1 = distributed_parallel(problem, 1).peak_rank_bytes
        peak4 = distributed_parallel(problem, 4).peak_rank_bytes
        assert peak4 < peak1


class TestRestrictions:
    def test_exact_mode_unsupported(self, toy_problem):
        with pytest.raises(AlgorithmError):
            distributed_parallel(
                toy_problem, 2, options=AlgorithmOptions(arithmetic="exact")
            )

    def test_stop_row(self, toy_problem):
        run = distributed_parallel(toy_problem, 2, stop_row=toy_problem.q - 1)
        serial = nullspace_algorithm(toy_problem, stop_row=toy_problem.q - 1)
        got = run.all_modes()
        a = np.sort(np.round(serial.modes.values, 9), axis=0)
        b = np.sort(np.round(got.values, 9), axis=0)
        assert np.allclose(a, b)

    def test_stop_early_marks_incomplete(self, toy_problem):
        run = distributed_parallel(toy_problem, 2, stop_row=toy_problem.q - 1)
        assert not run.complete
        assert run.stopped_at == toy_problem.q - 1
        with pytest.raises(AlgorithmError, match="stopped early at row"):
            run.efms_input_order()
        # The intermediate shards stay readable through .rank_modes/.all_modes.
        assert run.all_modes().n_modes > 0

    def test_full_run_is_complete(self, toy_problem):
        run = distributed_parallel(toy_problem, 2)
        assert run.complete
        assert run.stopped_at == toy_problem.q
