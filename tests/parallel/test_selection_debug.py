"""Replica-consistency fingerprint checks for dynamic row selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AlgorithmOptions
from repro.core.serial import nullspace_algorithm
from repro.errors import AlgorithmError
from repro.parallel._driver_common import (
    check_selection_consistency,
    selection_debug_enabled,
)
from repro.parallel.combinatorial import combinatorial_parallel
from repro.parallel.distributed import distributed_parallel
from tests.conftest import assert_same_modes


class _FakeComm:
    """Allgather stub returning a pre-baked per-rank payload list."""

    def __init__(self, payloads):
        self.payloads = payloads

    def allgather(self, _obj):
        return list(self.payloads)


class TestConsistencyCheck:
    def test_agreement_passes(self):
        fp = (5, 100, 12345)
        check_selection_consistency(_FakeComm([fp, fp, fp]), fp)

    def test_divergence_raises_with_ranks(self):
        good = (5, 100, 12345)
        bad = (6, 100, 12345)
        with pytest.raises(AlgorithmError, match=r"ranks \[2\]"):
            check_selection_consistency(
                _FakeComm([good, good, bad]), good
            )

    def test_enabled_by_trace_or_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SELECTION_DEBUG", raising=False)
        assert not selection_debug_enabled(AlgorithmOptions())
        assert selection_debug_enabled(AlgorithmOptions(record_trace=True))
        monkeypatch.setenv("REPRO_SELECTION_DEBUG", "1")
        assert selection_debug_enabled(AlgorithmOptions())


class TestDebugModeEndToEnd:
    """The fingerprint allgather runs on every iteration in debug/trace
    mode and must be invisible to the result."""

    @pytest.mark.parametrize("backend", ["sequential", "thread"])
    def test_combinatorial_with_trace(self, toy_problem, backend):
        opts = AlgorithmOptions(ordering="dynamic", record_trace=True)
        res = combinatorial_parallel(
            toy_problem, 3, backend=backend, options=opts
        )
        plain = nullspace_algorithm(toy_problem, options=opts)
        assert_same_modes(
            res.result.efms_input_order(), plain.efms_input_order()
        )

    def test_env_var_enables_check(self, toy_problem, monkeypatch):
        monkeypatch.setenv("REPRO_SELECTION_DEBUG", "1")
        opts = AlgorithmOptions(ordering="dynamic")
        res = combinatorial_parallel(toy_problem, 2, options=opts)
        plain = nullspace_algorithm(toy_problem, options=opts)
        assert_same_modes(
            res.result.efms_input_order(), plain.efms_input_order()
        )

    def test_distributed_with_trace(self, toy_problem):
        opts = AlgorithmOptions(ordering="dynamic", record_trace=True)
        res = distributed_parallel(toy_problem, 3, options=opts)
        plain = nullspace_algorithm(toy_problem, options=opts)
        assert_same_modes(res.efms_input_order(), plain.efms_input_order())
