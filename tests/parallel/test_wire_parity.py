"""Wire-protocol parity: typed codec vs legacy pickle.

The wire protocol is pure transport — it must never change a single bit
of any result.  This suite asserts (1) collective/point-to-point results
are bit-identical across ``wire_protocol`` in {typed, pickle} on every
backend, and (2) final EFM sets are bit-identical across protocols,
backends and candidate pipelines, with the yeast-I-small 530-EFM pin as
the slow acceptance property.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AlgorithmOptions
from repro.efm.api import compute_efms
from repro.mpi.spmd import run_spmd
from repro.models.generators import random_network
from repro.models.variants import yeast_1_small

BACKENDS = ("sequential", "thread", "process")
PROTOCOLS = ("typed", "pickle")


def _job_collectives(comm):
    """Exercise allgather / bcast / send+recv with mixed payloads."""
    arr = (np.arange(50, dtype=np.float64) + 1) * (comm.rank + 1)
    words = np.full((3, 2), comm.rank, dtype=np.uint64)
    g = comm.allgather((words, arr, comm.rank, f"r{comm.rank}"))
    b = comm.bcast(arr * 2 if comm.rank == 1 else None, root=1)
    comm.send(arr[:5], (comm.rank + 1) % comm.size, tag=3)
    p2p = comm.recv((comm.rank - 1) % comm.size, tag=3)
    return (
        [(np.asarray(w).copy(), np.asarray(a).copy(), r, s) for w, a, r, s in g],
        np.asarray(b).copy(),
        np.asarray(p2p).copy(),
    )


def _canon(outs):
    """Backend-independent structural form for comparison."""
    canon = []
    for g, b, p2p in outs:
        canon.append(
            (
                [(w.tolist(), a.tolist(), r, s) for w, a, r, s in g],
                b.tolist(),
                p2p.tolist(),
            )
        )
    return canon


@pytest.mark.parametrize("backend", BACKENDS)
def test_collectives_identical_across_protocols(backend):
    per_protocol = {
        proto: _canon(
            run_spmd(_job_collectives, 3, backend=backend, wire_protocol=proto)
        )
        for proto in PROTOCOLS
    }
    assert per_protocol["typed"] == per_protocol["pickle"]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("pipeline", ("deferred", "eager"))
def test_efms_identical_across_protocols(backend, pipeline):
    net = random_network(
        n_metabolites=5, n_reactions=10, seed=42, reversible_fraction=0.3
    )
    runs = {
        proto: compute_efms(
            net,
            method="parallel",
            n_ranks=2,
            backend=backend,
            options=AlgorithmOptions(
                wire_protocol=proto, candidate_pipeline=pipeline
            ),
        )
        for proto in PROTOCOLS
    }
    assert runs["typed"].n_efms == runs["pickle"].n_efms
    assert np.array_equal(runs["typed"].fluxes, runs["pickle"].fluxes)


@pytest.mark.parametrize("proto", PROTOCOLS)
def test_distributed_efms_identical_across_protocols(proto):
    net = random_network(n_metabolites=4, n_reactions=9, seed=11)
    ref = compute_efms(net)
    run = compute_efms(
        net,
        method="distributed",
        n_ranks=3,
        options=AlgorithmOptions(wire_protocol=proto),
    )
    assert run.n_efms == ref.n_efms


def test_wire_stats_populated_typed():
    net = random_network(n_metabolites=5, n_reactions=10, seed=7)
    run = compute_efms(
        net,
        method="parallel",
        n_ranks=2,
        options=AlgorithmOptions(wire_protocol="typed"),
    )
    assert run.stats is not None
    assert run.stats.n_serializations > 0
    assert run.stats.ser_bytes > 0
    assert run.stats.wire_bytes_sent > 0


def test_typed_serializes_less_than_pickle():
    """Same run, same logical payloads: the typed frames are tighter and
    (on fan-out transports) produced fewer times."""
    net = random_network(n_metabolites=5, n_reactions=10, seed=3)
    per = {
        proto: compute_efms(
            net,
            method="parallel",
            n_ranks=4,
            backend="process",
            options=AlgorithmOptions(wire_protocol=proto),
        ).stats
        for proto in PROTOCOLS
    }
    assert per["typed"].ser_bytes < per["pickle"].ser_bytes


@pytest.mark.slow
def test_yeast_small_wire_parity_property():
    """Acceptance property: yeast-I-small — typed and pickle produce
    bit-identical EFM sets (530) across backends and both candidate
    pipelines."""
    net = yeast_1_small()
    ref = None
    for proto in PROTOCOLS:
        for pipeline in ("deferred", "eager"):
            for backend, n_ranks in (("sequential", 4), ("thread", 2), ("process", 2)):
                run = compute_efms(
                    net,
                    method="parallel",
                    n_ranks=n_ranks,
                    backend=backend,
                    options=AlgorithmOptions(
                        wire_protocol=proto, candidate_pipeline=pipeline
                    ),
                )
                assert run.n_efms == 530, (proto, pipeline, backend)
                if ref is None:
                    ref = run.fluxes
                else:
                    assert np.array_equal(run.fluxes, ref), (
                        proto, pipeline, backend,
                    )
