"""Unit tests for divide-and-conquer subset specifications."""

import pytest

from repro.dnc.subsets import SubsetSpec, enumerate_subsets, validate_partition
from repro.errors import PartitionError


class TestSubsetSpec:
    def test_bit_convention_lsb_first(self):
        spec = SubsetSpec(subset_id=0b101, partition=("a", "b", "c"))
        assert spec.nonzero == ("a", "c")
        assert spec.zero == ("b",)

    def test_all_zero_and_all_nonzero(self):
        p = ("x", "y")
        assert SubsetSpec(0, p).nonzero == ()
        assert SubsetSpec(3, p).zero == ()

    def test_label_marks_zero_with_tilde(self):
        spec = SubsetSpec(subset_id=0b10, partition=("a", "b"))
        assert spec.label() == "~a b"

    def test_id_out_of_range(self):
        with pytest.raises(PartitionError):
            SubsetSpec(subset_id=4, partition=("a", "b"))

    def test_duplicate_partition(self):
        with pytest.raises(PartitionError):
            SubsetSpec(subset_id=0, partition=("a", "a"))

    def test_refine_prepends_and_preserves_bits(self):
        spec = SubsetSpec(subset_id=0b10, partition=("a", "b"))  # a=0, b=1
        zero_child, nonzero_child = spec.refine("c")
        assert zero_child.partition == ("c", "a", "b")
        assert zero_child.zero == ("c", "a")
        assert zero_child.nonzero == ("b",)
        assert nonzero_child.nonzero == ("c", "b")

    def test_refine_rejects_existing(self):
        with pytest.raises(PartitionError):
            SubsetSpec(0, ("a",)).refine("a")

    def test_q_sub(self):
        assert SubsetSpec(0, ("a", "b", "c")).q_sub == 3


class TestEnumerate:
    def test_count_and_order(self):
        specs = enumerate_subsets(("a", "b"))
        assert [s.subset_id for s in specs] == [0, 1, 2, 3]

    def test_disjoint_patterns(self):
        specs = enumerate_subsets(("a", "b", "c"))
        patterns = {(s.nonzero, s.zero) for s in specs}
        assert len(patterns) == 8

    def test_empty_partition_rejected(self):
        with pytest.raises(PartitionError):
            enumerate_subsets(())


class TestValidatePartition:
    def test_accepts_existing(self, toy_record):
        validate_partition(toy_record.reduced, ("r6r", "r8r"))

    def test_rejects_compressed_away(self, toy_record):
        # r9 was merged into r3 by compression — the paper's warning that
        # partition reactions "can not be randomly selected".
        with pytest.raises(PartitionError, match="r9"):
            validate_partition(toy_record.reduced, ("r9",))
