"""Tests for partition-reaction selection heuristics (future work #2)."""

import pytest

from repro.core.serial import nullspace_algorithm
from repro.dnc.combined import combined_parallel
from repro.dnc.selection import estimate_subset_counts, select_partition_reactions
from repro.core.kernel import build_problem
from repro.errors import PartitionError
from tests.conftest import assert_same_modes


class TestSelection:
    @pytest.mark.parametrize("method", ["tail", "balance", "probe"])
    def test_selected_partition_exists_and_works(self, toy_record, toy_problem, method):
        partition = select_partition_reactions(
            toy_record.reduced, 2, method=method
        )
        assert len(partition) == 2
        for name in partition:
            assert toy_record.reduced.has_reaction(name)
        run = combined_parallel(toy_record.reduced, partition, 1)
        serial = nullspace_algorithm(toy_problem)
        assert_same_modes(serial.efms_input_order(), run.efms())

    def test_tail_takes_bottom_rows(self, toy_record):
        partition = select_partition_reactions(toy_record.reduced, 2, method="tail")
        # The paper processes reversibles last; the toy tail is r6r, r8r.
        assert partition == ("r6r", "r8r")

    def test_q_sub_bounds(self, toy_record):
        with pytest.raises(PartitionError):
            select_partition_reactions(toy_record.reduced, 0)
        with pytest.raises(PartitionError):
            select_partition_reactions(
                toy_record.reduced, toy_record.reduced.n_reactions
            )

    def test_unknown_method(self, toy_record):
        with pytest.raises(PartitionError):
            select_partition_reactions(toy_record.reduced, 2, method="tarot")


class TestEstimates:
    def test_counts_match_real_runs(self, toy_record):
        partition = ("r6r", "r8r")
        estimates = estimate_subset_counts(
            toy_record.reduced, partition, mode_budget=10_000
        )
        real = combined_parallel(toy_record.reduced, partition, 1)
        for s in real.subsets:
            assert estimates[s.spec.subset_id] == s.n_candidates

    def test_budget_exceeded_reported_none(self, toy_record):
        estimates = estimate_subset_counts(
            toy_record.reduced, ("r6r", "r8r"), mode_budget=0
        )
        assert all(v is None for v in estimates.values())
