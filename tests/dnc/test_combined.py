"""Tests for the combined parallel Nullspace Algorithm (Algorithm 3)."""

import numpy as np
import pytest

from repro.cluster.memory import MemoryModel
from repro.core.kernel import build_problem
from repro.core.serial import nullspace_algorithm
from repro.dnc.combined import combined_parallel, solve_subset
from repro.dnc.subsets import SubsetSpec
from repro.errors import PartitionError
from repro.models.generators import random_network
from repro.network.compression import compress_network
from tests.conftest import assert_same_modes


class TestToyPartition:
    def test_union_equals_serial(self, toy_record, toy_problem):
        run = combined_parallel(toy_record.reduced, ("r6r", "r8r"), 2)
        serial = nullspace_algorithm(toy_problem)
        assert_same_modes(serial.efms_input_order(), run.efms())

    def test_subsets_disjoint(self, toy_record):
        run = combined_parallel(toy_record.reduced, ("r6r", "r8r"), 1)
        j6 = toy_record.reduced.reaction_index("r6r")
        j8 = toy_record.reduced.reaction_index("r8r")
        for s in run.subsets:
            for row in s.efms:
                assert (abs(row[j6]) > 1e-9) == ("r6r" in s.spec.nonzero)
                assert (abs(row[j8]) > 1e-9) == ("r8r" in s.spec.nonzero)

    def test_single_reaction_partition(self, toy_record, toy_problem):
        run = combined_parallel(toy_record.reduced, ("r8r",), 1)
        assert len(run.subsets) == 2
        serial = nullspace_algorithm(toy_problem)
        assert_same_modes(serial.efms_input_order(), run.efms())

    def test_irreversible_partition_reaction(self, toy_record, toy_problem):
        # Partitioning across an irreversible reaction must filter by sign.
        run = combined_parallel(toy_record.reduced, ("r7",), 1)
        serial = nullspace_algorithm(toy_problem)
        assert_same_modes(serial.efms_input_order(), run.efms())

    def test_three_reaction_partition(self, toy_record, toy_problem):
        run = combined_parallel(toy_record.reduced, ("r7", "r6r", "r8r"), 1)
        assert len(run.subsets) == 8
        serial = nullspace_algorithm(toy_problem)
        assert_same_modes(serial.efms_input_order(), run.efms())


class TestRandomNetworks:
    @pytest.mark.parametrize("seed", range(8))
    def test_union_invariant(self, seed):
        net = random_network(5, 9, seed=seed, reversible_fraction=0.3)
        rec = compress_network(net)
        red = rec.reduced
        if red.n_reactions < 4:
            pytest.skip("over-compressed instance")
        serial = nullspace_algorithm(build_problem(red))
        partition = red.reaction_names[-2:]
        run = combined_parallel(red, partition, 2)
        assert_same_modes(serial.efms_input_order(), run.efms())


class TestSubsetMechanics:
    def test_empty_subset_graceful(self, toy_record):
        # Zeroing r1 and r5 cuts all glucose input paths in some subsets.
        run = combined_parallel(toy_record.reduced, ("r1", "r5"), 1)
        total = sum(s.n_efms for s in run.subsets)
        assert total == 8  # union still complete

    def test_solve_subset_reports_candidates(self, toy_record):
        spec = SubsetSpec(subset_id=3, partition=("r6r", "r8r"))
        result = solve_subset(toy_record.reduced, spec, 1)
        assert result.completed
        assert result.n_candidates >= 0
        assert result.wall_time > 0

    def test_oom_captured_not_raised(self, toy_record):
        spec = SubsetSpec(subset_id=0, partition=("r6r", "r8r"))
        result = solve_subset(
            toy_record.reduced, spec, 1,
            memory_model=MemoryModel(capacity_bytes=4),
        )
        assert not result.completed
        assert result.oom is not None
        assert result.n_efms == 0

    def test_unknown_partition_reaction(self, toy_record):
        with pytest.raises(PartitionError):
            combined_parallel(toy_record.reduced, ("bogus",), 1)

    def test_subset_ids_filter(self, toy_record):
        run = combined_parallel(
            toy_record.reduced, ("r6r", "r8r"), 1, subset_ids=[0, 3]
        )
        assert [s.spec.subset_id for s in run.subsets] == [0, 3]
        assert run.n_efms == 4  # two of the four 2-mode subsets

    def test_incomplete_union_raises(self, toy_record):
        run = combined_parallel(
            toy_record.reduced, ("r6r", "r8r"), 1,
            memory_model=MemoryModel(capacity_bytes=4),
        )
        assert not run.complete
        from repro.errors import AlgorithmError

        with pytest.raises(AlgorithmError):
            run.efms()

    def test_candidate_counts_sum(self, toy_record):
        run = combined_parallel(toy_record.reduced, ("r6r", "r8r"), 1)
        assert run.total_candidates == sum(s.n_candidates for s in run.subsets)
