"""Tests for the graph-partitioning exploration (future work #3)."""

import networkx as nx
import pytest

from repro.dnc.combined import combined_parallel
from repro.dnc.graphs import (
    cut_metabolites,
    cut_reactions,
    graph_bisection,
    metabolite_reaction_graph,
    partition_quality,
    reaction_graph,
    suggest_partition_from_cut,
)
from repro.errors import PartitionError
from repro.models.yeast import yeast_network_1


class TestGraphs:
    def test_bipartite_structure(self, toy):
        g = metabolite_reaction_graph(toy)
        assert g.number_of_nodes() == 5 + 9
        kinds = nx.get_node_attributes(g, "kind")
        for u, v in g.edges:
            assert {kinds[u], kinds[v]} == {"metabolite", "reaction"}

    def test_bipartite_edges_match_stoichiometry(self, toy):
        g = metabolite_reaction_graph(toy)
        assert g.has_edge(("R", "r3"), ("M", "C"))
        assert g[("R", "r3")][("M", "C")]["coefficient"] == -1.0
        assert not g.has_edge(("R", "r1"), ("M", "B"))

    def test_reaction_graph_weights(self, toy):
        g = reaction_graph(toy)
        # r2 (A->C) and r5 (A->B) share exactly metabolite A.
        assert g["r2"]["r5"]["weight"] == 1
        assert g["r2"]["r5"]["metabolites"] == ["A"]
        # r6r (B<->C) and r2 (A->C) share C.
        assert g.has_edge("r6r", "r2")

    def test_reaction_graph_connected_for_toy(self, toy):
        assert nx.is_connected(reaction_graph(toy))


class TestBisection:
    def test_blocks_partition_reactions(self, toy):
        a, b = graph_bisection(toy, seed=1)
        assert a | b == set(toy.reaction_names)
        assert not (a & b)

    def test_roughly_balanced(self, toy):
        a, b = graph_bisection(toy, seed=1)
        q = partition_quality(toy, a, b)
        assert q["balance"] >= 0.5

    def test_quality_validates_blocks(self, toy):
        a, b = graph_bisection(toy)
        with pytest.raises(PartitionError):
            partition_quality(toy, a, a)

    def test_yeast_bisection_has_small_cut(self):
        net = yeast_network_1()
        a, b = graph_bisection(net, seed=0)
        q = partition_quality(net, a, b)
        # A meaningful community structure: the cut is well under the
        # whole metabolite set.
        assert q["cut_fraction"] < 0.8
        assert q["balance"] > 0.6


class TestCuts:
    def test_cut_metabolites_shared_only(self, toy):
        a = frozenset({"r1", "r2", "r5"})
        b = frozenset(set(toy.reaction_names) - a)
        cut = cut_metabolites(toy, a, b)
        # A is produced/consumed only inside block a -> not on the cut.
        assert "A" not in cut
        assert "B" in cut and "C" in cut

    def test_cut_reactions_ranked(self, toy):
        a, b = graph_bisection(toy, seed=1)
        ranked = cut_reactions(toy, a, b)
        assert ranked  # the toy graph is connected: some cut exists
        cut = set(cut_metabolites(toy, a, b))
        scores = [
            sum(1 for m in toy.reaction(r).stoich if m in cut) for r in ranked
        ]
        assert scores == sorted(scores, reverse=True)


class TestSuggestion:
    def test_suggested_partition_is_valid_for_algorithm3(self, toy_record):
        partition = suggest_partition_from_cut(toy_record.reduced, 2, seed=3)
        run = combined_parallel(toy_record.reduced, partition, 1)
        assert run.n_efms == 8  # complete EFM set regardless of partition

    def test_qsub_bounds(self, toy):
        with pytest.raises(PartitionError):
            suggest_partition_from_cut(toy, 0)
        with pytest.raises(PartitionError):
            suggest_partition_from_cut(toy, toy.n_reactions)
