"""Tests for memory-driven adaptive refinement."""

import pytest

from repro.cluster.memory import MemoryModel
from repro.core.kernel import build_problem
from repro.core.serial import nullspace_algorithm
from repro.dnc.adaptive import adaptive_combined, default_extension_chooser
from repro.dnc.subsets import SubsetSpec
from tests.conftest import assert_same_modes


class TestAdaptive:
    def test_no_refinement_when_memory_ample(self, toy_record):
        adaptive = adaptive_combined(
            toy_record.reduced, ("r6r", "r8r"), 1,
            MemoryModel(capacity_bytes=10**9),
        )
        assert adaptive.complete
        assert adaptive.events == []
        assert adaptive.combined.n_efms == 8

    def test_refines_under_pressure_and_stays_correct(self, toy_record, toy_problem):
        # Capacity just below the full-problem peak: some subsets refine.
        probe = MemoryModel(capacity_bytes=1, enforcing=False)
        nullspace_algorithm(toy_problem, memory_check=probe.check)
        cap = int(probe.peak_bytes * 0.8)
        adaptive = adaptive_combined(
            toy_record.reduced, ("r8r",), 1,
            MemoryModel(capacity_bytes=cap), max_depth=4,
        )
        assert adaptive.complete
        serial = nullspace_algorithm(toy_problem)
        assert_same_modes(serial.efms_input_order(), adaptive.combined.efms())

    def test_failure_reported_when_depth_exhausted(self, toy_record):
        adaptive = adaptive_combined(
            toy_record.reduced, ("r8r",), 1,
            MemoryModel(capacity_bytes=4), max_depth=1,
        )
        assert not adaptive.complete
        assert adaptive.failed

    def test_events_record_context(self, toy_record, toy_problem):
        probe = MemoryModel(capacity_bytes=1, enforcing=False)
        nullspace_algorithm(toy_problem, memory_check=probe.check)
        adaptive = adaptive_combined(
            toy_record.reduced, ("r8r",), 1,
            MemoryModel(capacity_bytes=int(probe.peak_bytes * 0.8)),
        )
        for ev in adaptive.events:
            assert ev.added_reaction not in ev.parent.partition
            assert ev.required_bytes is None or ev.required_bytes > 0


class TestExtensionChooser:
    def test_prefers_reversible(self, toy_record):
        spec = SubsetSpec(0, ("r8r",))
        choice = default_extension_chooser(spec, toy_record.reduced)
        assert choice == "r6r"  # the only other reversible

    def test_falls_back_to_irreversible(self, toy_record):
        spec = SubsetSpec(0, ("r6r", "r8r"))
        choice = default_extension_chooser(spec, toy_record.reduced)
        assert not toy_record.reduced.reaction(choice).reversible

    def test_exhaustion_raises(self, toy_record):
        all_names = toy_record.reduced.reaction_names
        spec = SubsetSpec(0, all_names)
        from repro.errors import PartitionError

        with pytest.raises(PartitionError):
            default_extension_chooser(spec, toy_record.reduced)
