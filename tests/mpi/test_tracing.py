"""Unit tests for communication tracing and payload sizing."""

import numpy as np
import pytest

from repro.core.state import CandidateBatch, ModeMatrix
from repro.errors import CommunicatorError
from repro.linalg.bitset import PackedSupports
from repro.mpi.comm import check_same_value, partition_evenly, payload_nbytes
from repro.mpi.spmd import run_spmd
from repro.mpi.tracing import TracingCommunicator


def _traced_job(comm):
    traced = TracingCommunicator(comm)
    payload = np.zeros(128, dtype=np.float64)  # 1024 bytes
    traced.allgather(payload)
    if traced.rank == 0:
        traced.send(payload, dest=1)
    if traced.rank == 1:
        traced.recv(0)
    traced.barrier()
    return traced.trace


class TestPayloadNbytes:
    def test_ndarray(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_mode_matrix_uses_nbytes_method(self):
        m = ModeMatrix(np.ones((4, 8)))
        assert payload_nbytes(m) == m.nbytes()

    def test_array_tuple(self):
        objs = [np.zeros(4), np.zeros(6)]
        assert payload_nbytes(objs) == 80

    def test_generic_object_pickled(self):
        assert payload_nbytes({"a": 1}) > 0

    def test_none(self):
        assert payload_nbytes(None) > 0  # pickled size, small

    def test_nested_containers_summed_recursively(self):
        payload = (np.zeros(4), [np.zeros(2), np.zeros(2)], np.zeros(8))
        assert payload_nbytes(payload) == (4 + 2 + 2 + 8) * 8

    def test_candidate_batch_wire_tuple(self):
        """Regression: the deferred pipeline's allgather payload must be
        measured by its array contents, not a container pickle."""
        n, q = 6, 70  # two 64-bit support words per candidate
        words = np.zeros((n, 2), dtype=np.uint64)
        idx = np.arange(n, dtype=np.int64)
        batch = CandidateBatch(PackedSupports(words, q), idx, idx, 0)
        wire = batch.to_wire()
        # Wire carries packed words + two int32 index arrays; the
        # coefficients are derived on receive, never stored or shipped.
        expected = words.nbytes + 2 * 4 * n
        assert payload_nbytes(wire) == expected
        assert expected < batch.nbytes()
        # Packed wire beats the dense (values + supports) payload by far.
        dense = batch.materialize(np.ones((n, q)))
        assert payload_nbytes((dense.values, dense.supports.words)) > 4 * expected


class TestTracingCommunicator:
    def test_counters(self):
        traces = run_spmd(_traced_job, 3, backend="sequential")
        t0 = traces[0]
        # allgather: bytes_out = 1024 * (size-1); one extra p2p send.
        assert t0.bytes_sent == 1024 * 2 + 1024
        assert t0.n_messages == 2 + 1
        t2 = traces[2]
        assert t2.bytes_sent == 1024 * 2
        assert t2.bytes_received == 1024 * 2

    def test_allgather_bytes_excludes_p2p(self):
        traces = run_spmd(_traced_job, 3, backend="sequential")
        # Rank 0 also does a p2p send; allgather_bytes counts only the
        # collective's outbound traffic.
        assert traces[0].allgather_bytes == 1024 * 2
        assert traces[0].bytes_sent == traces[0].allgather_bytes + 1024

    def test_recv_bytes_counted(self):
        traces = run_spmd(_traced_job, 2, backend="sequential")
        t1 = traces[1]
        assert t1.bytes_received == 1024 * 1 + 1024  # allgather peer + p2p

    def test_merge_and_clear(self):
        traces = run_spmd(_traced_job, 2, backend="sequential")
        merged = traces[0].merge(traces[1])
        assert merged.bytes_sent == traces[0].bytes_sent + traces[1].bytes_sent
        traces[0].clear()
        assert traces[0].bytes_sent == 0


def _same_value_job(comm, diverge):
    value = comm.rank if diverge and comm.rank == 1 else 42
    check_same_value(comm, value, what="the answer")
    return True


class TestHelpers:
    def test_check_same_value_passes(self):
        assert run_spmd(_same_value_job, 3, args=(False,)) == [True] * 3

    def test_check_same_value_detects_divergence(self):
        with pytest.raises(CommunicatorError):
            run_spmd(_same_value_job, 3, args=(True,))

    def test_partition_evenly(self):
        shares = partition_evenly(10, 3)
        assert shares == [(0, 4), (4, 7), (7, 10)]
        assert partition_evenly(2, 4) == [(0, 1), (1, 2), (2, 2), (2, 2)]
