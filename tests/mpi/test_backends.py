"""Cross-backend tests for the message-passing substrate."""

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.mpi.spmd import get_engine, run_spmd

BACKENDS = ("sequential", "thread", "process")


# Module-level SPMD bodies (the process backend requires picklables).

def _job_allgather(comm, base):
    return comm.allgather(comm.rank * base)


def _job_ring(comm):
    dest = (comm.rank + 1) % comm.size
    src = (comm.rank - 1) % comm.size
    comm.send(f"from-{comm.rank}", dest, tag=5)
    return comm.recv(src, tag=5)


def _job_barrier_order(comm):
    for _ in range(3):
        comm.barrier()
    return comm.rank


def _job_bcast(comm):
    return comm.bcast("payload" if comm.rank == 1 else None, root=1)


def _job_gather(comm):
    return comm.gather(comm.rank ** 2, root=0)


def _job_allreduce(comm):
    return comm.allreduce(comm.rank + 1)


def _job_numpy(comm):
    data = np.full(100, comm.rank, dtype=np.int64)
    parts = comm.allgather(data)
    return int(sum(p.sum() for p in parts))


def _job_no_aliasing(comm):
    data = np.zeros(4)
    parts = comm.allgather(data)
    peer = (comm.rank + 1) % comm.size
    try:
        parts[peer][:] = 99.0  # a received buffer must never reach the sender
        mutated = True
    except ValueError:  # typed protocol: received views are read-only
        mutated = False
    again = comm.allgather(data)
    return mutated, float(again[peer].sum())


def _job_tag_matching(comm):
    if comm.rank == 0:
        comm.send("b", 1, tag=2)
        comm.send("a", 1, tag=1)
    if comm.rank == 1:
        first = comm.recv(0, tag=1)  # out of arrival order
        second = comm.recv(0, tag=2)
        return first, second
    return None


def _job_fails_on_rank(comm):
    if comm.rank == 1:
        raise ValueError("rank 1 exploded")
    comm.barrier()
    return comm.rank


@pytest.mark.parametrize("backend", BACKENDS)
class TestCollectives:
    def test_allgather(self, backend):
        outs = run_spmd(_job_allgather, 4, backend=backend, args=(10,))
        assert all(o == [0, 10, 20, 30] for o in outs)

    def test_ring_send_recv(self, backend):
        outs = run_spmd(_job_ring, 4, backend=backend)
        assert outs == [f"from-{(r - 1) % 4}" for r in range(4)]

    def test_repeated_barriers(self, backend):
        assert run_spmd(_job_barrier_order, 3, backend=backend) == [0, 1, 2]

    def test_bcast(self, backend):
        assert run_spmd(_job_bcast, 3, backend=backend) == ["payload"] * 3

    def test_gather(self, backend):
        outs = run_spmd(_job_gather, 3, backend=backend)
        assert outs[0] == [0, 1, 4]
        assert outs[1] is None and outs[2] is None

    def test_allreduce_default_sum(self, backend):
        assert run_spmd(_job_allreduce, 4, backend=backend) == [10] * 4

    def test_numpy_payloads(self, backend):
        outs = run_spmd(_job_numpy, 3, backend=backend)
        assert outs == [300] * 3  # 0*100 + 1*100 + 2*100

    def test_tag_matching_out_of_order(self, backend):
        outs = run_spmd(_job_tag_matching, 2, backend=backend)
        assert outs[1] == ("a", "b")

    def test_single_rank(self, backend):
        outs = run_spmd(_job_allgather, 1, backend=backend, args=(5,))
        assert outs == [[0]]


@pytest.mark.parametrize("backend", BACKENDS)
class TestIsolation:
    def test_pickle_copies_do_not_leak(self, backend):
        outs = run_spmd(
            _job_no_aliasing, 3, backend=backend, wire_protocol="pickle"
        )
        # Legacy protocol: received buffers are private writable copies.
        assert all(o == (True, 0.0) for o in outs)

    def test_typed_views_are_readonly(self, backend):
        outs = run_spmd(
            _job_no_aliasing, 3, backend=backend, wire_protocol="typed"
        )
        # Typed protocol: received arrays are zero-copy views with
        # writeable=False — mutation raises instead of silently copying.
        assert all(o == (False, 0.0) for o in outs)


@pytest.mark.parametrize("backend", ("sequential", "thread"))
class TestErrors:
    def test_rank_failure_propagates(self, backend):
        with pytest.raises((ValueError, CommunicatorError)):
            run_spmd(_job_fails_on_rank, 3, backend=backend)


class TestSequentialDeterminism:
    def test_root_cause_preserved(self):
        with pytest.raises(ValueError, match="rank 1 exploded"):
            run_spmd(_job_fails_on_rank, 3, backend="sequential")


class TestEngineFactory:
    def test_unknown_backend(self):
        with pytest.raises(CommunicatorError):
            get_engine("smoke-signals")

    def test_zero_ranks(self):
        with pytest.raises(CommunicatorError):
            run_spmd(_job_allgather, 0, args=(1,))

    def test_names(self):
        for b in BACKENDS:
            assert get_engine(b).name == b
