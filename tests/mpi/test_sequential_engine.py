"""Determinism and scheduling tests specific to the sequential engine."""

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.mpi.spmd import run_spmd


def _job_record_order(comm, log):
    """Ranks append to a shared list; the sequential engine must produce
    the same interleaving on every run."""
    log.append(("start", comm.rank))
    comm.allgather(comm.rank)
    log.append(("mid", comm.rank))
    comm.barrier()
    log.append(("end", comm.rank))
    return comm.rank


def _job_nested_collectives(comm):
    totals = []
    for round_ in range(4):
        vals = comm.allgather(comm.rank * round_)
        totals.append(sum(vals))
        comm.barrier()
    return totals


def _job_pingpong(comm):
    if comm.size < 2:
        return 0
    count = 0
    if comm.rank == 0:
        for i in range(5):
            comm.send(i, 1, tag=i)
            count += comm.recv(1, tag=i)
    elif comm.rank == 1:
        for i in range(5):
            v = comm.recv(0, tag=i)
            comm.send(v * 2, 0, tag=i)
    return count


def _job_self_send(comm):
    comm.send("note-to-self", comm.rank, tag=9)
    return comm.recv(comm.rank, tag=9)


class TestDeterminism:
    def test_interleaving_reproducible(self):
        logs = []
        for _ in range(3):
            log: list = []
            run_spmd(_job_record_order, 3, backend="sequential", args=(log,))
            logs.append(tuple(log))
        assert logs[0] == logs[1] == logs[2]

    def test_rank0_runs_first(self):
        log: list = []
        run_spmd(_job_record_order, 4, backend="sequential", args=(log,))
        assert log[0] == ("start", 0)

    def test_many_collective_rounds(self):
        outs = run_spmd(_job_nested_collectives, 3, backend="sequential")
        # round r: sum of rank*r over ranks 0..2 = 3r
        assert outs[0] == [0, 3, 6, 9]
        assert all(o == outs[0] for o in outs)


class TestPointToPoint:
    def test_pingpong(self):
        outs = run_spmd(_job_pingpong, 2, backend="sequential")
        assert outs[0] == sum(2 * i for i in range(5))

    def test_self_send_sequential(self):
        outs = run_spmd(_job_self_send, 2, backend="sequential")
        assert outs == ["note-to-self"] * 2


class TestRobustness:
    def test_numpy_heavy_payloads(self):
        def job(comm):
            data = np.random.default_rng(comm.rank).normal(size=(50, 50))
            parts = comm.allgather(data)
            return float(sum(p.sum() for p in parts))

        outs = run_spmd(job, 4, backend="sequential")
        assert all(abs(o - outs[0]) < 1e-9 for o in outs)
