"""Unit tests for the typed wire codec and payload measurement."""

from fractions import Fraction

import numpy as np
import pytest

from repro.mpi import wire
from repro.mpi.comm import payload_nbytes
from repro.mpi.wire import (
    WireCounters,
    WireError,
    decode,
    encode,
    is_frame,
    pack_message,
    unpack_message,
)


def roundtrip(obj):
    return decode(encode(obj).to_bytes())


def deep_equal(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and a.shape == b.shape
            and np.array_equal(a, b)
        )
    if isinstance(a, (tuple, list)):
        return (
            type(a) is type(b)
            and len(a) == len(b)
            and all(deep_equal(x, y) for x, y in zip(a, b))
        )
    return type(a) is type(b) and a == b


class TestRoundtrip:
    @pytest.mark.parametrize(
        "obj",
        [
            None,
            True,
            False,
            0,
            -1,
            2**62,
            3.14159,
            "unicode: ∅→µ",
            b"raw bytes",
            (),
            [],
            (1, "two", 3.0, None),
            [[1, 2], (3, [4])],
        ],
    )
    def test_scalars_and_containers(self, obj):
        assert deep_equal(roundtrip(obj), obj)

    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(12, dtype=np.float64),
            np.arange(6, dtype=np.int32).reshape(2, 3),
            np.array([], dtype=np.uint64),
            np.zeros((0, 4), dtype=np.uint64),
            np.array(7.5),  # 0-d
            np.array([True, False, True]),
            np.arange(4, dtype=">f8"),  # big-endian
        ],
    )
    def test_arrays(self, arr):
        out = roundtrip(arr)
        assert out.dtype == arr.dtype and out.shape == arr.shape
        assert np.array_equal(out, arr)

    def test_noncontiguous_and_fortran(self):
        base = np.arange(24, dtype=np.float64).reshape(4, 6)
        for arr in (base[:, ::2], np.asfortranarray(base)):
            out = roundtrip(arr)
            assert np.array_equal(out, arr) and out.shape == arr.shape

    def test_wire_tuple(self):
        words = np.arange(20, dtype=np.uint64).reshape(10, 2)
        pi = np.arange(10, dtype=np.int32)
        pj = (np.arange(10, dtype=np.int32) + 5)
        out = roundtrip((words, pi, pj))
        assert deep_equal(out, (words, pi, pj))

    def test_big_int_and_dict_fall_back_to_pickle(self):
        frame = encode({"a": 1})
        assert frame.n_pickled == 1
        assert roundtrip({"a": 1}) == {"a": 1}
        assert roundtrip(2**100) == 2**100

    def test_object_array_falls_back_to_pickle(self):
        arr = np.array([Fraction(1, 3), Fraction(2, 5)], dtype=object)
        frame = encode(arr)
        assert frame.n_pickled == 1
        out = decode(frame.to_bytes())
        assert list(out) == list(arr)

    def test_fallback_off_raises(self):
        with pytest.raises(WireError):
            encode({"a": 1}, fallback=False)


class TestZeroCopy:
    def test_decoded_views_are_readonly_and_share_blob(self):
        arr = np.arange(100, dtype=np.float64)
        blob = encode(arr).to_bytes()
        out = decode(blob)
        assert not out.flags.writeable
        assert np.shares_memory(out, np.frombuffer(blob, dtype=np.uint8))
        with pytest.raises(ValueError):
            out[0] = 1.0

    def test_buffers_are_8_aligned(self):
        blob = encode((np.arange(3, dtype=np.float64), b"x" * 3,
                       np.arange(5, dtype=np.int64))).to_bytes()
        a, _, c = decode(blob)
        for out in (a, c):
            addr = out.__array_interface__["data"][0]
            assert addr % 8 == 0

    def test_write_into_matches_to_bytes(self):
        frame = encode((np.arange(7, dtype=np.int64), "tag"))
        buf = bytearray(frame.nbytes)
        assert frame.write_into(buf) == frame.nbytes
        assert bytes(buf) == frame.to_bytes()

    def test_write_into_too_small(self):
        frame = encode(np.arange(16, dtype=np.int64))
        with pytest.raises(WireError):
            frame.write_into(bytearray(4))


class TestFraming:
    def test_is_frame_sniffing(self):
        import pickle

        assert is_frame(encode((1, 2)).to_bytes())
        assert not is_frame(pickle.dumps((1, 2), pickle.HIGHEST_PROTOCOL))
        assert not is_frame(b"")
        assert not is_frame(b"RWF")

    def test_bad_magic_and_version(self):
        blob = bytearray(encode(1).to_bytes())
        with pytest.raises(WireError):
            decode(b"XXXX" + bytes(blob[4:]))
        bad = bytearray(blob)
        bad[4] = 99  # version field
        with pytest.raises(WireError):
            decode(bytes(bad))
        with pytest.raises(WireError):
            decode(b"RW")

    def test_unpack_sniffs_both_protocols(self):
        payload = (np.arange(4, dtype=np.uint64), "x")
        for protocol in wire.PROTOCOLS:
            blob = pack_message(payload, protocol)
            assert deep_equal(unpack_message(blob), payload)

    def test_typed_frame_smaller_than_pickle_for_wire_tuple(self):
        words = np.arange(200, dtype=np.uint64).reshape(100, 2)
        payload = (words, np.arange(100, dtype=np.int32),
                   np.arange(100, dtype=np.int32))
        typed = pack_message(payload, "typed")
        pickled = pack_message(payload, "pickle")
        assert len(typed) < len(pickled)
        # Framing overhead over the raw array bytes stays small.
        raw = sum(a.nbytes for a in payload)
        assert len(typed) - raw < 128


class TestCounters:
    def test_pack_message_counts_once(self):
        c = WireCounters("typed")
        blob = pack_message(np.arange(8, dtype=np.float64), "typed", c)
        assert c.n_ser == 1
        assert c.ser_bytes == len(blob)
        assert c.n_pickle_fallbacks == 0
        pack_message({"unknown": 1}, "typed", c)
        assert c.n_ser == 2 and c.n_pickle_fallbacks == 1

    def test_segment_round_tracks_peak(self):
        c = WireCounters("typed")
        c.note_segment_round(100)
        c.note_segment_round(40)
        assert c.last_segment_bytes == 40
        assert c.peak_segment_bytes == 100

    def test_snapshot_order(self):
        c = WireCounters()
        c.wire_out, c.wire_in, c.ser_bytes, c.n_ser, c.msgs_out = 1, 2, 3, 4, 5
        assert c.snapshot() == (1, 2, 3, 4, 5)

    def test_ctrl_plane_separate_from_wire_out(self):
        c = WireCounters()
        c.ctrl_out += 96
        assert c.wire_out == 0  # descriptor/barrier traffic is not payload


class TestResolution:
    def test_resolve_protocol(self, monkeypatch):
        monkeypatch.delenv("REPRO_WIRE_PROTOCOL", raising=False)
        assert wire.resolve_protocol() == "typed"
        assert wire.resolve_protocol("pickle") == "pickle"
        monkeypatch.setenv("REPRO_WIRE_PROTOCOL", "pickle")
        assert wire.resolve_protocol() == "pickle"
        with pytest.raises(WireError):
            wire.resolve_protocol("msgpack")

    def test_resolve_timeout(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMM_TIMEOUT_S", raising=False)
        assert wire.resolve_timeout() == 300.0
        assert wire.resolve_timeout(12.5) == 12.5
        monkeypatch.setenv("REPRO_COMM_TIMEOUT_S", "45")
        assert wire.resolve_timeout() == 45.0
        with pytest.raises(WireError):
            wire.resolve_timeout(0)

    def test_segments_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_WIRE_SEGMENTS", raising=False)
        assert wire.segments_enabled() is True
        assert wire.segments_enabled(False) is False
        for off in ("off", "ring", "none", "0"):
            monkeypatch.setenv("REPRO_WIRE_SEGMENTS", off)
            assert wire.segments_enabled() is False


class TestPayloadNbytes:
    """Pins for the logical payload measurement (satellite: dict payloads
    used to fall through to whole-container pickle)."""

    def test_deferred_wire_tuple_measured_by_contents(self):
        # The deferred pipeline's allgather triple for 100 candidates over
        # 2 support words: uint64 words + two int32 index vectors.
        words = np.zeros((100, 2), dtype=np.uint64)
        pi = np.zeros(100, dtype=np.int32)
        pj = np.zeros(100, dtype=np.int32)
        assert payload_nbytes((words, pi, pj)) == 100 * 16 + 400 + 400

    def test_distributed_active_tuple(self):
        vals = np.zeros((10, 7))
        w = np.zeros((10, 1), dtype=np.uint64)
        assert payload_nbytes((vals, w, vals, w)) == 2 * (560 + 80)

    def test_dict_recurses_over_values(self):
        arr = np.zeros(64, dtype=np.float64)
        assert payload_nbytes({"a": arr, "b": [arr, arr]}) == 3 * 512

    def test_empty_containers(self):
        assert payload_nbytes(()) == 0
        assert payload_nbytes({}) == 0
