"""Unit tests for the reaction-equation parser."""

from fractions import Fraction

import pytest

from repro.errors import ParseError
from repro.network.parser import (
    format_reaction,
    is_external,
    network_from_equations,
    parse_reaction,
)


class TestParseReaction:
    def test_simple_irreversible(self):
        r = parse_reaction("R4 : F6P + ATP => FDP + ADP")
        assert r.name == "R4"
        assert not r.reversible
        assert r.stoich == {
            "F6P": Fraction(-1),
            "ATP": Fraction(-1),
            "FDP": Fraction(1),
            "ADP": Fraction(1),
        }

    def test_reversible_arrow(self):
        r = parse_reaction("R3r : G6P <=> F6P")
        assert r.reversible

    def test_coefficients(self):
        r = parse_reaction("R7 : B => 2 P")
        assert r.stoich["P"] == Fraction(2)

    def test_big_coefficients(self):
        r = parse_reaction("R70 : 40141 ATP + 5587 NH3 => 1000 BIOM + 40141 ADP")
        assert r.stoich["ATP"] == Fraction(-40141)
        assert r.stoich["BIOM"] == Fraction(1000)

    def test_fractional_coefficient(self):
        r = parse_reaction("X : 1/2 A => B")
        assert r.stoich["A"] == Fraction(-1, 2)

    def test_externals_dropped_and_flagged(self):
        r = parse_reaction("r1 : Aext => A")
        assert r.stoich == {"A": Fraction(1)}
        assert r.exchange

    def test_explicit_externals(self):
        r = parse_reaction("R70 : G6P => BIO", externals=frozenset({"BIO"}))
        assert r.stoich == {"G6P": Fraction(-1)}
        assert r.exchange

    def test_netting_both_sides(self):
        r = parse_reaction("X : A + B => A + C")  # A catalytic, nets to zero
        assert "A" not in r.stoich
        assert r.stoich == {"B": Fraction(-1), "C": Fraction(1)}

    def test_unicode_arrows(self):
        assert not parse_reaction("X : A =⇒ B").reversible
        assert parse_reaction("X : A ⇐⇒ B").reversible

    @pytest.mark.parametrize(
        "bad",
        [
            "no arrow here",
            ": A => B",
            "X : A -- B",
            "X : A => 0 B",
            "X : 2A => B",  # missing space between coeff and name
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_reaction(bad)

    def test_pure_external_reaction_kept_as_empty(self):
        r = parse_reaction("X : Aext => Bext")
        assert r.stoich == {}
        assert r.exchange

    def test_fully_external_nonexchange_rejected(self):
        with pytest.raises(ParseError):
            parse_reaction("X :  => ")


class TestIsExternal:
    def test_suffix(self):
        assert is_external("GLCext")
        assert is_external("co2EXT")
        assert not is_external("ATP")

    def test_explicit_set(self):
        assert is_external("BIO", frozenset({"BIO"}))
        assert not is_external("BIO")


class TestNetworkFromEquations:
    def test_metabolite_first_appearance_order(self):
        net = network_from_equations(
            "t", ["a : A => B", "b : B => C", "c : C => Cext"]
        )
        assert net.metabolite_names == ("A", "B", "C")

    def test_explicit_order(self):
        net = network_from_equations(
            "t",
            ["a : A => B", "b : B => Bext"],
            metabolite_order=["B", "A"],
        )
        assert net.metabolite_names == ("B", "A")

    def test_order_missing_name_rejected(self):
        with pytest.raises(ParseError):
            network_from_equations(
                "t", ["a : A => B", "b : B => Bext"], metabolite_order=["A"]
            )


class TestFormatReaction:
    def test_roundtrip_simple(self):
        r = parse_reaction("R4 : ATP + F6P => ADP + FDP")
        assert parse_reaction(format_reaction(r)).stoich == r.stoich

    def test_coefficient_rendering(self):
        r = parse_reaction("R7 : B => 2 P")
        s = format_reaction(r)
        assert "2 P" in s and "=>" in s

    def test_reversible_arrow_rendering(self):
        r = parse_reaction("X : A <=> B")
        assert "<=>" in format_reaction(r)
