"""Unit tests for stoichiometric matrix construction."""

import numpy as np

from repro.linalg.rational import to_numpy
from repro.network.stoichiometry import (
    exact_stoichiometric_matrix,
    reversibility_vector,
    stoichiometric_matrix,
)


class TestToyMatrix:
    """eq. (2) of the paper, verbatim."""

    EXPECTED = np.array(
        [
            [1, -1, 0, 0, -1, 0, 0, 0, 0],
            [0, 0, 0, 0, 1, -1, -1, -1, 0],
            [0, 1, -1, 0, 0, 1, 0, 0, 0],
            [0, 0, 1, 0, 0, 0, 0, 0, -1],
            [0, 0, 1, -1, 0, 0, 2, 0, 0],
        ],
        dtype=float,
    )

    def test_matches_eq2(self, toy):
        assert np.array_equal(stoichiometric_matrix(toy), self.EXPECTED)

    def test_exact_matches_float(self, toy):
        exact = exact_stoichiometric_matrix(toy)
        assert np.array_equal(to_numpy(exact), self.EXPECTED)

    def test_reversibility_vector(self, toy):
        rev = reversibility_vector(toy)
        assert rev.tolist() == [
            False, False, False, False, False, True, False, True, False,
        ]

    def test_row_column_order_follows_network(self, toy):
        n = stoichiometric_matrix(toy)
        i = toy.metabolite_index("P")
        j = toy.reaction_index("r7")
        assert n[i, j] == 2.0
