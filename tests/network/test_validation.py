"""Unit tests for network structural validation."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.network.parser import network_from_equations
from repro.network.validation import assert_steady_state, validate_network


class TestValidateNetwork:
    def test_clean_network_no_warnings(self, toy):
        assert validate_network(toy) == []

    def test_single_reaction_metabolite_warned(self):
        net = network_from_equations("t", ["a : Aext => A", "b : Bext <=> B", "c : B => Cext"])
        warnings = validate_network(net)
        assert any("'A'" in w for w in warnings)

    def test_proportional_columns_warned(self):
        net = network_from_equations(
            "t",
            ["a : A => B", "b : 2 A => 2 B", "i : Aext => A", "o : B => Bext"],
        )
        warnings = validate_network(net)
        assert any("proportional" in w for w in warnings)

    def test_opposite_columns_warned(self):
        net = network_from_equations(
            "t",
            ["a : A => B", "b : B => A", "i : Aext => A", "o : B => Bext"],
        )
        assert any("proportional" in w for w in validate_network(net))

    def test_strict_raises(self):
        net = network_from_equations("t", ["a : Aext => A", "b : Bext <=> B", "c : B => Cext"])
        with pytest.raises(NetworkError):
            validate_network(net, strict=True)


class TestAssertSteadyState:
    def test_accepts_kernel_vector(self, toy):
        # r1=r2=r3=r4=r9 chain with r7... easier: use a known EFM
        # (1,1,1,1,0,0,0,0,1): A in -> C -> D+P -> exports.
        flux = np.array([1, 1, 1, 1, 0, 0, 0, 0, 1], dtype=float)
        assert_steady_state(toy, flux)

    def test_rejects_imbalance(self, toy):
        flux = np.array([1, 0, 0, 0, 0, 0, 0, 0, 0], dtype=float)
        with pytest.raises(NetworkError, match="imbalance"):
            assert_steady_state(toy, flux)

    def test_matrix_of_columns(self, toy):
        fluxes = np.zeros((9, 2))
        fluxes[:, 0] = [1, 1, 1, 1, 0, 0, 0, 0, 1]
        fluxes[:, 1] = [2, 2, 2, 2, 0, 0, 0, 0, 2]
        assert_steady_state(toy, fluxes)
