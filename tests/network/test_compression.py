"""Unit tests for network compression (the preprocessing reduction)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.network.compression import compress_network
from repro.network.model import MetabolicNetwork, Reaction
from repro.network.parser import network_from_equations
from repro.network.stoichiometry import stoichiometric_matrix


class TestToyReduction:
    """The paper's eq. (2) -> eq. (4) reduction."""

    def test_shapes(self, toy_record):
        assert toy_record.original.shape == (5, 9)
        assert toy_record.reduced.shape == (4, 8)

    def test_d_and_r9_eliminated(self, toy_record):
        assert "D" not in toy_record.reduced.metabolite_names
        assert not toy_record.reduced.has_reaction("r9")

    def test_r9_merged_into_r3(self, toy_record):
        assert toy_record.merged_groups["r3"] == ("r3", "r9")

    def test_reduced_matches_eq4(self, toy_record):
        n = stoichiometric_matrix(toy_record.reduced)
        # eq. (4), rows A,B,C,P; columns r1..r8r.
        expected = np.array(
            [
                [1, -1, 0, 0, -1, 0, 0, 0],
                [0, 0, 0, 0, 1, -1, -1, -1],
                [0, 1, -1, 0, 0, 1, 0, 0],
                [0, 0, 1, -1, 0, 0, 2, 0],
            ],
            dtype=float,
        )
        assert np.array_equal(n, expected)

    def test_expansion_maps_r3_flux_to_r9(self, toy_record):
        reduced_flux = np.zeros((8, 1))
        reduced_flux[2, 0] = 5.0  # r3 in reduced order
        full = toy_record.expand_fluxes(reduced_flux)
        i3 = toy_record.original.reaction_index("r3")
        i9 = toy_record.original.reaction_index("r9")
        assert full[i3, 0] == 5.0
        assert full[i9, 0] == 5.0

    def test_no_blocked_no_singletons(self, toy_record):
        assert toy_record.blocked == ()
        assert toy_record.singletons == ()

    def test_summary_mentions_shapes(self, toy_record):
        assert "5x9 -> 4x8" in toy_record.summary()


class TestBlocking:
    def test_dead_end_product_blocks_chain(self):
        # C is produced but never consumed -> b blocked -> A dead-ends too.
        net = network_from_equations(
            "t", ["a : Aext => A", "b : A => C", "keep : Aext => Q", "out : Q => Qext"]
        )
        rec = compress_network(net)
        assert "b" in rec.blocked
        assert "a" in rec.blocked  # cascades: A's only consumer died
        # The healthy keep/out chain merges through Q into an unconstrained
        # singleton mode.
        assert len(rec.singletons) == 1
        assert set(rec.singletons[0].fluxes) == {"keep", "out"}

    def test_single_reaction_metabolite_blocked_even_reversible(self):
        net = network_from_equations(
            "t", ["solo : A <=> B", "x : B <=> Bext", "y : Bext2 => B"]
        )
        # A touched only by 'solo' -> solo blocked regardless of reversibility.
        rec = compress_network(net)
        assert "solo" in rec.blocked

    def test_reversible_prevents_same_sign_blocking(self):
        # M produced by two irreversible reactions but consumed via a
        # reversible one: nothing blocks.
        net = network_from_equations(
            "t",
            ["p1 : Aext => M", "p2 : Bext => M", "rv : M <=> Mext"],
        )
        rec = compress_network(net)
        assert rec.blocked == ()


class TestMerging:
    def test_chain_merges_to_single_column(self):
        net = network_from_equations(
            "t", ["a : Aext => A", "b : A => B", "c : B => Bext"]
        )
        rec = compress_network(net)
        # A chain with unique intermediates collapses entirely; everything
        # becomes one unconstrained merged reaction = one singleton EFM.
        assert len(rec.singletons) == 1
        fluxes = rec.singletons[0].fluxes
        assert set(fluxes) == {"a", "b", "c"}
        assert len(set(fluxes.values())) == 1  # equal rates

    def test_merge_ratio_from_stoichiometry(self):
        net = network_from_equations(
            "t", ["a : Aext => 2 M", "b : M => Bext"]
        )
        rec = compress_network(net)
        assert len(rec.singletons) == 1
        f = rec.singletons[0].fluxes
        assert f["b"] == 2 * f["a"]

    def test_opposed_irreversible_pair_blocked(self):
        # Both produce M irreversibly; merge would need v1 = -v2 < 0.
        net = network_from_equations(
            "t", ["p1 : Aext => M", "p2 : Bext => M"]
        )
        rec = compress_network(net)
        assert set(rec.blocked) == {"p1", "p2"}

    def test_direction_flip_when_backward_forced(self):
        # v_a <= 0 forced: 'a' reversible, 'b' irreversible consuming M
        # from the same side; merged variable is flipped to stay >= 0.
        net = network_from_equations(
            "t",
            ["a : M <=> Aext", "b : B2ext => M"],
        )
        rec = compress_network(net)
        # M touched by exactly a and b; merged must be feasible:
        # balance: -v_a + v_b = 0 -> v_a = v_b >= 0... direction fine;
        # the merged column is empty -> singleton.
        assert len(rec.singletons) == 1

    def test_merged_reversibility(self):
        net = network_from_equations(
            "t",
            ["a : Aext <=> M", "b : M <=> Bext"],
        )
        rec = compress_network(net)
        assert len(rec.singletons) == 1
        assert rec.singletons[0].reversible

    def test_two_cycle_becomes_singleton(self):
        net = network_from_equations(
            "t",
            [
                "fwd : A => B",
                "bwd : B => A",
                "io1 : Aext => A",
                "io2 : A => A2ext",
                "use : B => B2ext",
                "mk : B3ext => B",
            ],
        )
        rec = compress_network(net)
        # The fwd/bwd pair is NOT a unique pair through any metabolite here
        # (A and B have other reactions), so no singleton; this guards the
        # merge precondition.
        assert rec.singletons == ()


class TestYeastReduction:
    def test_network_1_shape_and_blocked_oxygen(self):
        from repro.models.yeast import yeast_network_1

        rec = compress_network(yeast_network_1())
        assert rec.original.shape == (62, 78)
        mo, qo = rec.reduced.shape
        assert mo < 62 and qo < 78
        # O2 import is a dead end in Network I (R56/R57 only exist in II).
        assert "R68" in rec.blocked

    def test_network_2_keeps_oxygen(self):
        from repro.models.yeast import yeast_network_2

        rec = compress_network(yeast_network_2())
        assert "R68" not in rec.blocked


class TestExpansionValidation:
    def test_expand_rejects_wrong_width(self, toy_record):
        from repro.errors import CompressionError

        with pytest.raises(CompressionError):
            toy_record.expand_fluxes(np.zeros((3, 1)))

    def test_reduced_steady_state_implies_original(self, toy_record):
        # Any reduced steady-state vector expands to an original one.
        n_red = stoichiometric_matrix(toy_record.reduced)
        n_orig = stoichiometric_matrix(toy_record.original)
        from repro.linalg.numeric import _float_nullspace
        from repro.config import DEFAULT_POLICY

        basis = _float_nullspace(n_red, DEFAULT_POLICY)
        full = toy_record.expand_fluxes(basis)
        assert np.allclose(n_orig @ full, 0.0, atol=1e-9)
