"""Unit tests for the metabolic network model classes."""

from fractions import Fraction

import pytest

from repro.errors import NetworkError
from repro.network.model import MetabolicNetwork, Metabolite, Reaction


def _net():
    return MetabolicNetwork(
        "t",
        ["A", "B"],
        [
            Reaction("in", {"A": Fraction(1)}, exchange=True),
            Reaction("conv", {"A": Fraction(-1), "B": Fraction(1)}, reversible=True),
            Reaction("out", {"B": Fraction(-1)}, exchange=True),
        ],
    )


class TestMetabolite:
    def test_valid(self):
        assert Metabolite("G6P").name == "G6P"

    @pytest.mark.parametrize("bad", ["", "A B", "x\t"])
    def test_invalid_names(self, bad):
        with pytest.raises(NetworkError):
            Metabolite(bad)


class TestReaction:
    def test_substrates_products(self):
        r = Reaction("r", {"A": Fraction(-2), "B": Fraction(1)})
        assert r.substrates == ("A",)
        assert r.products == ("B",)

    def test_zero_coefficient_rejected(self):
        with pytest.raises(NetworkError):
            Reaction("r", {"A": Fraction(0)})

    def test_coefficients_coerced_to_fraction(self):
        r = Reaction("r", {"A": -1, "B": 2})
        assert r.stoich["A"] == Fraction(-1)
        assert isinstance(r.stoich["B"], Fraction)

    def test_reversed_copy(self):
        r = Reaction("r", {"A": Fraction(-1), "B": Fraction(3)})
        rr = r.reversed_copy()
        assert rr.stoich == {"A": Fraction(1), "B": Fraction(-3)}


class TestNetworkConstruction:
    def test_shape_and_lookup(self):
        net = _net()
        assert net.shape == (2, 3)
        assert net.metabolite_index("B") == 1
        assert net.reaction_index("conv") == 1
        assert net.reaction("out").exchange

    def test_duplicate_metabolite_rejected(self):
        with pytest.raises(NetworkError):
            MetabolicNetwork("t", ["A", "A"], [Reaction("r", {"A": 1})])

    def test_duplicate_reaction_rejected(self):
        with pytest.raises(NetworkError):
            MetabolicNetwork(
                "t", ["A"], [Reaction("r", {"A": 1}), Reaction("r", {"A": -1})]
            )

    def test_unknown_metabolite_reference(self):
        with pytest.raises(NetworkError):
            MetabolicNetwork("t", ["A"], [Reaction("r", {"Z": 1})])

    def test_orphan_metabolite_rejected_by_default(self):
        with pytest.raises(NetworkError):
            MetabolicNetwork("t", ["A", "Zombie"], [Reaction("r", {"A": 1})])

    def test_orphan_allowed_when_opted_in(self):
        net = MetabolicNetwork(
            "t", ["A", "Z"], [Reaction("r", {"A": 1})],
            allow_orphan_metabolites=True,
        )
        assert net.n_metabolites == 2

    def test_unknown_lookups_raise(self):
        net = _net()
        with pytest.raises(NetworkError):
            net.metabolite_index("Q")
        with pytest.raises(NetworkError):
            net.reaction_index("Q")


class TestQueries:
    def test_producers_consumers(self):
        net = _net()
        assert [r.name for r in net.reactions_producing("A")] == ["in"]
        assert [r.name for r in net.reactions_consuming("A")] == ["conv"]

    def test_reversibility_vector(self):
        assert _net().reversibility == (False, True, False)

    def test_repr_mentions_sizes(self):
        assert "2 metabolites" in repr(_net())


class TestDerivedNetworks:
    def test_without_reactions_drops_metabolites(self):
        net = _net().without_reactions(["conv", "out"])
        assert net.reaction_names == ("in",)
        assert net.metabolite_names == ("A",)

    def test_without_unknown_raises(self):
        with pytest.raises(NetworkError):
            _net().without_reactions(["nope"])

    def test_with_reversibility(self):
        net = _net().with_reversibility({"in": True, "conv": False})
        assert net.reversibility == (True, False, False)

    def test_with_reversibility_unknown(self):
        with pytest.raises(NetworkError):
            _net().with_reversibility({"nope": True})

    def test_equality_and_hash(self):
        assert _net() == _net()
        assert hash(_net()) == hash(_net())
        assert _net() != _net().with_reversibility({"in": True})
