"""RunContext: construction, rank-cache wiring, per-run helpers."""

from __future__ import annotations

import pickle
from pathlib import Path

import numpy as np
import pytest

from repro.cluster.memory import MemoryModel
from repro.config import AlgorithmOptions
from repro.engine import RunContext, TraceRecorder
from repro.linalg.batched import CacheBinding, RankCache


class TestEnsure:
    def test_passthrough(self):
        ctx = RunContext()
        assert RunContext.ensure(ctx) is ctx

    def test_built_from_legacy_kwargs(self):
        opts = AlgorithmOptions(rank_backend="loop")
        mm = MemoryModel(capacity_bytes=123)
        ctx = RunContext.ensure(None, options=opts, memory_model=mm)
        assert ctx.options is opts
        assert ctx.memory_model is mm

    def test_context_wins_over_kwargs(self):
        ctx = RunContext(options=AlgorithmOptions(rank_backend="loop"))
        out = RunContext.ensure(ctx, options=AlgorithmOptions())
        assert out is ctx
        assert out.options.rank_backend == "loop"

    def test_checkpoint_path_coerced(self, tmp_path):
        ctx = RunContext(checkpoint_path=str(tmp_path / "run.npz"))
        assert isinstance(ctx.checkpoint_path, Path)


class TestRankBindingFor:
    def test_loop_backend_gets_no_cache(self, toy_problem):
        ctx = RunContext(options=AlgorithmOptions(rank_backend="loop"))
        assert ctx.rank_binding_for(toy_problem) is None

    def test_bittree_gets_no_cache(self, toy_problem):
        ctx = RunContext(options=AlgorithmOptions(acceptance="bittree"))
        assert ctx.rank_binding_for(toy_problem) is None

    def test_default_gets_fresh_private_binding(self, toy_problem):
        # Pin a caching backend: the env-sensitive default may be "loop"
        # on the loop CI leg, which legitimately gets no binding at all.
        ctx = RunContext(options=AlgorithmOptions(rank_backend="modular"))
        a = ctx.rank_binding_for(toy_problem)
        b = ctx.rank_binding_for(toy_problem)
        assert isinstance(a, CacheBinding)
        # Private memos: each run gets its own cache instance.
        assert a.cache is not b.cache

    def test_shared_memo_used_with_col_ids(self, toy_record, toy_problem):
        ctx = RunContext(options=AlgorithmOptions(rank_backend="modular"))
        ctx.bind_shared_rank_memo(toy_record.reduced)
        assert ctx.shared_rank_memo is not None
        col_ids = np.arange(toy_problem.q, dtype=np.int64)
        binding = ctx.rank_binding_for(toy_problem, col_ids)
        assert binding.cache is ctx.shared_rank_memo[0]
        assert binding.col_ids is col_ids

    def test_shared_memo_bypassed_without_col_ids(self, toy_record, toy_problem):
        # Without a canonical column map, raw support words are ambiguous
        # across subproblems — the binding must NOT address the shared memo.
        ctx = RunContext(options=AlgorithmOptions(rank_backend="modular"))
        ctx.bind_shared_rank_memo(toy_record.reduced)
        binding = ctx.rank_binding_for(toy_problem)
        assert binding is not None
        assert binding.cache is not ctx.shared_rank_memo[0]

    def test_bind_shared_memo_noop_for_loop_backend(self, toy_record):
        ctx = RunContext(options=AlgorithmOptions(rank_backend="loop"))
        ctx.bind_shared_rank_memo(toy_record.reduced)
        assert ctx.shared_rank_memo is None


class TestHelpers:
    def test_fresh_memory_is_zeroed_copy(self):
        mm = MemoryModel(capacity_bytes=1000)
        mm.peak_bytes = 555
        ctx = RunContext(memory_model=mm)
        fresh = ctx.fresh_memory()
        assert fresh is not mm
        assert fresh.peak_bytes == 0
        assert fresh.capacity_bytes == 1000

    def test_fresh_memory_none_without_model(self):
        assert RunContext().fresh_memory() is None

    def test_n_exact_only_for_exact_arithmetic(self, toy_problem):
        assert RunContext().n_exact_for(toy_problem) is None
        ctx = RunContext(options=AlgorithmOptions(arithmetic="exact"))
        assert ctx.n_exact_for(toy_problem) is not None

    def test_trace_recorder_follows_options(self, toy_problem):
        assert RunContext().trace_recorder().enabled is False
        ctx = RunContext(options=AlgorithmOptions(record_trace=True))
        rec = ctx.trace_recorder()
        assert rec.enabled is True
        assert rec.snapshots == []

    def test_disabled_recorder_is_noop(self, toy_problem):
        from repro.core.state import ModeMatrix

        rec = TraceRecorder(enabled=False)
        modes = ModeMatrix.from_kernel(toy_problem.kernel)
        rec.capture(0, toy_problem, modes)
        assert rec.snapshots == []

    def test_new_iteration_labels_row(self, toy_problem):
        it = RunContext().new_iteration(toy_problem, toy_problem.first_row)
        assert it.position == toy_problem.first_row
        assert it.reaction == toy_problem.names[toy_problem.first_row]

    def test_collect_appends(self):
        from repro.core.stats import RunStats

        ctx = RunContext()
        ctx.collect(RunStats())
        assert len(ctx.collected_stats) == 1


def test_context_is_picklable(toy_record):
    ctx = RunContext(
        options=AlgorithmOptions(rank_backend="modular"),
        memory_model=MemoryModel(capacity_bytes=4096),
        checkpoint_path="/tmp/x.npz",
    )
    ctx.bind_shared_rank_memo(toy_record.reduced)
    clone = pickle.loads(pickle.dumps(ctx))
    assert clone.memory_model.capacity_bytes == 4096
    assert clone.shared_rank_memo is not None
    assert clone.shared_rank_memo[1] == ctx.shared_rank_memo[1]


def test_make_rank_binding_delegates_to_context(toy_problem):
    """The legacy helper is now a thin wrapper over the context."""
    from repro.core.serial import make_rank_binding

    binding = make_rank_binding(toy_problem, AlgorithmOptions(rank_backend="modular"))
    assert isinstance(binding, CacheBinding)
    assert make_rank_binding(toy_problem, AlgorithmOptions(rank_backend="loop")) is None
