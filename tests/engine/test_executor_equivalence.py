"""Executor/schedule equivalence: the EFM set is bit-identical however
the scheduler dispatches the divide-and-conquer subsets.

The fast tests cover the toy network; the slow property test is the
acceptance criterion from the scheduler work — yeast-I-small with a
``q_sub = 5`` tail partition (32 subsets, 530 EFMs) across the inline,
process-pool (2 and 4 workers) and simulated-MPI executors plus a
shuffled explicit schedule, compared with ``np.array_equal`` (no
canonicalization: the unions must match bit for bit).

``REPRO_TEST_EXECUTORS`` (comma-separated names) restricts which
executors the slow test exercises, e.g. the CI matrix runs one leg with
``inline`` and one with ``process-pool``.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.dnc.combined import combined_parallel
from repro.efm.api import compute_efms
from repro.engine.executors import EXECUTOR_NAMES
from repro.models.toy import toy_network
from repro.models.variants import yeast_1_small
from repro.network.compression import compress_network

PARTITION = ("r6r", "r8r")


def _selected_executors() -> list[str]:
    raw = os.environ.get("REPRO_TEST_EXECUTORS", "")
    if not raw.strip():
        return list(EXECUTOR_NAMES)
    picked = [name.strip() for name in raw.split(",") if name.strip()]
    unknown = set(picked) - set(EXECUTOR_NAMES)
    if unknown:
        raise ValueError(f"REPRO_TEST_EXECUTORS names unknown executors: {unknown}")
    return picked


@pytest.fixture(scope="module")
def toy_reduced():
    return compress_network(toy_network()).reduced


@pytest.mark.parametrize("executor", EXECUTOR_NAMES)
def test_toy_union_identical_across_executors(toy_reduced, executor):
    base = combined_parallel(toy_reduced, PARTITION, 1)
    run = combined_parallel(
        toy_reduced, PARTITION, 1, executor=executor, max_workers=2
    )
    assert run.meta["executor"] == executor
    assert np.array_equal(base.efms(), run.efms())


def test_toy_union_identical_across_schedules(toy_reduced):
    base = combined_parallel(toy_reduced, PARTITION, 1, schedule="subset-id")
    for schedule in ("predicted-peak", "reverse", [3, 1, 0, 2]):
        run = combined_parallel(toy_reduced, PARTITION, 1, schedule=schedule)
        assert np.array_equal(base.efms(), run.efms()), schedule


def test_compute_efms_executor_matches_inline(toy_reduced):
    base = compute_efms(toy_network(), method="combined", partition=list(PARTITION))
    pp = compute_efms(
        toy_network(),
        method="combined",
        partition=list(PARTITION),
        executor="process-pool",
        max_workers=2,
    )
    assert np.array_equal(base.fluxes, pp.fluxes)


@pytest.mark.slow
def test_yeast_small_equivalence_property():
    """Acceptance property: yeast-I-small, q_sub=5 — bit-identical unions."""
    net = yeast_1_small()
    base = compute_efms(net, method="combined", partition=5)
    assert base.n_efms == 530

    variants: list[tuple[str, dict]] = []
    selected = _selected_executors()
    if "process-pool" in selected:
        variants += [
            ("process-pool-2", {"executor": "process-pool", "max_workers": 2}),
            ("process-pool-4", {"executor": "process-pool", "max_workers": 4}),
        ]
    if "spmd" in selected:
        variants.append(("spmd", {"executor": "spmd", "max_workers": 4}))
    if "inline" in selected:
        perm = list(range(32))
        random.Random(20110516).shuffle(perm)  # IPDPS 2011: fixed seed
        variants.append(("inline-shuffled", {"schedule": perm}))

    for label, kwargs in variants:
        run = compute_efms(net, method="combined", partition=5, **kwargs)
        assert np.array_equal(base.fluxes, run.fluxes), (
            f"{label} produced a different EFM set"
        )
