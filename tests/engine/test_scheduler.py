"""SubproblemScheduler: planning, ordering, checkpointing, degradation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.memory import MemoryModel, predict_subset_peak_bytes
from repro.config import AlgorithmOptions
from repro.dnc.combined import combined_parallel
from repro.dnc.subsets import enumerate_subsets
from repro.efm.api import compute_efms
from repro.engine import RunContext, SubproblemScheduler
from repro.engine import executors as executors_mod
from repro.errors import SchedulerError
from repro.models.toy import toy_network
from repro.network.compression import compress_network

from tests.conftest import canonical_rows

PARTITION = ("r6r", "r8r")


@pytest.fixture(scope="module")
def reduced():
    return compress_network(toy_network()).reduced


@pytest.fixture(scope="module")
def specs():
    return enumerate_subsets(PARTITION)


def make_scheduler(reduced, specs, **kw):
    return SubproblemScheduler(reduced, specs, **kw)


class TestPlanning:
    def test_plan_is_canonical_order(self, reduced, specs):
        jobs = make_scheduler(reduced, specs).plan()
        assert [j.index for j in jobs] == list(range(len(specs)))
        assert [j.spec.subset_id for j in jobs] == [s.subset_id for s in specs]

    def test_predictions_match_memory_model(self, reduced, specs):
        sched = make_scheduler(reduced, specs)
        jobs = sched.plan()
        # The scheduler predicts for whatever pipeline / pruning its
        # options select (env-sensitive defaults) — compare like for like.
        opts = sched.context.options
        for job in jobs:
            assert job.predicted_peak_bytes == predict_subset_peak_bytes(
                reduced,
                job.spec,
                candidate_pipeline=opts.candidate_pipeline,
                pair_chunk=opts.pair_chunk,
                pair_pruning=opts.pair_pruning,
                rank_backend=opts.rank_backend,
                ordering=opts.ordering,
            )
            assert job.predicted_peak_bytes >= 0

    def test_predicted_peak_schedule_is_lpt(self, reduced, specs):
        sched = make_scheduler(reduced, specs)
        ordered = sched.scheduled(sched.plan())
        sizes = [j.predicted_peak_bytes for j in ordered]
        assert sizes == sorted(sizes, reverse=True)

    def test_reverse_and_subset_id_schedules(self, reduced, specs):
        jobs = make_scheduler(reduced, specs).plan()
        by_id = make_scheduler(reduced, specs, schedule="subset-id").scheduled(jobs)
        assert [j.index for j in by_id] == list(range(len(specs)))
        rev = make_scheduler(reduced, specs, schedule="reverse").scheduled(jobs)
        assert [j.index for j in rev] == list(range(len(specs)))[::-1]

    def test_explicit_permutation(self, reduced, specs):
        perm = [2, 0, 3, 1]
        sched = make_scheduler(reduced, specs, schedule=perm)
        assert [j.index for j in sched.scheduled(sched.plan())] == perm

    def test_bad_permutation_rejected(self, reduced, specs):
        sched = make_scheduler(reduced, specs, schedule=[0, 0, 1, 2])
        with pytest.raises(SchedulerError, match="permutation"):
            sched.scheduled(sched.plan())

    def test_unknown_schedule_rejected(self, reduced, specs):
        sched = make_scheduler(reduced, specs, schedule="chaotic")
        with pytest.raises(SchedulerError, match="unknown schedule"):
            sched.scheduled(sched.plan())

    def test_unknown_executor_rejected(self, reduced, specs):
        with pytest.raises(SchedulerError, match="unknown executor"):
            make_scheduler(reduced, specs, executor="gpu")

    def test_bad_on_oom_rejected(self, reduced, specs):
        with pytest.raises(SchedulerError, match="on_oom"):
            make_scheduler(reduced, specs, on_oom="explode")


class TestCanonicalOrder:
    def test_result_order_independent_of_schedule(self, reduced, specs):
        base = make_scheduler(reduced, specs).run()
        rev = make_scheduler(reduced, specs, schedule="reverse").run()
        assert [s.spec.subset_id for s in base.subsets] == [
            s.spec.subset_id for s in rev.subsets
        ]
        assert np.array_equal(base.efms(), rev.efms())

    def test_meta_reports_run_shape(self, reduced, specs):
        run = make_scheduler(reduced, specs).run()
        assert run.meta["executor"] == "inline"
        assert run.meta["n_jobs"] == len(specs)
        assert run.meta["n_degraded"] == 0
        assert run.meta["predicted_total_bytes"] > 0


class TestAdmissionBudget:
    def test_explicit_budget_wins(self, reduced, specs):
        mm = MemoryModel(capacity_bytes=1000)
        sched = make_scheduler(
            reduced,
            specs,
            context=RunContext(memory_model=mm),
            admission_bytes=77,
        )
        assert sched._admission_budget(executor_workers=4) == 77

    def test_default_budget_is_capacity_times_workers(self, reduced, specs):
        mm = MemoryModel(capacity_bytes=1000)
        sched = make_scheduler(reduced, specs, context=RunContext(memory_model=mm))
        assert sched._admission_budget(executor_workers=4) == 4000

    def test_no_model_no_budget(self, reduced, specs):
        assert (
            make_scheduler(reduced, specs)._admission_budget(executor_workers=2)
            is None
        )


class TestDegradation:
    def test_degrade_completes_under_tiny_memory(self, reduced, specs):
        base = make_scheduler(reduced, specs).run()
        mm = MemoryModel(capacity_bytes=500)
        run = make_scheduler(
            reduced,
            specs,
            context=RunContext(memory_model=mm),
            on_oom="degrade",
        ).run()
        assert run.complete
        assert run.meta["n_degraded"] >= 1
        assert any(s.degraded for s in run.subsets)
        assert np.array_equal(
            canonical_rows(base.efms()), canonical_rows(run.efms())
        )

    def test_record_keeps_oom_in_result(self, reduced, specs):
        mm = MemoryModel(capacity_bytes=100)
        run = combined_parallel(
            reduced, PARTITION, 1, memory_model=mm, on_oom="record"
        )
        assert not run.complete
        assert any(s.oom is not None for s in run.subsets)


class TestCheckpointing:
    def test_resume_skips_completed_subsets(self, reduced, specs, tmp_path):
        d = tmp_path / "ckpt"
        first = make_scheduler(reduced, specs, checkpoint_dir=d).run()
        assert first.meta["n_resumed"] == 0
        assert len(list(d.glob("subset_*.npz"))) == len(specs)
        second = make_scheduler(reduced, specs, checkpoint_dir=d).run()
        assert second.meta["n_resumed"] == len(specs)
        assert all(s.resumed for s in second.subsets)
        assert np.array_equal(first.efms(), second.efms())

    def test_fingerprint_mismatch_refuses_resume(self, reduced, specs, tmp_path):
        d = tmp_path / "ckpt"
        make_scheduler(reduced, specs, checkpoint_dir=d).run()
        other = RunContext(options=AlgorithmOptions(arithmetic="exact"))
        with pytest.raises(SchedulerError, match="different run"):
            make_scheduler(reduced, specs, context=other, checkpoint_dir=d).run()

    def test_interrupted_combined_run_resumes(self, reduced, tmp_path, monkeypatch):
        """Satellite: kill the run after k subsets, resume, identical EFMs."""
        d = tmp_path / "ckpt"
        baseline = compute_efms(
            toy_network(), method="combined", partition=list(PARTITION)
        )

        real_solve = executors_mod.solve_job
        calls = {"n": 0}

        def dying_solve(order, job):
            if calls["n"] >= 2:
                raise RuntimeError("simulated crash after 2 subsets")
            calls["n"] += 1
            return real_solve(order, job)

        monkeypatch.setattr(executors_mod, "solve_job", dying_solve)
        with pytest.raises(RuntimeError, match="simulated crash"):
            compute_efms(
                toy_network(),
                method="combined",
                partition=list(PARTITION),
                checkpoint_path=d,
            )
        survived = len(list(d.glob("subset_*.npz")))
        assert survived == 2

        monkeypatch.setattr(executors_mod, "solve_job", real_solve)
        resumed = compute_efms(
            toy_network(),
            method="combined",
            partition=list(PARTITION),
            checkpoint_path=d,
        )
        assert resumed.meta["scheduler"]["n_resumed"] == survived
        assert np.array_equal(
            canonical_rows(baseline.fluxes), canonical_rows(resumed.fluxes)
        )
