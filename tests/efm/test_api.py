"""Tests for the high-level compute_efms facade."""

import numpy as np
import pytest

from repro.config import AlgorithmOptions
from repro.efm.api import compute_efms
from repro.errors import AlgorithmError, PartitionError
from repro.models.generators import random_network
from repro.network.parser import network_from_equations


class TestMethods:
    @pytest.mark.parametrize("method,ranks", [
        ("serial", 1), ("parallel", 3), ("distributed", 2),
    ])
    def test_methods_agree_on_toy(self, toy, method, ranks):
        base = compute_efms(toy)
        other = compute_efms(toy, method=method, n_ranks=ranks)
        assert base.same_modes_as(other)
        assert other.method == method

    def test_combined_with_names(self, toy):
        base = compute_efms(toy)
        run = compute_efms(toy, method="combined", partition=("r6r", "r8r"))
        assert base.same_modes_as(run)
        assert "subsets" in run.meta

    def test_combined_with_qsub_int(self, toy):
        base = compute_efms(toy)
        run = compute_efms(toy, method="combined", partition=2)
        assert base.same_modes_as(run)
        assert len(run.meta["partition"]) == 2

    def test_combined_without_partition_raises(self, toy):
        with pytest.raises(PartitionError):
            compute_efms(toy, method="combined")

    def test_serial_rejects_multiple_ranks(self, toy):
        with pytest.raises(AlgorithmError):
            compute_efms(toy, n_ranks=4)

    def test_unknown_method(self, toy):
        with pytest.raises(AlgorithmError):
            compute_efms(toy, method="quantum")


class TestCompression:
    def test_compress_false_same_result(self, toy):
        a = compute_efms(toy, compress=True)
        b = compute_efms(toy, compress=False)
        assert a.same_modes_as(b)

    def test_meta_records_compression(self, toy):
        r = compute_efms(toy)
        assert "5x9 -> 4x8" in r.meta["compression"]

    def test_singletons_appended(self):
        # A network whose only mode is resolved during compression.
        net = network_from_equations(
            "chain", ["a : Aext => A", "b : A => B", "c : B => Bext"]
        )
        r = compute_efms(net)
        assert r.n_efms == 1
        assert r.supports()[0].all()  # all three reactions active
        r.validate()

    def test_fully_blocked_network(self):
        net = network_from_equations("dead", ["a : Aext => A", "b : Bext => A"])
        r = compute_efms(net)
        assert r.n_efms == 0


class TestAutoSplit:
    def test_reversible_heavy_network_splits(self):
        net = random_network(4, 8, seed=1001, reversible_fraction=0.8)
        r = compute_efms(net)
        r.validate()
        assert "split" in r.meta

    def test_auto_split_disabled_raises(self):
        from repro.errors import ReversibleIdentityError

        net = random_network(4, 8, seed=1001, reversible_fraction=0.8)
        with pytest.raises(ReversibleIdentityError):
            compute_efms(net, auto_split=False)

    def test_bittree_acceptance_forces_full_split(self, toy):
        base = compute_efms(toy)
        r = compute_efms(toy, options=AlgorithmOptions(acceptance="bittree"))
        assert base.same_modes_as(r)
        assert set(r.meta["split"]) == {"r6r", "r8r"}


class TestOutputShape:
    def test_canonical_order(self, toy):
        r = compute_efms(toy)
        assert np.array_equal(r.fluxes, r.canonical().fluxes)

    def test_columns_follow_original_network(self, toy):
        r = compute_efms(toy)
        assert r.fluxes.shape == (8, 9)
        # r9 flux always equals r3 flux (merged pair).
        j3, j9 = toy.reaction_index("r3"), toy.reaction_index("r9")
        assert np.allclose(r.fluxes[:, j3], r.fluxes[:, j9])
