"""Tests for extreme pathways and their relation to EFMs (paper ref [30])."""

import numpy as np
import pytest

from repro.efm.api import compute_efms
from repro.efm.extreme_pathways import (
    classify_extreme,
    extreme_pathways,
    is_extreme_ray,
    split_all_reversible,
)
from repro.errors import AlgorithmError
from repro.models.generators import random_network


class TestIsExtremeRay:
    def test_orthant_axes_extreme(self):
        rays = np.eye(3)
        for i in range(3):
            assert is_extreme_ray(rays, i)

    def test_interior_ray_not_extreme(self):
        rays = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        assert is_extreme_ray(rays, 0)
        assert is_extreme_ray(rays, 1)
        assert not is_extreme_ray(rays, 2)

    def test_scaled_combination_detected(self):
        rays = np.array([[2.0, 0.0], [0.0, 3.0], [4.0, 1.5]])
        assert not is_extreme_ray(rays, 2)  # 2*r0 + 0.5*r1

    def test_single_ray_extreme(self):
        assert is_extreme_ray(np.array([[1.0, 2.0]]), 0)

    def test_index_validated(self):
        with pytest.raises(AlgorithmError):
            is_extreme_ray(np.eye(2), 5)


class TestExtremePathways:
    def test_toy_expas_are_nonnegative(self, toy):
        expas = extreme_pathways(toy)
        assert expas.n_efms > 0
        assert expas.fluxes.min() >= -1e-12
        expas.validate()

    def test_two_cycles_dropped(self, toy):
        with_cycles = extreme_pathways(toy, drop_two_cycles=False)
        without = extreme_pathways(toy)
        # The toy network has 2 reversible reactions -> 2 spurious cycles.
        assert with_cycles.n_efms == without.n_efms + 2

    def test_every_efm_appears_in_split_modes(self, toy):
        """Each of the 8 EFMs of eq. (7) maps to a split-network mode."""
        efms = compute_efms(toy)
        rec = split_all_reversible(toy)
        expa_like = extreme_pathways(toy)
        folded = rec.fold_modes(expa_like.fluxes)
        from tests.conftest import canonical_rows

        a = canonical_rows(efms.fluxes)
        b = canonical_rows(folded)
        assert a.shape == b.shape and np.allclose(a, b)

    def test_expas_subset_of_split_efms(self, toy):
        result = extreme_pathways(toy)
        mask = classify_extreme(result)
        # ref [30]: ExPas form a (possibly strict) subset of the split
        # network's EFMs; here at least one mode must be extreme.
        assert mask.any()
        assert mask.sum() <= result.n_efms

    def test_extreme_classification_consistent_under_scaling(self, toy):
        result = extreme_pathways(toy)
        mask1 = classify_extreme(result)
        import dataclasses

        scaled = dataclasses.replace(result, fluxes=result.fluxes * 3.0)
        mask2 = classify_extreme(scaled)
        assert np.array_equal(mask1, mask2)

    def test_negative_coordinates_rejected(self, toy):
        efms = compute_efms(toy)  # has negative reversible fluxes
        with pytest.raises(AlgorithmError):
            classify_extreme(efms)

    def test_irreversible_network_expas_equal_efms(self):
        """With no reversible reactions the flux cone is already pointed:
        the EFM set and the ExPa set coincide."""
        net = random_network(4, 8, seed=3, reversible_fraction=0.0)
        efms = compute_efms(net)
        expas = extreme_pathways(net)
        assert efms.same_modes_as(expas if expas.network is net else
                                  compute_efms(net))
        mask = classify_extreme(expas)
        # For elementary modes of a pointed cone described by Nv=0, v>=0,
        # support-minimality and extremality coincide (ref [30]).
        assert mask.all()
