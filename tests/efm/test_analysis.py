"""Tests for the EFM application analyses."""

import numpy as np
import pytest

from repro.efm import analysis
from repro.efm.api import compute_efms
from repro.errors import AlgorithmError


@pytest.fixture(scope="module")
def result(toy):
    return compute_efms(toy)


class TestKnockout:
    def test_knockout_equals_recomputation(self, toy, result):
        """The EFM closure property: filtering wild-type modes equals
        recomputing EFMs on the deleted network."""
        survivors = analysis.knockout(result, ["r5"])
        recomputed = compute_efms(toy.without_reactions(["r5"]))
        # Compare in the common reaction space.
        kept = [toy.reaction_index(n) for n in recomputed.network.reaction_names]
        from tests.conftest import assert_same_modes

        assert_same_modes(survivors.fluxes[:, kept], recomputed.fluxes)

    def test_multi_knockout(self, result):
        double = analysis.knockout(result, ["r5", "r2"])
        assert double.n_efms < result.n_efms

    def test_screen_counts(self, result):
        reports = analysis.knockout_screen(
            result, targets=["r2", "r5"], objective="r4"
        )
        assert len(reports) == 2
        for rep in reports:
            assert 0 <= rep.n_surviving <= result.n_efms
            assert rep.n_objective_surviving is not None

    def test_screen_pairs(self, result):
        reports = analysis.knockout_screen(
            result, targets=["r2", "r5", "r7"], max_set_size=2
        )
        assert len(reports) == 3 + 3  # singles + pairs

    def test_lethal_flag(self, result):
        reports = analysis.knockout_screen(result, targets=["r1"])
        # r1 is the only glucose... A import; but r8r can import B, so not
        # everything dies — just check the flag is consistent.
        for rep in reports:
            assert rep.lethal == (rep.n_surviving == 0)


class TestMinimalCutSets:
    def test_cuts_abolish_objective(self, result):
        cuts = analysis.minimal_cut_sets(result, "r4", max_size=2)
        assert cuts
        for cut in cuts:
            remaining = analysis.knockout(result, cut)
            assert remaining.with_active("r4").n_efms == 0

    def test_minimality(self, result):
        cuts = analysis.minimal_cut_sets(result, "r4", max_size=2)
        for cut in cuts:
            for other in cuts:
                if other != cut:
                    assert not set(other) < set(cut)

    def test_unused_objective_raises(self, toy, result):
        pruned = analysis.knockout(result, ["r4"])
        with pytest.raises(AlgorithmError):
            analysis.minimal_cut_sets(pruned, "r4")


class TestYields:
    def test_yields_ratio(self, result):
        y = analysis.yields(result, "r4", "r1")
        active = ~np.isnan(y)
        assert active.any()
        j4 = result.network.reaction_index("r4")
        j1 = result.network.reaction_index("r1")
        for i in np.nonzero(active)[0]:
            expect = abs(result.fluxes[i, j4]) / abs(result.fluxes[i, j1])
            assert y[i] == pytest.approx(expect)

    def test_best_yield_mode(self, result):
        i, y = analysis.best_yield_mode(result, "r4", "r1")
        assert y == np.nanmax(analysis.yields(result, "r4", "r1"))
        assert 0 <= i < result.n_efms

    def test_no_consumer_raises(self, toy, result):
        pruned = analysis.knockout(result, ["r1"])
        sub = pruned.with_active("r1")  # empty set
        with pytest.raises(AlgorithmError):
            analysis.best_yield_mode(sub, "r4", "r1")


class TestClassify:
    def test_partition_counts(self, result):
        classes = analysis.classify_modes(
            result, {"P export": "r4", "B export": "r8r"}
        )
        assert classes["P export"] == result.with_active("r4").n_efms
        assert classes["(silent)"] >= 0


class TestDecompose:
    def test_recovers_known_combination(self, result):
        w_true = np.zeros(result.n_efms)
        w_true[1] = 2.0
        w_true[4] = 0.5
        observed = result.fluxes.T @ w_true
        w = analysis.decompose_flux(result, observed)
        assert np.allclose(result.fluxes.T @ w, observed, atol=1e-8)
        assert (w >= -1e-12).all()

    def test_wrong_length_rejected(self, result):
        with pytest.raises(AlgorithmError):
            analysis.decompose_flux(result, np.zeros(3))
