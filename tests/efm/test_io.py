"""Tests for network / EFM text IO."""

import io

import numpy as np
import pytest

from repro.efm.api import compute_efms
from repro.efm.io import (
    dump_efms,
    dumps_network,
    load_efms,
    loads_network,
    read_efms,
    read_network,
    save_efms,
    save_network,
)
from repro.errors import ParseError
from repro.models.yeast import yeast_network_1


class TestNetworkRoundtrip:
    def test_toy_roundtrip(self, toy):
        text = dumps_network(toy)
        back = loads_network(text)
        assert back.name == "toy"
        assert back.reaction_names == toy.reaction_names
        # Internal stoichiometry survives; exchange flags become comments,
        # so compare stoich dicts only.
        for a, b in zip(toy.reactions, back.reactions):
            assert a.stoich == b.stoich
            assert a.reversible == b.reversible

    def test_yeast_roundtrip_shape(self):
        net = yeast_network_1()
        back = loads_network(dumps_network(net))
        assert back.shape == net.shape

    def test_file_roundtrip(self, toy, tmp_path):
        path = tmp_path / "toy.rxn"
        save_network(toy, path)
        back = read_network(path)
        assert back.reaction_names == toy.reaction_names

    def test_external_directive(self):
        text = "@name t\n@external BIOX\nr : A => BIOX\no : Aext => A\n"
        net = loads_network(text)
        assert "BIOX" not in net.metabolite_names

    def test_comments_ignored(self):
        net = loads_network("# header\nr : A => Aext  # trailing\n")
        assert net.reaction_names == ("r",)

    def test_unknown_directive_rejected(self):
        with pytest.raises(ParseError):
            loads_network("@wat x\nr : A => Aext\n")

    def test_empty_file_rejected(self):
        with pytest.raises(ParseError):
            loads_network("# nothing here\n")


class TestEfmRoundtrip:
    def test_roundtrip(self, toy):
        result = compute_efms(toy)
        buf = io.StringIO()
        dump_efms(result, buf)
        buf.seek(0)
        back = load_efms(buf, toy)
        assert back.n_efms == result.n_efms
        assert np.allclose(back.fluxes, result.fluxes, atol=1e-9)
        assert back.method == "serial"

    def test_file_roundtrip(self, toy, tmp_path):
        result = compute_efms(toy)
        path = tmp_path / "toy.efm"
        save_efms(result, path)
        back = read_efms(path, toy)
        assert back.same_modes_as(result)

    def test_header_mismatch_rejected(self, toy):
        result = compute_efms(toy)
        buf = io.StringIO()
        dump_efms(result, buf)
        text = buf.getvalue().replace("r1 r2", "r2 r1")
        with pytest.raises(ParseError):
            load_efms(io.StringIO(text), toy)

    def test_missing_header_rejected(self, toy):
        with pytest.raises(ParseError):
            load_efms(io.StringIO("1\t2\t3\n"), toy)

    def test_bad_row_rejected(self, toy):
        header = "# reactions: " + " ".join(toy.reaction_names) + "\n"
        with pytest.raises(ParseError):
            load_efms(io.StringIO(header + "a\tb\n"), toy)

    def test_empty_efm_set(self, toy):
        header = "# reactions: " + " ".join(toy.reaction_names) + "\n"
        back = load_efms(io.StringIO(header), toy)
        assert back.n_efms == 0
