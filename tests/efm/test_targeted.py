"""Tests for targeted EFM enumeration (Proposition 1 as a query engine)."""

import numpy as np
import pytest

from repro.efm.api import compute_efms
from repro.efm.targeted import efms_avoiding, efms_through, exists_mode_through
from repro.errors import PartitionError
from repro.models.variants import yeast_1_small
from tests.conftest import assert_same_modes


class TestToyQueries:
    def test_through_single_reaction(self, toy):
        full = compute_efms(toy)
        through = efms_through(toy, "r8r")
        reference = full.with_active("r8r")
        assert_same_modes(through.fluxes, reference.fluxes)

    def test_avoiding_single_reaction(self, toy):
        full = compute_efms(toy)
        avoiding = efms_avoiding(toy, "r8r")
        reference = full.without_active("r8r")
        assert_same_modes(avoiding.fluxes, reference.fluxes)

    def test_through_and_avoiding_partition_everything(self, toy):
        full = compute_efms(toy)
        a = efms_through(toy, "r6r")
        b = efms_avoiding(toy, "r6r")
        assert a.n_efms + b.n_efms == full.n_efms

    def test_through_multiple_reactions(self, toy):
        full = compute_efms(toy)
        through = efms_through(toy, ("r6r", "r8r"))
        ref = full.with_active("r6r").with_active("r8r")
        assert_same_modes(through.fluxes, ref.fluxes)
        assert through.n_efms == 2  # §III.A's last subset

    def test_merged_reaction_queryable(self, toy):
        """r9 is merged into r3 by compression; querying it must still
        work (a flux through r9 IS a flux through r3)."""
        full = compute_efms(toy)
        through = efms_through(toy, "r9")
        assert_same_modes(through.fluxes, full.with_active("r9").fluxes)

    def test_unknown_reaction(self, toy):
        from repro.errors import NetworkError

        with pytest.raises(NetworkError):
            efms_through(toy, "zzz")

    def test_empty_targets(self, toy):
        with pytest.raises(PartitionError):
            efms_through(toy, ())

    def test_validates(self, toy):
        efms_through(toy, "r8r").validate()


class TestExistsDecision:
    def test_positive(self, toy):
        assert exists_mode_through(toy, ("r6r", "r8r"))

    def test_negative(self, toy):
        # No single mode uses both boundary exports r4 and r8r AND import
        # r1 while avoiding... use an impossible pair instead: r7 produces
        # 2P so r7 and r3 can co-occur; find a genuinely impossible pair:
        full = compute_efms(toy)
        sup = full.supports()
        names = toy.reaction_names
        impossible = None
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                if not (sup[:, i] & sup[:, j]).any():
                    impossible = (names[i], names[j])
                    break
            if impossible:
                break
        if impossible is None:
            pytest.skip("toy network has no mutually exclusive pair")
        assert not exists_mode_through(toy, impossible)


class TestYeastScale:
    def test_targeted_cheaper_than_full(self):
        """The whole point: answering 'which modes make ethanol?' must
        generate fewer candidates than full enumeration.

        Pinned to the static paper ordering: the claim compares the
        targeted *machinery* (one D&C subproblem vs full enumeration)
        under like conditions.  Dynamic row selection shrinks full
        enumeration more than the subproblem (the pinned partition row
        restricts its selection window), which inverts the margin on this
        small network without saying anything about the targeted path.
        """
        from repro.config import AlgorithmOptions

        opts = AlgorithmOptions(ordering="paper")
        net = yeast_1_small()
        full = compute_efms(net, method="parallel", n_ranks=1, options=opts)
        through = efms_through(net, "R66", options=opts)
        assert_same_modes(through.fluxes, full.with_active("R66").fluxes)
        assert through.meta["candidates"] < full.stats.total_candidates

    def test_blocked_reaction_queries(self):
        net = yeast_1_small()
        # R70 (biomass) is blocked in this variant (PPP knockout).
        assert efms_through(net, "R70").n_efms == 0
        avoiding = efms_avoiding(net, "R70")
        full = compute_efms(net)
        assert avoiding.n_efms == full.n_efms  # vacuous constraint
