"""Tests for reversible-reaction splitting."""

import numpy as np
import pytest

from repro.efm.api import compute_efms
from repro.efm.splitting import BWD_SUFFIX, FWD_SUFFIX, split_reversible
from repro.errors import NetworkError
from repro.network.stoichiometry import stoichiometric_matrix


class TestSplitNetwork:
    def test_split_shapes(self, toy):
        rec = split_reversible(toy, ("r6r", "r8r"))
        assert rec.split.n_reactions == 11  # 9 + 2
        assert rec.split.reaction("r6r" + FWD_SUFFIX).reversible is False
        assert rec.split.reaction("r6r" + BWD_SUFFIX).reversible is False

    def test_backward_negates_stoichiometry(self, toy):
        rec = split_reversible(toy, ("r6r",))
        fwd = rec.split.reaction("r6r" + FWD_SUFFIX)
        bwd = rec.split.reaction("r6r" + BWD_SUFFIX)
        assert {m: -c for m, c in fwd.stoich.items()} == dict(bwd.stoich)

    def test_trivial_split(self, toy):
        rec = split_reversible(toy, ())
        assert rec.is_trivial
        assert rec.split is toy

    def test_irreversible_rejected(self, toy):
        with pytest.raises(NetworkError):
            split_reversible(toy, ("r1",))

    def test_name_collision_rejected(self, toy):
        rec = split_reversible(toy, ("r6r",))
        with pytest.raises(NetworkError):
            split_reversible(rec.split, ("r8r",)) and split_reversible(
                rec.split, ("r6r",)
            )

    def test_blow_up_names(self, toy):
        rec = split_reversible(toy, ("r6r",))
        assert rec.blow_up_names(["r1", "r6r"]) == ["r1", "r6r" + FWD_SUFFIX]


class TestFoldModes:
    def test_split_efms_fold_to_original_set(self, toy):
        """EFMs computed on the fully split toy network fold exactly to
        the 8 modes of eq. (7)."""
        rec = split_reversible(toy, ("r6r", "r8r"))
        split_result = compute_efms(rec.split)
        folded = rec.fold_modes(split_result.fluxes)
        original = compute_efms(toy)
        from tests.conftest import assert_same_modes

        assert_same_modes(folded, original.fluxes)

    def test_two_cycles_dropped(self, toy):
        rec = split_reversible(toy, ("r6r",))
        split_result = compute_efms(rec.split)
        jf = rec.split.reaction_index("r6r" + FWD_SUFFIX)
        jb = rec.split.reaction_index("r6r" + BWD_SUFFIX)
        both = (np.abs(split_result.fluxes[:, jf]) > 1e-9) & (
            np.abs(split_result.fluxes[:, jb]) > 1e-9
        )
        assert both.sum() == 1  # exactly the spurious 2-cycle exists
        folded = rec.fold_modes(split_result.fluxes)
        assert folded.shape[0] == split_result.n_efms - 1

    def test_width_validated(self, toy):
        rec = split_reversible(toy, ("r6r",))
        with pytest.raises(NetworkError):
            rec.fold_modes(np.ones((1, 3)))

    def test_folded_steady_state(self, toy):
        rec = split_reversible(toy, ("r6r", "r8r"))
        split_result = compute_efms(rec.split)
        folded = rec.fold_modes(split_result.fluxes)
        n = stoichiometric_matrix(toy)
        assert np.allclose(n @ folded.T, 0.0, atol=1e-8)
