"""Tests for the EFMResult container."""

import numpy as np
import pytest

from repro.efm.api import compute_efms
from repro.efm.result import EFMResult
from repro.errors import AlgorithmError


@pytest.fixture(scope="module")
def result(toy):
    return compute_efms(toy)


class TestBasics:
    def test_len_iter(self, result):
        assert len(result) == 8
        assert sum(1 for _ in result) == 8

    def test_supports_shape(self, result):
        assert result.supports().shape == (8, 9)

    def test_mode_as_dict_skips_zeros(self, result, toy):
        d = result.mode_as_dict(0)
        for name, v in d.items():
            assert abs(v) > 1e-9
            toy.reaction_index(name)  # valid names

    def test_width_validated(self, toy):
        with pytest.raises(AlgorithmError):
            EFMResult(network=toy, fluxes=np.ones((2, 5)))

    def test_summary(self, result):
        s = result.summary()
        assert "8 elementary flux modes" in s and "toy" in s


class TestCanonicalAndComparison:
    def test_canonical_unit_max_norm(self, result):
        c = result.canonical()
        assert np.allclose(np.abs(c.fluxes).max(axis=1), 1.0)

    def test_same_modes_scale_invariant(self, result, toy):
        scaled = EFMResult(network=toy, fluxes=result.fluxes * 7.5)
        assert result.same_modes_as(scaled)

    def test_same_modes_order_invariant(self, result, toy):
        shuffled = EFMResult(network=toy, fluxes=result.fluxes[::-1].copy())
        assert result.same_modes_as(shuffled)

    def test_different_sets_differ(self, result, toy):
        fewer = EFMResult(network=toy, fluxes=result.fluxes[:-1].copy())
        assert not result.same_modes_as(fewer)


class TestFilters:
    def test_with_without_partition(self, result):
        on = result.with_active("r8r")
        off = result.without_active("r8r")
        assert on.n_efms + off.n_efms == result.n_efms
        assert on.n_efms > 0 and off.n_efms > 0

    def test_filter_by_unknown_reaction(self, result):
        from repro.errors import NetworkError

        with pytest.raises(NetworkError):
            result.with_active("nope")


class TestValidate:
    def test_good_result_passes(self, result):
        result.validate()

    def test_steady_state_violation_detected(self, toy):
        bad = np.zeros((1, 9))
        bad[0, 0] = 1.0  # r1 alone cannot balance A
        with pytest.raises(AlgorithmError, match="steady-state"):
            EFMResult(network=toy, fluxes=bad).validate()

    def test_negative_irreversible_detected(self, toy, result):
        bad = result.fluxes.copy()
        bad[0] = -bad[0]  # flips irreversible coordinates negative
        with pytest.raises(AlgorithmError):
            EFMResult(network=toy, fluxes=bad).validate()

    def test_non_minimal_support_detected(self, toy, result):
        # The sum of two EFMs is a steady-state flux but not elementary.
        combo = result.fluxes[2] + result.fluxes[4]
        aug = np.vstack([result.fluxes, combo])
        with pytest.raises(AlgorithmError, match="support"):
            EFMResult(network=toy, fluxes=aug).validate()

    def test_minimality_check_optional(self, toy, result):
        combo = result.fluxes[2] + result.fluxes[4]
        aug = np.vstack([result.fluxes, combo])
        # Steady state + feasibility still hold; skipping minimality passes.
        EFMResult(network=toy, fluxes=aug).validate(check_minimality=False)

    def test_empty_result_valid(self, toy):
        EFMResult(network=toy, fluxes=np.zeros((0, 9))).validate()


class TestIntegerized:
    def test_smallest_coprime_integers(self, result):
        ints = result.integerized()
        assert np.allclose(ints, np.round(ints))
        for row in ints:
            nz = np.abs(row[np.abs(row) > 0]).astype(int)
            assert np.gcd.reduce(nz) == 1
