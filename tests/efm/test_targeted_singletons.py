"""Targeted queries against compression-singleton reactions — the branch
hypothesis uncovered: a target absorbed into an unconstrained merged
chain is neither blocked nor present in the reduced network."""

import numpy as np

from repro.efm.api import compute_efms
from repro.efm.targeted import efms_avoiding, efms_through
from repro.network.parser import network_from_equations
from tests.conftest import assert_same_modes


def _network_with_singleton():
    """'keep'->'out' collapses into a singleton EFM; the a/b/c branch
    stays a real enumeration problem."""
    return network_from_equations(
        "sing",
        [
            "keep : Aext => Q",
            "out : Q => Qext",
            "a : Bext => B",
            "b : B => C",
            "b2 : B => 2 C",
            "c : C => Cext",
        ],
    )


class TestSingletonTargets:
    def test_through_singleton_member(self):
        net = _network_with_singleton()
        full = compute_efms(net)
        through = efms_through(net, "keep")
        assert_same_modes(through.fluxes, full.with_active("keep").fluxes)
        assert through.n_efms == 1  # exactly the singleton chain

    def test_avoiding_singleton_member(self):
        net = _network_with_singleton()
        full = compute_efms(net)
        avoiding = efms_avoiding(net, "out")
        assert_same_modes(avoiding.fluxes, full.without_active("out").fluxes)

    def test_mixed_targets_singleton_and_reduced(self):
        net = _network_with_singleton()
        full = compute_efms(net)
        # No mode can use both the singleton chain and branch 'b': the
        # through-query must come back empty.
        through = efms_through(net, ("keep", "b"))
        ref = full.with_active("keep").with_active("b")
        assert through.n_efms == ref.n_efms == 0

    def test_avoiding_both(self):
        net = _network_with_singleton()
        full = compute_efms(net)
        avoiding = efms_avoiding(net, ("keep", "b"))
        ref = full.without_active("keep").without_active("b")
        assert_same_modes(avoiding.fluxes, ref.fluxes)

    def test_counts_partition(self):
        net = _network_with_singleton()
        full = compute_efms(net)
        for target in net.reaction_names:
            a = efms_through(net, target).n_efms
            b = efms_avoiding(net, target).n_efms
            assert a + b == full.n_efms, target
