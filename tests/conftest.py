"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import itertools
from fractions import Fraction

import numpy as np
import pytest

from repro.core.kernel import build_problem
from repro.linalg import rational
from repro.models.toy import toy_network
from repro.network.compression import compress_network
from repro.network.model import MetabolicNetwork
from repro.network.stoichiometry import exact_stoichiometric_matrix


@pytest.fixture(scope="session")
def toy():
    """The paper's Figure 1 network."""
    return toy_network()


@pytest.fixture(scope="session")
def toy_record(toy):
    """Compression record of the toy network (eq. (4))."""
    return compress_network(toy)


@pytest.fixture(scope="session")
def toy_problem(toy_record):
    """Prepared problem matching eq. (5)/(6) exactly (paper free set)."""
    return build_problem(toy_record.reduced, free_hint=("r2", "r4", "r5", "r7"))


def canonical_rows(rows: np.ndarray, ndigits: int = 9) -> np.ndarray:
    """Scale rows to unit max-norm and sort lexicographically, for
    order/scale-independent EFM set comparison."""
    rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
    if rows.shape[0] == 0:
        return rows
    scale = np.abs(rows).max(axis=1, keepdims=True)
    scale[scale == 0] = 1.0
    rows = rows / scale
    keys = np.round(rows, ndigits)
    return keys[np.lexsort(keys.T[::-1])]


def assert_same_modes(a: np.ndarray, b: np.ndarray, atol: float = 1e-7) -> None:
    ca, cb = canonical_rows(a), canonical_rows(b)
    assert ca.shape == cb.shape, f"mode counts differ: {ca.shape} vs {cb.shape}"
    assert np.allclose(ca, cb, atol=atol)


def brute_force_efms(network: MetabolicNetwork) -> np.ndarray:
    """Independent EFM oracle: exhaustive support enumeration.

    For every reaction subset ``S`` with ``|S| <= rank + 1``, a mode with
    support exactly ``S`` exists iff ``N[:, S]`` has an exactly 1-dim
    nullspace whose basis vector is non-zero on all of ``S`` and can be
    oriented to satisfy the irreversibility signs.  Exponential in the
    reaction count — tiny networks only (q <= 14).

    Returns modes as rows in network reaction order.
    """
    n_exact = exact_stoichiometric_matrix(network)
    q = network.n_reactions
    if q > 14:
        raise ValueError("brute force oracle limited to q <= 14")
    rank = rational.exact_rank(n_exact)
    rev = network.reversibility
    out: list[list[float]] = []
    for size in range(1, min(q, rank + 1) + 1):
        for subset in itertools.combinations(range(q), size):
            sub = rational.select_columns(n_exact, list(subset))
            basis = rational.exact_nullspace(sub)
            ncols = len(basis[0]) if basis else 0
            if ncols != 1:
                continue
            v = [basis[i][0] for i in range(size)]
            if any(x == 0 for x in v):
                continue  # true support is smaller; found at smaller S
            has_pos = any(v[i] > 0 for i in range(size) if not rev[subset[i]])
            has_neg = any(v[i] < 0 for i in range(size) if not rev[subset[i]])
            if has_pos and has_neg:
                continue  # cannot orient feasibly
            if has_neg:
                v = [-x for x in v]
            full = [0.0] * q
            for i, j in enumerate(subset):
                full[j] = float(v[i])
            out.append(full)
    modes = np.array(out) if out else np.zeros((0, q))
    # Fully-reversible-support modes appear once per orientation choice
    # already (we canonicalized the sign only when irreversible coords
    # exist); canonicalize the rest.
    for i in range(modes.shape[0]):
        row = modes[i]
        irr = ~np.array(rev, dtype=bool)
        if (np.abs(row[irr]) <= 1e-12).all():
            nz = np.nonzero(np.abs(row) > 1e-12)[0]
            if nz.size and row[nz[0]] < 0:
                modes[i] = -row
    # dedup
    return canonical_rows(modes) if modes.size else modes


def exact_matrix(rows) -> list[list[Fraction]]:
    return rational.to_fraction_matrix(rows)
