"""Integration tests for the experiment runners and the CLI (tiny
workloads; the full benchmark tables live under benchmarks/)."""

import pytest

from repro.bench.__main__ import main as cli_main
from repro.bench.runner import run_table2, run_table3, run_table4


@pytest.fixture(scope="module")
def register_tiny():
    """Register the toy network under a bench-usable alias once."""
    from repro.models.registry import _REGISTRY, toy_network

    _REGISTRY.setdefault("toy-bench", toy_network)
    return "toy-bench"


class TestRunners:
    def test_table2_shape(self, register_tiny):
        table, runs = run_table2(register_tiny, (1, 2, 4))
        assert len(runs) == 3
        # Candidate count invariant across core counts.
        assert len({r.total_candidates for r in runs}) == 1
        assert all(r.n_efms == 8 for r in runs)
        out = table.render()
        assert "gen. cand (sec)" in out and "Total # EFM: 8" in out

    def test_table2_gen_time_monotone(self, register_tiny):
        _, runs = run_table2(register_tiny, (1, 4))
        assert runs[1].modeled.gen_cand <= runs[0].modeled.gen_cand

    def test_table3_dnc_rows(self, register_tiny):
        run = run_table3(register_tiny, ("r6r", "r8r"), n_ranks=2)
        assert run.n_efms_total == 8
        assert len(run.subset_efms) == 4
        assert run.cumulative_candidates == sum(run.subset_candidates)
        assert "Cumulative total time" in run.table.render()

    def test_table4_memory_story(self):
        run = run_table4("toy", n_ranks=1, capacity_fraction=0.8)
        assert run.n_efms_total == 8
        assert run.alg2_oom_iteration is not None  # Algorithm 2 died
        out = run.table.render()
        assert "OutOfMemory" in out


class TestCli:
    def test_networks_command(self, capsys):
        assert cli_main(["networks"]) == 0
        out = capsys.readouterr().out
        assert "toy" in out and "yeast-I" in out

    def test_efms_command(self, capsys):
        assert cli_main(["efms", "--network", "toy"]) == 0
        out = capsys.readouterr().out
        assert "8 elementary flux modes" in out

    def test_efms_combined(self, capsys):
        assert cli_main(
            ["efms", "--network", "toy", "--method", "combined", "--qsub", "2"]
        ) == 0
        assert "partition" in capsys.readouterr().out

    def test_table2_command(self, capsys):
        assert cli_main(["table2", "--network", "toy", "--cores", "1,2"]) == 0
        assert "Table II analog" in capsys.readouterr().out

    def test_table3_command(self, capsys):
        assert cli_main(
            ["table3", "--network", "toy", "--partition", "r6r,r8r", "--ranks", "2"]
        ) == 0
        assert "Table III analog" in capsys.readouterr().out

    def test_table4_command(self, capsys):
        assert cli_main(["table4", "--network", "toy", "--ranks", "1"]) == 0
        assert "Table IV analog" in capsys.readouterr().out


class TestReport:
    def test_generate_report_contains_all_tables(self, register_tiny):
        from repro.bench.report import generate_report

        text = generate_report(
            table2_network="toy-bench",
            table3_network="toy-bench",
            table4_network="toy-bench",
            core_counts=(1, 2),
        )
        assert "Table II analog" in text
        assert "Table III analog" in text
        assert "Table IV analog" in text

    def test_report_cli_to_file(self, tmp_path, register_tiny):
        out = tmp_path / "report.txt"
        # Uses the default (yeast) workloads — takes ~1 min; exercise the
        # file path plumbing with the registered toy alias instead.
        from repro.bench.report import write_report

        path = write_report(
            out,
            table2_network="toy-bench",
            table3_network="toy-bench",
            table4_network="toy-bench",
            core_counts=(1,),
        )
        assert path.read_text().startswith("repro — benchmark report")
