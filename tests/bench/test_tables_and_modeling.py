"""Tests for table rendering and the modeled-time layer."""

import pytest

from repro.bench.modeling import ModeledTimes, model_run, model_serial
from repro.bench.tables import Table, fmt_count, fmt_seconds
from repro.cluster.platform import CALHOUN
from repro.parallel.combinatorial import combinatorial_parallel


class TestTable:
    def test_render_contains_cells(self):
        t = Table(title="T", columns=["a", "b"])
        t.add_row("x", 1234)
        t.add_row("y", 0.5)
        t.add_footer("done")
        out = t.render()
        assert "T" in out and "1,234" in out and "0.50" in out and "done" in out

    def test_row_width_checked(self):
        t = Table(title="T", columns=["a"])
        with pytest.raises(ValueError):
            t.add_row(1, 2)

    def test_column_values(self):
        t = Table(title="T", columns=["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column_values("b") == [2, 4]

    def test_fmt_count(self):
        assert fmt_count(159_599_700_951) == "159,599,700,951"

    def test_fmt_seconds(self):
        assert fmt_seconds(10643) == "2h 57min 23 secs"
        assert fmt_seconds(141.6) == "2min 21.60 secs"
        assert fmt_seconds(2.5) == "2.50 secs"


class TestModeling:
    def test_modeled_times_total(self):
        m = ModeledTimes(1.0, 2.0, 3.0, 4.0)
        assert m.total == 10.0
        assert set(m.as_dict()) == {
            "gen_cand", "rank_test", "communicate", "merge", "total",
        }

    def test_gen_time_scales_down_with_ranks(self, toy_problem):
        runs = {}
        for p in (1, 4):
            r = combinatorial_parallel(toy_problem, p)
            runs[p] = model_run(r.rank_stats, r.rank_traces, CALHOUN)
        assert runs[4].gen_cand <= runs[1].gen_cand

    def test_single_rank_no_communication(self, toy_problem):
        r = combinatorial_parallel(toy_problem, 1)
        m = model_run(r.rank_stats, r.rank_traces, CALHOUN)
        assert m.communicate == 0.0

    def test_communication_grows_with_ranks(self, toy_problem):
        r2 = combinatorial_parallel(toy_problem, 2)
        r8 = combinatorial_parallel(toy_problem, 8)
        m2 = model_run(r2.rank_stats, r2.rank_traces, CALHOUN)
        m8 = model_run(r8.rank_stats, r8.rank_traces, CALHOUN)
        assert m8.communicate > m2.communicate

    def test_model_serial_matches_one_rank_work(self, toy_problem):
        r = combinatorial_parallel(toy_problem, 1)
        serial = model_serial(r.result.stats, CALHOUN)
        parallel = model_run(r.rank_stats, r.rank_traces, CALHOUN)
        assert serial.gen_cand == pytest.approx(parallel.gen_cand)
        assert serial.rank_test == pytest.approx(parallel.rank_test)
