"""Tests for run-statistics CSV export."""

import io

from repro.bench.export import (
    ITERATION_COLUMNS,
    dumps_stats,
    load_stats_rows,
    save_stats,
)
from repro.core.serial import nullspace_algorithm


class TestExport:
    def test_roundtrip(self, toy_problem):
        stats = nullspace_algorithm(toy_problem).stats
        text = dumps_stats(stats)
        rows = load_stats_rows(io.StringIO(text))
        assert len(rows) == len(stats.iterations)
        for row, it in zip(rows, stats.iterations):
            assert row["reaction"] == it.reaction
            assert row["n_pairs"] == it.n_pairs
            assert row["n_modes_end"] == it.n_modes_end
            assert row["reversible"] == it.reversible

    def test_header_and_totals(self, toy_problem):
        stats = nullspace_algorithm(toy_problem).stats
        text = dumps_stats(stats)
        lines = text.strip().splitlines()
        assert lines[0].split(",") == list(ITERATION_COLUMNS)
        assert lines[-1].startswith("# totals:")
        assert f"candidates={stats.total_candidates}" in lines[-1]

    def test_tsv_delimiter(self, toy_problem):
        stats = nullspace_algorithm(toy_problem).stats
        text = dumps_stats(stats, delimiter="\t")
        assert "\t" in text.splitlines()[0]
        rows = load_stats_rows(io.StringIO(text), delimiter="\t")
        assert rows[0]["reaction"] == stats.iterations[0].reaction

    def test_save_to_file(self, toy_problem, tmp_path):
        stats = nullspace_algorithm(toy_problem).stats
        path = tmp_path / "stats.csv"
        save_stats(stats, path)
        with open(path) as fp:
            rows = load_stats_rows(fp)
        assert len(rows) == 4  # the toy network's four iterations

    def test_parallel_stats_exportable(self, toy_problem):
        from repro.parallel.combinatorial import combinatorial_parallel

        run = combinatorial_parallel(toy_problem, 3)
        text = dumps_stats(run.stats)
        rows = load_stats_rows(io.StringIO(text))
        assert sum(r["n_pairs"] for r in rows) == run.stats.total_candidates
