"""Tests for the model zoo: toy, yeast networks, variants, registry,
random generator."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.models import variants
from repro.models.generators import random_network
from repro.models.registry import get_network, list_networks, register_network
from repro.models.toy import TOY_N_EFMS, toy_network
from repro.models.yeast import (
    YEAST_1_SHAPE,
    YEAST_2_SHAPE,
    yeast_network_1,
    yeast_network_2,
)
from repro.network.validation import validate_network


class TestToy:
    def test_shape(self):
        assert toy_network().shape == (5, 9)

    def test_reversibles(self):
        net = toy_network()
        assert [r.name for r in net.reactions if r.reversible] == ["r6r", "r8r"]

    def test_exchanges(self):
        net = toy_network()
        assert {r.name for r in net.reactions if r.exchange} == {"r1", "r4", "r8r", "r9"}

    def test_documented_efm_count(self):
        assert TOY_N_EFMS == 8


class TestYeast:
    def test_network_1_paper_shape(self):
        assert yeast_network_1().shape == YEAST_1_SHAPE == (62, 78)

    def test_network_1_reversible_count(self):
        net = yeast_network_1()
        assert sum(net.reversibility) == 31  # Figure 4 lists 31 reactions

    def test_network_2_paper_shape(self):
        assert yeast_network_2().shape == YEAST_2_SHAPE == (63, 83)

    def test_network_2_differences(self):
        n1, n2 = yeast_network_1(), yeast_network_2()
        added = set(n2.reaction_names) - set(n1.reaction_names)
        # Figure 5: R1, R14, R56, R57, R61 added; R54/R60/R63 renamed
        # to their reversible variants.
        assert {"R1", "R14", "R56", "R57", "R61"} <= added
        assert {"R54r", "R60r", "R63r"} <= added
        assert "R54" not in n2.reaction_names
        assert "GLC" in n2.metabolite_names
        assert "GLC" not in n1.metabolite_names

    def test_biomass_reaction_coefficients(self):
        # Spot-check the paper's largest coefficients (R70).
        net = yeast_network_1()
        r70 = net.reaction("R70")
        assert r70.stoich["ATP"] == -40141
        assert r70.stoich["NADPH"] == -6413
        assert "BIO" not in r70.stoich  # external biomass
        assert r70.exchange

    def test_known_structural_quirks_only(self):
        """Network I's validation warnings are exactly the features the
        figures imply: O2/FAD/FADH dead-ends (their consumers R56/R57 only
        exist in Network II), the R9/R10 futile pair, and R77 literally
        duplicating R23 (both read ICIT + NADP => CO2 + NADPH + AKG in
        Figure 3)."""
        warnings = validate_network(yeast_network_1())
        mentioned = " ".join(warnings)
        for token in ("O2", "FAD", "FADH", "R9", "R10", "R23", "R77"):
            assert token in mentioned
        assert len(warnings) == 5

    def test_network_2_fixes_the_fad_loop(self):
        warnings = validate_network(yeast_network_2())
        assert not any("FAD'" in w for w in warnings)


class TestVariants:
    @pytest.mark.parametrize(
        "builder,max_seconds_efms",
        [
            (variants.yeast_1_small, 2_000),
            (variants.yeast_2_small, 10_000),
        ],
    )
    def test_small_variants_solvable(self, builder, max_seconds_efms):
        from repro.efm.api import compute_efms

        net = builder()
        result = compute_efms(net)
        assert 100 < result.n_efms < max_seconds_efms
        result.validate(check_minimality=False)

    def test_variants_are_subnetworks(self):
        full = set(yeast_network_1().reaction_names)
        small = set(variants.yeast_1_small().reaction_names)
        assert small < full


class TestRegistry:
    def test_list_contains_paper_networks(self):
        names = list_networks()
        assert "toy" in names and "yeast-I" in names and "yeast-II" in names

    def test_get_builds(self):
        assert get_network("toy").shape == (5, 9)

    def test_unknown_name(self):
        with pytest.raises(NetworkError):
            get_network("e-coli-9000")

    def test_register_custom_and_conflict(self):
        register_network("custom-test-net", toy_network)
        assert get_network("custom-test-net").shape == (5, 9)
        with pytest.raises(NetworkError):
            register_network("custom-test-net", toy_network)


class TestGenerator:
    def test_deterministic(self):
        a = random_network(5, 10, seed=3)
        b = random_network(5, 10, seed=3)
        assert a.reaction_names == b.reaction_names
        assert a == b

    def test_seeds_differ(self):
        assert random_network(5, 10, seed=1) != random_network(5, 10, seed=2)

    def test_every_metabolite_producible_and_consumable(self):
        for seed in range(5):
            net = random_network(6, 11, seed=seed)
            for m in net.metabolite_names:
                produced = consumed = False
                for r in net.reactions:
                    c = r.stoich.get(m)
                    if c is None:
                        continue
                    if r.reversible or c > 0:
                        produced = True
                    if r.reversible or c < 0:
                        consumed = True
                assert produced and consumed, (seed, m)

    def test_reversible_fraction_zero(self):
        net = random_network(5, 10, seed=0, reversible_fraction=0.0)
        assert not any(net.reversibility)

    def test_size_validation(self):
        with pytest.raises(NetworkError):
            random_network(0, 5, seed=0)
        with pytest.raises(NetworkError):
            random_network(3, 1, seed=0)
