"""Tabular export of run statistics (CSV / TSV).

The paper's analysis hinges on per-iteration behaviour (candidate
explosions in the last reversible rows, the memory wall near the end).
These helpers dump :class:`~repro.core.stats.RunStats` to delimited text
so runs can be inspected in a spreadsheet or plotted without custom code.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import TextIO

from repro.core.stats import RunStats

#: Exported per-iteration columns, in order.
ITERATION_COLUMNS = (
    "position",
    "reaction",
    "reversible",
    "n_pos",
    "n_neg",
    "n_zero",
    "sel_score",
    "sel_evaluated",
    "n_pairs",
    "n_tiles_total",
    "n_tiles_pruned",
    "n_pairs_skipped",
    "n_prefilter_kept",
    "n_adjacent",
    "n_duplicates",
    "n_tested",
    "n_accepted",
    "n_rank_cache_hits",
    "n_rank_batches",
    "rank_batch_max",
    "n_rank_modular",
    "n_rank_fallback",
    "n_prefix_reused_cols",
    "candidate_bytes",
    "prefilter_bytes",
    "n_chunks",
    "peak_chunk_bytes",
    "n_dedup_probes",
    "n_neg_removed",
    "n_modes_end",
    "t_gen_cand",
    "t_rank_test",
    "t_communicate",
    "t_merge",
)


def dump_stats(stats: RunStats, fp: TextIO, *, delimiter: str = ",") -> None:
    """Write one row per iteration plus a ``# totals`` comment trailer."""
    writer = csv.writer(fp, delimiter=delimiter, lineterminator="\n")
    writer.writerow(ITERATION_COLUMNS)
    for it in stats.iterations:
        writer.writerow([getattr(it, col) for col in ITERATION_COLUMNS])
    fp.write(
        f"# totals: candidates={stats.total_candidates} "
        f"rank_tests={stats.total_rank_tests} efms={stats.n_efms} "
        f"t_total={stats.t_total:.6f}\n"
    )


def dumps_stats(stats: RunStats, *, delimiter: str = ",") -> str:
    buf = io.StringIO()
    dump_stats(stats, buf, delimiter=delimiter)
    return buf.getvalue()


def save_stats(stats: RunStats, path: str | Path, *, delimiter: str = ",") -> None:
    with open(path, "w", encoding="utf-8", newline="") as fp:
        dump_stats(stats, fp, delimiter=delimiter)


def load_stats_rows(fp: TextIO, *, delimiter: str = ",") -> list[dict]:
    """Read a stats CSV back as dictionaries (numbers parsed)."""
    rows: list[dict] = []
    reader = csv.DictReader(
        (line for line in fp if not line.startswith("#")), delimiter=delimiter
    )
    for raw in reader:
        row: dict = {}
        for key, val in raw.items():
            if key in ("reaction",):
                row[key] = val
            elif key == "reversible":
                row[key] = val == "True"
            elif key.startswith("t_"):
                row[key] = float(val)
            else:
                row[key] = int(val)
        rows.append(row)
    return rows
