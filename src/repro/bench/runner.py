"""Experiment runners regenerating the paper's evaluation tables.

Each function executes the real algorithms on a (tractable) workload,
collects the exact work counters the paper reports, and renders a table
with the same columns.  Wall-clock columns are *modeled* platform seconds
(see :mod:`repro.bench.modeling`); the measured host seconds are appended
for transparency.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Sequence

from repro.bench.modeling import ModeledTimes, model_run
from repro.bench.tables import Table, fmt_count, fmt_seconds
from repro.config import DEFAULT_OPTIONS, AlgorithmOptions
from repro.cluster.memory import MemoryModel
from repro.cluster.platform import CALHOUN, BLUE_GENE_P, PlatformSpec
from repro.dnc.adaptive import adaptive_combined
from repro.dnc.combined import combined_parallel
from repro.dnc.selection import select_partition_reactions
from repro.errors import ReproError
from repro.efm.api import build_problem_with_split
from repro.models.registry import get_network
from repro.mpi.spmd import BackendName
from repro.network.compression import compress_network
from repro.parallel.combinatorial import ParallelRunResult, combinatorial_parallel

#: Job shapes mimicking Table II's header (nodes x cores-per-node).
TABLE2_SHAPES: dict[int, tuple[int, int]] = {
    1: (1, 1),
    2: (2, 1),
    4: (1, 4),
    8: (1, 8),
    16: (4, 4),
    32: (8, 4),
    64: (16, 4),
}


@dataclasses.dataclass
class Table2Run:
    """One column of Table II."""

    n_cores: int
    n_nodes: int
    cores_per_node: int
    modeled: ModeledTimes
    measured_seconds: float
    total_candidates: int
    n_efms: int


def _prepare(network_name: str, options: AlgorithmOptions):
    network = get_network(network_name)
    rec = compress_network(network)
    problem, split_rec = build_problem_with_split(rec.reduced, options)
    return network, rec, problem, split_rec


def _folded_efm_count(prun: ParallelRunResult, split_rec) -> int:
    """EFM count with reversible-split artifacts folded away."""
    if split_rec is None:
        return prun.result.n_efms
    return int(split_rec.fold_modes(prun.result.efms_input_order()).shape[0])


def run_table2(
    network_name: str = "yeast-I-small",
    core_counts: Sequence[int] = (1, 2, 4, 8, 16),
    *,
    platform: PlatformSpec = CALHOUN,
    backend: BackendName = "sequential",
    options: AlgorithmOptions = DEFAULT_OPTIONS,
) -> tuple[Table, list[Table2Run]]:
    """Table II: combinatorial parallel Algorithm 2 strong scaling.

    Runs the identical problem at every core count; candidate counts are
    invariant, per-phase modeled times shrink with cores, communicate and
    merge grow — the paper's shape.
    """
    network, _rec, problem, split_rec = _prepare(network_name, options)
    runs: list[Table2Run] = []
    for cores in core_counts:
        nodes, per_node = TABLE2_SHAPES.get(cores, (cores, 1))
        t0 = time.perf_counter()
        prun: ParallelRunResult = combinatorial_parallel(
            problem, cores, options=options, backend=backend
        )
        measured = time.perf_counter() - t0
        runs.append(
            Table2Run(
                n_cores=cores,
                n_nodes=nodes,
                cores_per_node=per_node,
                modeled=model_run(prun.rank_stats, prun.rank_traces, platform),
                measured_seconds=measured,
                total_candidates=prun.stats.total_candidates,
                n_efms=_folded_efm_count(prun, split_rec),
            )
        )

    table = Table(
        title=(
            f"Table II analog — Algorithm 2 on {network.name!r} "
            f"({platform.name} model)"
        ),
        columns=["row"] + [str(r.n_cores) for r in runs],
    )
    table.add_row("# nodes", *[r.n_nodes for r in runs])
    table.add_row("# cores per node", *[r.cores_per_node for r in runs])
    table.add_row("total # cores", *[r.n_cores for r in runs])
    mem = platform.memory_per_node
    table.add_row(
        "memory per core",
        *[f"{mem / r.cores_per_node / 1024**3:.2g}gb" for r in runs],
    )
    table.add_row("gen. cand (sec)", *[r.modeled.gen_cand for r in runs])
    table.add_row("rank test (sec)", *[r.modeled.rank_test for r in runs])
    table.add_row("communicate (sec)", *[r.modeled.communicate for r in runs])
    table.add_row("merge (sec)", *[r.modeled.merge for r in runs])
    table.add_row("total time (sec)", *[r.modeled.total for r in runs])
    table.add_row("host measured (sec)", *[r.measured_seconds for r in runs])
    table.add_footer(
        f"Total # candidate modes: {fmt_count(runs[0].total_candidates)}"
    )
    table.add_footer(f"Total # EFM: {fmt_count(runs[0].n_efms)}")
    return table, runs


#: Empirically good 2-reaction partitions per benchmark network (chosen by
#: a candidate-count sweep; see EXPERIMENTS.md).  The paper's own choice
#: for the full Network I was {R89r, R74r}.
TABLE3_PARTITIONS: dict[str, tuple[str, str]] = {
    "yeast-I-small": ("R13r", "R32r"),
    "yeast-II-small": ("R13r", "R32r"),
}


def _default_table3_partition(network_name, reduced, options):
    preset = TABLE3_PARTITIONS.get(network_name)
    if preset is not None and all(reduced.has_reaction(r) for r in preset):
        return preset
    preferred = [r for r in ("R89r", "R74r") if reduced.has_reaction(r)]
    if len(preferred) == 2:
        return tuple(preferred)
    return select_partition_reactions(reduced, 2, options=options)


@dataclasses.dataclass
class Table3Run:
    """Table III: per-subset rows plus the unsplit baseline."""

    table: Table
    subset_candidates: list[int]
    subset_efms: list[int]
    subset_modeled: list[ModeledTimes]
    unsplit_candidates: int
    unsplit_modeled_total: float
    n_efms_total: int

    @property
    def cumulative_candidates(self) -> int:
        return sum(self.subset_candidates)

    @property
    def cumulative_modeled_total(self) -> float:
        return sum(m.total for m in self.subset_modeled)


def run_table3(
    network_name: str = "yeast-I-small",
    partition: Sequence[str] | None = None,
    *,
    n_ranks: int = 16,
    platform: PlatformSpec = CALHOUN,
    backend: BackendName = "sequential",
    options: AlgorithmOptions = DEFAULT_OPTIONS,
) -> Table3Run:
    """Table III: divide-and-conquer across two reactions vs. unsplit.

    The paper partitions Network I across {R89r, R74r} on 16 cores; the
    headline result is cumulative candidates 81.7e9 < 159.6e9 unsplit and
    cumulative time 141.6 s < 209.0 s.
    """
    network, rec, problem, _split_rec = _prepare(network_name, options)
    reduced = rec.reduced
    if partition is None:
        partition = _default_table3_partition(network_name, reduced, options)

    unsplit = combinatorial_parallel(
        problem, n_ranks, options=options, backend=backend
    )
    unsplit_modeled = model_run(unsplit.rank_stats, unsplit.rank_traces, platform)

    dnc = combined_parallel(
        reduced, tuple(partition), n_ranks, options=options, backend=backend
    )

    table = Table(
        title=(
            f"Table III analog — Algorithm 3 on {network.name!r}, partition "
            f"{{{', '.join(partition)}}}, {n_ranks} ranks ({platform.name} model)"
        ),
        columns=["subset", "# EFM", "gen cand (s)", "rank test (s)",
                 "comm (s)", "merge (s)", "total (s)", "# candidates"],
    )
    subset_modeled: list[ModeledTimes] = []
    for s in dnc.subsets:
        if s.stats is None:
            modeled = ModeledTimes(0.0, 0.0, 0.0, 0.0)
            rank_stats = None
        else:
            # Re-derive per-rank stats through traces stored on the result.
            modeled = model_run(
                [s.stats], s.rank_traces or [], platform
            )
        subset_modeled.append(modeled)
        table.add_row(
            s.spec.label(),
            s.n_efms,
            modeled.gen_cand,
            modeled.rank_test,
            modeled.communicate,
            modeled.merge,
            modeled.total,
            s.n_candidates,
        )
    run3 = Table3Run(
        table=table,
        subset_candidates=[s.n_candidates for s in dnc.subsets],
        subset_efms=[s.n_efms for s in dnc.subsets],
        subset_modeled=subset_modeled,
        unsplit_candidates=unsplit.stats.total_candidates,
        unsplit_modeled_total=unsplit_modeled.total,
        n_efms_total=dnc.n_efms,
    )
    table.add_footer(
        f"Cumulative total time: {run3.cumulative_modeled_total:.2f} secs "
        f"(unsplit {n_ranks}-core: {unsplit_modeled.total:.2f} secs)"
    )
    table.add_footer(f"Total # EFM: {fmt_count(dnc.n_efms)}")
    table.add_footer(
        f"Total # candidate modes: {fmt_count(run3.cumulative_candidates)} "
        f"(unsplit: {fmt_count(run3.unsplit_candidates)})"
    )
    return run3


@dataclasses.dataclass
class Table4Run:
    table: Table
    n_efms_total: int
    total_candidates: int
    refinement_count: int
    alg2_oom_iteration: int | None
    alg2_total_iterations: int


def run_table4(
    network_name: str = "yeast-II-small",
    partition: Sequence[str] | None = None,
    *,
    n_ranks: int = 8,
    modeled_ranks: int = 256,
    platform: PlatformSpec = BLUE_GENE_P,
    backend: BackendName = "sequential",
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    capacity_fraction: float = 0.7,
) -> Table4Run:
    """Table IV: the combined algorithm on Network II / Blue Gene/P.

    Reproduces the full §IV story at benchmark scale:

    1. Algorithm 2 alone exceeds per-node memory shortly before completion
       (paper: iteration 59 of 61);
    2. a 3-reaction divide-and-conquer split leaves oversized subsets;
    3. adaptive refinement adds a 4th reaction to exactly those subsets and
       the whole EFM set completes within the memory cap.

    ``capacity_fraction`` sizes the modeled per-rank capacity as a fraction
    of the unsplit run's peak replica (a stand-in for "4 GB on a 63x83
    network" at our reduced scale).
    """
    network, rec, problem, _split_rec = _prepare(network_name, options)
    reduced = rec.reduced

    # Dry run to calibrate the memory cap against this workload's peak.
    probe = MemoryModel(capacity_bytes=1, enforcing=False)
    dry = combinatorial_parallel(
        problem, 1, options=options, backend=backend, memory_model=probe
    )
    peak = dry.result.stats.peak_mode_bytes
    capacity = max(1, int(capacity_fraction * peak * 1.5))  # 1.5 = working factor
    memory = MemoryModel(capacity_bytes=capacity)

    # Step 1: Algorithm 2 alone dies against the cap.
    oom_iteration = None
    try:
        combinatorial_parallel(
            problem, n_ranks, options=options, backend=backend, memory_model=memory
        )
    except ReproError as exc:
        oom_iteration = getattr(exc, "iteration", None)

    # Steps 2-3: combined algorithm with adaptive refinement.
    if partition is None:
        preferred = [r for r in ("R54r", "R90r", "R60r") if reduced.has_reaction(r)]
        partition = (
            tuple(preferred)
            if len(preferred) == 3
            else select_partition_reactions(reduced, 3, options=options)
        )
    adaptive = adaptive_combined(
        reduced, tuple(partition), n_ranks, memory,
        options=options, backend=backend,
    )
    if not adaptive.complete:  # pragma: no cover - calibration failure guard
        raise ReproError(
            "adaptive refinement did not converge under the modeled capacity; "
            "raise capacity_fraction"
        )

    table = Table(
        title=(
            f"Table IV analog — Algorithm 3 on {network.name!r}, partition "
            f"{{{', '.join(partition)}}}, {modeled_ranks} modeled "
            f"{platform.name} nodes (per-rank cap {capacity / 1024**2:.2f} MiB)"
        ),
        columns=["ID", "binary partition subset", "# candidate modes",
                 "# EFM", "modeled time (sec)"],
    )
    total_modeled = 0.0
    for s in adaptive.combined.subsets:
        assert s.stats is not None or s.n_efms == 0
        if s.stats is not None:
            modeled = model_run([s.stats], s.rank_traces or [], platform)
            # Scale generation to the modeled node count: each of
            # modeled_ranks nodes takes 1/modeled_ranks of the pairs.
            t = (
                modeled.gen_cand * n_ranks / modeled_ranks
                + modeled.rank_test * n_ranks / modeled_ranks
                + modeled.communicate
                + modeled.merge
            )
        else:
            t = 0.0
        total_modeled += t
        table.add_row(
            s.spec.subset_id, s.spec.label(), s.n_candidates, s.n_efms, t
        )
    table.add_footer(f"Total # EFM: {fmt_count(adaptive.combined.n_efms)}")
    table.add_footer(f"Total time: {fmt_seconds(total_modeled)}")
    if oom_iteration is not None:
        table.add_footer(
            f"(Algorithm 2 alone: OutOfMemory at iteration {oom_iteration} of "
            f"{problem.q - problem.first_row + problem.first_row}, as in the paper)"
        )
    for ev in adaptive.events:
        table.add_footer(
            f"(refined subset {ev.parent.label()} with {ev.added_reaction} "
            f"after OOM at iteration {ev.at_iteration})"
        )
    return Table4Run(
        table=table,
        n_efms_total=adaptive.combined.n_efms,
        total_candidates=adaptive.combined.total_candidates,
        refinement_count=len(adaptive.events),
        alg2_oom_iteration=oom_iteration,
        alg2_total_iterations=problem.q,
    )
