"""Modeled timing: converting measured work counts into platform seconds.

The bulk-synchronous cost model: each iteration costs its slowest rank
(per-phase max across ranks), and phase times are work / per-core rate
from a :class:`~repro.cluster.platform.PlatformSpec`.  The communicate
phase replays the traced bytes/messages against the interconnect's
latency/bandwidth; the merge phase scales mildly with the rank count
(merging P locally sorted candidate streams)."""

from __future__ import annotations

import dataclasses
import math

from repro.core.stats import RunStats
from repro.cluster.platform import PlatformSpec
from repro.mpi.tracing import CommTrace

#: Modeled cost of a zone-map-skipped pair relative to a fully prefiltered
#: one: a skipped pair's share of the (vectorized) tile-bound evaluation
#: versus two word gathers + OR + popcount per pair.
TILE_SKIP_FRACTION = 1.0 / 16.0


def _gen_pair_work(it) -> float:
    """Effective pair count of one iteration: skipped pairs are charged at
    the tile rate instead of the per-pair prefilter rate."""
    return it.n_pairs - (1.0 - TILE_SKIP_FRACTION) * it.n_pairs_skipped


@dataclasses.dataclass(frozen=True)
class ModeledTimes:
    """Per-phase modeled seconds of one parallel run."""

    gen_cand: float
    rank_test: float
    communicate: float
    merge: float

    @property
    def total(self) -> float:
        return self.gen_cand + self.rank_test + self.communicate + self.merge

    def as_dict(self) -> dict[str, float]:
        return {
            "gen_cand": self.gen_cand,
            "rank_test": self.rank_test,
            "communicate": self.communicate,
            "merge": self.merge,
            "total": self.total,
        }


def model_run(
    rank_stats: list[RunStats],
    rank_traces: list[CommTrace],
    platform: PlatformSpec,
) -> ModeledTimes:
    """Model a combinatorial-parallel run from per-rank statistics."""
    n_ranks = len(rank_stats)
    n_iter = len(rank_stats[0].iterations)
    gen = rank_t = merge_work = 0.0
    for i in range(n_iter):
        its = [s.iterations[i] for s in rank_stats]
        gen += max(_gen_pair_work(it) for it in its) / platform.pair_rate
        rank_t += max(it.n_tested for it in its) / platform.ranktest_rate
        # Every rank merges the full gathered candidate set plus carries
        # its replica forward; P-way merge costs a log-ish factor.
        total_accepted = sum(it.n_accepted for it in its)
        merge_work += total_accepted * (1.0 + 0.25 * math.log2(max(2, n_ranks)))
        merge_work += its[0].n_modes_end * 0.05  # replica bookkeeping
    comm = max((platform.t_communicate(tr) for tr in rank_traces), default=0.0)
    return ModeledTimes(
        gen_cand=gen,
        rank_test=rank_t,
        communicate=comm if n_ranks > 1 else 0.0,
        merge=merge_work / platform.merge_rate,
    )


def model_serial(stats: RunStats, platform: PlatformSpec) -> ModeledTimes:
    """Model a one-rank run (no communication)."""
    gen = sum(_gen_pair_work(it) for it in stats.iterations) / platform.pair_rate
    rank_t = stats.total_rank_tests / platform.ranktest_rate
    merge = sum(it.n_accepted + it.n_modes_end * 0.05 for it in stats.iterations)
    return ModeledTimes(
        gen_cand=gen,
        rank_test=rank_t,
        communicate=0.0,
        merge=merge / platform.merge_rate,
    )
