"""Benchmark harness: experiment runners regenerating each of the paper's
tables and the ablation studies, plus plain-text table rendering."""

from repro.bench.runner import (
    run_table2,
    run_table3,
    run_table4,
)
from repro.bench.tables import Table

__all__ = ["run_table2", "run_table3", "run_table4", "Table"]
