"""Plain-text table rendering in the style of the paper's Tables II-IV."""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence


@dataclasses.dataclass
class Table:
    """A titled grid of cells with a caption trail (the "Total # ..."
    lines under the paper's tables)."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = dataclasses.field(default_factory=list)
    footer: list[str] = dataclasses.field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def add_footer(self, line: str) -> None:
        self.footer.append(line)

    def render(self) -> str:
        cells = [[_fmt(c) for c in row] for row in self.rows]
        widths = [len(h) for h in self.columns]
        for row in cells:
            for j, c in enumerate(row):
                widths[j] = max(widths[j], len(c))

        def line(items: Sequence[str]) -> str:
            return "| " + " | ".join(c.rjust(w) for c, w in zip(items, widths)) + " |"

        sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
        out = [self.title, sep, line(self.columns), sep]
        out.extend(line(row) for row in cells)
        out.append(sep)
        out.extend(self.footer)
        return "\n".join(out)

    def column_values(self, name: str) -> list[Any]:
        j = self.columns.index(name)
        return [row[j] for row in self.rows]

    def __str__(self) -> str:
        return self.render()


def _fmt(x: Any) -> str:
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 100:
            return f"{x:,.1f}"
        if abs(x) >= 0.01:
            return f"{x:.2f}"
        return f"{x:.2e}"
    if isinstance(x, int):
        return f"{x:,}"
    return str(x)


def fmt_count(n: int) -> str:
    """Thousands-separated integer, paper style (159,599,700,951)."""
    return f"{n:,}"


def fmt_seconds(t: float) -> str:
    """Human time for footers: '2h 57min 23 secs' like Table IV."""
    t = float(t)
    h = int(t // 3600)
    m = int((t % 3600) // 60)
    s = t % 60
    if h:
        return f"{h}h {m}min {s:.0f} secs"
    if m:
        return f"{m}min {s:.2f} secs"
    return f"{s:.2f} secs"
