"""CLI entry point: regenerate the paper's tables from the command line.

Usage::

    python -m repro.bench table2 [--network yeast-I-small] [--cores 1,2,4,8,16]
    python -m repro.bench table3 [--network yeast-I-small] [--ranks 16]
    python -m repro.bench table4 [--network yeast-II-small]
    python -m repro.bench efms --network toy [--method combined --qsub 2]
    python -m repro.bench networks
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.runner import run_table2, run_table3, run_table4
from repro.cluster.platform import PLATFORMS, get_platform
from repro.efm.api import compute_efms
from repro.models.registry import get_network, list_networks


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p2 = sub.add_parser("table2", help="Algorithm 2 strong scaling (Table II)")
    p2.add_argument("--network", default="yeast-I-small", choices=list_networks())
    p2.add_argument("--cores", default="1,2,4,8,16")
    p2.add_argument("--platform", default="calhoun", choices=sorted(PLATFORMS))
    p2.add_argument("--backend", default="sequential",
                    choices=("sequential", "thread", "process"))

    p3 = sub.add_parser("table3", help="divide-and-conquer vs unsplit (Table III)")
    p3.add_argument("--network", default="yeast-I-small", choices=list_networks())
    p3.add_argument("--ranks", type=int, default=16)
    p3.add_argument("--partition", default=None,
                    help="comma-separated reduced-network reaction names")
    p3.add_argument("--platform", default="calhoun", choices=sorted(PLATFORMS))

    p4 = sub.add_parser("table4", help="combined algorithm + memory (Table IV)")
    p4.add_argument("--network", default="yeast-II-small", choices=list_networks())
    p4.add_argument("--ranks", type=int, default=4)
    p4.add_argument("--platform", default="bluegene-p", choices=sorted(PLATFORMS))
    p4.add_argument("--capacity-fraction", type=float, default=0.7)

    pe = sub.add_parser("efms", help="compute and summarize EFMs of a network")
    pe.add_argument("--network", required=True, choices=list_networks())
    pe.add_argument("--method", default="serial",
                    choices=("serial", "parallel", "distributed", "combined"))
    pe.add_argument("--ranks", type=int, default=1)
    pe.add_argument("--qsub", type=int, default=2,
                    help="partition size for method=combined")

    sub.add_parser("networks", help="list registered networks")

    pr = sub.add_parser("report", help="regenerate all tables into one report")
    pr.add_argument("--out", default=None, help="write to a file instead of stdout")

    args = parser.parse_args(argv)

    if args.command == "report":
        from repro.bench.report import generate_report, write_report

        if args.out:
            path = write_report(args.out)
            print(f"report written to {path}")
        else:
            print(generate_report())
        return 0

    if args.command == "networks":
        for name in list_networks():
            net = get_network(name)
            print(f"{name:20s} {net.n_metabolites:3d} metabolites, "
                  f"{net.n_reactions:3d} reactions")
        return 0

    if args.command == "table2":
        cores = tuple(int(c) for c in args.cores.split(","))
        table, _ = run_table2(
            args.network, cores,
            platform=get_platform(args.platform), backend=args.backend,
        )
        print(table.render())
        return 0

    if args.command == "table3":
        partition = tuple(args.partition.split(",")) if args.partition else None
        run = run_table3(
            args.network, partition,
            n_ranks=args.ranks, platform=get_platform(args.platform),
        )
        print(run.table.render())
        return 0

    if args.command == "table4":
        run = run_table4(
            args.network,
            n_ranks=args.ranks,
            platform=get_platform(args.platform),
            capacity_fraction=args.capacity_fraction,
        )
        print(run.table.render())
        return 0

    if args.command == "efms":
        net = get_network(args.network)
        kwargs = {}
        if args.method == "combined":
            kwargs["partition"] = args.qsub
        n_ranks = args.ranks if args.method != "serial" else 1
        result = compute_efms(net, method=args.method, n_ranks=n_ranks, **kwargs)
        print(result.summary())
        if result.stats is not None:
            print(f"candidate modes: {result.stats.total_candidates:,}")
        for key in ("compression", "partition", "subsets", "split"):
            if key in result.meta:
                print(f"{key}: {result.meta[key]}")
        return 0

    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
