"""HPC platform models: Blue Gene/P and "Calhoun" (SGI Altix XE 1300).

The paper ran on physical machines this reproduction does not have; the
algorithm's *work* (candidate pairs, rank tests, bytes exchanged) is
measured exactly, and these specs convert work into modeled seconds so the
benchmark tables have the same columns and the same qualitative shape as
Tables II–IV.  The per-operation throughput constants are calibrated from
the paper's own Table II (Network I, 1 core: 159.6e9 candidates in 2744.76
s of generation → ~58.1e6 pairs/s/core on the 2.66 GHz Clovertown) so the
modeled single-core time of the full Network I run reproduces the paper's
number by construction, and everything else follows from measured counts.

§IV of the paper describes both machines in detail; the numbers below are
taken from that section.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ReproError
from repro.mpi.tracing import CommTrace


@dataclasses.dataclass(frozen=True)
class PlatformSpec:
    """A distributed-memory platform for modeled timing.

    Parameters
    ----------
    name:
        Display name.
    cores_per_node, memory_per_node:
        Node shape; ``memory_per_node`` in bytes.
    pair_rate:
        Candidate pairs generated+prefiltered per second per core.
    ranktest_rate:
        Algebraic rank tests per second per core.
    merge_rate:
        Candidate modes merged (sorted/deduplicated) per second per core.
    latency, bandwidth:
        Per-message interconnect latency (s) and per-rank bandwidth (B/s).
    """

    name: str
    cores_per_node: int
    memory_per_node: int
    pair_rate: float
    ranktest_rate: float
    merge_rate: float
    latency: float
    bandwidth: float

    def memory_per_core(self, cores_used_per_node: int | None = None) -> int:
        cores = cores_used_per_node or self.cores_per_node
        if not (1 <= cores <= self.cores_per_node):
            raise ReproError(
                f"{self.name} nodes have {self.cores_per_node} cores; "
                f"cannot use {cores}"
            )
        return self.memory_per_node // cores

    # -- modeled phase times ---------------------------------------------------

    def t_gen_cand(self, n_pairs: int) -> float:
        """Modeled candidate-generation seconds for one core's pair share."""
        return n_pairs / self.pair_rate

    def t_rank_test(self, n_tests: int) -> float:
        return n_tests / self.ranktest_rate

    def t_merge(self, n_modes: int) -> float:
        return n_modes / self.merge_rate

    def t_communicate(self, trace: CommTrace) -> float:
        """Replay a communication trace: latency per message plus bytes over
        per-rank bandwidth.  When the trace carries measured wire sizes
        (typed codec frames / pickle blobs as produced by the backends),
        those are replayed — true serialized volume, one copy per peer for
        collectives; traces without measurements fall back to the logical
        payload sizes, so hand-built traces model as before."""
        return trace.n_messages * self.latency + (
            trace.modeled_bytes_sent + trace.modeled_bytes_received
        ) / self.bandwidth

    def t_communicate_bytes(self, n_messages: int, n_bytes: int) -> float:
        return n_messages * self.latency + n_bytes / self.bandwidth


#: "Calhoun": SGI Altix XE 1300, 256 nodes x 2 quad-core 2.66 GHz Intel Xeon
#: "Clovertown", 16 GB/node, 20 Gbit non-blocking InfiniBand (§IV).
#: pair_rate calibrated from Table II (see module docstring); rank-test and
#: merge rates calibrated from the same table's 1-core rank-test (112.88 s)
#: and 16-core merge rows.
CALHOUN = PlatformSpec(
    name="calhoun",
    cores_per_node=8,
    memory_per_node=16 * 1024**3,
    pair_rate=58.1e6,
    ranktest_rate=6.0e5,
    merge_rate=2.0e7,
    latency=4e-6,
    bandwidth=2.0e9,  # ~20 Gbit/s effective per rank
)

#: Blue Gene/P: PowerPC 450 quad-core 850 MHz, 4 GB/node, 13.6 GF/chip
#: (§IV).  Per-core rates scaled from Calhoun by the clock ratio
#: (850 MHz / 2.66 GHz ≈ 0.32); the 3-D torus has lower latency and lower
#: per-link bandwidth than Calhoun's InfiniBand fabric.
BLUE_GENE_P = PlatformSpec(
    name="bluegene-p",
    cores_per_node=4,
    memory_per_node=4 * 1024**3,
    pair_rate=18.6e6,
    ranktest_rate=1.9e5,
    merge_rate=6.4e6,
    latency=3e-6,
    bandwidth=0.425e9,  # 3.4 Gbit/s per torus link direction
)

#: Registry for CLI lookups.
PLATFORMS: dict[str, PlatformSpec] = {
    CALHOUN.name: CALHOUN,
    BLUE_GENE_P.name: BLUE_GENE_P,
}


def get_platform(name: str) -> PlatformSpec:
    try:
        return PLATFORMS[name]
    except KeyError:
        raise ReproError(
            f"unknown platform {name!r}; available: {', '.join(PLATFORMS)}"
        ) from None


@dataclasses.dataclass(frozen=True)
class JobShape:
    """How many ranks a job runs and how they map onto nodes.

    Mirrors Table II's header rows ("# nodes / # cores per node / total #
    cores / memory per core") and Blue Gene/P's boot modes: SMP mode = 1
    rank/node (4 GB each), dual mode = 2, virtual-node mode = 4 (1 GB
    each).
    """

    platform: PlatformSpec
    n_nodes: int
    ranks_per_node: int

    @property
    def n_ranks(self) -> int:
        return self.n_nodes * self.ranks_per_node

    @property
    def memory_per_rank(self) -> int:
        return self.platform.memory_per_node // self.ranks_per_node

    def describe(self) -> str:
        gb = self.memory_per_rank / 1024**3
        return (
            f"{self.platform.name}: {self.n_nodes} nodes x {self.ranks_per_node} "
            f"ranks = {self.n_ranks} ranks, {gb:.2g} GB/rank"
        )


def bluegene_smp(n_nodes: int) -> JobShape:
    """Blue Gene/P in symmetric-multiprocessing mode (Table IV's setup:
    256 compute nodes, one rank per node)."""
    return JobShape(BLUE_GENE_P, n_nodes, 1)


def bluegene_vn(n_nodes: int) -> JobShape:
    """Blue Gene/P in virtual-node mode (4 ranks/node, 1 GB each)."""
    return JobShape(BLUE_GENE_P, n_nodes, 4)
