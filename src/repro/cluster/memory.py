"""Per-node memory accounting for the replicated mode matrix.

The combinatorial parallel Nullspace Algorithm replicates the current mode
matrix on every rank (§IV.B: "requires the storage of the current nullspace
matrix in the local memory across all compute nodes at each step").  This
model charges each rank for that replica — values plus packed supports plus
a transient factor for the iteration's working set — and raises
:class:`~repro.errors.OutOfMemoryError` when the configured capacity is
exceeded, reproducing the paper's Network II failure ("abandoned at the
59th iteration, two iterations before completion") and driving the adaptive
divide-and-conquer splitter.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.core.state import ModeMatrix
from repro.errors import OutOfMemoryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.dnc.subsets import SubsetSpec
    from repro.network.model import MetabolicNetwork


@dataclasses.dataclass
class MemoryModel:
    """Models one rank's memory budget for mode storage.

    Parameters
    ----------
    capacity_bytes:
        Budget for the replicated mode matrix on one rank.  Pass e.g.
        ``JobShape.memory_per_rank`` (scaled down for tractable benchmark
        networks) or an artificial cap for tests.
    working_factor:
        Multiplier accounting for the iteration's transient allocations
        (candidate chunks, dedup buffers).  The replicated matrix is
        charged at ``working_factor * nbytes``.
    enforcing:
        When False the model only records the peak (dry-run mode).
    """

    capacity_bytes: int
    working_factor: float = 1.5
    enforcing: bool = True
    peak_bytes: int = 0
    last_iteration: int = -1
    #: peak mapped shared-memory segment footprint (one allgather round's
    #: frames across all ranks of this node) — recorded, not enforced:
    #: segments live in /dev/shm, not in the rank's matrix budget, but the
    #: number belongs in capacity planning reports.
    peak_segment_bytes: int = 0

    def charge(self, iteration: int, modes: ModeMatrix) -> None:
        """Account one iteration's footprint; raises on overflow."""
        need = int(self.working_factor * modes.nbytes())
        self.peak_bytes = max(self.peak_bytes, need)
        self.last_iteration = iteration
        if self.enforcing and need > self.capacity_bytes:
            raise OutOfMemoryError(
                f"replicated mode matrix needs {need} bytes at iteration "
                f"{iteration} but the rank capacity is {self.capacity_bytes}",
                iteration=iteration,
                required_bytes=need,
                capacity_bytes=self.capacity_bytes,
            )

    def check(self, iteration: int, modes: ModeMatrix) -> None:
        """Alias matching the ``memory_check`` callback signature."""
        self.charge(iteration, modes)

    def note_segments(self, nbytes: int) -> None:
        """Record a shared-memory allgather round's mapped segment bytes
        (see :attr:`peak_segment_bytes`)."""
        self.peak_segment_bytes = max(self.peak_segment_bytes, int(nbytes))

    def fresh(self) -> "MemoryModel":
        """A zeroed copy with the same configuration (per-subproblem use)."""
        return MemoryModel(
            capacity_bytes=self.capacity_bytes,
            working_factor=self.working_factor,
            enforcing=self.enforcing,
        )


def estimate_mode_bytes(n_modes: int, q: int) -> int:
    """Closed-form footprint estimate for ``n_modes`` float modes over
    ``q`` reactions (values + packed supports), used by the divide-and-
    conquer planner before a subproblem runs."""
    words = max(1, (q + 63) // 64)
    return n_modes * (8 * q + 8 * words)


def prefilter_working_bytes(
    q: int, n_pairs: int, pair_chunk: int, pipeline: str = "deferred"
) -> int:
    """Transient working-set bytes of one candidate-generation chunk.

    Generation gathers, per pair in a chunk of ``min(n_pairs,
    pair_chunk)``: the pair-index vectors (4 int64), the ORed support
    words and the prefilter mask — plus, for survivors, the transient
    dense candidate chunk (which the deferred pipeline frees right after
    support extraction but which exists at the peak; the eager pipeline
    retains it, so it is charged under :func:`candidate_row_bytes`
    instead).  on_oom="degrade" decisions that ignored this undercounted
    the true peak by exactly these buffers.
    """
    words = max(1, (q + 63) // 64)
    chunk = max(0, min(int(n_pairs), int(pair_chunk)))
    base = chunk * (32 + 24 * words + 1)
    # Transient dense candidate chunk — both pipelines materialize it
    # (eager then retains it, charged via candidate_row_bytes; deferred
    # additionally holds the canonical mask + packed words briefly).
    base += chunk * 8 * q
    if pipeline == "deferred":
        base += chunk * (q + 8 * words)
    return base


#: Default transient-byte budget of one streaming chunk when
#: ``iter_chunk_bytes="auto"`` and no per-rank capacity is configured.
#: Large enough that per-chunk dispatch overhead stays negligible, small
#: enough that a chunk's dense values never dominate a 4 GB-class node.
DEFAULT_STREAM_CHUNK_BYTES: int = 16 << 20


def streaming_chunk_pairs(
    q: int,
    iter_chunk_bytes: int | str = "auto",
    pair_chunk: int = 65536,
    pipeline: str = "deferred",
    capacity_bytes: int | None = None,
) -> int:
    """Pairs per streaming chunk implied by a transient-byte budget.

    The budget (``iter_chunk_bytes``, or with ``"auto"`` an eighth of the
    rank's ``capacity_bytes`` when a memory model is configured, else
    :data:`DEFAULT_STREAM_CHUNK_BYTES`) is divided by the per-pair
    transient cost of one generation chunk
    (:func:`prefilter_working_bytes` at ``n_pairs=1``: pair vectors,
    gathered words, prefilter mask, the dense candidate row and — on the
    deferred pipeline — the canonical mask + packed words).  The result
    is clamped to ``[1, pair_chunk]``: streaming never enlarges the
    generation chunk the batch path would use, so chunk transients are
    monotonically bounded by the batch prediction.
    """
    if iter_chunk_bytes == "auto":
        budget = (
            max(1, int(capacity_bytes) // 8)
            if capacity_bytes
            else DEFAULT_STREAM_CHUNK_BYTES
        )
    else:
        budget = int(iter_chunk_bytes)
    per_pair = max(1, prefilter_working_bytes(q, 1, 1, pipeline))
    return max(1, min(int(pair_chunk), budget // per_pair))


def modular_workset_bytes(q: int, rank: int, batch: int) -> int:
    """Transient working-set bytes of one modular rank-kernel batch
    (:mod:`repro.linalg.modular`).

    The kernel answers nullity queries in complement form against a
    ``(d, q)`` basis panel, ``d = q - rank``: per batch it holds the
    gathered complement stack plus one transposed elimination copy
    (``batch * d * w`` float64 each, ``w ≈ d`` complement members after
    padding), the phase-A class snapshots (bounded by the per-candidate
    states), the padded member-index matrix, and the basis panel with one
    residue image.  Small next to the mode matrix, but the scheduler's
    admission model should still see it.
    """
    d = max(1, int(q) - int(rank))
    w = d + 1  # padded complement width: |S̄| ≤ d - 1, plus slack
    b = max(0, int(batch))
    stack = b * d * w * 8 * 2  # gathered stack + transposed copy
    snapshots = b * d * q * 8  # phase-A class states, ≤ one per candidate
    indices = b * w * 8
    basis = d * q * 8 * 2  # float panel + one residue image
    return stack + snapshots + indices + basis


def zone_map_bytes(n_pos: int, n_neg: int, q: int, block: int) -> int:
    """Bytes of the pair-space zone maps (:mod:`repro.core.pairspace`):
    per-block AND/OR words and min popcounts on each side, plus the
    tile-grid live/known masks and geometry vectors."""
    words = max(1, (q + 63) // 64)
    n_pb = -(-max(1, n_pos) // max(1, block))
    n_nb = -(-max(1, n_neg) // max(1, block))
    per_side = lambda nb: nb * (2 * 8 * words + 8)  # noqa: E731
    grid = 2 * n_pb * n_nb  # live + known bool masks
    geometry = 8 * 2 * (n_pos + n_neg) + 8 * n_pb * n_nb
    return per_side(n_pb) + per_side(n_nb) + grid + geometry


def candidate_row_bytes(q: int, pipeline: str = "deferred") -> int:
    """Retained bytes per candidate between generation and acceptance.

    The eager pipeline holds a dense normalized float row plus its packed
    support; the deferred (support-first) pipeline holds only the packed
    support words plus two int64 pair indices (the combination
    coefficients are derived at materialization, not stored) — for
    realistic ``q`` well over an order of magnitude less.
    """
    words = max(1, (q + 63) // 64)
    if pipeline == "deferred":
        return 8 * words + 16
    return 8 * q + 8 * words


def _surrogate_kernel(n: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cheap ``(I; R)``-form kernel for planning surrogates.

    One float Gauss–Jordan pass with partial pivoting (vectorized row
    updates, no SVD): returns ``(kernel, col_perm)`` with the same block
    shape as :func:`~repro.linalg.numeric.kernel_identity_form` — free
    columns first with an identity block on top — but without its
    pivot-priority handling or per-column rank certification.  Only the
    *sign pattern* feeds the trajectory simulation, so echelon-form
    fidelity is all that matters here.
    """
    a = np.asarray(n, dtype=np.float64).copy()
    m, q = a.shape
    tol = 1e-9 * max(1.0, float(np.abs(a).max()) if a.size else 0.0)
    piv_cols: list[int] = []
    r = 0
    for c in range(q):
        if r == m:
            break
        p = r + int(np.argmax(np.abs(a[r:, c])))
        if abs(a[p, c]) <= tol:
            continue
        if p != r:
            a[[r, p]] = a[[p, r]]
        a[r] /= a[r, c]
        others = np.nonzero(np.abs(a[:, c]) > tol)[0]
        others = others[others != r]
        if others.size:
            a[others] -= np.outer(a[others, c], a[r])
        piv_cols.append(c)
        r += 1
    pivset = set(piv_cols)
    free = [c for c in range(q) if c not in pivset]
    col_perm = np.array(free + piv_cols, dtype=np.intp)
    n_free = len(free)
    kernel = np.zeros((q, n_free))
    if n_free:
        kernel[:n_free] = np.eye(n_free)
        if r:
            kernel[n_free:] = -a[:r][:, free]
    return kernel, col_perm


def _pair_trajectory_ratio(n: np.ndarray, reversible: np.ndarray) -> float:
    """Peak pair-count ratio of dynamic greedy selection vs the static
    paper order, on the *no-growth surrogate*.

    Both orders are simulated on the initial kernel's sign pattern alone:
    each step charges the chosen row its ``|pos| * |neg|`` pair count among
    the surviving modes, then (for irreversible rows) removes the negative
    modes — accepted candidates are ignored, mirroring the linear-growth
    surrogate's spirit of cheap, deterministic planning.  The returned
    ratio ``max(dynamic trajectory) / max(static trajectory)`` is how much
    the dynamic order shrinks the worst iteration's pair space; callers
    clamp and apply it to the pair-count surrogate only.

    The kernel comes from :func:`_surrogate_kernel` — one vectorized
    float RREF, not the solver's SVD-pivoted
    :func:`~repro.linalg.numeric.kernel_identity_form` — because this
    runs once per subset inside the scheduler's planning pass and must
    stay negligible next to the subproblem solves it budgets for.
    """
    kernel, col_perm = _surrogate_kernel(n)
    q, n_free = kernel.shape
    if n_free == 0 or q <= n_free:
        return 1.0
    rev = np.asarray(reversible, dtype=bool)[col_perm]
    signs = np.sign(np.asarray(kernel, dtype=np.float64)).astype(np.int8)
    tail = np.arange(n_free, q)
    nnz = np.count_nonzero(kernel[tail], axis=1)
    static = tail[np.lexsort((tail, nnz, rev[tail].astype(np.int8)))]

    def simulate(dynamic: bool) -> int:
        alive = np.ones(n_free, dtype=bool)
        remaining = [int(r) for r in static]
        peak = 0
        while remaining:
            if dynamic:
                rows = np.array(remaining, dtype=np.int64)
                sub = signs[rows][:, alive]
                n_p = (sub > 0).sum(axis=1)
                n_n = (sub < 0).sum(axis=1)
                pairs_all = n_p * n_n
                irr = ~rev[rows]
                cand = np.nonzero(irr)[0] if irr.any() else np.arange(rows.size)
                # Same (active, pairs, position) key as RowSelector._pick.
                pick = cand[
                    np.lexsort((rows[cand], pairs_all[cand], (n_p + n_n)[cand]))[0]
                ]
                r = int(rows[pick])
                pairs = int(pairs_all[pick])
                remaining.remove(r)
            else:
                r = remaining.pop(0)
                srow = signs[r][alive]
                pairs = int((srow > 0).sum()) * int((srow < 0).sum())
            peak = max(peak, pairs)
            if not rev[r]:
                alive &= signs[r] >= 0
        return peak

    peak_static = simulate(False)
    if peak_static <= 0:
        return 1.0
    return simulate(True) / peak_static


def predict_subset_peak_bytes(
    reduced: "MetabolicNetwork",
    spec: "SubsetSpec",
    *,
    working_factor: float = 1.5,
    candidate_pipeline: str = "deferred",
    pair_chunk: int = 65536,
    pair_pruning: str = "tiles",
    pair_block: int = 8,
    iter_streaming: str = "off",
    iter_chunk_bytes: int | str = "auto",
    rank_backend: str = "modular",
    ordering: str = "paper",
) -> int:
    """A-priori peak-footprint prediction for one divide-and-conquer
    subproblem, before its kernel is built.

    The subproblem's stoichiometry is the reduced network's with the
    subset's zero-flux columns deleted; its kernel starts with ``nullity``
    modes and grows over the ``q_work - rank - |pinned|`` processed rows.
    The true peak is exponential in the worst case and unknowable a
    priori, so this uses the linear-growth surrogate
    ``nullity * (1 + rows_to_process)`` — a deterministic, monotone proxy
    good enough for two scheduler decisions that only need *ordering* and
    *relative magnitude*: largest-predicted-first dispatch (LPT
    makespan heuristic) and the admission budget that bounds how much
    predicted peak may be in flight concurrently.

    ``candidate_pipeline`` selects the per-candidate charge for the
    iteration's retained candidate set (:func:`candidate_row_bytes`):
    the eager pipeline holds dense candidate rows between generation and
    acceptance, the deferred default holds packed supports + pair
    metadata only, so its predicted peak is correspondingly lower.  On
    top of the retained set the prediction charges the *transient*
    generation working set (:func:`prefilter_working_bytes`, bounded by
    ``pair_chunk`` and the predicted pair count) and, with
    ``pair_pruning="tiles"``, the zone maps (:func:`zone_map_bytes`).

    With ``rank_backend="modular"`` the residue-field kernel's per-batch
    working set (:func:`modular_workset_bytes`) is charged on top of the
    candidate transients.

    With ``iter_streaming="on"`` the generation chunk shrinks to the
    streaming budget (:func:`streaming_chunk_pairs`, never larger than
    ``pair_chunk``), so the streaming prediction is at most the batch
    prediction.  The retained-candidate charge is kept at the batch
    surrogate: it upper-bounds the streaming state (accepted set + dedup
    index, both a subset-sized fraction of the batch survivor charge), so
    the prediction stays an upper bound on the measured peak in either
    mode.

    With ``ordering="dynamic"`` the pair-count surrogate consumes the
    dynamic order's no-growth trajectory (:func:`_pair_trajectory_ratio`):
    dynamic selection picks the cheapest remaining row each iteration, so
    its worst pair space is at most the static order's — the simulated
    ratio, clamped to ``[0.25, 1.0]`` (never below a quarter, never an
    inflation), scales ``peak_pairs`` only.  The mode-storage and
    retained-candidate surrogates are left untouched: the final EFM set
    (and thus the mode-count growth envelope) is order-independent.

    Returns 0 for structurally empty subproblems (no flux possible).
    """
    from repro.network.stoichiometry import stoichiometric_matrix  # noqa: PLC0415

    n = stoichiometric_matrix(reduced)
    names = reduced.reaction_names
    keep = list(range(n.shape[1]))
    if spec.zero:
        zero = set(spec.zero)
        keep = [j for j, nm in enumerate(names) if nm not in zero]
        n = n[:, keep]
    q_work = n.shape[1]
    if q_work == 0:
        return 0
    rank = int(np.linalg.matrix_rank(n)) if n.size else 0
    nullity = q_work - rank
    if nullity <= 0:
        return 0
    rows_to_process = max(0, rank - len(spec.nonzero))
    peak_modes = nullity * (1 + rows_to_process)
    # Candidate surrogate: the retained candidate set at the peak iteration
    # is on the order of the mode count itself (most pairs die in the
    # union-support prefilter), charged at the pipeline's per-row cost.
    cand_bytes = peak_modes * candidate_row_bytes(q_work, candidate_pipeline)
    # Pair-count surrogate at the peak iteration: the two sign classes
    # split the peak mode count roughly in half.
    peak_pairs = (peak_modes // 2) * (peak_modes - peak_modes // 2)
    if ordering == "dynamic" and peak_pairs:
        try:
            rev_keep = np.asarray(reduced.reversibility, dtype=bool)[keep]
            ratio = min(1.0, max(0.25, _pair_trajectory_ratio(n, rev_keep)))
        except Exception:  # planning surrogate — never fail the prediction
            ratio = 1.0
        peak_pairs = max(1, int(peak_pairs * ratio))
    chunk = pair_chunk
    if iter_streaming == "on":
        chunk = streaming_chunk_pairs(
            q_work, iter_chunk_bytes, pair_chunk, candidate_pipeline
        )
    cand_bytes += prefilter_working_bytes(
        q_work, peak_pairs, chunk, candidate_pipeline
    )
    if pair_pruning == "tiles":
        cand_bytes += zone_map_bytes(
            peak_modes // 2, peak_modes - peak_modes // 2, q_work, pair_block
        )
    if rank_backend == "modular":
        # The residue-field kernel's per-batch working set; batches are at
        # most the surviving candidate count, surrogated by the peak modes.
        cand_bytes += modular_workset_bytes(q_work, rank, peak_modes)
    return int(
        working_factor * estimate_mode_bytes(peak_modes, q_work) + cand_bytes
    )
