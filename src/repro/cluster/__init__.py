"""Simulated HPC platform substrate: machine specs for modeled timing and
the per-node memory model that reproduces the paper's out-of-memory
behaviour."""

from repro.cluster.memory import MemoryModel
from repro.cluster.platform import BLUE_GENE_P, CALHOUN, PlatformSpec

__all__ = ["MemoryModel", "BLUE_GENE_P", "CALHOUN", "PlatformSpec"]
