"""Global numeric policy and algorithm options.

The Nullspace Algorithm is a pivoting-free double-description iteration and
is sensitive to how "zero" is decided.  All tolerance decisions in the
package flow through :class:`NumericPolicy` so tests can tighten or relax
them in one place, and :class:`AlgorithmOptions` collects every tunable of
the core algorithm (ordering heuristic, acceptance test, chunk sizes, ...).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Literal

#: Default relative threshold below which a flux value is treated as zero.
DEFAULT_ZERO_TOL: float = 1e-9

#: Default tolerance for SVD-based rank decisions (scaled by matrix norm).
DEFAULT_RANK_TOL: float = 1e-8

#: Number of candidate pairs materialized per vectorized generation chunk.
#: Bounds peak memory of candidate generation: a chunk allocates
#: ``chunk_size * n_rows`` float64 values plus the packed supports.
DEFAULT_PAIR_CHUNK: int = 65536

Arithmetic = Literal["float", "exact"]
AcceptanceTest = Literal["rank", "bittree", "both"]
OrderingName = Literal[
    "dynamic", "paper", "natural", "most-nonzeros", "random"
]
RankBackend = Literal["modular", "batched", "loop"]
CandidatePipeline = Literal["deferred", "eager"]
PairPruning = Literal["tiles", "none"]
WireProtocol = Literal["typed", "pickle"]
IterStreaming = Literal["on", "off"]


def _default_candidate_pipeline() -> str:
    """Session-wide pipeline default, overridable via the environment so a
    whole test run can be flipped to the eager parity reference (the CI
    ``candidate-pipeline`` matrix leg sets ``REPRO_CANDIDATE_PIPELINE=eager``)."""
    return os.environ.get("REPRO_CANDIDATE_PIPELINE", "deferred")


def _default_wire_protocol() -> str:
    """Session-wide wire-protocol default, overridable via the environment
    so a whole test run can be flipped to the legacy pickle reference (the
    CI ``wire-protocol`` leg sets ``REPRO_WIRE_PROTOCOL=pickle``)."""
    return os.environ.get("REPRO_WIRE_PROTOCOL", "typed")


def _default_comm_timeout() -> float:
    """Blocking-receive poll timeout (seconds) of the parallel backends,
    overridable via ``REPRO_COMM_TIMEOUT_S`` (default: the 300 s that used
    to be hard-coded in the process backend)."""
    return float(os.environ.get("REPRO_COMM_TIMEOUT_S", "300"))


def _default_iter_streaming() -> str:
    """Session-wide streaming-iteration default, overridable via the
    environment so a whole test run can be flipped to the batch parity
    reference (the CI ``iter-streaming`` leg sets
    ``REPRO_ITER_STREAMING=off``)."""
    val = os.environ.get("REPRO_ITER_STREAMING", "on")
    return {"none": "off"}.get(val, val)


def _default_iter_chunk_bytes() -> int | str:
    """Session-wide streaming chunk budget, overridable via
    ``REPRO_ITER_CHUNK_BYTES`` (the CI tiny-chunk leg forces a small value
    to exercise the multi-chunk path on every model).  ``"auto"`` derives
    the budget from the memory model (:func:`repro.cluster.memory.
    streaming_chunk_pairs`)."""
    val = os.environ.get("REPRO_ITER_CHUNK_BYTES", "auto")
    return val if val == "auto" else int(val)


def _default_ordering() -> str:
    """Session-wide row-ordering default, overridable via the environment
    so a whole test run can be flipped to the static paper heuristic (the
    CI ``ordering`` leg sets ``REPRO_ORDERING=paper``)."""
    return os.environ.get("REPRO_ORDERING", "dynamic")


#: Default number of shortlisted rows the dynamic selector refines with
#: the one-step lookahead score (0 = base pair-count score only).
DEFAULT_SELECTION_LOOKAHEAD: int = 4


def _default_rank_backend() -> str:
    """Session-wide rank-backend default, overridable via the environment
    so a whole test run can be flipped to the SVD engines (the CI
    ``rank-backend`` legs set ``REPRO_RANK_BACKEND=batched`` / ``=loop``)."""
    return os.environ.get("REPRO_RANK_BACKEND", "modular")


def _default_pair_pruning() -> str:
    """Session-wide pair-pruning default, overridable via the environment
    so a whole test run can be flipped to the unpruned parity reference
    (the CI ``pair-pruning`` leg sets ``REPRO_PAIR_PRUNING=off``)."""
    val = os.environ.get("REPRO_PAIR_PRUNING", "tiles")
    return {"off": "none", "on": "tiles"}.get(val, val)


@dataclasses.dataclass(frozen=True)
class NumericPolicy:
    """Tolerances governing zero tests and rank decisions.

    Parameters
    ----------
    zero_tol:
        Entries with ``|x| <= zero_tol * max(1, column_max)`` count as zero
        when supports are extracted.  Columns are renormalized to unit
        max-norm after every combination, so in practice this behaves as an
        absolute threshold on normalized data.
    rank_tol:
        Relative singular-value cutoff for numeric rank computation.
    """

    zero_tol: float = DEFAULT_ZERO_TOL
    rank_tol: float = DEFAULT_RANK_TOL

    def __post_init__(self) -> None:
        if not (0 < self.zero_tol < 1e-2):
            raise ValueError(f"zero_tol out of sane range: {self.zero_tol}")
        if not (0 < self.rank_tol < 1e-2):
            raise ValueError(f"rank_tol out of sane range: {self.rank_tol}")


#: Shared default policy instance.
DEFAULT_POLICY = NumericPolicy()


@dataclasses.dataclass(frozen=True)
class AlgorithmOptions:
    """Tunables of the (serial and parallel) Nullspace Algorithm.

    Parameters
    ----------
    arithmetic:
        ``"float"`` runs the vectorized float64 path (production);
        ``"exact"`` runs an arbitrary-precision integer path (slow, used for
        verification and the paper's worked example).
    acceptance:
        Candidate acceptance test: the paper's algebraic ``"rank"`` test
        (nullity of the stoichiometric submatrix == 1), the efmtool-style
        ``"bittree"`` superset test, or ``"both"`` (cross-checking; testing
        aid).
    rank_backend:
        Engine computing the algebraic rank test: ``"modular"`` (default)
        rescales the stoichiometry to exact integers once per problem and
        answers batch nullity queries by certified fraction-free
        elimination over a gcd-reduced integer kernel basis, with
        elimination-prefix reuse across lexsorted supports and automatic
        residue-field / SVD escalation (:mod:`repro.linalg.modular`);
        ``"batched"`` buckets candidates by support size and decomposes
        each bucket with one gufunc-batched SVD call; ``"loop"`` is the
        reference one-SVD-per-candidate path (parity testing, benchmark
        baseline).  All three share the support-pattern rank memo and
        produce identical acceptance decisions.  The default follows
        ``REPRO_RANK_BACKEND``.
    candidate_pipeline:
        How candidate modes travel between generation and acceptance.
        ``"deferred"`` (default) is the support-first pipeline: generation
        keeps only packed support words plus ``(i, j)`` pair indices and
        the two combination coefficients; dedup and the rank test run on
        that representation and dense normalized values are materialized
        once, for accepted candidates only.  ``"eager"`` materializes every
        prefilter survivor as a dense normalized row up front (the parity
        reference).  Both produce bit-identical EFM sets; exact-arithmetic
        runs always use the eager path.
    ordering:
        Row-processing order.  ``"dynamic"`` (default) picks the next
        eliminated row at the top of every iteration from the *live* mode
        matrix: a :class:`~repro.core.ordering.RowSelector` scores each
        remaining row by its exact ``|pos| * |neg|`` pair count (the
        paper's cost driver — "computation time is proportional to the
        number of generated intermediate elementary modes"), optionally
        refined by a one-step lookahead (``selection_lookahead``), with
        reversible rows deferred until no irreversible row remains.  The
        static heuristics keep the one-shot permutation computed from the
        initial kernel: ``"paper"`` = fewest non-zeros first with
        reversible rows pushed last (§II.C); ``"natural"`` keeps kernel
        order; ``"most-nonzeros"`` is the adversarial ablation;
        ``"random"`` uses ``ordering_seed``.  Every ordering yields the
        same EFM set.  The default follows ``REPRO_ORDERING``.
    selection_lookahead:
        Dynamic selection's scoring-cost cap: the number of lowest-base-
        score rows shortlisted for the one-step lookahead refinement
        (simulate the candidate row's negative-mode removal, credit the
        cheapest follow-up row).  ``0`` selects on the base pair count
        alone — the column-partitioned driver always does, since lookahead
        needs the joint sign distribution only replicated drivers hold.
    pair_pruning:
        Zone-map pruning of the candidate pair space
        (:mod:`repro.core.pairspace`).  ``"tiles"`` (default) clusters
        each side's modes by support similarity, partitions them into
        ``pair_block``-sized blocks and skips whole tiles of the pair
        space whose zone-map bound proves every pair fails — or provably
        passes — the union-popcount prefilter; ``"none"`` disables the
        layer (the parity reference — both settings produce bit-identical
        EFM sets).  The default follows ``REPRO_PAIR_PRUNING``
        (``off``/``none`` disables).
    pair_block:
        Modes per zone-map block on each side of the pair space;
        ``"auto"`` (default) picks a size from the pair-space scale.
    pair_chunk:
        Vectorized candidate-generation chunk size (pairs per chunk).
    wire_protocol:
        Message serialization of the parallel backends.  ``"typed"``
        (default) frames known payload shapes (ndarrays, wire tuples,
        scalars) into one contiguous buffer-protocol blob, serialized
        exactly once per collective and decoded as zero-copy read-only
        array views; ``"pickle"`` is the legacy generic path (parity
        reference).  Both produce bit-identical EFM sets.  The default
        follows ``REPRO_WIRE_PROTOCOL``.
    comm_timeout_s:
        Seconds a blocking receive waits before declaring deadlock in the
        parallel backends (``REPRO_COMM_TIMEOUT_S``; previously a
        hard-coded 300 s in the process backend).
    iter_streaming:
        How one iteration's candidate pair space is consumed.  ``"on"``
        (default) streams it as a sequence of bounded chunks, each flowing
        generate → incremental dedup → rank-test → accept before the next
        chunk's dense values exist (:mod:`repro.core.iterstream`) — the
        per-iteration candidate peak is bounded by ``iter_chunk_bytes``
        plus the accepted set instead of the whole surviving candidate
        set.  ``"off"`` is the batch parity reference (generate all →
        dedup all → rank-test all).  Both produce bit-identical EFM sets
        (keep-first dedup, order-preserving chunking); exact-arithmetic
        runs always use the batch path.  The default follows
        ``REPRO_ITER_STREAMING``.
    iter_chunk_bytes:
        Transient-byte budget of one streaming chunk (pairs per chunk are
        derived from it — :func:`repro.cluster.memory.
        streaming_chunk_pairs`); ``"auto"`` (default, env
        ``REPRO_ITER_CHUNK_BYTES``) picks a budget from the memory model's
        per-rank capacity when one is configured, else a fixed default.
    ordering_seed:
        Seed for ``ordering="random"``.
    record_trace:
        Keep a per-iteration snapshot of the mode matrix (used to reproduce
        the paper's Figure 2; expensive — small networks only).
    """

    arithmetic: Arithmetic = "float"
    acceptance: AcceptanceTest = "rank"
    rank_backend: RankBackend = dataclasses.field(
        default_factory=_default_rank_backend
    )
    candidate_pipeline: CandidatePipeline = dataclasses.field(
        default_factory=_default_candidate_pipeline
    )
    pair_pruning: PairPruning = dataclasses.field(
        default_factory=_default_pair_pruning
    )
    pair_block: int | str = "auto"
    ordering: OrderingName = dataclasses.field(default_factory=_default_ordering)
    selection_lookahead: int = DEFAULT_SELECTION_LOOKAHEAD
    pair_chunk: int = DEFAULT_PAIR_CHUNK
    wire_protocol: WireProtocol = dataclasses.field(
        default_factory=_default_wire_protocol
    )
    comm_timeout_s: float = dataclasses.field(default_factory=_default_comm_timeout)
    iter_streaming: IterStreaming = dataclasses.field(
        default_factory=_default_iter_streaming
    )
    iter_chunk_bytes: int | str = dataclasses.field(
        default_factory=_default_iter_chunk_bytes
    )
    ordering_seed: int = 0
    record_trace: bool = False
    policy: NumericPolicy = DEFAULT_POLICY

    def __post_init__(self) -> None:
        if self.arithmetic not in ("float", "exact"):
            raise ValueError(f"unknown arithmetic {self.arithmetic!r}")
        if self.acceptance not in ("rank", "bittree", "both"):
            raise ValueError(f"unknown acceptance test {self.acceptance!r}")
        if self.rank_backend not in ("modular", "batched", "loop"):
            raise ValueError(f"unknown rank backend {self.rank_backend!r}")
        if self.candidate_pipeline not in ("deferred", "eager"):
            raise ValueError(
                f"unknown candidate pipeline {self.candidate_pipeline!r}"
            )
        if self.pair_pruning not in ("tiles", "none"):
            raise ValueError(f"unknown pair pruning {self.pair_pruning!r}")
        if self.pair_block != "auto" and (
            not isinstance(self.pair_block, int) or self.pair_block < 1
        ):
            raise ValueError(
                f"pair_block must be 'auto' or a positive int, "
                f"got {self.pair_block!r}"
            )
        if self.ordering not in (
            "dynamic", "paper", "natural", "most-nonzeros", "random"
        ):
            raise ValueError(f"unknown ordering {self.ordering!r}")
        if not isinstance(self.selection_lookahead, int) or isinstance(
            self.selection_lookahead, bool
        ) or self.selection_lookahead < 0:
            raise ValueError(
                f"selection_lookahead must be a non-negative int, "
                f"got {self.selection_lookahead!r}"
            )
        if self.pair_chunk < 1:
            raise ValueError("pair_chunk must be positive")
        if self.wire_protocol not in ("typed", "pickle"):
            raise ValueError(f"unknown wire protocol {self.wire_protocol!r}")
        if self.comm_timeout_s <= 0:
            raise ValueError("comm_timeout_s must be positive")
        if self.iter_streaming not in ("on", "off"):
            raise ValueError(
                f"unknown iter_streaming {self.iter_streaming!r}"
            )
        if self.iter_chunk_bytes != "auto" and (
            not isinstance(self.iter_chunk_bytes, int)
            or self.iter_chunk_bytes < 1
        ):
            raise ValueError(
                f"iter_chunk_bytes must be 'auto' or a positive int, "
                f"got {self.iter_chunk_bytes!r}"
            )


#: Shared default options instance.
DEFAULT_OPTIONS = AlgorithmOptions()
