"""Pluggable executors for the subproblem scheduler.

Three ways of running the divide-and-conquer subset jobs, all producing
bit-identical results because the scheduler assembles them in canonical
order regardless of completion order:

* ``"inline"`` — sequential, in-process; the reference executor and the
  legacy behaviour of ``combined_parallel``'s subset loop.
* ``"process-pool"`` — a fork-based work-stealing task farm: one shared
  task queue that idle workers pull from (so large jobs never strand small
  ones behind a static partition), plus master-side admission control
  that bounds the sum of *predicted* peak footprints in flight.
* ``"spmd"`` — subsets strided over the simulated-MPI ranks of
  :func:`repro.mpi.spmd.run_spmd`, modeling the paper's Blue Gene/P
  setting where each subset is a separate job submission (Table IV).

Executors are deliberately dumb: ordering, admission budgets, checkpoint
persistence and OOM degradation are all scheduler policy.  An executor
receives an already-scheduled job list and a picklable :class:`WorkOrder`
and returns ``{canonical index -> SubsetResult}``.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import queue as queue_mod
from collections import deque
from typing import TYPE_CHECKING, Callable, Literal

from repro.engine.context import RunContext
from repro.errors import SchedulerError
from repro.mpi.comm import Communicator
from repro.mpi.spmd import BackendName, available_parallelism, run_spmd
from repro.network.model import MetabolicNetwork
from repro.parallel.pairs import PairStrategyName

if TYPE_CHECKING:  # pragma: no cover
    from repro.dnc.combined import SubsetResult
    from repro.engine.scheduler import SubsetJob

ExecutorName = Literal["inline", "process-pool", "spmd"]

#: Every executor name, in documentation order.
EXECUTOR_NAMES: tuple[str, ...] = ("inline", "process-pool", "spmd")

#: ``on_result(job, result)`` streaming callback (checkpoint persistence).
ResultCallback = Callable[["SubsetJob", "SubsetResult"], None]


@dataclasses.dataclass(frozen=True)
class WorkOrder:
    """Everything needed to solve *any* subset job of one run.

    Shipped to worker processes once (fork or pickle), so it must stay
    picklable — which :class:`~repro.engine.context.RunContext` guarantees.
    A forked context's shared rank memo is a private copy: fewer cache
    hits than the in-process executor, never wrong results.
    """

    reduced: MetabolicNetwork
    n_ranks: int
    backend: BackendName
    pair_strategy: PairStrategyName
    auto_split: bool
    context: RunContext


def solve_job(order: WorkOrder, job: "SubsetJob") -> "SubsetResult":
    """Solve one scheduled job with Algorithm 2 (the non-degraded path)."""
    from repro.dnc.combined import solve_subset  # noqa: PLC0415

    result = solve_subset(
        order.reduced,
        job.spec,
        order.n_ranks,
        backend=order.backend,
        pair_strategy=order.pair_strategy,
        auto_split=order.auto_split,
        context=order.context,
    )
    result.predicted_peak_bytes = job.predicted_peak_bytes
    return result


class InlineExecutor:
    """Run jobs sequentially in the calling process (reference executor)."""

    name = "inline"

    def __init__(
        self,
        order: WorkOrder,
        *,
        max_workers: int | None = None,
        admission_bytes: int | None = None,
    ) -> None:
        self.order = order

    @property
    def effective_workers(self) -> int:
        return 1

    def run(
        self,
        jobs: "list[SubsetJob]",
        on_result: ResultCallback | None = None,
    ) -> "dict[int, SubsetResult]":
        results: dict[int, SubsetResult] = {}
        for job in jobs:
            res = solve_job(self.order, job)
            results[job.index] = res
            if on_result is not None:
                on_result(job, res)
        return results


def _pool_worker(task_q, result_q, order: WorkOrder) -> None:
    """Worker loop: pull jobs until the ``None`` sentinel arrives.

    Pull-based dispatch *is* the work stealing: whichever worker goes idle
    takes the next job, so a skewed subset never serializes the rest
    behind a static assignment.  Exceptions are shipped back as messages —
    a worker never dies silently with a job in hand.
    """
    while True:
        job = task_q.get()
        if job is None:
            return
        try:
            res = solve_job(order, job)
        except BaseException as exc:  # noqa: BLE001 - reported to the master
            result_q.put(("error", job.index, f"{type(exc).__name__}: {exc}"))
        else:
            result_q.put(("ok", job.index, res))


class ProcessPoolExecutor:
    """Fork-based work-stealing task farm with admission control.

    ``admission_bytes`` bounds the sum of the *predicted* peak footprints
    of dispatched-but-unfinished jobs — the scheduler's model of cluster
    memory.  A job larger than the whole budget still runs, but alone
    (progress guarantee).  Predictions are a-priori surrogates, so this is
    a soft budget; the hard per-rank budget remains the
    :class:`~repro.cluster.memory.MemoryModel` enforced inside each run.
    """

    name = "process-pool"

    def __init__(
        self,
        order: WorkOrder,
        *,
        max_workers: int | None = None,
        admission_bytes: int | None = None,
    ) -> None:
        self.order = order
        self.max_workers = max_workers if max_workers else available_parallelism()
        self.admission_bytes = admission_bytes

    @property
    def effective_workers(self) -> int:
        return self.max_workers

    def _admit(self, job: "SubsetJob", in_flight: dict[int, int]) -> bool:
        if self.admission_bytes is None or not in_flight:
            return True
        return (
            sum(in_flight.values()) + job.predicted_peak_bytes
            <= self.admission_bytes
        )

    def run(
        self,
        jobs: "list[SubsetJob]",
        on_result: ResultCallback | None = None,
    ) -> "dict[int, SubsetResult]":
        if not jobs:
            return {}
        n_workers = min(self.max_workers, len(jobs))
        ctx = mp.get_context("fork")
        task_q: mp.Queue = ctx.Queue()
        result_q: mp.Queue = ctx.Queue()
        workers = [
            ctx.Process(
                target=_pool_worker,
                args=(task_q, result_q, self.order),
                daemon=True,
            )
            for _ in range(n_workers)
        ]
        for w in workers:
            w.start()

        pending = deque(jobs)  # already in schedule order
        in_flight: dict[int, int] = {}
        by_index = {job.index: job for job in jobs}
        results: dict[int, SubsetResult] = {}
        try:
            while pending or in_flight:
                while pending and self._admit(pending[0], in_flight):
                    job = pending.popleft()
                    in_flight[job.index] = job.predicted_peak_bytes
                    task_q.put(job)
                kind, index, payload = self._next_result(result_q, workers)
                if kind == "error":
                    raise SchedulerError(
                        f"subset job {index} failed in a pool worker: {payload}"
                    )
                in_flight.pop(index, None)
                results[index] = payload
                if on_result is not None:
                    on_result(by_index[index], payload)
        finally:
            for _ in workers:
                task_q.put(None)
            task_q.close()
            for w in workers:
                w.join(timeout=10)
                if w.is_alive():  # pragma: no cover - crash cleanup
                    w.terminate()
        return results

    @staticmethod
    def _next_result(result_q, workers):
        """Block for the next result, but notice a wholesale worker crash
        (e.g. the OOM killer) instead of hanging forever."""
        while True:
            try:
                return result_q.get(timeout=1.0)
            except queue_mod.Empty:
                if not any(w.is_alive() for w in workers):
                    raise SchedulerError(
                        "all pool workers exited with jobs still in flight"
                    ) from None


def _spmd_worker(
    comm: Communicator, order: WorkOrder, jobs: "list[SubsetJob]"
) -> list:
    """SPMD body: rank ``r`` solves jobs ``r, r+size, r+2*size, ...``."""
    return [(job.index, solve_job(order, job)) for job in jobs[comm.rank :: comm.size]]


class SpmdExecutor:
    """Subsets strided over simulated-MPI ranks (static partition).

    The outer :func:`run_spmd` uses the order's communication backend; the
    inner Algorithm 2 run is forced to the sequential engine so ranks do
    not nest process pools.  No admission control — the static stride is
    the paper's one-subset-per-job-submission model, where the per-node
    :class:`~repro.cluster.memory.MemoryModel` is the only budget.
    """

    name = "spmd"

    def __init__(
        self,
        order: WorkOrder,
        *,
        max_workers: int | None = None,
        admission_bytes: int | None = None,
    ) -> None:
        self.outer_backend: BackendName = order.backend
        self.order = dataclasses.replace(order, backend="sequential")
        self.max_workers = max_workers if max_workers else available_parallelism()

    @property
    def effective_workers(self) -> int:
        return self.max_workers

    def run(
        self,
        jobs: "list[SubsetJob]",
        on_result: ResultCallback | None = None,
    ) -> "dict[int, SubsetResult]":
        if not jobs:
            return {}
        size = min(self.max_workers, len(jobs))
        options = self.order.context.options
        outs = run_spmd(
            _spmd_worker,
            size,
            backend=self.outer_backend,
            args=(self.order, list(jobs)),
            wire_protocol=options.wire_protocol,
            comm_timeout=options.comm_timeout_s,
        )
        results: dict[int, SubsetResult] = {}
        for per_rank in outs:
            for index, res in per_rank:
                results[index] = res
        if on_result is not None:
            by_index = {job.index: job for job in jobs}
            for index, res in results.items():
                on_result(by_index[index], res)
        return results


_EXECUTORS = {
    "inline": InlineExecutor,
    "process-pool": ProcessPoolExecutor,
    "spmd": SpmdExecutor,
}


def get_executor(
    name: str,
    order: WorkOrder,
    *,
    max_workers: int | None = None,
    admission_bytes: int | None = None,
):
    """Instantiate an executor by name."""
    try:
        cls = _EXECUTORS[name]
    except KeyError:
        raise SchedulerError(
            f"unknown executor {name!r}; available: {', '.join(EXECUTOR_NAMES)}"
        ) from None
    return cls(order, max_workers=max_workers, admission_bytes=admission_bytes)
