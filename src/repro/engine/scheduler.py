"""Memory-aware scheduler for divide-and-conquer subproblems.

Algorithm 3 makes the 2^q subsets of a partition *independent* — the
paper exploits this by submitting each as a separate Blue Gene/P job
(Table IV).  This module is the single-machine analogue of that job
queue.  It replaces the sequential subset loop that used to live in
``combined_parallel`` with an explicit plan-schedule-dispatch pipeline:

1. **plan** — predict every subset's peak mode-matrix footprint with the
   :func:`~repro.cluster.memory.predict_subset_peak_bytes` surrogate
   (cheap: one rank computation per subset, no kernel build);
2. **schedule** — order the jobs: ``"predicted-peak"`` (largest first,
   the LPT makespan heuristic), ``"subset-id"``, ``"reverse"``, or an
   explicit index permutation (used by the equivalence tests to prove
   schedule independence);
3. **dispatch** — hand the ordered jobs to a pluggable executor
   (:mod:`repro.engine.executors`), with an admission budget bounding the
   predicted bytes in flight;
4. **isolate failures** — with ``on_oom="degrade"``, a subset that
   exceeds the modeled node memory (or is predicted to) re-runs on the
   checkpointed serial path instead of aborting the run;
5. **persist** — with a checkpoint directory, each completed subset is
   written as it finishes and a rerun resumes from what survived.

Whatever the executor, schedule or failure history, :meth:`run` returns
the subsets in canonical (spec enumeration) order, so the EFM union is
bit-identical across all execution strategies.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Literal, Sequence, Union

import numpy as np

from repro.cluster.memory import predict_subset_peak_bytes
from repro.dnc.combined import (
    CombinedRunResult,
    SubsetResult,
    solve_subset_checkpointed_serial,
)
from repro.dnc.subsets import SubsetSpec
from repro.engine.context import RunContext
from repro.engine.executors import EXECUTOR_NAMES, WorkOrder, get_executor
from repro.errors import SchedulerError
from repro.mpi.spmd import BackendName, available_parallelism
from repro.network.model import MetabolicNetwork
from repro.network.stoichiometry import stoichiometric_matrix
from repro.parallel.pairs import PairStrategyName

ScheduleName = Literal["predicted-peak", "subset-id", "reverse"]
Schedule = Union[ScheduleName, Sequence[int]]
OnOom = Literal["record", "degrade"]

_CHECKPOINT_VERSION = 1


@dataclasses.dataclass(frozen=True)
class SubsetJob:
    """One schedulable unit: a subset plus its planning metadata.

    ``index`` is the job's slot in the run's *canonical* result order (the
    position of its spec in the scheduler's spec list), independent of
    where the schedule places it or which worker solves it.
    """

    index: int
    spec: SubsetSpec
    predicted_peak_bytes: int


class SubproblemScheduler:
    """Plan, order, dispatch and repair one divide-and-conquer run.

    Parameters
    ----------
    reduced, specs:
        The reduced network and the subset specs to solve (typically
        ``enumerate_subsets(partition)``, possibly filtered).
    context:
        The run's :class:`~repro.engine.context.RunContext`.  Its memory
        model sets both the per-rank enforcement budget and the default
        admission budget; its ``checkpoint_path`` is the default
        checkpoint directory.
    executor, max_workers:
        Dispatch strategy (see :mod:`repro.engine.executors`) and its
        worker count (default: host parallelism, capped).
    schedule:
        Job ordering policy, or an explicit permutation of job indices.
    admission_bytes:
        Cap on the sum of predicted peak footprints in flight
        concurrently; default ``capacity_bytes * workers`` when a memory
        model is present, else unlimited.
    on_oom:
        ``"record"`` keeps a failed subset's ``OutOfMemoryError`` in its
        result (legacy behaviour; feeds the adaptive refiner);
        ``"degrade"`` re-runs failed (and too-big-to-admit) subsets on
        the checkpointed serial path so the run completes.
    checkpoint_dir:
        Directory for per-subset result persistence and resume.
    """

    def __init__(
        self,
        reduced: MetabolicNetwork,
        specs: Sequence[SubsetSpec],
        *,
        context: RunContext | None = None,
        n_ranks: int = 1,
        backend: BackendName = "sequential",
        pair_strategy: PairStrategyName = "strided",
        auto_split: bool = True,
        executor: str = "inline",
        max_workers: int | None = None,
        schedule: Schedule = "predicted-peak",
        admission_bytes: int | None = None,
        on_oom: str = "record",
        checkpoint_dir: str | Path | None = None,
    ) -> None:
        if executor not in EXECUTOR_NAMES:
            raise SchedulerError(
                f"unknown executor {executor!r}; available: "
                f"{', '.join(EXECUTOR_NAMES)}"
            )
        if on_oom not in ("record", "degrade"):
            raise SchedulerError(
                f"on_oom must be 'record' or 'degrade', got {on_oom!r}"
            )
        self.reduced = reduced
        self.specs = list(specs)
        self.context = RunContext.ensure(context)
        self.n_ranks = n_ranks
        self.backend: BackendName = backend
        self.pair_strategy: PairStrategyName = pair_strategy
        self.auto_split = auto_split
        self.executor_name = executor
        self.max_workers = max_workers
        self.schedule: Schedule = schedule
        self.admission_bytes = admission_bytes
        self.on_oom = on_oom
        if checkpoint_dir is None:
            checkpoint_dir = self.context.checkpoint_path
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None

    # -- planning ------------------------------------------------------------

    def plan(self) -> list[SubsetJob]:
        """Predict every subset's footprint; jobs come back in canonical
        (spec-list) order."""
        wf = (
            self.context.memory_model.working_factor
            if self.context.memory_model is not None
            else 1.5
        )
        return [
            SubsetJob(
                index=i,
                spec=spec,
                predicted_peak_bytes=predict_subset_peak_bytes(
                    self.reduced,
                    spec,
                    working_factor=wf,
                    candidate_pipeline=self.context.options.candidate_pipeline,
                    pair_chunk=self.context.options.pair_chunk,
                    pair_pruning=self.context.options.pair_pruning,
                    iter_streaming=self.context.options.iter_streaming,
                    iter_chunk_bytes=self.context.options.iter_chunk_bytes,
                    rank_backend=self.context.options.rank_backend,
                    ordering=self.context.options.ordering,
                ),
            )
            for i, spec in enumerate(self.specs)
        ]

    def scheduled(self, jobs: Sequence[SubsetJob]) -> list[SubsetJob]:
        """Order ``jobs`` per the schedule policy.

        Ties in ``"predicted-peak"`` break on the canonical index so the
        schedule is deterministic.  An explicit schedule must be a
        permutation of *all* job indices of the run; jobs already resumed
        from a checkpoint are simply absent from ``jobs`` and skipped.
        """
        if isinstance(self.schedule, str):
            if self.schedule == "predicted-peak":
                return sorted(
                    jobs, key=lambda j: (-j.predicted_peak_bytes, j.index)
                )
            if self.schedule == "subset-id":
                return sorted(jobs, key=lambda j: j.index)
            if self.schedule == "reverse":
                return sorted(jobs, key=lambda j: -j.index)
            raise SchedulerError(
                f"unknown schedule {self.schedule!r}; expected "
                "'predicted-peak', 'subset-id', 'reverse' or an index "
                "permutation"
            )
        order = [int(i) for i in self.schedule]
        if sorted(order) != list(range(len(self.specs))):
            raise SchedulerError(
                "explicit schedule must be a permutation of "
                f"0..{len(self.specs) - 1}, got {order!r}"
            )
        by_index = {job.index: job for job in jobs}
        return [by_index[i] for i in order if i in by_index]

    # -- checkpoint persistence ----------------------------------------------

    def _fingerprint(self) -> str:
        """Identity of this run's inputs: network, subsets and the options
        that affect results.  A checkpoint directory written under a
        different fingerprint must not be resumed from."""
        h = hashlib.sha256()
        n = stoichiometric_matrix(self.reduced)
        h.update(np.ascontiguousarray(n, dtype=np.float64).tobytes())
        h.update("|".join(self.reduced.reaction_names).encode())
        h.update(
            "".join("R" if r else "I" for r in self.reduced.reversibility).encode()
        )
        h.update("|".join(spec.label() for spec in self.specs).encode())
        o = self.context.options
        h.update(
            f"{o.arithmetic}|{o.acceptance}|{o.ordering}|"
            f"{o.policy.zero_tol}|{o.policy.rank_tol}".encode()
        )
        return h.hexdigest()

    def _subset_file(self, spec: SubsetSpec) -> Path:
        assert self.checkpoint_dir is not None
        return self.checkpoint_dir / f"subset_{spec.subset_id:05d}.npz"

    def _prepare_checkpoint_dir(self) -> None:
        assert self.checkpoint_dir is not None
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        manifest = self.checkpoint_dir / "manifest.json"
        fingerprint = self._fingerprint()
        if manifest.exists():
            meta = json.loads(manifest.read_text())
            if meta.get("fingerprint") != fingerprint:
                raise SchedulerError(
                    f"checkpoint directory {self.checkpoint_dir} belongs to a "
                    "different run (network, subsets or options changed); "
                    "refusing to mix results"
                )
            return
        manifest.write_text(
            json.dumps(
                {
                    "version": _CHECKPOINT_VERSION,
                    "fingerprint": fingerprint,
                    "n_subsets": len(self.specs),
                }
            )
        )

    def _save_result(self, job: SubsetJob, res: SubsetResult) -> None:
        if self.checkpoint_dir is None or res.oom is not None:
            return
        path = self._subset_file(job.spec)
        tmp = path.with_suffix(".tmp.npz")
        np.savez(
            tmp,
            efms=res.efms,
            wall_time=np.float64(res.wall_time),
            degraded=np.int64(res.degraded),
        )
        tmp.replace(path)  # atomic: a crash never leaves a torn subset file

    def _load_resumed(self, jobs: Sequence[SubsetJob]) -> dict[int, SubsetResult]:
        resumed: dict[int, SubsetResult] = {}
        for job in jobs:
            path = self._subset_file(job.spec)
            if not path.exists():
                continue
            with np.load(path) as data:
                resumed[job.index] = SubsetResult(
                    spec=job.spec,
                    efms=np.ascontiguousarray(data["efms"]),
                    stats=None,
                    rank_traces=[],
                    wall_time=float(data["wall_time"]),
                    degraded=bool(data["degraded"]),
                    resumed=True,
                    predicted_peak_bytes=job.predicted_peak_bytes,
                )
        return resumed

    # -- degradation ---------------------------------------------------------

    def _degrade(self, job: SubsetJob) -> SubsetResult:
        """Re-run one subset on the checkpointed serial path (failure
        isolation: slow beats dead)."""
        ckpt = (
            self.checkpoint_dir / f"subset_{job.spec.subset_id:05d}_serial.npz"
            if self.checkpoint_dir is not None
            else None
        )
        res = solve_subset_checkpointed_serial(
            self.reduced,
            job.spec,
            context=self.context,
            checkpoint_path=ckpt,
            checkpoint_every=self.context.checkpoint_every,
            auto_split=self.auto_split,
        )
        res.predicted_peak_bytes = job.predicted_peak_bytes
        if ckpt is not None and ckpt.exists():
            ckpt.unlink()  # the subset finished; the row-level snapshot is spent
        return res

    # -- the run -------------------------------------------------------------

    def run(self) -> CombinedRunResult:
        jobs = self.plan()

        results: dict[int, SubsetResult] = {}
        if self.checkpoint_dir is not None:
            self._prepare_checkpoint_dir()
            results = self._load_resumed(jobs)
        n_resumed = len(results)
        pending = [job for job in jobs if job.index not in results]

        # Admission pre-screen: a subset predicted to blow a single node's
        # budget goes straight to the degraded path — running it through
        # Algorithm 2 first would only burn the time until the OOM.
        pre_degraded: list[SubsetJob] = []
        mm = self.context.memory_model
        if self.on_oom == "degrade" and mm is not None and mm.enforcing:
            cap = int(mm.capacity_bytes)
            pre_degraded = [j for j in pending if j.predicted_peak_bytes > cap]
            pending = [j for j in pending if j.predicted_peak_bytes <= cap]

        order = WorkOrder(
            reduced=self.reduced,
            n_ranks=self.n_ranks,
            backend=self.backend,
            pair_strategy=self.pair_strategy,
            auto_split=self.auto_split,
            context=self.context,
        )
        executor = get_executor(
            self.executor_name,
            order,
            max_workers=self.max_workers,
            admission_bytes=self._admission_budget(executor_workers=None),
        )
        solved = executor.run(self.scheduled(pending), on_result=self._save_result)
        missing = {j.index for j in pending} - set(solved)
        if missing:  # pragma: no cover - executor contract violation
            raise SchedulerError(
                f"executor {self.executor_name!r} returned no result for "
                f"jobs {sorted(missing)}"
            )
        results.update(solved)

        n_degraded = 0
        if self.on_oom == "degrade":
            retry = pre_degraded + [
                job for job in jobs
                if job.index in results and results[job.index].oom is not None
            ]
            for job in retry:
                res = self._degrade(job)
                results[job.index] = res
                self._save_result(job, res)
                n_degraded += 1

        subsets = [results[job.index] for job in jobs]  # canonical order
        meta = {
            "executor": self.executor_name,
            "schedule": self.schedule
            if isinstance(self.schedule, str)
            else list(self.schedule),
            "n_jobs": len(jobs),
            "n_resumed": n_resumed,
            "n_degraded": n_degraded,
            "admission_bytes": self._admission_budget(executor_workers=None),
            "predicted_total_bytes": sum(j.predicted_peak_bytes for j in jobs),
        }
        return CombinedRunResult(network=self.reduced, subsets=subsets, meta=meta)

    def _admission_budget(self, executor_workers: int | None) -> int | None:
        """Default admission budget: one node's capacity per worker (i.e.
        the modeled cluster memory).  Explicit ``admission_bytes`` wins."""
        if self.admission_bytes is not None:
            return self.admission_bytes
        if self.context.memory_model is None:
            return None
        workers = (
            executor_workers
            if executor_workers is not None
            else (self.max_workers or available_parallelism())
        )
        return int(self.context.memory_model.capacity_bytes) * workers
