"""The run context: one object owning every cross-cutting concern.

Before this layer existed each driver (serial Algorithm 1, combinatorial
Algorithm 2, the column-partitioned variant, the checkpointed serial path
and the divide-and-conquer Algorithm 3) re-threaded ``AlgorithmOptions``,
the rank-test cache wiring, ``RunStats`` collection, tracing, checkpoint
configuration and the :class:`~repro.cluster.memory.MemoryModel` by hand,
so every cross-cutting feature multiplied across five code paths.
:class:`RunContext` is the single seam: ``compute_efms`` constructs it
once and passes it down; drivers ask it for what they need instead of
accepting a private keyword for each concern.

The context is deliberately picklable (no lambdas, no open files) so it
can cross process boundaries: the process-pool executor and the
simulated-MPI process backend fork with a copy.  Mutable members degrade
gracefully on copies — a forked :class:`~repro.linalg.batched.RankCache`
is merely a smaller cache, never a wrong one, and per-process stats sinks
are re-aggregated by the dispatching side.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.config import DEFAULT_OPTIONS, AlgorithmOptions
from repro.cluster.memory import MemoryModel
from repro.core.stats import IterationStats, RunStats
from repro.core.trace import IterationTrace
from repro.linalg import rational
from repro.linalg.batched import CacheBinding, RankCache, problem_token

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import NullspaceProblem
    from repro.core.state import ModeMatrix
    from repro.network.model import MetabolicNetwork


class TraceRecorder:
    """Per-run iteration-snapshot collector (the paper's Figure 2 traces).

    A disabled recorder is a no-op so drivers can call :meth:`capture`
    unconditionally.
    """

    __slots__ = ("enabled", "snapshots")

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self.snapshots: list[IterationTrace] = []

    def capture(
        self,
        position: int,
        problem: "NullspaceProblem",
        modes: "ModeMatrix",
        sel_score: int = 0,
    ) -> None:
        if self.enabled:
            self.snapshots.append(
                IterationTrace.capture(position, problem, modes, sel_score)
            )


@dataclasses.dataclass
class RunContext:
    """Everything a Nullspace Algorithm driver needs beyond the problem.

    Parameters
    ----------
    options:
        The algorithm tunables (arithmetic, acceptance test, rank backend,
        ordering, chunk sizes).
    memory_model:
        Optional modeled per-rank memory budget.  Drivers obtain fresh
        (zeroed) copies per run via :meth:`fresh_memory` so subproblems are
        accounted independently.
    checkpoint_path:
        Where the checkpointed drivers persist state: an ``.npz`` file for
        the serial path, a directory for the divide-and-conquer scheduler's
        per-subset results.
    checkpoint_every:
        Snapshot period (iterations) of the checkpointed serial driver.
    """

    options: AlgorithmOptions = DEFAULT_OPTIONS
    memory_model: MemoryModel | None = None
    checkpoint_path: Path | None = None
    checkpoint_every: int = 1
    #: Shared rank memo for divide-and-conquer runs: ``(cache, token)``
    #: keyed by canonical reduced-network columns (see
    #: :meth:`bind_shared_rank_memo`).  ``None`` means every run gets its
    #: own per-problem memo.
    shared_rank_memo: tuple[RankCache, bytes] | None = None
    #: Finished per-run statistics, appended by drivers via :meth:`collect`
    #: (in-process runs only; forked executors aggregate on return values).
    collected_stats: list[RunStats] = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        if self.checkpoint_path is not None:
            self.checkpoint_path = Path(self.checkpoint_path)

    # -- construction --------------------------------------------------------

    @classmethod
    def ensure(
        cls,
        context: "RunContext | None",
        *,
        options: AlgorithmOptions = DEFAULT_OPTIONS,
        memory_model: MemoryModel | None = None,
    ) -> "RunContext":
        """Return ``context`` unchanged, or build one from legacy keywords.

        The drivers' pre-engine keyword arguments (``options=``,
        ``memory_model=``) remain supported; when both a context and the
        keywords are given, the context wins — it is the single source of
        truth constructed by the caller that owns the run.
        """
        if context is not None:
            return context
        return cls(options=options, memory_model=memory_model)

    # -- rank-test cache wiring (satellite: single point of truth) -----------

    def rank_binding_for(
        self,
        problem: "NullspaceProblem",
        col_ids: np.ndarray | None = None,
    ) -> CacheBinding | None:
        """The rank-test cache binding for one prepared problem.

        Replaces the ``make_rank_binding`` / ``shared_rank_cache`` /
        ``problem_token`` wiring previously copy-pasted across the serial,
        combinatorial, distributed, checkpointed and divide-and-conquer
        drivers.  Three regimes:

        * the loop backend and pure-bittree runs take no cache (``None``;
          the modular and batched backends share one memo format);
        * with :attr:`shared_rank_memo` bound (divide-and-conquer), the
          binding addresses the run-wide memo through ``col_ids`` — the
          mapping from the problem's permuted columns to canonical
          reduced-network column ids, so differing permutations, deletions
          and reversible splits all hit the same entries;
        * otherwise a fresh per-run memo keyed by the problem's own
          stoichiometry.

        A shared memo without a column map would be unsound (raw support
        words mean different column sets in different subproblems), so in
        that combination the binding quietly degrades to a fresh private
        memo.
        """
        if (
            self.options.rank_backend not in ("batched", "modular")
            or self.options.acceptance == "bittree"
        ):
            return None
        if self.shared_rank_memo is not None and col_ids is not None:
            cache, token = self.shared_rank_memo
            return CacheBinding(cache, token, col_ids)
        token = problem_token(
            problem.n_perm, self.options.policy, self.options.arithmetic == "exact"
        )
        return CacheBinding(RankCache(), token)

    def bind_shared_rank_memo(self, reduced: "MetabolicNetwork") -> None:
        """Attach one rank memo for *all* subproblems of a divide-and-conquer
        run over ``reduced``.

        Every subproblem's stoichiometry is the reduced network's with some
        columns deleted (and possibly split into sign-flipped copies), so
        the rank of a submatrix depends only on which reduced-network
        columns the support selects — disjoint subsets repeatedly test
        overlapping supports of the same matrix, and Algorithm 3's
        redundancy becomes cache hits.  No-op when neither memo-capable
        backend (batched, modular) is on (then :meth:`rank_binding_for`
        returns ``None`` anyway).
        """
        from repro.network.stoichiometry import stoichiometric_matrix  # noqa: PLC0415

        if (
            self.options.rank_backend not in ("batched", "modular")
            or self.options.acceptance == "bittree"
        ):
            self.shared_rank_memo = None
            return
        token = problem_token(
            stoichiometric_matrix(reduced),
            self.options.policy,
            self.options.arithmetic == "exact",
        )
        self.shared_rank_memo = (RankCache(), token)

    # -- per-run helpers -----------------------------------------------------

    def n_exact_for(self, problem: "NullspaceProblem") -> rational.FractionMatrix | None:
        """The exact stoichiometry for the rank test, when running exact."""
        if self.options.arithmetic != "exact":
            return None
        return rational.from_numpy(problem.n_perm)

    def fresh_memory(self) -> MemoryModel | None:
        """A zeroed copy of the memory model (per-run/per-subproblem
        accounting), or ``None`` when no budget is modeled."""
        return self.memory_model.fresh() if self.memory_model is not None else None

    def new_iteration(self, problem: "NullspaceProblem", k: int) -> IterationStats:
        """A fresh per-row stats record for position ``k``."""
        return IterationStats(
            position=k,
            reaction=problem.names[k],
            reversible=bool(problem.reversible[k]),
        )

    def row_selector_for(
        self,
        problem: "NullspaceProblem",
        stop: int | None = None,
        *,
        processed=(),
    ):
        """The run's :class:`~repro.core.ordering.RowSelector` over the
        window ``[first_row, stop)`` — static orderings replay the baked-in
        permutation, ``ordering="dynamic"`` scores the live mode matrix
        each iteration.  ``processed`` seeds an already-realized prefix
        (checkpoint resume)."""
        from repro.core.ordering import RowSelector  # noqa: PLC0415

        return RowSelector(
            problem,
            problem.q if stop is None else stop,
            self.options,
            processed=processed,
        )

    def trace_recorder(self) -> TraceRecorder:
        """A per-run snapshot recorder, enabled by ``options.record_trace``."""
        return TraceRecorder(self.options.record_trace)

    def collect(self, stats: RunStats) -> None:
        """Sink a finished run's statistics for caller-side aggregation."""
        self.collected_stats.append(stats)
