"""Execution engine: the run context and the subproblem scheduler.

This package is the seam between the pathway-analysis kernels (``core/``,
``dnc/``) and their execution substrate:

* :class:`~repro.engine.context.RunContext` — one object owning options,
  rank-test cache wiring, memory model, tracing, checkpoint configuration
  and statistics collection, constructed once per ``compute_efms`` call
  and consumed by all five drivers;
* :class:`~repro.engine.scheduler.SubproblemScheduler` — memory-aware
  dispatch of the ``2**q_sub`` divide-and-conquer subproblems over
  pluggable executors (``inline``, work-stealing ``process-pool``, and the
  simulated-MPI ``spmd`` backend), with an admission budget, OOM
  degradation to the checkpointed serial path, and subset-level
  checkpoint/resume.

The scheduler (and its executors) import the divide-and-conquer driver
stack, which itself consumes :mod:`repro.engine.context`; to keep that
one-directional at import time the scheduler symbols are loaded lazily.
"""

from __future__ import annotations

from repro.engine.context import RunContext, TraceRecorder

_LAZY = {
    "SubproblemScheduler": "repro.engine.scheduler",
    "SubsetJob": "repro.engine.scheduler",
    "ScheduleName": "repro.engine.scheduler",
    "ExecutorName": "repro.engine.executors",
    "get_executor": "repro.engine.executors",
    "EXECUTOR_NAMES": "repro.engine.executors",
}

__all__ = ["RunContext", "TraceRecorder", *_LAZY]


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
