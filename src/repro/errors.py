"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class NetworkError(ReproError):
    """A metabolic network is malformed or violates a structural invariant."""


class ParseError(NetworkError):
    """A reaction equation or network file could not be parsed."""


class CompressionError(NetworkError):
    """Network compression failed or produced an inconsistent record."""


class LinAlgError(ReproError):
    """An exact or floating linear-algebra routine failed."""


class AlgorithmError(ReproError):
    """The Nullspace Algorithm reached an invalid internal state."""


class ReversibleIdentityError(AlgorithmError):
    """Reversible reactions would land in the kernel's identity block.

    The Nullspace Algorithm never processes identity-block rows, so a
    reversible reaction there would lose its negative-flux modes.  Carries
    the offending reaction names so callers can split them
    (:func:`repro.efm.split_reversible`) and retry.
    """

    def __init__(self, message: str, reactions: tuple[str, ...]) -> None:
        super().__init__(message)
        self.reactions = reactions


class DependentPartitionError(AlgorithmError):
    """A reversible divide-and-conquer partition reaction is linearly
    dependent on the other pivot columns, so its kernel row cannot carry
    negative entries and Proposition 1's early stop would miss modes.  The
    subset driver falls back to full enumeration + filtering."""


class PartitionError(ReproError):
    """An invalid divide-and-conquer partition was requested.

    Raised e.g. when a partitioning reaction was eliminated by the
    compression preprocessing step (the paper notes that partition reactions
    "can not be randomly selected" for exactly this reason).
    """


class CommunicatorError(ReproError):
    """Misuse or internal failure of the message-passing substrate."""


class SchedulerError(ReproError):
    """The subproblem scheduler or one of its executors failed.

    Raised when an executor worker dies with a non-algorithmic error, when
    a scheduler checkpoint directory belongs to a different run, or when an
    invalid executor/schedule combination is requested.  Algorithmic
    failures inside a subproblem (:class:`OutOfMemoryError`) are *not*
    wrapped in this error — they are captured per subset and handled by the
    scheduler's admission/degradation policy.
    """


class OutOfMemoryError(ReproError):
    """The modeled per-node memory capacity was exceeded.

    Mirrors the paper's Blue Gene/P failure mode where the combinatorial
    parallel algorithm on Network II "had to be abandoned at the 59th
    iteration, two iterations before completion" because the replicated mode
    matrix no longer fit in node memory.  Carries enough context for the
    adaptive divide-and-conquer driver to decide how to split further.
    """

    def __init__(
        self,
        message: str,
        *,
        iteration: int | None = None,
        required_bytes: int | None = None,
        capacity_bytes: int | None = None,
    ) -> None:
        super().__init__(message)
        #: Iteration (row index, 0-based within the processed rows) at which
        #: the capacity was exceeded, if known.
        self.iteration = iteration
        #: Bytes the algorithm would have needed at the failure point.
        self.required_bytes = required_bytes
        #: Modeled per-node capacity in bytes.
        self.capacity_bytes = capacity_bytes
