"""Constrained yeast-network variants for tractable benchmarking.

The paper's full Network I needs ~1.6e11 candidate pairs (Table II) — hours
to days of pure Python.  These variants knock out reactions of Networks
I/II so the *identical code path* (compression, kernel, pairing, rank test,
parallel merge, divide-and-conquer) runs at a scale that finishes in
seconds to minutes, preserving the qualitative structure: a reduced network
with tens of reactions, a mix of reversible/irreversible rows, and EFM
counts in the 10^3–10^5 range.

Knocking out a reaction = deleting its column, exactly how EFM-based gene
knockout studies (paper refs [4]–[7]) model deletions, so these variants
are themselves realistic workloads, not synthetic mutilations.
"""

from __future__ import annotations

from repro.models.yeast import yeast_network_1, yeast_network_2
from repro.network.model import MetabolicNetwork

#: Knockouts defining the "medium" Network I benchmark variant.  Chosen to
#: disable the glyoxylate bypass, one of the two redundant cytosolic
#: ICIT->AKG routes, the LAC/FOR fermentation branches and a handful of
#: mitochondrial shuttles — pruning parallel routes multiplies down the EFM
#: count while leaving glycolysis, PPP, TCA and biomass production intact.
YEAST_1_MEDIUM_KNOCKOUTS: tuple[str, ...] = (
    "R46",  # ICIT -> GLX + SUCC (glyoxylate shunt)
    "R47",  # ACCOA + GLX -> COA + MAL
    "R77",  # cytosolic ICIT + NADP -> AKG (duplicate of R23)
    "R30r",  # lactate fermentation
    "R64",  # LAC export
    "R33",  # pyruvate-formate lyase
    "R65",  # FOR export
    "R92r",  # AC_mit <-> AC shuttle
    "R95r",  # ETOH <-> ETOH_mit shuttle
    "R85",  # mitochondrial ETOH -> ACCOA_mit
    "R86",  # ACEADH_mit -> AC_mit (NAD)
    "R87",  # ACEADH_mit -> AC_mit (NADP)
    "R78r",  # ACEADH_mit <-> ETOH_mit
    "R100",  # SUCC -> SUCC_mit uniport (duplicate of R98/R89r routes)
    "R41",  # ACEADH + NADP -> AC (duplicate of R53)
)

#: Additional knockouts for the "small" variant (quick tests / CI): the
#: whole pentose-phosphate pathway.  Empirically this leaves 530 EFMs on
#: Network I (sub-second runs) while keeping glycolysis, fermentation, TCA
#: and the mitochondrial shuttles — i.e. the structure the algorithms care
#: about — intact.
YEAST_1_SMALL_EXTRA: tuple[str, ...] = (
    "R15",  # G6P oxidative PPP entry
    "R16r",  # RL5P <-> R5P
    "R17r",  # RL5P <-> X5P
    "R18r",  # transketolase 1
    "R19r",  # transketolase 2
    "R20r",  # transaldolase
)


def yeast_1_medium() -> MetabolicNetwork:
    """Network I constrained to a medium-scale benchmark workload."""
    net = yeast_network_1().without_reactions(YEAST_1_MEDIUM_KNOCKOUTS, suffix="")
    return MetabolicNetwork("yeast-I-medium", net.metabolites, net.reactions)


def yeast_1_small() -> MetabolicNetwork:
    """Network I constrained to a small, seconds-scale workload."""
    net = yeast_network_1().without_reactions(
        YEAST_1_MEDIUM_KNOCKOUTS + YEAST_1_SMALL_EXTRA, suffix=""
    )
    return MetabolicNetwork("yeast-I-small", net.metabolites, net.reactions)


#: Knockouts defining the Network II benchmark variant.  Same pruning
#: philosophy; the glucose-kinase / oxidative-phosphorylation additions of
#: Figure 5 (R1, R14, R56, R57, R61, reversible R54r/R60r/R63r) are kept
#: because they are what distinguishes Network II.
YEAST_2_MEDIUM_KNOCKOUTS: tuple[str, ...] = YEAST_1_MEDIUM_KNOCKOUTS


def yeast_2_medium() -> MetabolicNetwork:
    """Network II constrained to a medium-scale benchmark workload."""
    net = yeast_network_2().without_reactions(YEAST_2_MEDIUM_KNOCKOUTS, suffix="")
    return MetabolicNetwork("yeast-II-medium", net.metabolites, net.reactions)


def yeast_2_small() -> MetabolicNetwork:
    """Network II constrained to a small, seconds-scale workload."""
    net = yeast_network_2().without_reactions(
        YEAST_2_MEDIUM_KNOCKOUTS + YEAST_1_SMALL_EXTRA, suffix=""
    )
    return MetabolicNetwork("yeast-II-small", net.metabolites, net.reactions)
