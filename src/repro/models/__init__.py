"""Model zoo: the paper's networks, constrained benchmark variants, and a
seeded random-network generator."""

from repro.models.generators import random_network
from repro.models.registry import get_network, list_networks
from repro.models.toy import toy_network
from repro.models.yeast import yeast_network_1, yeast_network_2

__all__ = [
    "random_network",
    "get_network",
    "list_networks",
    "toy_network",
    "yeast_network_1",
    "yeast_network_2",
]
