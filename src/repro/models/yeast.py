"""The paper's *S. cerevisiae* metabolic networks.

Network I (Figures 3 & 4): 62 internal metabolites, 78 reactions, of which
31 are reversible; the paper computes 1,515,314 EFMs for it (Table II).
Network II (Figure 5): Network I plus glucose kinetics and oxidative
phosphorylation — 63 metabolites, 83 reactions, 49,764,544 EFMs (Table IV).

Transcription notes
-------------------
* Mitochondrial species (printed "AKG mit" etc.) are spelled ``AKG_mit``.
* ``*ext`` species are external (outside the system boundary) per the
  paper's convention; the biomass species ``BIO`` (product of R70) carries
  no suffix in the figures but must be unconstrained for the network to
  produce biomass modes, so it is declared external explicitly.
* Figure 4 prints R94r–R97r with a one-way arrow despite the trailing
  ``r`` and their placement in "the reversible reactions" figure; we follow
  the figure title and the naming convention, treating them as reversible.
* In Network I, ``O2`` is a dead end (R68 imports it; its consumers R56 and
  R57 only exist in Network II), so compression blocks R68 — mirroring the
  paper's preprocessing, which also removes constitutively blocked
  reactions.
"""

from __future__ import annotations

from repro.network.model import MetabolicNetwork
from repro.network.parser import network_from_equations

#: Species without the ``ext`` suffix that the model treats as external.
YEAST_EXTERNALS: tuple[str, ...] = ("BIO",)

#: Figure 3 — the irreversible reactions of Network I.
YEAST_1_IRREVERSIBLE: tuple[str, ...] = (
    "R4 : F6P + ATP => FDP + ADP",
    "R5 : FDP => F6P",
    "R9 : PYR + ATP => PEP + ADP",
    "R10 : PEP + ADP => PYR + ATP",
    "R12 : GL3P + FAD_mit => DHAP + FADH_mit",
    "R26 : GL3P => GLY",
    "R15 : G6P + 2 NADP => 2 NADPH + CO2 + RL5P",
    "R21 : ACCOA + OA => COA + CIT",
    "R23 : ICIT + NADP => CO2 + NADPH + AKG",
    "R24 : AKG_mit + NAD_mit + COA_mit => CO2 + NADH_mit + SUCCOA_mit",
    "R27 : FUM + FADH => SUCC + FAD",
    "R33 : PYR + COA => ACCOA + FOR",
    "R37 : PYR + ATP + CO2 => ADP + OA",
    "R38 : PYR => ACEADH + CO2",
    "R40 : ACEADH + NADH => ETOH + NAD",
    "R41 : ACEADH + NADP => AC + NADPH",
    "R42 : OA + ATP => PEP + CO2 + ADP",
    "R43 : PEP + CO2 => OA",
    "R46 : ICIT => GLX + SUCC",
    "R47 : ACCOA + GLX => COA + MAL",
    "R53 : ACEADH + NAD => AC + NADH",
    "R54 : ATP => ADP",
    "R58 : NADH + NAD_mit => NAD + NADH_mit",
    "R59 : NH3ext => NH3",
    "R60 : GLY => GLYext",
    "R62 : GLCext + PEP => G6P + PYR",
    "R63 : AC => ACext",
    "R64 : LAC => LACext",
    "R65 : FOR => FORext",
    "R66 : ETOH => ETOHext",
    "R67 : SUCC => SUCCext",
    "R68 : O2ext => O2",
    "R69 : CO2 => CO2ext",
    "R70 : 7437 G6P + 611 G3P + 437 R5P + 130 E4P + 500 PEP + 2060 PYR"
    " + 45 ACCOA_mit + 362 ACCOA + 733 AKG + 1232 OA + 1158 NAD + 434 NAD_mit"
    " + 6413 NADPH + 1568 NADPH_mit + 40141 ATP + 5587 NH3"
    " => 1000 BIO + 247 CO2 + 45 COA_mit + 362 COA + 1158 NADH + 434 NADH_mit"
    " + 6413 NADP + 1568 NADP_mit + 40141 ADP",
    "R72 : PYR_mit + COA_mit + NAD_mit => ACCOA_mit + NADH_mit + CO2",
    "R73 : OA_mit + ACCOA_mit => CIT_mit + COA_mit",
    "R75 : ICIT_mit + NAD_mit => AKG_mit + NADH_mit + CO2",
    "R76 : ICIT_mit + NADP_mit => AKG_mit + NADPH_mit + CO2",
    "R77 : ICIT + NADP => AKG + NADPH + CO2",
    "R82 : MAL_mit + NADP_mit => PYR_mit + NADPH_mit + CO2",
    "R85 : ETOH_mit + COA_mit + 2 ATP_mit + 2 NAD_mit"
    " => ACCOA_mit + 2 ADP_mit + 2 NADH_mit",
    "R86 : ACEADH_mit + NAD_mit => AC_mit + NADH_mit",
    "R87 : ACEADH_mit + NADP_mit => AC_mit + NADPH_mit",
    "R93 : ADP + ATP_mit => ADP_mit + ATP",
    "R98 : FUM_mit + SUCC => SUCC_mit + FUM",
    "R100 : SUCC => SUCC_mit",
    "R101 : AKG + MAL_mit => AKG_mit + MAL",
)

#: Figure 4 — the reversible reactions of Network I.
YEAST_1_REVERSIBLE: tuple[str, ...] = (
    "R3r : G6P <=> F6P",
    "R6r : FDP <=> G3P + DHAP",
    "R7r : G3P <=> DHAP",
    "R8r : G3P + NAD + ADP <=> PEP + ATP + NADH",
    "R13r : DHAP + NADH <=> GL3P + NAD",
    "R16r : RL5P <=> R5P",
    "R17r : RL5P <=> X5P",
    "R18r : R5P + X5P <=> G3P + S7P",
    "R19r : X5P + E4P <=> F6P + G3P",
    "R20r : G3P + S7P <=> E4P + F6P",
    "R22r : CIT <=> ICIT",
    "R25r : SUCCOA_mit + ADP_mit <=> ATP_mit + COA_mit + SUCC_mit",
    "R28r : FUM <=> MAL",
    "R29r : MAL + NAD <=> NADH + OA",
    "R30r : PYR + NADH <=> NAD + LAC",
    "R32r : ACCOA + 2 NADH <=> ETOH + 2 NAD + COA",
    "R36r : ATP + AC + COA <=> ADP + ACCOA",
    "R74r : CIT_mit <=> ICIT_mit",
    "R78r : ACEADH_mit + NADH_mit <=> ETOH_mit + NAD_mit",
    "R79r : SUCC_mit + FAD_mit <=> FUM_mit + FADH_mit",
    "R80r : FUM_mit <=> MAL_mit",
    "R81r : MAL_mit + NAD_mit <=> OA_mit + NADH_mit",
    "R88r : CIT + MAL_mit <=> CIT_mit + MAL",
    "R89r : MAL + SUCC_mit <=> MAL_mit + SUCC",
    "R90r : CIT + ICIT_mit <=> CIT_mit + ICIT",
    "R92r : AC_mit <=> AC",
    "R94r : PYR <=> PYR_mit",
    "R95r : ETOH <=> ETOH_mit",
    "R96r : MAL_mit <=> MAL",
    "R97r : ACCOA_mit <=> ACCOA",
    "R102r : OA <=> OA_mit",
)

#: Figure 5 — reactions added in Network II.
YEAST_2_ADDED: tuple[str, ...] = (
    "R1 : GLC + ATP => G6P + ADP",
    "R14 : GLY + ATP => GL3P + ADP",
    "R56 : 24 ADP + 20 NADH_mit + 10 O2 => 24 ATP + 20 NAD_mit",
    "R57 : 24 ADP + 20 FADH + 10 O2 => 24 ATP + 20 FAD",
    "R61 : GLCext => GLC",
)

#: Figure 5 — Network I reactions replaced in Network II (name -> new spec).
YEAST_2_REPLACED: dict[str, str] = {
    "R54": "R54r : ATP <=> ADP",
    "R60": "R60r : GLY <=> GLYext",
    "R63": "R63r : AC <=> ACext",
    "R62": "R62 : GLC + PEP => G6P + PYR",
}

#: Paper-reported sizes and EFM counts.
YEAST_1_SHAPE = (62, 78)
YEAST_1_REDUCED_SHAPE = (35, 55)
YEAST_1_N_EFMS = 1_515_314
YEAST_2_SHAPE = (63, 83)
YEAST_2_REDUCED_SHAPE = (40, 61)
YEAST_2_N_EFMS = 49_764_544


def yeast_network_1() -> MetabolicNetwork:
    """Build *S. cerevisiae* Network I (Figures 3 & 4): 62×78."""
    return network_from_equations(
        "yeast-I",
        YEAST_1_IRREVERSIBLE + YEAST_1_REVERSIBLE,
        externals=YEAST_EXTERNALS,
    )


def yeast_network_2() -> MetabolicNetwork:
    """Build *S. cerevisiae* Network II (Figure 5 applied to Network I):
    63×83."""
    specs: list[str] = []
    for spec in YEAST_1_IRREVERSIBLE + YEAST_1_REVERSIBLE:
        name = spec.split(":")[0].strip()
        specs.append(YEAST_2_REPLACED.get(name, spec))
    specs.extend(YEAST_2_ADDED)
    return network_from_equations("yeast-II", specs, externals=YEAST_EXTERNALS)
