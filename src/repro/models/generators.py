"""Seeded random metabolic network generator.

Used by property-based tests (serial == parallel == divide-and-conquer on
hundreds of random instances) and by the scaling benchmark ladders.  The
generator produces *connected, flux-consistent* networks: every metabolite
gets at least one producer and one consumer, and a configurable set of
exchange reactions keeps the network open so non-trivial EFMs exist.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.errors import NetworkError
from repro.network.model import MetabolicNetwork, Reaction


def random_network(
    n_metabolites: int,
    n_reactions: int,
    *,
    seed: int,
    reversible_fraction: float = 0.3,
    n_exchanges: int | None = None,
    max_coefficient: int = 2,
    density: float = 0.35,
) -> MetabolicNetwork:
    """Generate a random open metabolic network.

    Parameters
    ----------
    n_metabolites, n_reactions:
        Internal size; ``n_reactions`` must exceed ``n_metabolites`` for a
        non-trivial nullspace (callers wanting degenerate cases can pass
        equal sizes).
    seed:
        Deterministic RNG seed.
    reversible_fraction:
        Expected fraction of reversible reactions.
    n_exchanges:
        Number of boundary exchange reactions (single-metabolite columns);
        defaults to ``max(2, n_metabolites // 3)``.  Exchange columns are
        *included in* ``n_reactions``.
    max_coefficient:
        Stoichiometric coefficients are drawn uniformly from
        ``1..max_coefficient``.
    density:
        Expected fraction of metabolites participating in each internal
        reaction (at least one substrate and one product are always drawn).
    """
    if n_metabolites < 1:
        raise NetworkError("need at least one metabolite")
    if n_reactions < 2:
        raise NetworkError("need at least two reactions")
    rng = np.random.default_rng(seed)
    if n_exchanges is None:
        n_exchanges = max(2, n_metabolites // 3)
    n_exchanges = min(n_exchanges, n_reactions - 1, n_metabolites * 2)
    n_internal = n_reactions - n_exchanges

    mets = [f"M{i}" for i in range(n_metabolites)]
    reactions: list[Reaction] = []

    # Internal reactions: random substrate/product splits.
    for j in range(n_internal):
        k = max(2, int(rng.binomial(n_metabolites, density)))
        k = min(k, n_metabolites)
        chosen = rng.choice(n_metabolites, size=k, replace=False)
        n_sub = int(rng.integers(1, k)) if k > 1 else 1
        stoich: dict[str, Fraction] = {}
        for idx, m in enumerate(chosen):
            coeff = Fraction(int(rng.integers(1, max_coefficient + 1)))
            stoich[mets[m]] = -coeff if idx < n_sub else coeff
        reactions.append(
            Reaction(
                name=f"J{j}",
                stoich=stoich,
                reversible=bool(rng.random() < reversible_fraction),
            )
        )

    # Exchange reactions: spread across metabolites, alternating import and
    # export so the network stays balanced-openable.
    targets = rng.permutation(n_metabolites)
    for e in range(n_exchanges):
        m = mets[int(targets[e % n_metabolites])]
        sign = 1 if e % 2 == 0 else -1
        reactions.append(
            Reaction(
                name=f"X{e}",
                stoich={m: Fraction(sign)},
                reversible=bool(rng.random() < reversible_fraction),
                exchange=True,
            )
        )

    # Guarantee every metabolite is both producible and consumable
    # (counting reversible reactions as both) by appending fix-up
    # exchanges where needed.
    fix = 0
    for m in mets:
        produced = consumed = False
        for r in reactions:
            c = r.stoich.get(m)
            if c is None:
                continue
            if r.reversible:
                produced = consumed = True
            elif c > 0:
                produced = True
            else:
                consumed = True
        if not produced:
            reactions.append(
                Reaction(name=f"F{fix}", stoich={m: Fraction(1)}, exchange=True)
            )
            fix += 1
        if not consumed:
            reactions.append(
                Reaction(name=f"F{fix}", stoich={m: Fraction(-1)}, exchange=True)
            )
            fix += 1

    return MetabolicNetwork(f"random-{seed}", mets, reactions)
