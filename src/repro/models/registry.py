"""Named-network registry for CLIs, benches and examples."""

from __future__ import annotations

from typing import Callable

from repro.errors import NetworkError
from repro.models import variants
from repro.models.toy import toy_network
from repro.models.yeast import yeast_network_1, yeast_network_2
from repro.network.model import MetabolicNetwork

_REGISTRY: dict[str, Callable[[], MetabolicNetwork]] = {
    "toy": toy_network,
    "yeast-I": yeast_network_1,
    "yeast-II": yeast_network_2,
    "yeast-I-medium": variants.yeast_1_medium,
    "yeast-I-small": variants.yeast_1_small,
    "yeast-II-medium": variants.yeast_2_medium,
    "yeast-II-small": variants.yeast_2_small,
}


def list_networks() -> tuple[str, ...]:
    """Names accepted by :func:`get_network`."""
    return tuple(sorted(_REGISTRY))


def get_network(name: str) -> MetabolicNetwork:
    """Build a registered network by name."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise NetworkError(
            f"unknown network {name!r}; available: {', '.join(list_networks())}"
        ) from None
    return builder()


def register_network(name: str, builder: Callable[[], MetabolicNetwork]) -> None:
    """Register a custom builder (e.g. from user code or tests)."""
    if name in _REGISTRY:
        raise NetworkError(f"network {name!r} already registered")
    _REGISTRY[name] = builder
