"""The paper's illustrative toy network (Figure 1, eq. (2)).

Five internal metabolites (A, B, C, D, P) and nine reactions, of which
``r6r`` and ``r8r`` are reversible and ``r1, r4, r8r, r9`` are exchange
reactions.  The full EFM set has exactly 8 modes (eq. (7)); compression
merges ``r9`` into ``r3`` and removes metabolite ``D`` (eq. (4)).
"""

from __future__ import annotations

from repro.network.model import MetabolicNetwork
from repro.network.parser import network_from_equations

#: Reaction equations transcribed from Figure 1 / eq. (2).
TOY_EQUATIONS: tuple[str, ...] = (
    "r1 : Aext => A",
    "r2 : A => C",
    "r3 : C => D + P",
    "r4 : P => Pext",
    "r5 : A => B",
    "r6r : B <=> C",
    "r7 : B => 2 P",
    "r8r : B <=> Bext",
    "r9 : D => Dext",
)

#: Metabolite row order of eq. (2).
TOY_METABOLITE_ORDER: tuple[str, ...] = ("A", "B", "C", "D", "P")

#: Number of elementary flux modes of the toy network (eq. (7)).
TOY_N_EFMS: int = 8


def toy_network() -> MetabolicNetwork:
    """Build the Figure 1 network with the paper's row/column ordering."""
    return network_from_equations(
        "toy", TOY_EQUATIONS, metabolite_order=TOY_METABOLITE_ORDER
    )
