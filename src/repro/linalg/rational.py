"""Exact rational linear algebra over ``fractions.Fraction``.

The Nullspace Algorithm needs an initial nullspace basis in the special
``(I; R)`` form (identity block on top).  Computing that basis in exact
arithmetic avoids seeding the whole enumeration with rounding noise: the
stoichiometric coefficients of real metabolic models are rationals (the
yeast biomass reaction R70 has coefficients up to 40141), and a float RREF
can misclassify near-zero pivots.  These routines are O(n^3) with big-int
coefficient growth — fine for the one-off kernel computation and for
verifying small networks, far too slow for the inner enumeration loop
(which uses :mod:`repro.linalg.numeric`).

Matrices are represented as list-of-rows of :class:`fractions.Fraction`.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Sequence

import numpy as np

from repro.errors import LinAlgError

FractionMatrix = list[list[Fraction]]


def to_fraction_matrix(a: Iterable[Iterable[object]]) -> FractionMatrix:
    """Convert a nested iterable (ints, floats, strings, Fractions) to an
    exact matrix.  Floats are converted via ``Fraction(x).limit_denominator``
    only when they are not exactly representable small rationals; integral
    floats convert losslessly."""
    out: FractionMatrix = []
    for row in a:
        frow: list[Fraction] = []
        for x in row:
            if isinstance(x, Fraction):
                frow.append(x)
            elif isinstance(x, (int, np.integer)):
                frow.append(Fraction(int(x)))
            elif isinstance(x, (float, np.floating)):
                f = Fraction(float(x))
                # Floats arising from small rationals get cleaned up; the
                # heuristic is exact for every stoichiometric model shipped
                # with the package (all coefficients are n/2 at worst).
                limited = f.limit_denominator(10**6)
                frow.append(limited if abs(limited - f) < Fraction(1, 10**12) else f)
            else:
                frow.append(Fraction(x))  # type: ignore[arg-type]
        out.append(frow)
    shape_set = {len(r) for r in out}
    if len(shape_set) > 1:
        raise LinAlgError("ragged matrix passed to to_fraction_matrix")
    return out


def matrix_shape(a: FractionMatrix) -> tuple[int, int]:
    """Return ``(n_rows, n_cols)`` of a fraction matrix."""
    return (len(a), len(a[0]) if a else 0)


def rref(a: FractionMatrix) -> tuple[FractionMatrix, list[int]]:
    """Reduced row echelon form with partial (largest-magnitude) pivoting.

    Returns ``(R, pivot_cols)`` where ``R`` is a new matrix in RREF and
    ``pivot_cols`` lists the pivot column of each non-zero row in order.
    The input is not modified.
    """
    m, n = matrix_shape(a)
    r = [row[:] for row in a]
    pivot_cols: list[int] = []
    lead = 0
    for col in range(n):
        if lead >= m:
            break
        # Pick the largest-magnitude entry as pivot: keeps big-int growth
        # down measurably on the yeast networks.
        pivot_row = max(
            range(lead, m),
            key=lambda i: (r[i][col].numerator != 0, abs(r[i][col])),
        )
        if r[pivot_row][col] == 0:
            continue
        r[lead], r[pivot_row] = r[pivot_row], r[lead]
        pivot = r[lead][col]
        r[lead] = [x / pivot for x in r[lead]]
        for i in range(m):
            if i != lead and r[i][col] != 0:
                factor = r[i][col]
                r[i] = [x - factor * y for x, y in zip(r[i], r[lead])]
        pivot_cols.append(col)
        lead += 1
    return r, pivot_cols


def exact_rank(a: FractionMatrix) -> int:
    """Exact rank via RREF."""
    _, pivots = rref(a)
    return len(pivots)


def exact_nullity(a: FractionMatrix) -> int:
    """Exact right-nullspace dimension: ``n_cols - rank``."""
    return matrix_shape(a)[1] - exact_rank(a)


def exact_nullspace(a: FractionMatrix) -> FractionMatrix:
    """Exact basis of the right nullspace of ``a``.

    Returns a matrix whose *columns* span ``{x : a @ x = 0}``, in the
    canonical RREF parametrization: for each free column ``f`` the basis
    vector has ``x[f] = 1``, ``x[p] = -R[row(p), f]`` for pivot columns
    ``p`` and zero elsewhere.  Shape is ``(n_cols, n_cols - rank)``; an
    empty nullspace yields a ``(n_cols, 0)`` matrix (list of ``n_cols``
    empty rows).
    """
    m, n = matrix_shape(a)
    if m == 0:
        return [[Fraction(1) if i == j else Fraction(0) for j in range(n)] for i in range(n)]
    r, pivots = rref(a)
    pivot_set = set(pivots)
    free_cols = [c for c in range(n) if c not in pivot_set]
    basis: FractionMatrix = [[Fraction(0)] * len(free_cols) for _ in range(n)]
    for k, f in enumerate(free_cols):
        basis[f][k] = Fraction(1)
        for row_idx, p in enumerate(pivots):
            basis[p][k] = -r[row_idx][f]
    return basis


def integerize_columns(a: FractionMatrix) -> list[list[int]]:
    """Scale each column of ``a`` to the smallest co-prime integer vector.

    Multiplies each column by the LCM of its denominators and divides by the
    GCD of the resulting numerators, preserving sign.  Used to hand the
    enumeration loop a clean integer kernel and to canonicalize EFMs for
    exact comparison.
    """
    m, n = matrix_shape(a)
    out = [[0] * n for _ in range(m)]
    for j in range(n):
        col = [a[i][j] for i in range(m)]
        denom_lcm = 1
        for x in col:
            denom_lcm = denom_lcm * x.denominator // math.gcd(denom_lcm, x.denominator)
        ints = [int(x * denom_lcm) for x in col]
        g = 0
        for v in ints:
            g = math.gcd(g, abs(v))
        if g > 1:
            ints = [v // g for v in ints]
        for i in range(m):
            out[i][j] = ints[i]
    return out


def fraction_matmul(a: FractionMatrix, b: FractionMatrix) -> FractionMatrix:
    """Exact matrix product ``a @ b``."""
    ma, na = matrix_shape(a)
    mb, nb = matrix_shape(b)
    if na != mb:
        raise LinAlgError(f"shape mismatch in fraction_matmul: {na} vs {mb}")
    out = [[Fraction(0)] * nb for _ in range(ma)]
    for i in range(ma):
        arow = a[i]
        for k in range(na):
            aik = arow[k]
            if aik == 0:
                continue
            brow = b[k]
            orow = out[i]
            for j in range(nb):
                if brow[j] != 0:
                    orow[j] += aik * brow[j]
    return out


def is_zero_matrix(a: FractionMatrix) -> bool:
    """True iff every entry of ``a`` is exactly zero."""
    return all(x == 0 for row in a for x in row)


def from_numpy(a: np.ndarray) -> FractionMatrix:
    """Convert a numpy array (any numeric dtype) to an exact matrix."""
    return to_fraction_matrix(a.tolist())


def to_numpy(a: FractionMatrix, dtype=np.float64) -> np.ndarray:
    """Convert an exact matrix to a numpy array (lossy for big rationals)."""
    m, n = matrix_shape(a)
    out = np.zeros((m, n), dtype=dtype)
    for i in range(m):
        for j in range(n):
            out[i, j] = float(a[i][j])
    return out


def select_columns(a: FractionMatrix, cols: Sequence[int]) -> FractionMatrix:
    """Exact column selection ``a[:, cols]``."""
    return [[row[c] for c in cols] for row in a]
