"""Batched rank computation for the RankTests hot path.

The paper's profile (and ours) is dominated by the algebraic rank test:
one small SVD per surviving candidate, issued from a Python ``for`` loop.
This module turns that loop into a data-parallel kernel:

* **Support-size bucketing** — the deduplicated candidates of an iteration
  are grouped by support size ``s``; all submatrices ``N[:, S]`` of one
  bucket share the shape ``(m, s)`` and can be gathered into a single
  contiguous ``(n_bucket, m_eff, s)`` 3-D array with one fancy-index
  operation.
* **Row compaction** — rows of a submatrix that are all-zero contribute
  nothing to its singular values, so each candidate's non-zero rows are
  compacted to the top and the bucket is truncated to the largest
  effective row count, shrinking the LAPACK problem.
* **gufunc-batched SVD** — ``numpy.linalg.svd`` on the 3-D stack issues
  all decompositions from one C-level loop (one LAPACK ``gesdd`` call per
  matrix, zero Python dispatch per candidate).
* **A support-pattern rank memo** (:class:`RankCache`) — rank is a pure
  function of the selected column *set* (and the fixed stoichiometry), so
  results are cached across iterations; with a canonical column mapping
  the same cache is shared across the ``2^q_sub`` divide-and-conquer
  subproblems, whose deleted-column stoichiometries agree with the parent
  on every surviving column.

The cutoff convention matches :func:`repro.linalg.numeric.numeric_rank`
exactly (``rank_tol * sigma_max * max(m, s)`` with the *uncompacted*
shape), so the batched and loop backends agree decision-for-decision.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.config import NumericPolicy
from repro.errors import LinAlgError
from repro.linalg import rational

#: Cache entries beyond this count are silently not inserted (lookup keeps
#: working) — a simple, deterministic bound on memo growth for huge runs.
DEFAULT_CACHE_CAPACITY = 1_000_000


class RankCache:
    """Support-pattern → rank memo shared across iterations and problems.

    Keys are ``(token, column-set bytes)`` tuples produced by a
    :class:`CacheBinding`; values are ``(rank, tag)`` pairs, the tag naming
    the backend that certified the rank (``"batched"``, ``"exact"``,
    ``"modular"``).  Rank is backend-agnostic — a pure function of the
    column selection — so any backend may consume any entry; the tag exists
    for diagnostics and tests.  The cache is a plain dict: lookups and
    inserts are GIL-atomic, so concurrent thread-backend ranks can share
    one instance (a lost insert merely costs a recompute).
    """

    __slots__ = ("_table", "capacity", "hits", "misses")

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        self._table: dict = {}
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, key) -> int | None:
        entry = self._table.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry[0]

    def store(self, key, rank: int, tag: str = "batched") -> None:
        if len(self._table) < self.capacity:
            self._table[key] = (rank, tag)


class CacheBinding:
    """A :class:`RankCache` bound to one prepared problem.

    ``token`` identifies the matrix family (stoichiometry content, policy,
    arithmetic); ``col_ids`` optionally maps local permuted column
    positions to canonical column identities.  Without ``col_ids`` the key
    is the candidate's packed support words (fast path — bytes of the
    uint64 row); with it, the key is the sorted *multiset* of canonical
    ids, so divide-and-conquer subproblems with different permutations,
    deleted columns, and split (sign-flipped / duplicated) columns hash
    the same mathematical column selection to the same entry.  A multiset
    is as sound as a set — duplicated and sign-flipped copies never change
    the column span, hence never the rank — and sorting batches across the
    whole bucket where per-row ``np.unique`` cannot.
    """

    __slots__ = ("cache", "token", "col_ids", "col_perm", "col_ids_sorted")

    def __init__(
        self,
        cache: RankCache,
        token: bytes,
        col_ids: np.ndarray | None = None,
    ) -> None:
        self.cache = cache
        self.token = token
        self.col_ids = None if col_ids is None else np.asarray(col_ids, dtype=np.int64)
        # Ascending-id column permutation: selecting support columns in
        # this order yields each candidate's canonical ids already sorted,
        # so whole-call key passes need no per-row sort (stable, so
        # duplicated split-column ids keep their multiset bytes).
        if self.col_ids is None:
            self.col_perm = None
            self.col_ids_sorted = None
        else:
            self.col_perm = np.argsort(self.col_ids, kind="stable")
            self.col_ids_sorted = np.ascontiguousarray(self.col_ids[self.col_perm])

    def keys(self, words: np.ndarray, cols: np.ndarray) -> list[bytes]:
        """One hashable key per candidate of a bucket.

        ``words``: packed support rows ``(n, n_words)``; ``cols``: column
        index matrix ``(n, s)`` (both for the same candidates, same order).
        Keys are flat ``token + row-bytes`` strings — one ``tobytes`` for
        the whole bucket, sliced per row, instead of a Python-level array
        conversion per candidate.
        """
        token = self.token
        if self.col_ids is None:
            rows = np.ascontiguousarray(words)
        else:
            rows = np.sort(self.col_ids[cols], axis=1)
        stride = rows.shape[1] * rows.itemsize
        if stride == 0:  # empty-support bucket: all keys identical
            return [token] * rows.shape[0]
        blob = rows.tobytes()
        return [token + blob[i : i + stride] for i in range(0, len(blob), stride)]


def problem_token(
    n_perm: np.ndarray, policy: NumericPolicy, exact: bool
) -> bytes:
    """Stable identity of a rank-test problem: matrix bytes + tolerances +
    arithmetic.  Two problems with equal tokens give equal ranks for equal
    (canonical) column selections."""
    h = hashlib.sha1()
    h.update(np.ascontiguousarray(n_perm, dtype=np.float64).tobytes())
    h.update(repr((n_perm.shape, policy.rank_tol, bool(exact))).encode())
    return h.digest()


def iter_size_buckets(
    support_mask: np.ndarray,
    sizes: np.ndarray,
    *,
    words: np.ndarray | None = None,
    cache: CacheBinding | None = None,
    mask_t: np.ndarray | None = None,
):
    """Yield ``(b_idx, cols, keys)`` per support-size bucket.

    The shared front half of every rank backend: candidates grouped by
    support size (equal-``s`` column-index matrices gather contiguously),
    with per-candidate cache keys computed bucket-at-a-time when a memo is
    bound (``keys is None`` otherwise).  ``mask_t`` lets callers reuse an
    already-transposed ``(n, q)`` mask.
    """
    n = int(sizes.size)
    if mask_t is None:
        mask_t = np.ascontiguousarray(support_mask.T)  # (n, q)
    order = np.argsort(sizes, kind="stable")
    sorted_sizes = sizes[order]
    # Bucket boundaries: runs of equal support size in the sorted order.
    boundaries = np.nonzero(np.diff(sorted_sizes))[0] + 1
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [n]])
    for b0, b1 in zip(starts, stops):
        b_idx = order[b0:b1]
        s = int(sorted_sizes[b0])
        # np.nonzero walks the (n_bucket, q) block row-major, so indices
        # come out grouped per candidate, ascending — ready to reshape.
        cols = np.nonzero(mask_t[b_idx])[1].reshape(b_idx.size, s)
        keys = None
        if cache is not None:
            keys = cache.keys(words[b_idx] if words is not None else None, cols)
        yield b_idx, cols, keys


def split_cache_hits(
    cache: CacheBinding, keys: list, b_idx: np.ndarray, ranks: np.ndarray, stats=None
) -> list[int]:
    """Fill cache-hit ranks of one bucket in place; return miss positions.

    Inlined bulk lookup: one dict ``.get`` per key, counters updated once
    per bucket (``RankCache.lookup`` would cost a Python call and two
    counter increments per candidate).
    """
    table = cache.cache._table
    found = [table.get(key) for key in keys]
    miss_pos = [j for j, v in enumerate(found) if v is None]
    n_hits = b_idx.size - len(miss_pos)
    cache.cache.hits += n_hits
    cache.cache.misses += len(miss_pos)
    if stats is not None:
        stats.n_rank_cache_hits += n_hits
    if n_hits:
        ranks[b_idx] = [0 if v is None else v[0] for v in found]
    return miss_pos


def batched_ranks(
    n_perm: np.ndarray, cols: np.ndarray, policy: NumericPolicy
) -> np.ndarray:
    """Numeric ranks of the submatrices ``n_perm[:, cols[i]]`` for a bucket.

    ``cols`` is an integer ``(n_bucket, s)`` matrix; all submatrices share
    the shape ``(m, s)``.  Returns int64 ranks of length ``n_bucket``,
    using the same cutoff convention as
    :func:`repro.linalg.numeric.numeric_rank` on the full ``(m, s)`` shape.
    """
    if cols.ndim != 2:
        raise LinAlgError("batched_ranks expects a 2-D column-index matrix")
    n_bucket, s = cols.shape
    m = n_perm.shape[0]
    if n_bucket == 0:
        return np.zeros(0, dtype=np.int64)
    if m == 0 or s == 0:
        return np.zeros(n_bucket, dtype=np.int64)

    # One gather for the whole bucket: (m, n_bucket, s) -> (n_bucket, m, s).
    sub = np.ascontiguousarray(np.moveaxis(n_perm[:, cols], 1, 0))

    # Row compaction: all-zero rows of a submatrix leave its singular
    # values unchanged; pushing each candidate's non-zero rows to the top
    # lets the bucket truncate to the largest effective row count.
    nonzero_rows = (sub != 0.0).any(axis=2)  # (n_bucket, m)
    m_eff = max(1, int(nonzero_rows.sum(axis=1).max()))
    if m_eff < m:
        order = np.argsort(~nonzero_rows, axis=1, kind="stable")
        sub = np.take_along_axis(sub, order[:, :m_eff, None], axis=1)

    sv = np.linalg.svd(sub, compute_uv=False)  # (n_bucket, min(m_eff, s))
    cutoff = policy.rank_tol * sv[:, 0] * max(m, s)
    np.maximum(cutoff, 1e-300, out=cutoff)
    return (sv > cutoff[:, None]).sum(axis=1, dtype=np.int64)


def bucketed_ranks(
    n_perm: np.ndarray,
    support_mask: np.ndarray,
    sizes: np.ndarray,
    *,
    policy: NumericPolicy,
    n_exact: rational.FractionMatrix | None = None,
    words: np.ndarray | None = None,
    cache: CacheBinding | None = None,
    stats=None,
) -> np.ndarray:
    """Ranks of ``n_perm[:, S_i]`` for candidates given by support columns.

    Parameters
    ----------
    support_mask:
        Boolean ``(q, n)`` mask — column ``i`` is candidate ``i``'s
        support.  Callers pass only candidates that survived summary
        rejection, so no full-batch unpack is ever materialized upstream.
    sizes:
        Per-candidate support sizes (``support_mask`` column popcounts).
    n_exact:
        Exact-arithmetic stoichiometry; when given, ranks come from
        per-candidate rational elimination (bucketing still drives the
        cache, but no LAPACK batching applies).
    words:
        Packed support rows ``(n, n_words)`` aligned with the mask columns;
        required when ``cache`` uses the fast packed-key path.
    cache:
        Optional bound rank memo; hits skip the decomposition entirely.
    stats:
        Optional counter sink with ``n_rank_cache_hits``,
        ``n_rank_batches`` and ``rank_batch_max`` attributes
        (:class:`repro.core.stats.IterationStats` satisfies this).
    """
    n = int(sizes.size)
    ranks = np.zeros(n, dtype=np.int64)
    if n == 0:
        return ranks
    if cache is not None and cache.col_ids is None and words is None:
        raise LinAlgError("packed-key cache binding requires support words")

    tag = "exact" if n_exact is not None else "batched"
    for b_idx, cols, keys in iter_size_buckets(
        support_mask, sizes, words=words, cache=cache
    ):
        if keys is None:
            ranks[b_idx] = _compute_bucket(n_perm, cols, policy, n_exact, stats)
            continue
        miss_pos = split_cache_hits(cache, keys, b_idx, ranks, stats)
        if not miss_pos:
            continue
        miss = np.asarray(miss_pos, dtype=np.intp)
        miss_ranks = _compute_bucket(n_perm, cols[miss], policy, n_exact, stats)
        store = cache.cache.store
        for j, r in zip(miss_pos, miss_ranks.tolist()):
            store(keys[j], r, tag)
        ranks[b_idx[miss]] = miss_ranks
    return ranks


def _compute_bucket(
    n_perm: np.ndarray,
    cols: np.ndarray,
    policy: NumericPolicy,
    n_exact: rational.FractionMatrix | None,
    stats,
) -> np.ndarray:
    if stats is not None:
        stats.n_rank_batches += 1
        stats.rank_batch_max = max(stats.rank_batch_max, int(cols.shape[0]))
    if n_exact is not None:
        return np.array(
            [
                rational.exact_rank(rational.select_columns(n_exact, row.tolist()))
                for row in cols
            ],
            dtype=np.int64,
        )
    return batched_ranks(n_perm, cols, policy)
