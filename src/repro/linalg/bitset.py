"""Packed support patterns (bitsets) for flux modes.

Each mode's support (the set of reactions with non-zero flux) is packed into
``n_words = ceil(n_rows / 64)`` unsigned 64-bit words.  All hot operations
of the Nullspace Algorithm — duplicate removal, the candidate prefilter
(union popcount), and the bit-pattern superset test — reduce to bitwise ops
on a ``(n_modes, n_words)`` uint64 array, which numpy vectorizes.

Bit ``r`` of a support (row ``r`` of the mode matrix) lives in word
``r >> 6`` at position ``r & 63``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LinAlgError

#: Dtype of packed support words.
WORD = np.uint64
BITS_PER_WORD = 64


def n_words_for(n_rows: int) -> int:
    """Number of uint64 words needed for ``n_rows`` support bits."""
    return max(1, (n_rows + BITS_PER_WORD - 1) // BITS_PER_WORD)


class PackedSupports:
    """A batch of packed support patterns.

    Thin, validated wrapper around a ``(n_modes, n_words)`` uint64 array.
    Instances are append-free; all operations return new arrays/objects.
    """

    __slots__ = ("words", "n_rows")

    def __init__(self, words: np.ndarray, n_rows: int) -> None:
        words = np.ascontiguousarray(words, dtype=WORD)
        if words.ndim != 2:
            raise LinAlgError("PackedSupports expects a 2-D word array")
        if words.shape[1] != n_words_for(n_rows):
            raise LinAlgError(
                f"word count {words.shape[1]} inconsistent with n_rows={n_rows}"
            )
        self.words = words
        self.n_rows = n_rows

    # -- construction -----------------------------------------------------

    @classmethod
    def empty(cls, n_rows: int) -> "PackedSupports":
        """Zero-mode batch."""
        return cls(np.zeros((0, n_words_for(n_rows)), dtype=WORD), n_rows)

    @classmethod
    def from_bool(cls, mask: np.ndarray) -> "PackedSupports":
        """Pack a boolean ``(n_rows, n_modes)`` column-support mask."""
        return cls(pack_supports(mask), mask.shape[0])

    @classmethod
    def _wrap(cls, words: np.ndarray, n_rows: int) -> "PackedSupports":
        """Internal fast path: ``words`` is already a contiguous uint64
        ``(n_modes, n_words)`` array of the right width (hot per-iteration
        construction sites — slicing, merge assembly)."""
        out = cls.__new__(cls)
        out.words = words
        out.n_rows = n_rows
        return out

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return self.words.shape[0]

    def __getitem__(self, idx) -> "PackedSupports":
        sel = self.words[idx]
        if sel.ndim == 1:
            sel = sel[None, :]
        return PackedSupports._wrap(np.ascontiguousarray(sel), self.n_rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedSupports):
            return NotImplemented
        return self.n_rows == other.n_rows and np.array_equal(self.words, other.words)

    def __hash__(self) -> int:  # pragma: no cover - mutable array, not hashable
        raise TypeError("PackedSupports is not hashable")

    def copy(self) -> "PackedSupports":
        return PackedSupports(self.words.copy(), self.n_rows)

    # -- queries -----------------------------------------------------------

    def popcounts(self) -> np.ndarray:
        """Support sizes, shape ``(n_modes,)`` int64."""
        return popcount(self.words)

    def to_bool(self) -> np.ndarray:
        """Unpack to a boolean ``(n_rows, n_modes)`` mask."""
        return unpack_supports(self.words, self.n_rows)

    def test_bit(self, row: int) -> np.ndarray:
        """Boolean vector: does each mode have bit ``row`` set?"""
        w, b = divmod(row, BITS_PER_WORD)
        return (self.words[:, w] >> WORD(b)) & WORD(1) != 0

    def nbytes(self) -> int:
        return int(self.words.nbytes)

    # -- combination -------------------------------------------------------

    def concat(self, other: "PackedSupports") -> "PackedSupports":
        if other.n_rows != self.n_rows:
            raise LinAlgError("concat of PackedSupports with mismatched n_rows")
        return PackedSupports._wrap(
            np.concatenate([self.words, other.words]), self.n_rows
        )


def pack_supports(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(n_rows, n_modes)`` mask into ``(n_modes, n_words)``
    uint64 words (bit r of mode j == mask[r, j])."""
    if mask.ndim != 2:
        raise LinAlgError("pack_supports expects a 2-D mask")
    return pack_support_rows(np.ascontiguousarray(mask.T))


def pack_support_rows(by_mode: np.ndarray) -> np.ndarray:
    """Pack a boolean row-major ``(n_modes, n_rows)`` mask into
    ``(n_modes, n_words)`` uint64 words — the lean per-iteration packer.

    ``np.packbits(bitorder="little")`` emits bytes whose bit ``r & 7`` is
    row ``r``; reinterpreting 8 little-endian bytes as one uint64 puts row
    ``r`` at word bit ``r & 63`` — the layout documented above — without
    any per-bit multiply/sum.  Unlike :func:`pack_supports` this takes the
    mask in the orientation the hot callers already hold (one mode per
    row), so no transpose copy, dtype round-trip or ``np.pad`` happens.
    """
    if by_mode.ndim != 2:
        raise LinAlgError("pack_support_rows expects a 2-D mask")
    n_modes, n_rows = by_mode.shape
    n_bytes = n_words_for(n_rows) * (BITS_PER_WORD // 8)
    packed = np.packbits(by_mode, axis=1, bitorder="little")
    if packed.shape[1] != n_bytes:
        full = np.zeros((n_modes, n_bytes), dtype=np.uint8)
        full[:, : packed.shape[1]] = packed
        packed = full
    return packed.view("<u8").astype(WORD, copy=False)


def unpack_supports(words: np.ndarray, n_rows: int) -> np.ndarray:
    """Inverse of :func:`pack_supports`."""
    n_modes, nw = words.shape
    as_bytes = np.ascontiguousarray(words.astype("<u8", copy=False)).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")  # (n_modes, nw*64)
    return np.ascontiguousarray(bits[:, :n_rows].T.astype(bool))


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-row popcount of a packed word array: shape ``(n_modes,)``."""
    if words.shape[1] == 1:
        # Networks up to 64 reactions: skip the axis reduction entirely.
        return np.bitwise_count(words[:, 0]).astype(np.int64)
    return np.bitwise_count(words).sum(axis=1, dtype=np.int64)


def union_popcount(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Popcount of the bitwise OR of paired rows of ``a`` and ``b``.

    ``a`` and ``b`` must have equal shapes ``(n_pairs, n_words)``; this is
    the candidate-generation prefilter workhorse.
    """
    if a.shape[1] == 1:
        return np.bitwise_count(a[:, 0] | b[:, 0]).astype(np.int64)
    return np.bitwise_count(a | b).sum(axis=1, dtype=np.int64)


def subset_rows(candidates: np.ndarray, references: np.ndarray) -> np.ndarray:
    """For each candidate row, is *some* reference row a subset of it?

    Strict-or-equal subset test: reference ``r`` is a subset of candidate
    ``c`` iff ``r & c == r``.  Returns a boolean ``(n_candidates,)`` array
    that is True when at least one reference (other than an identical
    pattern — equality also counts True here; callers exclude self-matches
    by construction).  Complexity O(n_candidates * n_references * n_words)
    vectorized in chunks to bound memory.
    """
    n_c = candidates.shape[0]
    n_r = references.shape[0]
    out = np.zeros(n_c, dtype=bool)
    if n_c == 0 or n_r == 0:
        return out
    # Chunk candidates so the broadcast (chunk, n_r, n_words) stays small.
    chunk = max(1, int(4_000_000 // max(1, n_r * candidates.shape[1])))
    for start in range(0, n_c, chunk):
        cs = candidates[start : start + chunk]  # (c, w)
        hit = ((references[None, :, :] & cs[:, None, :]) == references[None, :, :]).all(
            axis=2
        )  # (c, n_r)
        out[start : start + chunk] = hit.any(axis=1)
    return out


def subset_count_rows(candidates: np.ndarray, references: np.ndarray) -> np.ndarray:
    """For each candidate row, count reference rows that are subsets of it
    (``ref & cand == ref``).  Chunked like :func:`subset_rows`."""
    n_c = candidates.shape[0]
    n_r = references.shape[0]
    out = np.zeros(n_c, dtype=np.int64)
    if n_c == 0 or n_r == 0:
        return out
    chunk = max(1, int(4_000_000 // max(1, n_r * candidates.shape[1])))
    for start in range(0, n_c, chunk):
        cs = candidates[start : start + chunk]
        hit = ((references[None, :, :] & cs[:, None, :]) == references[None, :, :]).all(
            axis=2
        )
        out[start : start + chunk] = hit.sum(axis=1)
    return out


def unique_rows(words: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicate packed rows.

    Returns ``(unique_words, first_index)`` where ``first_index`` gives, for
    each unique row, the index of its first occurrence in the input (order
    of unique rows follows np.unique's lexicographic word order, which is a
    deterministic canonical order — the "sort by binary representation"
    step of the paper).
    """
    if words.shape[0] == 0:
        return words.copy(), np.zeros(0, dtype=np.intp)
    if words.shape[1] == 1:
        # Networks up to 64 reactions pack into one word — skip the
        # structured-view machinery (this runs once per iteration per rank).
        _, first_idx = np.unique(words[:, 0], return_index=True)
    else:
        view = words.view([("", WORD)] * words.shape[1]).ravel()
        _, first_idx = np.unique(view, return_index=True)
    first_idx.sort()  # preserve first-occurrence order for determinism
    return words[first_idx], first_idx


def lexsort_rows(words: np.ndarray) -> np.ndarray:
    """Indices that sort packed rows lexicographically by words (the
    paper's "sort the candidate flux modes by binary representation")."""
    if words.shape[0] == 0:
        return np.zeros(0, dtype=np.intp)
    if words.shape[1] == 1:
        # Identical to the single-key lexsort (both are stable sorts on
        # the word) at a fraction of the dispatch cost.
        return np.argsort(words[:, 0], kind="stable")
    keys = tuple(words[:, k] for k in range(words.shape[1] - 1, -1, -1))
    return np.lexsort(keys)


def rows_in(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Membership test: for each row of ``a``, does it occur in ``b``?

    Both arrays are packed ``(n, n_words)`` uint64.  Used by the parallel
    merge step to drop candidates another rank already owns.
    """
    if a.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    if b.shape[0] == 0:
        return np.zeros(a.shape[0], dtype=bool)
    if a.shape[0] * b.shape[0] <= 1 << 14:
        # Broadcast compare: one (n_a, n_b, n_words) pass beats np.isin's
        # sort machinery by an order of magnitude at per-iteration sizes.
        return (a[:, None, :] == b[None, :, :]).all(axis=2).any(axis=1)
    if a.shape[1] == 1:
        return np.isin(a[:, 0], b[:, 0])
    dt = [("", WORD)] * a.shape[1]
    av = np.ascontiguousarray(a).view(dt).ravel()
    bv = np.ascontiguousarray(b).view(dt).ravel()
    return np.isin(av, bv)
