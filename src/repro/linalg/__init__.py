"""Linear-algebra substrate: exact rational routines, tolerant floating
routines, and packed bitset support patterns."""

from repro.linalg.batched import (
    CacheBinding,
    RankCache,
    batched_ranks,
    bucketed_ranks,
    problem_token,
)
from repro.linalg.bitset import (
    PackedSupports,
    pack_supports,
    popcount,
    subset_rows,
    unique_rows,
)
from repro.linalg.numeric import (
    column_normalize,
    kernel_identity_form,
    numeric_rank,
    nullity,
    support_of,
)
from repro.linalg.rational import (
    exact_nullspace,
    exact_rank,
    integerize_columns,
    rref,
)

__all__ = [
    "CacheBinding",
    "RankCache",
    "batched_ranks",
    "bucketed_ranks",
    "problem_token",
    "PackedSupports",
    "pack_supports",
    "popcount",
    "subset_rows",
    "unique_rows",
    "column_normalize",
    "kernel_identity_form",
    "numeric_rank",
    "nullity",
    "support_of",
    "exact_nullspace",
    "exact_rank",
    "integerize_columns",
    "rref",
]
