"""Tolerant floating-point linear algebra for the enumeration inner loop.

Everything here is vectorized numpy on float64.  Exactness-critical one-off
steps (the initial kernel) delegate to :mod:`repro.linalg.rational` and then
round; per-candidate steps (support extraction, rank tests) use tolerances
from :class:`repro.config.NumericPolicy`.
"""

from __future__ import annotations

import numpy as np

from repro.config import DEFAULT_POLICY, NumericPolicy
from repro.errors import LinAlgError
from repro.linalg import rational


def column_normalize(cols: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Scale each column of ``cols`` to unit max-norm (in place if ``out``
    is ``cols``).

    Normalization after every convex combination keeps the zero threshold
    meaningful across iterations; without it candidate magnitudes drift by
    orders of magnitude on the yeast networks (biomass coefficients ~4e4).
    Zero columns are left untouched.
    """
    if cols.ndim != 2:
        raise LinAlgError("column_normalize expects a 2-D array")
    scale = np.abs(cols).max(axis=0)
    scale[scale == 0.0] = 1.0
    if out is None:
        return cols / scale
    np.divide(cols, scale, out=out)
    return out


def support_of(cols: np.ndarray, policy: NumericPolicy = DEFAULT_POLICY) -> np.ndarray:
    """Boolean support mask of each column: shape ``(n_rows, n_cols)``.

    A value counts as non-zero when ``|x| > zero_tol * max(1, colmax)``.
    """
    colmax = np.abs(cols).max(axis=0) if cols.size else np.zeros(cols.shape[1])
    thresh = policy.zero_tol * np.maximum(colmax, 1.0)
    return np.abs(cols) > thresh


def clean_zeros(cols: np.ndarray, policy: NumericPolicy = DEFAULT_POLICY) -> np.ndarray:
    """Snap sub-threshold entries of each column to exact 0.0 (in place).

    Keeps supports and numeric values consistent so that later sign splits
    never disagree with the packed support bits.
    """
    mask = support_of(cols, policy)
    cols[~mask] = 0.0
    return cols


def numeric_rank(a: np.ndarray, policy: NumericPolicy = DEFAULT_POLICY) -> int:
    """Numeric rank via SVD with a relative singular-value cutoff.

    Matches the efmtool convention: cutoff is
    ``rank_tol * sigma_max * max(shape)`` with an absolute floor so the
    all-zero matrix has rank 0.
    """
    if a.size == 0:
        return 0
    s = np.linalg.svd(a, compute_uv=False)
    if s.size == 0:
        return 0
    cutoff = policy.rank_tol * s[0] * max(a.shape)
    cutoff = max(cutoff, 1e-300)
    return int(np.count_nonzero(s > cutoff))


def nullity(a: np.ndarray, policy: NumericPolicy = DEFAULT_POLICY) -> int:
    """Right-nullspace dimension: ``n_cols - rank``."""
    return a.shape[1] - numeric_rank(a, policy)


def kernel_identity_form(
    n: np.ndarray,
    *,
    exact: bool = True,
    policy: NumericPolicy = DEFAULT_POLICY,
    pivot_priority: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Initial nullspace matrix of ``n`` in the paper's ``(I; R)`` form.

    Reduces the stoichiometric matrix ``n`` to row echelon form and permutes
    *columns* (reactions) so the matrix reads ``(-R2, I_m)`` up to row
    operations; the kernel then takes the block form::

        K = [ I_{q-m'} ]
            [   R2     ]

    where ``m'`` is the rank of ``n``.  Returns ``(kernel, col_perm)``:

    - ``kernel``: shape ``(q, q - m')`` float64 with ``kernel[perm][:q-m']``
      equal to the identity, i.e. the *permuted* network ``n[:, col_perm]``
      has the literal block-form kernel.  The returned kernel rows are in
      the **permuted** reaction order (free reactions first, pivot reactions
      below), matching eq. (5) of the paper.
    - ``col_perm``: the reaction permutation applied, length ``q``; entry
      ``i`` gives the original column index now in permuted position ``i``.

    ``pivot_priority`` (integer, one entry per column; lower scans earlier)
    biases which columns become *pivots* (and thus land in the processed
    ``R2`` block): RREF takes the leftmost independent columns as pivots,
    so low-priority-value columns are preferred.  The Nullspace Algorithm
    requires every reversible reaction to be a pivot — a reversible
    reaction in the identity block would never be processed and its
    negative-flux EFMs would be silently lost — so callers pass priority
    ``-1`` for reversible reactions (and ``+1`` for columns they want kept
    free, e.g. to reproduce the paper's worked example).

    With ``exact=True`` (default) the echelon reduction runs in rational
    arithmetic and the result is integerized column-wise before conversion
    to float; the float fallback uses SVD-based pivot detection.
    """
    if n.ndim != 2:
        raise LinAlgError("kernel_identity_form expects a 2-D stoichiometry")
    q = n.shape[1]
    if exact:
        if pivot_priority is not None:
            prio = np.asarray(pivot_priority)
            if prio.shape != (q,):
                raise LinAlgError("pivot_priority length mismatch")
            # Stable sort: low priority scans first and RREF's
            # leftmost-independent pivot rule picks those as pivots.
            scan_order = np.argsort(prio, kind="stable").astype(np.intp)
        else:
            scan_order = np.arange(q, dtype=np.intp)
        nf = np.asarray(n, dtype=np.float64)
        fm = rational.from_numpy(nf[:, scan_order])
        _, pivots_scan = rational.rref(fm)
        pivots = sorted(int(scan_order[p]) for p in pivots_scan)
        pivot_set = set(pivots)
        free_cols = [c for c in range(q) if c not in pivot_set]
        # Permuted order: free (identity-part) reactions first, pivots after.
        col_perm = np.array(free_cols + pivots, dtype=np.intp)
        n_free = len(free_cols)
        # Parametrize the nullspace with *our* free set: scanning the
        # chosen pivots first forces RREF to use exactly them as pivots,
        # making the trailing columns the free variables.
        scan2 = np.array(pivots + free_cols, dtype=np.intp)
        basis2 = rational.exact_nullspace(rational.from_numpy(nf[:, scan2]))
        ints = rational.integerize_columns(basis2)
        arr2 = np.array(ints, dtype=np.float64).reshape(q, n_free)
        # Rows of arr2 follow scan2 order; reorder to col_perm order
        # (free block on top -> literal (I; R) shape up to column scaling).
        pos_in_scan2 = {int(c): i for i, c in enumerate(scan2)}
        kernel = arr2[[pos_in_scan2[int(c)] for c in col_perm], :]
    else:
        basis = _float_nullspace(np.asarray(n, dtype=np.float64), policy)
        n_free = basis.shape[1]
        # Choose identity rows greedily: rows whose sub-block is best
        # conditioned.  Simple approach: QR with column pivoting on basisᵀ.
        _, _, piv = _qr_pivot(basis.T)
        top = piv[:n_free]
        rest = np.array([i for i in range(q) if i not in set(top.tolist())], dtype=np.intp)
        col_perm = np.concatenate([top, rest])
        block = basis[top, :]
        kernel = np.concatenate(
            [np.eye(n_free), basis[rest, :] @ np.linalg.inv(block)], axis=0
        )
    # Sanity: permuted stoichiometry annihilates the kernel.
    if kernel.size:
        resid = np.abs(np.asarray(n, dtype=np.float64)[:, col_perm] @ kernel)
        scale = max(1.0, float(np.abs(kernel).max()), float(np.abs(n).max()))
        if resid.size and resid.max() > 1e-6 * scale:
            raise LinAlgError(
                f"kernel residual too large: {resid.max():.3e} (scale {scale:.3e})"
            )
    return kernel, col_perm


def _float_nullspace(a: np.ndarray, policy: NumericPolicy) -> np.ndarray:
    """SVD-based orthonormal nullspace basis (columns)."""
    if a.size == 0:
        return np.eye(a.shape[1])
    u, s, vh = np.linalg.svd(a, full_matrices=True)
    cutoff = policy.rank_tol * (s[0] if s.size else 0.0) * max(a.shape)
    rank = int(np.count_nonzero(s > cutoff))
    return vh[rank:].T.copy()


def _qr_pivot(a: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """QR with column pivoting via scipy; lazy import keeps scipy optional
    on the hot path."""
    import scipy.linalg  # noqa: PLC0415

    qm, rm, piv = scipy.linalg.qr(a, pivoting=True, mode="economic")
    return qm, rm, np.asarray(piv, dtype=np.intp)


def gcd_reduce_rows(mat: np.ndarray) -> np.ndarray:
    """Divide each row of an integer matrix by the GCD of its entries.

    Utility for presenting integerized EFM matrices the way the paper
    prints them.  Zero rows pass through unchanged.
    """
    out = np.array(mat, dtype=np.int64, copy=True)
    for i in range(out.shape[0]):
        g = int(np.gcd.reduce(np.abs(out[i])))
        if g > 1:
            out[i] //= g
    return out


def columns_proportional(
    a: np.ndarray, b: np.ndarray, policy: NumericPolicy = DEFAULT_POLICY
) -> bool:
    """True iff 1-D vectors ``a`` and ``b`` are positive multiples of each
    other (same ray)."""
    sa = support_of(a[:, None], policy)[:, 0]
    sb = support_of(b[:, None], policy)[:, 0]
    if not np.array_equal(sa, sb):
        return False
    if not sa.any():
        return True
    ia = int(np.argmax(np.abs(a)))
    ratio = b[ia] / a[ia]
    if ratio <= 0:
        return False
    return bool(np.allclose(a * ratio, b, rtol=1e-6, atol=policy.zero_tol))
