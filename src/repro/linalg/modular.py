"""Modular residue-field rank engine with elimination-prefix reuse.

The rank test asks, per candidate support ``S``, whether
``nullity(N[:, S]) == 1``.  The batched backend answers with gufunc SVD —
floating-point machinery for matrices whose entries are small integers.
This engine answers with exact integer arithmetic instead, built on three
ideas:

**Complement form.**  Let ``B`` be an exact integer basis of the rational
nullspace of the whole ``(m, q)`` stoichiometry (``d = q - rank(N)``
columns).  Solutions supported on ``S`` are exactly ``{B z : (B z)[S̄] = 0}``
for the complement ``S̄ = {0..q-1} \\ S``, so

    ``nullity(N[:, S]) = d - rank(B[S̄, :])``.

Candidate supports are large (``|S| ≈ rank + 1``), so their complements are
tiny (``|S̄| ≈ d - 1``): each elimination shrinks from ``(m, s)`` to roughly
``(d, d-1)`` — an order of magnitude fewer matrix elements, and ``B``'s
gcd-reduced entries are far smaller than the minors a direct elimination of
``N[:, S]`` would produce.

**Exact fraction-free elimination in float64.**  Ranks of the complement
stacks come from batched Bareiss (Montante) elimination: the update
``(pv * rest - col * gp) / prev`` has an exactly integer quotient at every
step, and float64 division whose true quotient is an integer is exact, so
as long as every intermediate magnitude stays below ``2^53 / (2 * amax)``
the computed ranks are *certified*, not approximate.  A per-step magnitude
guard enforces the envelope; stacks that would breach it fall back to the
residue arm below.  Deficient steps keep ``pv := prev`` so the no-op update
``(prev * rest - 0) / prev == rest`` stays exact.

**Residue (mod-p) escalation.**  Guard-tripping stacks re-run over one or
two word-sized prime fields (primes chosen deterministically from the
problem digest; ``64 * p^2 < 2^63`` keeps int64 fraction-free updates
overflow-free).  Reduction mod ``p`` can only *lower* a rank, so the
mod-``p`` nullity estimate ``d - rank_p(B[S̄])`` upper-bounds the rational
nullity: an estimate of 1 is a *certificate* of acceptance (the true
nullity is sandwiched: ``1 <= nullity <= 1``).  Estimates ``>= 2`` are
re-checked under a second prime and the minimum is kept; candidates where
the two primes still disagree on the value escalate to the SVD reference.
No modular inverses are ever materialized for rank elimination (row scaling
by the pivot preserves rank over a field); the only inverses are the lazy
per-pivot ``pow(pv, -1, p)`` in the mod-``p`` RREF that rebuilds a kernel
basis when the exact integer basis itself overflows.

**Elimination-prefix reuse.**  Within one batch the complement member sets
are lexsorted (:func:`repro.linalg.bitset.lexsort_rows` on the complement
words), so consecutive candidates share their leading complement members.
Elimination runs member-by-member on the *transposed* basis panel
(``B.T[:, S̄]``: members are columns, steps eliminate columns), which makes
the partially eliminated state after the shared prefix a snapshot any
candidate of the class can continue from: phase A eliminates each distinct
prefix once at full width ``q``, phase C gathers each candidate's suffix
members from its class snapshot and eliminates only those.  The
``n_prefix_reused_cols`` counter records how many member-columns were
served from snapshots instead of re-eliminated.

Problems whose entries cannot be scaled to safe integers (non-rational
entries, or magnitudes beyond the integer envelope) fall back wholesale to
the SVD engine in :mod:`repro.linalg.batched` (``n_rank_fallback``).  The
support-pattern memo (:class:`repro.linalg.batched.RankCache`) is shared
with the other backends: keys are support patterns, values are certified
ranks tagged with the producing backend.
"""

from __future__ import annotations

import weakref
from fractions import Fraction

import numpy as np

from repro.config import NumericPolicy
from repro.linalg import bitset
from repro.linalg.batched import (
    CacheBinding,
    batched_ranks,
    bucketed_ranks,
    problem_token,
    split_cache_hits,
)

#: Magnitude ceiling for the exact float64 Bareiss arm: one update step
#: computes ``pv * x - c * g`` with all four factors below this bound, so
#: intermediates stay below ``2 * GUARD^2 < 2^53`` and every float64
#: operation (including the exact-integer division) is exact.
BAREISS_GUARD = 6.7e7

#: Magnitude ceiling for the int64 Montante kernel-basis construction.
INT_KERNEL_GUARD = 1 << 31

#: Word-sized primes (just below 2^23) for the residue arm: with entries
#: in ``[0, p)``, one fraction-free int64 update stays below ``2 p^2 < 2^47``.
PRIMES = (
    8388593, 8388587, 8388581, 8388571, 8388547, 8388539, 8388473, 8388461,
    8388451, 8388449, 8388439, 8388427, 8388421, 8388409, 8388377, 8388371,
)

#: Denominator bound for the per-column rational rescale; entries that are
#: not within 1e-12 (relative) of a fraction this small are non-rational
#: for our purposes and send the whole problem to the SVD fallback.
MAX_DENOMINATOR = 1000

#: Prepared problems are memoized by content digest; the registry is
#: cleared wholesale past this size (divide-and-conquer runs touch a few
#: dozen distinct stoichiometries, never thousands).
MAX_PROBLEMS = 128

#: Engage the prefix-reuse layer only when its modeled element-work saving
#: is positive and the batch is big enough for class sharing to appear.
MIN_PREFIX_BATCH = 8


# ---------------------------------------------------------------------------
# Problem preparation: integerize once, build the exact kernel basis once.
# ---------------------------------------------------------------------------


def integerize(n_perm: np.ndarray) -> np.ndarray | None:
    """Rescale ``n_perm`` to an exact int64 matrix, or ``None``.

    Integer-valued inputs pass through ``np.rint``.  Otherwise each
    *column* is scaled by the lcm of its entries' denominators — column
    scaling by nonzero constants changes no column-subset rank, so the
    rescaled matrix answers exactly the same rank queries.  Entries that
    are not safely rational (no denominator below :data:`MAX_DENOMINATOR`
    reproduces them to 1e-12 relative) or whose rescale overflows the
    Montante guard disqualify the whole problem.
    """
    a = np.asarray(n_perm, dtype=np.float64)
    if a.size == 0:
        return a.astype(np.int64)
    r = np.rint(a)
    if np.allclose(a, r, rtol=0.0, atol=1e-9) and np.abs(r).max() < INT_KERNEL_GUARD:
        return r.astype(np.int64)
    out = np.zeros(a.shape, dtype=np.int64)
    for j in range(a.shape[1]):
        col = a[:, j]
        fracs = []
        for x in col:
            f = Fraction(float(x)).limit_denominator(MAX_DENOMINATOR)
            if abs(float(f) - x) > 1e-12 * max(1.0, abs(x)):
                return None
            fracs.append(f)
        scale = int(np.lcm.reduce([f.denominator for f in fracs])) if fracs else 1
        scaled = [int(f * scale) for f in fracs]
        if scaled and max(abs(v) for v in scaled) >= INT_KERNEL_GUARD:
            return None
        out[:, j] = scaled
    return out


def int_kernel(n_int: np.ndarray) -> tuple[int, np.ndarray]:
    """Exact integer nullspace basis via Montante (fraction-free
    Gauss-Jordan) elimination.

    Returns ``(rank, B)`` with ``B`` an int64 ``(q, d)`` basis of the
    rational nullspace, each column divided by its gcd (essential: the
    delta-scaled construction leaves common factors that would amplify
    Bareiss minors exponentially downstream).  Raises ``OverflowError``
    when intermediates threaten the int64 envelope.
    """
    m, q = n_int.shape
    A = n_int.astype(np.int64).copy()
    piv_cols: list[int] = []
    prev = 1
    r = 0
    for j in range(q):
        col = A[r:, j]
        nz = np.nonzero(col)[0]
        if nz.size == 0:
            continue
        pr = r + int(nz[0])
        if pr != r:
            A[[r, pr]] = A[[pr, r]]
        pv = int(A[r, j])
        f = A[:, j].copy()
        f[r] = 0
        # Montante step: update every row except the pivot row, which is
        # left untouched at its own step (the fraction-free Gauss-Jordan
        # invariant; scaling it here would corrupt later exact divisions).
        upd = pv * A - np.outer(f, A[r])
        upd //= prev
        upd[r] = A[r]
        A = upd
        if np.abs(A).max() > INT_KERNEL_GUARD:
            raise OverflowError("Montante kernel basis exceeds int64 envelope")
        prev = pv
        piv_cols.append(j)
        r += 1
        if r == m:
            break
    free = [j for j in range(q) if j not in piv_cols]
    B = np.zeros((q, len(free)), dtype=np.int64)
    delta = prev
    for jj, fj in enumerate(free):
        B[fj, jj] = delta
        for i, pj in enumerate(piv_cols):
            B[pj, jj] = -int(A[i, fj]) * delta // int(A[i, pj])
    for jj in range(B.shape[1]):
        g = int(np.gcd.reduce(np.abs(B[:, jj])))
        if g > 1:
            B[:, jj] //= g
    return r, B


def _verify_kernel(n_int: np.ndarray, B: np.ndarray) -> bool:
    """Exact check ``n_int @ B == 0`` — float64 when the product envelope
    allows, arbitrary-precision objects otherwise."""
    if B.size == 0:
        return True
    bound = float(np.abs(n_int).max() or 1) * float(np.abs(B).max() or 1)
    if bound * n_int.shape[1] < 2.0**53:
        return not np.any(n_int.astype(np.float64) @ B.astype(np.float64))
    prod = n_int.astype(object) @ B.astype(object)
    return not np.any(prod != 0)


class ModularProblem:
    """Per-stoichiometry prepared state of the modular engine.

    ``ok=False`` problems (non-rational entries, unverifiable kernels)
    delegate every call to the SVD fallback.  ``bt`` is the transposed
    gcd-reduced integer kernel basis as float64 ``(d, q)`` — the panel both
    exact and residue arms gather complement columns from.  When the exact
    basis construction itself overflows int64, per-prime bases are rebuilt
    lazily by mod-``p`` RREF (:meth:`residue_basis`).
    """

    __slots__ = (
        "q", "m", "ok", "reason", "rank", "d", "bt", "n_int", "primes",
        "_residues", "_modp_bases",
    )

    def __init__(self, n_perm: np.ndarray, policy: NumericPolicy) -> None:
        self.m, self.q = n_perm.shape
        self.ok = False
        self.reason = ""
        self.rank = -1
        self.d = -1
        self.bt: np.ndarray | None = None
        self.n_int: np.ndarray | None = None
        self._residues: dict[int, np.ndarray] = {}
        self._modp_bases: dict[int, tuple[int, np.ndarray]] = {}
        digest = problem_token(n_perm, policy, False)
        start = int.from_bytes(digest[:4], "big") % len(PRIMES)
        self.primes = tuple(
            PRIMES[(start + k) % len(PRIMES)] for k in range(len(PRIMES))
        )
        n_int = integerize(n_perm)
        if n_int is None:
            self.reason = "non-rational entries"
            return
        self.n_int = n_int
        try:
            rank, B = int_kernel(n_int)
        except OverflowError:
            # Exact basis out of reach; the residue arm rebuilds per-prime
            # bases on demand.  Rank/d are pinned by the first usable prime.
            if self._pin_rank_mod_p():
                self.ok = True
            else:
                self.reason = "no usable prime"
            return
        if not _verify_kernel(n_int, B):
            self.reason = "kernel verification failed"
            return
        self.rank = rank
        self.d = B.shape[1]
        self.bt = np.ascontiguousarray(B.T, dtype=np.float64)
        self.ok = True

    # -- residue arm state -------------------------------------------------

    def _pin_rank_mod_p(self) -> bool:
        """Fix ``rank``/``d`` from the first two agreeing primes (basis-less
        problems only).  A single prime can undercount the rank with
        probability ~``m/p``; two independent agreeing primes make that
        ~``(m/p)^2`` — and accept certificates stay one-sided regardless."""
        seen: dict[int, int] = {}
        for p in self.primes[:6]:
            basis = self.residue_basis(p)
            if basis is None:
                continue
            d_p = basis.shape[0]
            if d_p in seen:
                self.rank = self.q - d_p
                self.d = d_p
                return True
            seen[d_p] = p
        return False

    def residue_basis(self, p: int) -> np.ndarray | None:
        """The ``(d, q)`` int64 nullspace-basis panel over ``F_p``.

        With the exact basis available this is just ``bt mod p`` (a basis
        of the rational nullspace reduces to a spanning set of its image in
        ``F_p^q``, which is all the one-sided certificate needs).  Without
        it, a mod-``p`` RREF of the stoichiometry rebuilds a basis — the
        one place modular inverses appear, one lazy ``pow(pv, -1, p)`` per
        pivot.
        """
        if self.bt is not None:
            res = self._residues.get(p)
            if res is None:
                res = np.ascontiguousarray(
                    self.bt.astype(np.int64) % p
                )
                self._residues[p] = res
            return res
        cached = self._modp_bases.get(p)
        if cached is not None:
            return cached[1]
        basis = _kernel_mod_p(self.n_int, p)
        if basis is None:
            return None
        self._modp_bases[p] = (basis.shape[0], basis)
        return basis


def _kernel_mod_p(n_int: np.ndarray, p: int) -> np.ndarray | None:
    """Nullspace basis of ``n_int`` over ``F_p`` via RREF with lazy
    per-pivot inverses; returns ``(d_p, q)`` int64 rows, or ``None`` for
    degenerate inputs."""
    m, q = n_int.shape
    A = (n_int.astype(np.int64) % p).copy()
    piv_cols: list[int] = []
    r = 0
    for j in range(q):
        nz = np.nonzero(A[r:, j])[0]
        if nz.size == 0:
            continue
        pr = r + int(nz[0])
        if pr != r:
            A[[r, pr]] = A[[pr, r]]
        inv = pow(int(A[r, j]), -1, p)  # the lazy modular inverse
        A[r] = (A[r] * inv) % p
        f = A[:, j].copy()
        f[r] = 0
        A = (A - np.outer(f, A[r])) % p
        piv_cols.append(j)
        r += 1
        if r == m:
            break
    free = [j for j in range(q) if j not in piv_cols]
    B = np.zeros((len(free), q), dtype=np.int64)
    for jj, fj in enumerate(free):
        B[jj, fj] = 1
        for i, pj in enumerate(piv_cols):
            B[jj, pj] = (-int(A[i, fj])) % p
    return B


#: Content-digest → prepared problem memo (process-wide; bounded).
_REGISTRY: dict[bytes, ModularProblem] = {}
#: ``id(n_perm)`` → (weakref-to-array, problem) fast path in front of the
#: digest registry.  Sound because a hit requires the weak referent to be
#: *the same object* — a recycled id leaves a dead or mismatched weakref
#: and falls through to the content digest.  Saves re-hashing the matrix
#: bytes on every rank-test call of an iteration loop.
_ID_CACHE: dict[int, tuple] = {}


def problem_for(n_perm: np.ndarray, policy: NumericPolicy) -> ModularProblem:
    """The prepared :class:`ModularProblem` for a stoichiometry, memoized
    by content digest (plus an object-identity fast path) so repeated calls
    — and divide-and-conquer subproblems revisiting one matrix — pay
    preparation once.  ``n_perm`` must not be mutated in place while in
    use, the same contract the cache tokens already rely on."""
    ident = id(n_perm)
    hit = _ID_CACHE.get(ident)
    if hit is not None:
        ref, pol, prob = hit
        if ref() is n_perm and pol is policy:
            return prob
    key = problem_token(n_perm, policy, False)
    prob = _REGISTRY.get(key)
    if prob is None:
        if len(_REGISTRY) >= MAX_PROBLEMS:
            _REGISTRY.clear()
        prob = ModularProblem(n_perm, policy)
        _REGISTRY[key] = prob
    try:
        if len(_ID_CACHE) >= MAX_PROBLEMS:
            _ID_CACHE.clear()
        _ID_CACHE[ident] = (weakref.ref(n_perm), policy, prob)
    except TypeError:  # non-weakrefable views keep the digest-only path
        pass
    return prob


# ---------------------------------------------------------------------------
# Batched exact fraction-free elimination (the certified float64 arm).
# ---------------------------------------------------------------------------


def bareiss_ranks(
    stack: np.ndarray,
    prev0: np.ndarray | None = None,
    r0: np.ndarray | None = None,
) -> np.ndarray:
    """Exact batched integer ranks via fraction-free elimination.

    ``stack`` is ``(n, m, w)`` float64 holding exact integers; elimination
    proceeds over the ``w`` trailing-axis columns, pivoting among the ``m``
    rows.  ``prev0``/``r0`` resume from a phase-A snapshot (previous pivot
    and rank-so-far per matrix).  Raises ``OverflowError`` the moment the
    2^53 exactness envelope is threatened — the caller escalates to the
    residue arm.
    """
    n, m, w = stack.shape
    r = (
        np.zeros(n, dtype=np.int64)
        if r0 is None
        else r0.astype(np.int64, copy=True)
    )
    if n == 0 or m == 0 or w == 0:
        return r
    ar = np.arange(n)
    panel = np.ascontiguousarray(stack.transpose(2, 1, 0))  # (w, m, n)
    prev = (
        np.ones(n) if prev0 is None else np.asarray(prev0, dtype=np.float64).copy()
    )
    # Magnitude tracking via two allocation-free reductions (max of the
    # data and of its negation) instead of an np.abs temporary per step.
    amax = max(float(panel.max()), -float(panel.min()))
    for t in range(w):
        col = panel[t]  # (m, n)
        piv = (col != 0.0).argmax(axis=0)
        pv_raw = col.reshape(-1)[piv * n + ar]
        has = pv_raw != 0.0
        # Deficient step: pv := prev makes the update an exact no-op
        # ((prev * rest - 0) / prev == rest); never substitute 1 here.
        pv = np.where(has, pv_raw, prev)
        r += has
        if t + 1 < w:
            if amax > BAREISS_GUARD:
                raise OverflowError("Bareiss stack exceeds float64 exactness envelope")
            rest = panel[t + 1 :]
            flat = rest.reshape(w - t - 1, -1)
            gp = flat[:, piv * n + ar].copy()  # pivot-row values ahead
            rest *= pv
            rest -= col[None] * gp[:, None, :]
            rest /= prev  # exact integer quotient (Bareiss identity)
            # Consume the pivot row: zero it in the remaining columns.  On
            # deficient steps the update provably left it unchanged, so
            # writing back the pre-update values is the identity.
            flat[:, piv * n + ar] = np.where(has, 0.0, gp)
            amax = max(float(rest.max()), -float(rest.min()))
        prev = pv
    return r


def _modp_ranks(stack: np.ndarray, p: int) -> np.ndarray:
    """Batched ranks over ``F_p`` by fraction-free elimination — row
    scaling by the (nonzero) pivot preserves rank over a field, so no
    divisions and no inverses occur."""
    n, m, w = stack.shape
    r = np.zeros(n, dtype=np.int64)
    if n == 0 or m == 0 or w == 0:
        return r
    ar = np.arange(n)
    panel = np.ascontiguousarray(stack.transpose(2, 1, 0)).astype(np.int64) % p
    for t in range(w):
        col = panel[t]
        piv = (col != 0).argmax(axis=0)
        pv_raw = col.reshape(-1)[piv * n + ar]
        has = pv_raw != 0
        r += has
        if t + 1 < w:
            rest = panel[t + 1 :]
            flat = rest.reshape(w - t - 1, -1)
            gp = flat[:, piv * n + ar].copy()
            rest *= np.where(has, pv_raw, 1)
            rest -= col[None] * gp[:, None, :]
            rest %= p
            flat[:, piv * n + ar] = np.where(has, 0, gp)
        # (no prev tracking: row scaling needs no compensation over F_p)
    return r


# ---------------------------------------------------------------------------
# Elimination-prefix reuse (phase A snapshots + phase C suffix runs).
# ---------------------------------------------------------------------------


def _choose_prefix_depth(idx_pad: np.ndarray, q: int) -> tuple[int, np.ndarray, int]:
    """Pick the snapshot depth ``j`` maximizing modeled element-work
    savings: every candidate skips ``j`` steps of its own (narrow) panel;
    every distinct prefix class pays ``j`` steps at full width ``q``.

    Returns ``(j, class_id, n_classes)`` — ``j == 0`` disables the layer.
    """
    nm, w = idx_pad.shape
    if nm < MIN_PREFIX_BATCH or w < 2:
        return 0, np.zeros(nm, dtype=np.int64), nm
    jmax = min(8, w - 1)
    eq = np.ones(nm - 1, dtype=bool)
    best_j, best_gain = 0, 0.0
    best_cls = np.arange(nm, dtype=np.int64)
    for j in range(1, jmax + 1):
        eq &= idx_pad[1:, j - 1] == idx_pad[:-1, j - 1]
        u = nm - int(eq.sum())
        gain = j * (nm * (w - j) - u * q)
        if gain > best_gain:
            new_cls = np.ones(nm, dtype=bool)
            new_cls[1:] = ~eq
            best_j, best_gain = j, gain
            best_cls = np.cumsum(new_cls) - 1
    return best_j, best_cls, int(best_cls[-1]) + 1 if nm else 0


def _prefix_snapshot(
    bt: np.ndarray, idx_pad: np.ndarray, cls: np.ndarray, n_classes: int, j: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Phase A: eliminate each class's first ``j`` complement members once,
    at full panel width, returning ``(state, prev, rank)`` snapshots.

    The update runs over the whole ``(d, q)`` panel, so the eliminated
    member's column self-annihilates and the consumed pivot row lands at
    exactly zero — no explicit scatter is needed (on deficient steps the
    pivot column is identically zero and the update is a no-op).
    """
    d, q = bt.shape
    reps = np.zeros(n_classes, dtype=np.int64)
    reps[cls] = np.arange(idx_pad.shape[0])  # any member; last write wins
    ar = np.arange(n_classes)
    state = np.broadcast_to(bt, (n_classes, d, q)).copy()
    prev = np.ones(n_classes)
    rank = np.zeros(n_classes, dtype=np.int64)
    amax = max(float(state.max()), -float(state.min())) if state.size else 0.0
    for t in range(j):
        if amax > BAREISS_GUARD:
            raise OverflowError("prefix snapshot exceeds exactness envelope")
        c = idx_pad[reps, t]
        col = state[ar, :, c]  # (n_classes, d)
        piv = (col != 0.0).argmax(axis=1)
        pv_raw = col[ar, piv]
        has = pv_raw != 0.0
        pv = np.where(has, pv_raw, prev)
        gp = state[ar, piv, :].copy()  # (n_classes, q)
        state *= pv[:, None, None]
        state -= col[:, :, None] * gp[:, None, :]
        state /= prev[:, None, None]
        prev = pv
        rank += has
        amax = max(float(state.max()), -float(state.min()))
    return state, prev, rank


def _exact_complement_ranks(
    bt: np.ndarray, idx_pad: np.ndarray, stats=None
) -> np.ndarray:
    """Ranks of ``B[S̄, :]`` for a padded descending member-index matrix,
    through the prefix-reuse layer when profitable."""
    nm = idx_pad.shape[0]
    d, q = bt.shape
    j, cls, n_classes = _choose_prefix_depth(idx_pad, q)
    if j > 0:
        state, prev, rank = _prefix_snapshot(bt, idx_pad, cls, n_classes, j)
        # Gather each candidate's suffix columns straight out of its class
        # snapshot — one fancy index, never materializing the full-width
        # (nm, d, q) per-candidate states.
        sub = state[
            cls[:, None, None], np.arange(d)[None, :, None], idx_pad[:, None, j:]
        ]
        out = bareiss_ranks(sub, prev0=prev[cls], r0=rank[cls])
        if stats is not None:
            stats.n_prefix_reused_cols += (nm - n_classes) * j
        return out
    sub = bt[:, idx_pad]  # (d, nm, w)
    return bareiss_ranks(np.ascontiguousarray(sub.transpose(1, 0, 2)))


# ---------------------------------------------------------------------------
# The backend entry point.
# ---------------------------------------------------------------------------


def _call_keys(
    cache: CacheBinding,
    words: np.ndarray,
    mask_t: np.ndarray,
    sizes: np.ndarray,
) -> list:
    """Memo keys for *all* candidates of a call in one vectorized pass.

    The modular backend needs no support-size bucketing (its kernel merges
    every miss into one complement stack), so instead of the per-bucket
    rectangular ``cols`` gathers of :func:`~repro.linalg.batched.
    iter_size_buckets` the keys come straight off the ragged support lists:
    packed-word rows on the fast path, a single lexsort of canonical column
    ids grouped by candidate on the divide-and-conquer path (variable-size
    multisets slice out of one contiguous blob by the size prefix sums).
    Key bytes are identical to :meth:`CacheBinding.keys`, so entries stay
    shared with the batched backend.
    """
    token = cache.token
    if cache.col_ids is None:
        rows = np.ascontiguousarray(words)
        stride = rows.shape[1] * rows.itemsize
        if stride == 0:
            return [token] * rows.shape[0]
        blob = rows.tobytes()
        return [token + blob[i : i + stride] for i in range(0, len(blob), stride)]
    # Walking the mask in ascending-canonical-id column order makes each
    # row's gathered ids pre-sorted — no per-row (or whole-call) sort.
    ci = np.nonzero(mask_t[:, cache.col_perm])[1]
    blob = np.ascontiguousarray(cache.col_ids_sorted[ci]).tobytes()
    ends = np.cumsum(sizes, dtype=np.int64) * 8
    starts = ends - sizes.astype(np.int64) * 8
    return [
        token + blob[s:e] for s, e in zip(starts.tolist(), ends.tolist())
    ]


def _padded_complements(
    mask_t: np.ndarray, miss_idx: np.ndarray, sizes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Complement member-index matrix for the miss candidates, members in
    descending column order, short rows padded by repeating their last
    (smallest) member — a duplicated column never changes the rank.

    Returns ``(idx_pad, comp_counts)``.  Descending order matches
    :func:`repro.linalg.bitset.lexsort_rows` on complement words (the
    highest set bit dominates the packed comparison), so lexsorted batches
    put equal leading members adjacent for the prefix layer.
    """
    comp = ~mask_t[miss_idx]  # (nm, q)
    nm, q = comp.shape
    counts = q - sizes
    w = int(counts.max()) if nm else 0
    idx_pad = np.zeros((nm, w), dtype=np.int64)
    if w == 0:
        return idx_pad, counts
    ri, ci = np.nonzero(comp)
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    pos = np.arange(ci.size) - offsets[ri]  # ascending position within row
    idx_pad[ri, counts[ri] - 1 - pos] = ci  # place descending
    last = idx_pad[np.arange(nm), np.maximum(counts - 1, 0)]
    fill = np.arange(w)[None, :] >= counts[:, None]
    idx_pad[fill] = np.broadcast_to(last[:, None], (nm, w))[fill]
    return idx_pad, counts


def _complement_words(words: np.ndarray, q: int) -> np.ndarray:
    """Packed complement supports (tail bits beyond ``q`` masked off)."""
    comp = ~words
    tail = q % 64
    if tail:
        comp = comp.copy()
        comp[:, -1] &= np.uint64((1 << tail) - 1)
    return comp


def _kernel_nullities(
    prob: ModularProblem, idx_pad: np.ndarray, stats=None
) -> tuple[np.ndarray, np.ndarray]:
    """Nullity estimates for the padded complement stacks, plus a mask of
    candidates needing SVD resolution (prime disagreement).

    Exact arm first; on overflow the residue arm takes the whole stack:
    prime 1, then prime 2 for every nullity-≥2 estimate, keeping the
    minimum (reduction can only inflate nullity, so the minimum is the
    sharper bound and any estimate of 1 is a certificate).
    """
    d = prob.d
    unresolved = np.zeros(idx_pad.shape[0], dtype=bool)
    if prob.bt is not None:
        try:
            ranks = _exact_complement_ranks(prob.bt, idx_pad, stats=stats)
            return d - ranks, unresolved
        except OverflowError:
            pass
    p1, p2 = prob.primes[0], prob.primes[1]
    b1 = prob.residue_basis(p1)
    if b1 is None:
        unresolved[:] = True
        return np.full(idx_pad.shape[0], -1, dtype=np.int64), unresolved
    sub = b1[:, idx_pad]  # (d, nm, w) — members as columns of the panel
    null1 = d - _modp_ranks(
        np.ascontiguousarray(sub.transpose(1, 0, 2)), p1
    )
    need = null1 >= 2
    if need.any():
        b2 = prob.residue_basis(p2)
        if b2 is None:
            unresolved |= need
            return null1, unresolved
        sub2 = b2[:, idx_pad[need]]
        null2 = d - _modp_ranks(
            np.ascontiguousarray(sub2.transpose(1, 0, 2)), p2
        )
        n1 = null1[need]
        resolved = np.minimum(n1, null2)
        # A certificate (either prime saw nullity 1) or two agreeing
        # estimates settle the candidate; a remaining disagreement — both
        # primes ≥ 2 but different — escalates to the SVD reference.
        disagree = (resolved >= 2) & (n1 != null2)
        null1[need] = resolved
        unresolved[np.flatnonzero(need)[disagree]] = True
    return null1, unresolved


def modular_ranks(
    n_perm: np.ndarray,
    support_mask: np.ndarray,
    sizes: np.ndarray,
    *,
    policy: NumericPolicy,
    n_exact=None,
    words: np.ndarray | None = None,
    cache: CacheBinding | None = None,
    stats=None,
) -> np.ndarray:
    """Ranks of ``n_perm[:, S_i]`` via the modular residue-field engine.

    Drop-in for :func:`repro.linalg.batched.bucketed_ranks` (same contract,
    same memo composition): one vectorized key pass drives the cache
    lookups (:func:`_call_keys` — byte-compatible with the batched keys),
    all misses of a call are merged into one lexsorted complement stack for
    the kernel, and computed ranks are stored back tagged ``"modular"``.
    Exact-arithmetic runs and unprepared problems delegate wholesale to the
    batched engine (the latter counted in ``n_rank_fallback``).
    """
    n = int(sizes.size)
    ranks = np.zeros(n, dtype=np.int64)
    if n == 0:
        return ranks
    if n_exact is not None:
        return bucketed_ranks(
            n_perm, support_mask, sizes, policy=policy, n_exact=n_exact,
            words=words, cache=cache, stats=stats,
        )
    prob = problem_for(n_perm, policy)
    if not prob.ok:
        if stats is not None:
            stats.n_rank_fallback += n
        return bucketed_ranks(
            n_perm, support_mask, sizes, policy=policy, words=words,
            cache=cache, stats=stats,
        )
    if words is None:
        words = bitset.pack_supports(support_mask)

    mask_t = np.ascontiguousarray(support_mask.T)  # (n, q)
    if cache is not None:
        keys = _call_keys(cache, words, mask_t, sizes)
        miss_pos = split_cache_hits(cache, keys, np.arange(n), ranks, stats)
        if not miss_pos:
            return ranks
        miss_idx = np.asarray(miss_pos, dtype=np.int64)
        miss_keys: list = [keys[j] for j in miss_pos]
    else:
        miss_idx = np.arange(n, dtype=np.int64)
        miss_keys = [None] * n
    s_arr = sizes[miss_idx].astype(np.int64)
    nm = miss_idx.size

    # Lexsort by complement words so equal leading members are adjacent.
    comp_words = _complement_words(words[miss_idx], prob.q)
    order = bitset.lexsort_rows(comp_words)
    miss_idx = miss_idx[order]
    s_arr = s_arr[order]
    miss_keys = [miss_keys[int(i)] for i in order]

    idx_pad, counts = _padded_complements(mask_t, miss_idx, s_arr)
    empty = counts == 0  # full-support candidates: rank(B[∅]) = 0
    if stats is not None:
        stats.n_rank_batches += 1
        stats.rank_batch_max = max(stats.rank_batch_max, nm)
        stats.n_rank_modular += nm
    nullities, unresolved = _kernel_nullities(prob, idx_pad, stats=stats)
    nullities[empty] = prob.d
    unresolved &= ~empty
    miss_ranks = s_arr - nullities
    if unresolved.any():
        # Prime-disagreement escalation: the SVD reference settles the
        # stragglers (counted as fallbacks — the kernel did not certify).
        u = np.flatnonzero(unresolved)
        if stats is not None:
            stats.n_rank_fallback += u.size
            stats.n_rank_modular -= u.size
        s_u = s_arr[u]
        cols_u = np.nonzero(mask_t[miss_idx[u]])[1]
        svd_ranks = np.zeros(u.size, dtype=np.int64)
        start = 0
        for k, su in enumerate(s_u.tolist()):
            sel = cols_u[start : start + su][None, :]
            svd_ranks[k] = batched_ranks(n_perm, sel, policy)[0]
            start += su
        miss_ranks[u] = svd_ranks
    ranks[miss_idx] = miss_ranks
    if cache is not None:
        store = cache.cache.store
        for key, rk in zip(miss_keys, miss_ranks.tolist()):
            if key is not None:
                store(key, rk, "modular")
    return ranks
