"""Per-iteration snapshots of the mode matrix (the paper's Figure 2).

With ``AlgorithmOptions(record_trace=True)`` the serial driver captures the
full intermediate nullspace matrix after every iteration, letting examples
and tests print the K⁽¹⁾…K⁽⁵⁾ sequence of the toy network exactly as the
paper does.  Snapshots copy the whole matrix — small networks only.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel import NullspaceProblem
    from repro.core.state import ModeMatrix


@dataclasses.dataclass(frozen=True)
class IterationTrace:
    """Mode matrix state after processing one row."""

    position: int
    reaction: str
    row_names: tuple[str, ...]
    #: matrix in the paper's orientation: rows = reactions, cols = modes.
    matrix: np.ndarray
    #: dynamic ordering's selection-time |pos|*|neg| score of this row
    #: (0 for static orderings — see repro.core.ordering.RowSelector).
    sel_score: int = 0

    @classmethod
    def capture(
        cls,
        position: int,
        problem: "NullspaceProblem",
        modes: "ModeMatrix",
        sel_score: int = 0,
    ) -> "IterationTrace":
        return cls(
            position=position,
            reaction=problem.names[position],
            row_names=problem.names,
            matrix=modes.modes_as_columns(),
            sel_score=sel_score,
        )

    def render(self, *, fmt: str = "{:>5.3g}") -> str:
        """Pretty-print the snapshot like the paper's K^(i) matrices."""
        lines = [f"after row {self.position} ({self.reaction}):"]
        for r, name in enumerate(self.row_names):
            cells = " ".join(fmt.format(x) for x in self.matrix[r])
            lines.append(f"  {name:>6s} | {cells}")
        return "\n".join(lines)
