"""Candidate elementary-mode generation (GenerateEFMCands).

At iteration ``k`` every mode with a positive entry in row ``k`` pairs with
every mode with a negative entry; the convex combination

    cand = (-neg_k) * pos_mode + (pos_k) * neg_mode

annihilates row ``k`` (both coefficients are positive, so the combination
stays inside the flux cone).  Generation is vectorized in chunks of
``options.pair_chunk`` pairs; a packed-support union popcount prefilter
("summary rejection": a support larger than ``rank+1`` cannot have nullity
1) drops most pairs before any float work happens.

Two pipelines carry the survivors onward (``options.candidate_pipeline``):

``"deferred"`` (default, the support-first pipeline)
    Chunk values are computed transiently, canonical supports are
    extracted (:func:`repro.core.state.canonical_support_mask` — the exact
    mask the eager constructor would produce), and the dense values are
    discarded: only a :class:`~repro.core.state.CandidateBatch` of packed
    support words, ``(i, j)`` pair indices and the two combination
    coefficients survives.  Dedup and the rank test consume supports only,
    so dense normalized rows are materialized once — for *accepted*
    candidates — by recomputing ``a*mode[i] + b*mode[j]``.

``"eager"``
    Every prefilter survivor is materialized as a dense normalized
    :class:`~repro.core.state.ModeMatrix` row up front (the parity
    reference; also the only pipeline for exact arithmetic).

The pair index space ``[0, n_pos*n_neg)`` is linearized as
``p = i * n_neg + j``; the combinatorial parallel algorithm hands each rank
a strided or blocked subrange of the same space, so the serial path here is
literally the one-rank special case.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.config import AlgorithmOptions
from repro.core.state import CandidateBatch, ModeMatrix, canonical_support_mask
from repro.core.stats import IterationStats
from repro.linalg import bitset
from repro.linalg.bitset import PackedSupports, pack_supports


@dataclasses.dataclass(frozen=True)
class PairRange:
    """A subrange of the linearized pair space assigned to one worker.

    ``strided`` ranges take pairs ``start, start+step, start+2*step, ...``
    (the combinatorial distribution of [17] — adjacent pairs land on
    different ranks, balancing cost); plain block ranges take
    ``[start, stop)`` with ``step == 1``.
    """

    start: int
    stop: int
    step: int = 1

    def count(self) -> int:
        if self.stop <= self.start:
            return 0
        return (self.stop - self.start + self.step - 1) // self.step


def full_range(n_pairs: int) -> PairRange:
    """The serial (single worker) pair range."""
    return PairRange(0, n_pairs, 1)


def strided_range(n_pairs: int, rank: int, size: int) -> PairRange:
    """Rank ``rank`` of ``size``'s combinatorial (cyclic) share."""
    return PairRange(rank, n_pairs, size)


def block_range(n_pairs: int, rank: int, size: int) -> PairRange:
    """Rank ``rank`` of ``size``'s contiguous block share."""
    base, extra = divmod(n_pairs, size)
    start = rank * base + min(rank, extra)
    stop = start + base + (1 if rank < extra else 0)
    return PairRange(start, stop, 1)


def generate_candidates(
    modes: ModeMatrix,
    k: int,
    pos_idx: np.ndarray,
    neg_idx: np.ndarray,
    pair_range: PairRange,
    rank_bound: int,
    options: AlgorithmOptions,
    stats: IterationStats,
    adjacency=None,
) -> ModeMatrix | CandidateBatch:
    """Generate this worker's candidates for iteration row ``k``.

    Returns the candidates that survived the union-support prefilter (and,
    when ``adjacency`` is given, the combinatorial pair-adjacency test —
    see :class:`repro.core.bittree.AdjacencyTest`; it must run per-pair,
    before any dedup): a dense :class:`ModeMatrix` on the eager pipeline, a
    support-only :class:`CandidateBatch` on the deferred one (see the
    module docstring).  ``rank_bound`` is the rank of the stoichiometry: a
    candidate whose support exceeds ``rank_bound + 1`` entries is summarily
    rejected (the prefilter tests the pair's support *union*, which
    overcounts the true support by at least the annihilated row ``k``,
    hence the ``+ 2`` below).
    """
    n_neg = neg_idx.size
    vals = modes.values
    sup = modes.supports.words
    col = vals[:, k]
    deferred = options.candidate_pipeline == "deferred" and not modes.exact

    kept_chunks: list[np.ndarray] = []
    word_chunks: list[np.ndarray] = []
    i_chunks: list[np.ndarray] = []
    j_chunks: list[np.ndarray] = []
    n_prefilter_kept = 0
    n_adjacent = 0
    max_union = rank_bound + 2

    for p_chunk in _iter_pair_chunks(pair_range, options.pair_chunk):
        i_sel = pos_idx[p_chunk // n_neg]
        j_sel = neg_idx[p_chunk % n_neg]
        union = sup[i_sel] | sup[j_sel]
        ok = bitset.popcount(union) <= max_union
        if not ok.any():
            continue
        i_ok = i_sel[ok]
        j_ok = j_sel[ok]
        n_prefilter_kept += int(i_ok.size)
        if adjacency is not None:
            adj = adjacency.adjacent(union[ok])
            i_ok = i_ok[adj]
            j_ok = j_ok[adj]
            n_adjacent += int(i_ok.size)
            if i_ok.size == 0:
                continue
        a = -col[j_ok]  # > 0
        b = col[i_ok]  # > 0
        cand = vals[i_ok] * a[:, None] + vals[j_ok] * b[:, None]
        if deferred:
            # Support-first: extract canonical supports from the transient
            # chunk values, then let the dense rows — and the coefficients,
            # which (i, j, k) fully determine — die with the chunk.
            mask = canonical_support_mask(cand, modes.policy)
            word_chunks.append(pack_supports(mask.T))
            i_chunks.append(i_ok)
            j_chunks.append(j_ok)
        else:
            kept_chunks.append(cand)

    stats.n_prefilter_kept += n_prefilter_kept
    stats.n_adjacent += n_adjacent
    if deferred:
        if not word_chunks:
            return CandidateBatch.empty(modes.q, k, policy=modes.policy)
        if len(word_chunks) == 1:
            parts = (word_chunks[0], i_chunks[0], j_chunks[0])
        else:
            parts = (
                np.concatenate(word_chunks, axis=0),
                np.concatenate(i_chunks),
                np.concatenate(j_chunks),
            )
        # Arrays are freshly built with the right dtypes; skip the public
        # constructor's coercion pass (hot: once per iteration per rank).
        batch = CandidateBatch._from_parts(
            PackedSupports(parts[0], modes.q), parts[1], parts[2], k, modes.policy
        )
        stats.candidate_bytes = max(stats.candidate_bytes, batch.nbytes())
        return batch
    if not kept_chunks:
        return ModeMatrix.empty(modes.q, exact=modes.exact, policy=modes.policy)
    raw = np.concatenate(kept_chunks, axis=0)
    out = ModeMatrix(raw, policy=modes.policy)
    stats.candidate_bytes = max(stats.candidate_bytes, out.nbytes())
    return out


def _iter_pair_chunks(pair_range: PairRange, chunk: int):
    """Yield int64 arrays of linear pair indices covering ``pair_range`` in
    chunks of at most ``chunk`` pairs."""
    if pair_range.step == 1:
        for start in range(pair_range.start, pair_range.stop, chunk):
            yield np.arange(
                start, min(start + chunk, pair_range.stop), dtype=np.int64
            )
    else:
        total = pair_range.count()
        for c0 in range(0, total, chunk):
            c1 = min(c0 + chunk, total)
            yield pair_range.start + pair_range.step * np.arange(
                c0, c1, dtype=np.int64
            )
