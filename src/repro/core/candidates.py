"""Candidate elementary-mode generation (GenerateEFMCands).

At iteration ``k`` every mode with a positive entry in row ``k`` pairs with
every mode with a negative entry; the convex combination

    cand = (-neg_k) * pos_mode + (pos_k) * neg_mode

annihilates row ``k`` (both coefficients are positive, so the combination
stays inside the flux cone).  Generation is vectorized in chunks of
``options.pair_chunk`` pairs; a packed-support union popcount prefilter
("summary rejection": a support larger than ``rank+1`` cannot have nullity
1) drops most pairs before any float work happens.

Two pipelines carry the survivors onward (``options.candidate_pipeline``):

``"deferred"`` (default, the support-first pipeline)
    Chunk values are computed transiently, canonical supports are
    extracted (:func:`repro.core.state.canonical_support_mask` — the exact
    mask the eager constructor would produce), and the dense values are
    discarded: only a :class:`~repro.core.state.CandidateBatch` of packed
    support words, ``(i, j)`` pair indices and the two combination
    coefficients survives.  Dedup and the rank test consume supports only,
    so dense normalized rows are materialized once — for *accepted*
    candidates — by recomputing ``a*mode[i] + b*mode[j]``.

``"eager"``
    Every prefilter survivor is materialized as a dense normalized
    :class:`~repro.core.state.ModeMatrix` row up front (the parity
    reference; also the only pipeline for exact arithmetic).

The pair index space ``[0, n_pos*n_neg)`` is linearized as
``p = i * n_neg + j``; the combinatorial parallel algorithm hands each rank
a strided or blocked subrange of the same space, so the serial path here is
literally the one-rank special case.  The "tiled" strategy instead hands
each rank a contiguous share of zone-map *tiles* (:class:`TiledRange`,
:mod:`repro.core.pairspace`): pruned tiles are dropped before their pair
indices are even materialized, and tiles whose zone bound proves every
pair passes skip the per-pair prefilter entirely.  With
``options.pair_pruning == "tiles"`` the legacy ranges also consult the
zone maps through a per-chunk mask.  Either way only pairs the per-pair
prefilter would reject are skipped and the enumeration order of surviving
pairs is unchanged, so the EFM output is bit-identical to
``pair_pruning == "none"``.
"""

from __future__ import annotations

import dataclasses
import functools
from collections.abc import Iterator

import numpy as np

from repro.config import AlgorithmOptions
from repro.core.pairspace import MIN_PRUNE_PAIRS, PairSpace, resolve_block
from repro.core.state import CandidateBatch, ModeMatrix, canonical_support_mask
from repro.core.stats import IterationStats
from repro.linalg import bitset
from repro.linalg.bitset import PackedSupports, pack_support_rows


@dataclasses.dataclass(frozen=True)
class PairRange:
    """A subrange of the linearized pair space assigned to one worker.

    ``strided`` ranges take pairs ``start, start+step, start+2*step, ...``
    (the combinatorial distribution of [17] — adjacent pairs land on
    different ranks, balancing cost); plain block ranges take
    ``[start, stop)`` with ``step == 1``.
    """

    start: int
    stop: int
    step: int = 1

    def count(self) -> int:
        if self.stop <= self.start:
            return 0
        return (self.stop - self.start + self.step - 1) // self.step


def full_range(n_pairs: int) -> PairRange:
    """The serial (single worker) pair range."""
    return PairRange(0, n_pairs, 1)


def strided_range(n_pairs: int, rank: int, size: int) -> PairRange:
    """Rank ``rank`` of ``size``'s combinatorial (cyclic) share."""
    return PairRange(rank, n_pairs, size)


def block_range(n_pairs: int, rank: int, size: int) -> PairRange:
    """Rank ``rank`` of ``size``'s contiguous block share."""
    base, extra = divmod(n_pairs, size)
    start = rank * base + min(rank, extra)
    stop = start + base + (1 if rank < extra else 0)
    return PairRange(start, stop, 1)


@dataclasses.dataclass(frozen=True)
class TiledRange(PairRange):
    """Rank ``rank`` of ``size``'s tile-major share of the pair space.

    The actual tile partition depends on the iteration's supports and is
    built inside :func:`generate_candidates`
    (:meth:`repro.core.pairspace.PairSpace.tile_share` — contiguous tile
    runs balanced by pair count); :meth:`count` is therefore only the
    balanced *estimate* and ``generate_candidates`` overwrites
    ``stats.n_pairs`` with the exact owned-pair count.  ``start/stop/step``
    keep the full-range convention so code that only reads the space size
    stays correct.
    """

    rank: int = 0
    size: int = 1

    def count(self) -> int:
        base, extra = divmod(self.stop, max(1, self.size))
        return base + (1 if self.rank < extra else 0)


def tiled_range(n_pairs: int, rank: int, size: int) -> TiledRange:
    """Rank ``rank`` of ``size``'s tile share (the "tiled" strategy)."""
    return TiledRange(0, n_pairs, 1, rank, size)


@functools.lru_cache(maxsize=256)
def _tiny_pair_template(n_pos: int, n_neg: int):
    """Cached ``(a, b)`` list-position vectors of the full i-major pair
    enumeration for a tiny ``n_pos x n_neg`` space (read-only; shapes
    repeat heavily across iterations, so most calls cost zero dispatches).
    """
    a, b = np.divmod(np.arange(n_pos * n_neg, dtype=np.intp), n_neg)
    a.setflags(write=False)
    b.setflags(write=False)
    return a, b


def survivor_chunks(
    modes: ModeMatrix,
    k: int,
    pos_idx: np.ndarray,
    neg_idx: np.ndarray,
    pair_range: PairRange,
    rank_bound: int,
    options: AlgorithmOptions,
    stats: IterationStats,
    *,
    adjacency=None,
    chunk_pairs: int | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, int]]:
    """Yield this worker's per-chunk generation survivors for row ``k``.

    The shared generation front-end of the batch (:func:`generate_candidates`)
    and streaming (:mod:`repro.core.iterstream`) iteration bodies: pair
    enumeration (template / tiled / legacy order), zone-map pruning, the
    union-support prefilter and the optional per-pair adjacency test all
    live here, once.  Each yielded tuple is ``(i_ok, j_ok, raw,
    transient)``: the surviving pairs' source-mode indices, the raw
    (un-normalized) dense combination chunk, and the chunk's transient
    working-set bytes (pair vectors, gathered words, prefilter mask, the
    dense chunk, zone maps — already folded into ``stats.prefilter_bytes``).

    ``chunk_pairs`` bounds the pairs per chunk (default
    ``options.pair_chunk``).  Chunk *granularity* never changes the pair
    enumeration order — only which path is taken does, and every path
    decision (tiny-template gate, block resolution, tile geometry) depends
    solely on the space shape and ``options``, never on ``chunk_pairs`` —
    so any two chunkings enumerate identical survivors in identical order.

    ``rank_bound`` is the rank of the stoichiometry: a candidate whose
    support exceeds ``rank_bound + 1`` entries is summarily rejected (the
    prefilter tests the pair's support *union*, which overcounts the true
    support by at least the annihilated row ``k``, hence the ``+ 2``
    below).
    """
    n_neg = neg_idx.size
    vals = modes.values
    sup = modes.supports.words
    col = vals[:, k]
    n_words = sup.shape[1]
    sup1 = sup[:, 0] if n_words == 1 else None
    if chunk_pairs is None:
        chunk_pairs = options.pair_chunk
    chunk_pairs = max(1, int(chunk_pairs))

    peak_transient = 0
    max_union = rank_bound + 2

    # -- zone-map layer ----------------------------------------------------
    tiled = isinstance(pair_range, TiledRange)
    n_pairs_space = int(pos_idx.size) * int(n_neg)
    prune = options.pair_pruning == "tiles"
    space = None
    # Tiny spaces (below the MIN_PRUNE_PAIRS gate, where zone maps never
    # build) take a template fast path: cached i-major chunks, no
    # clustering, no tile geometry.  Iterations here are dominated by
    # per-call dispatch overhead, and the condition is independent of the
    # pruning switch, so both arms enumerate identically (skip-only parity
    # is trivial: nothing is skipped).  The gate reads ``options.pair_chunk``
    # — never the effective ``chunk_pairs`` — so batch and streaming runs
    # take the same arm and enumerate in the same order.
    fast = (
        n_pairs_space < MIN_PRUNE_PAIRS
        and n_pairs_space <= options.pair_chunk
        and (pair_range.size == 1 if tiled else True)
    )
    if fast:
        a_t, b_t = _tiny_pair_template(int(pos_idx.size), int(n_neg))
        if tiled:
            stats.n_pairs = n_pairs_space
        else:
            sl = slice(pair_range.start, pair_range.stop, pair_range.step)
            a_t, b_t = a_t[sl], b_t[sl]
        chunks = (
            (a_t[s : s + chunk_pairs], b_t[s : s + chunk_pairs], None, 0)
            for s in range(0, int(a_t.size), chunk_pairs)
        )
    # Zone maps only pay for themselves once the pair space is big enough
    # to amortize their construction (PairSpace applies the
    # MIN_PRUNE_PAIRS gate itself); the non-tiny tiled path always builds
    # the (cheap) clustering + tile geometry — the enumeration order must
    # not depend on the pruning switch.
    else:
        blk = resolve_block(options.pair_block, n_pairs_space)
        if tiled or (prune and n_pairs_space >= MIN_PRUNE_PAIRS):
            space = PairSpace(
                sup, pos_idx, neg_idx, rank_bound, block=blk, prune=prune,
            )
        if tiled:
            share = space.tile_share(pair_range.rank, pair_range.size)
            stats.n_pairs = space.share_pair_count(share)
            stats.n_tiles_total += int(share.size)
            if space.live is not None:
                stats.n_tiles_pruned += int(
                    share.size - np.count_nonzero(space.live.ravel()[share])
                )
            chunks = space.iter_share_chunks(share, chunk_pairs)
        else:
            if space is not None:
                # Per-rank work counters: each rank builds and evaluates
                # its own tile map, so the counts sum across ranks like
                # the other work counters do.
                stats.n_tiles_total += space.n_tiles
                stats.n_tiles_pruned += space.n_tiles_pruned
                if not space.worth_masking:
                    space = None  # nothing skippable: stay on lean path
            chunks = _legacy_chunks(pair_range, chunk_pairs, n_neg, space)
        if space is not None:
            peak_transient = space.zone_map_nbytes()
            stats.prefilter_bytes = max(stats.prefilter_bytes, peak_transient)

    for a_sel, b_sel, known, skipped in chunks:
        stats.n_pairs_skipped += skipped
        m = int(a_sel.size)
        if m == 0:
            continue
        # Transient working set of this chunk before any survivor work:
        # pair-index vectors plus the gathered/ORed support words and the
        # prefilter mask.
        transient = m * (32 + 24 * n_words + 1)
        peak_transient = max(peak_transient, transient)
        i_sel = pos_idx[a_sel]
        j_sel = neg_idx[b_sel]
        union = None
        if adjacency is not None:
            # The adjacency test needs each surviving pair's union words,
            # so the known-pass shortcut is disabled (tile masks still
            # apply: masked pairs fail the prefilter and were never
            # adjacency-tested on the unpruned path either).
            known = None
        if known is True or (known is not None and known.all()):
            # Every pair in the chunk is from a full-pass tile (the tiled
            # path reports this as the all-or-nothing ``True`` sentinel):
            # the per-pair gather/OR/popcount prefilter is provably
            # redundant.
            i_ok = i_sel
            j_ok = j_sel
        elif known is not None and known.any():
            # Mixed chunk: run the per-pair prefilter only on pairs from
            # uncertain tiles, preserving the original pair order.
            unk = np.flatnonzero(~known)
            iu = i_sel[unk]
            ju = j_sel[unk]
            if sup1 is not None:
                oku = np.bitwise_count(sup1[iu] | sup1[ju]) <= max_union
            else:
                oku = bitset.union_popcount(sup[iu], sup[ju]) <= max_union
            ok = known.copy()
            ok[unk[oku]] = True
            i_ok = i_sel[ok]
            j_ok = j_sel[ok]
        else:
            if adjacency is None and sup1 is not None:
                ok = np.bitwise_count(sup1[i_sel] | sup1[j_sel]) <= max_union
            else:
                union = sup[i_sel] | sup[j_sel]
                ok = bitset.popcount(union) <= max_union
            if not ok.any():
                continue
            i_ok = i_sel[ok]
            j_ok = j_sel[ok]
        if i_ok.size == 0:
            continue
        stats.n_prefilter_kept += int(i_ok.size)
        if adjacency is not None:
            adj = adjacency.adjacent(union[ok])
            i_ok = i_ok[adj]
            j_ok = j_ok[adj]
            stats.n_adjacent += int(i_ok.size)
            if i_ok.size == 0:
                continue
        a = -col[j_ok]  # > 0
        b = col[i_ok]  # > 0
        cand = vals[i_ok] * a[:, None] + vals[j_ok] * b[:, None]
        # ... plus the dense candidate chunk (on the deferred pipeline it
        # dies with the chunk, but it exists — on_oom decisions must see
        # it).
        transient += cand.nbytes
        peak_transient = max(peak_transient, transient)
        stats.prefilter_bytes = max(stats.prefilter_bytes, peak_transient)
        yield i_ok, j_ok, cand, transient


def generate_candidates(
    modes: ModeMatrix,
    k: int,
    pos_idx: np.ndarray,
    neg_idx: np.ndarray,
    pair_range: PairRange,
    rank_bound: int,
    options: AlgorithmOptions,
    stats: IterationStats,
    adjacency=None,
) -> ModeMatrix | CandidateBatch:
    """Generate this worker's candidates for iteration row ``k`` — the
    *batch* consumer of :func:`survivor_chunks` (``iter_streaming="off"``;
    the streaming engine :mod:`repro.core.iterstream` consumes the same
    generator chunk by chunk instead of accumulating).

    Returns the candidates that survived the union-support prefilter (and,
    when ``adjacency`` is given, the combinatorial pair-adjacency test —
    see :class:`repro.core.bittree.AdjacencyTest`; it must run per-pair,
    before any dedup): a dense :class:`ModeMatrix` on the eager pipeline, a
    support-only :class:`CandidateBatch` on the deferred one (see the
    module docstring).
    """
    deferred = options.candidate_pipeline == "deferred" and not modes.exact

    kept_chunks: list[np.ndarray] = []
    word_chunks: list[np.ndarray] = []
    i_chunks: list[np.ndarray] = []
    j_chunks: list[np.ndarray] = []

    for i_ok, j_ok, cand, transient in survivor_chunks(
        modes, k, pos_idx, neg_idx, pair_range, rank_bound, options, stats,
        adjacency=adjacency,
    ):
        if deferred:
            # Support-first: extract canonical supports from the transient
            # chunk values, then let the dense rows — and the coefficients,
            # which (i, j, k) fully determine — die with the chunk.
            mask = canonical_support_mask(cand, modes.policy)
            word_chunks.append(pack_support_rows(mask))
            i_chunks.append(i_ok)
            j_chunks.append(j_ok)
            stats.prefilter_bytes = max(
                stats.prefilter_bytes,
                transient + mask.nbytes + word_chunks[-1].nbytes,
            )
        else:
            kept_chunks.append(cand)

    if deferred:
        if not word_chunks:
            return CandidateBatch.empty(modes.q, k, policy=modes.policy)
        if len(word_chunks) == 1:
            parts = (word_chunks[0], i_chunks[0], j_chunks[0])
        else:
            parts = (
                np.concatenate(word_chunks, axis=0),
                np.concatenate(i_chunks),
                np.concatenate(j_chunks),
            )
        # Arrays are freshly built with the right dtypes; skip the public
        # constructor's coercion pass (hot: once per iteration per rank).
        batch = CandidateBatch._from_parts(
            PackedSupports(parts[0], modes.q), parts[1], parts[2], k, modes.policy
        )
        stats.candidate_bytes = max(stats.candidate_bytes, batch.nbytes())
        return batch
    if not kept_chunks:
        return ModeMatrix.empty(modes.q, exact=modes.exact, policy=modes.policy)
    raw = np.concatenate(kept_chunks, axis=0)
    out = ModeMatrix(raw, policy=modes.policy)
    stats.candidate_bytes = max(stats.candidate_bytes, out.nbytes())
    return out


def _legacy_chunks(pair_range: PairRange, chunk: int, n_neg: int, space):
    """Yield ``(a, b, known, n_skipped)`` chunks of pos/neg list positions
    in the legacy (i-major) pair order, optionally masked by a
    :class:`~repro.core.pairspace.PairSpace` — masking is skip-only, so
    the relative order of surviving pairs never changes."""
    for p_chunk in _iter_pair_chunks(pair_range, chunk):
        a, b = np.divmod(p_chunk, n_neg)
        known = None
        skipped = 0
        if space is not None:
            keep, known = space.pair_masks(a, b)
            n_keep = int(np.count_nonzero(keep))
            if n_keep != keep.size:
                skipped = int(keep.size - n_keep)
                a = a[keep]
                b = b[keep]
                known = known[keep]
        yield a, b, known, skipped


def _iter_pair_chunks(pair_range: PairRange, chunk: int):
    """Yield int64 arrays of linear pair indices covering ``pair_range`` in
    chunks of at most ``chunk`` pairs."""
    if pair_range.step == 1:
        for start in range(pair_range.start, pair_range.stop, chunk):
            yield np.arange(
                start, min(start + chunk, pair_range.stop), dtype=np.int64
            )
    else:
        total = pair_range.count()
        for c0 in range(0, total, chunk):
            c1 = min(c0 + chunk, total)
            yield pair_range.start + pair_range.step * np.arange(
                c0, c1, dtype=np.int64
            )
