"""The serial Nullspace Algorithm (Algorithm 1 of the paper).

One iteration per row of the (permuted) mode matrix, starting at the first
non-identity row:

1. split modes on the sign of the current row's entry;
2. ``GenerateEFMCands`` — pair every positive with every negative mode;
3. ``Sort&RemoveDuplicates`` — canonicalize supports, drop duplicates
   (both among candidates and against surviving zero-entry modes — the
   paper's §II.C toy trace dedups candidate (1,1,0,0,1,1,0,0) against the
   identical mode already present in K⁽⁴⁾);
4. ``RankTests`` — the algebraic acceptance test (or the bit-pattern
   alternative, per options);
5. ``RemoveNegColumns`` — irreversible rows drop negative-entry modes;
6. concatenate survivors and accepted candidates.

The same iteration body is reused by the parallel drivers, which override
the pair range and insert a communicate/merge step; ``iterate_row`` is the
shared kernel.

Which row an iteration eliminates comes from the run's
:class:`~repro.core.ordering.RowSelector`: static orderings replay the
problem's baked-in permutation, ``ordering="dynamic"`` (default) picks
the cheapest remaining row from the live mode matrix each iteration.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable

import numpy as np

from repro.config import DEFAULT_OPTIONS, AlgorithmOptions
from repro.core import bittree, iterstream
from repro.core.candidates import PairRange, full_range, generate_candidates
from repro.core.kernel import NullspaceProblem
from repro.core.ranktest import rank_test
from repro.core.state import CandidateBatch, ModeMatrix
from repro.core.stats import IterationStats, PhaseTimer, RunStats
from repro.core.trace import IterationTrace
from repro.engine.context import RunContext
from repro.errors import AlgorithmError
from repro.linalg import bitset, rational
from repro.linalg.batched import CacheBinding


@dataclasses.dataclass
class NullspaceResult:
    """Outcome of a Nullspace Algorithm run.

    ``modes`` is in the problem's *processing* permutation; use
    :meth:`efms_input_order` for the caller's column order.  For
    divide-and-conquer runs stopped early (``stopped_at < q``,
    Proposition 1) the modes are an intermediate nullspace matrix, *not*
    a full EFM set — the EFM accessors (:attr:`n_efms`,
    :meth:`efms_input_order`) refuse to serve them and raise
    :class:`~repro.errors.AlgorithmError`; read :attr:`modes` directly for
    intermediate-state access (as the divide-and-conquer driver does).
    """

    problem: NullspaceProblem
    modes: ModeMatrix
    stats: RunStats
    stopped_at: int
    trace: list[IterationTrace] = dataclasses.field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Whether every non-identity row was processed (``stopped_at ==
        q``); early-stopped divide-and-conquer runs are incomplete."""
        return self.stopped_at >= self.problem.q

    def _require_complete(self) -> None:
        if not self.complete:
            raise AlgorithmError(
                f"run stopped early at row {self.stopped_at} of "
                f"{self.problem.q}; the mode matrix is an intermediate "
                "nullspace state, not an EFM set — finish the remaining "
                "rows or read .modes for the intermediate matrix"
            )

    @property
    def n_efms(self) -> int:
        self._require_complete()
        return self.modes.n_modes

    def efms_input_order(self) -> np.ndarray:
        """EFMs as a ``(n_modes, q)`` float64 array with columns in the
        problem's input reaction order.

        Raises
        ------
        AlgorithmError
            When the run stopped early (``complete`` is False): the
            intermediate modes are not EFMs and silently returning them
            would corrupt downstream unions.
        """
        self._require_complete()
        vals = self.modes.values
        if self.modes.exact:
            vals = np.array(
                [[float(x) for x in row] for row in vals], dtype=np.float64
            ).reshape(vals.shape)
        return np.ascontiguousarray(vals[:, self.problem.inverse_perm()])


MemoryCheck = Callable[[int, ModeMatrix], None]


def check_acceptance_applicable(
    problem: NullspaceProblem, options: AlgorithmOptions, stop: int
) -> None:
    """The combinatorial (bit-pattern) adjacency test is exact only when
    every *processed* row is irreversible — the double-description
    extreme-ray/elementary-mode equivalence it relies on needs the
    intermediate cones pointed.  Reversible rows demand the algebraic rank
    test (or splitting the reversible reactions first, which
    ``compute_efms`` does automatically for ``acceptance='bittree'``)."""
    if options.acceptance == "rank":
        return
    rev_rows = [
        problem.names[i]
        for i in range(problem.first_row, stop)
        if problem.reversible[i]
    ]
    if rev_rows:
        raise AlgorithmError(
            f"acceptance={options.acceptance!r} requires irreversible "
            f"processed rows, but {rev_rows} are reversible; split them "
            "first (compute_efms does this automatically) or use "
            "acceptance='rank'"
        )


def iterate_row(
    modes: ModeMatrix,
    k: int,
    problem: NullspaceProblem,
    options: AlgorithmOptions,
    stats: IterationStats,
    *,
    pair_range_for: Callable[[int], PairRange] = full_range,
    n_exact: rational.FractionMatrix | None = None,
    rank_cache: CacheBinding | None = None,
    materialize: bool = True,
    processed_rows: np.ndarray | None = None,
) -> tuple[ModeMatrix, ModeMatrix | CandidateBatch]:
    """One iteration body shared by serial and parallel drivers.

    Returns ``(kept, accepted_candidates)``: the old modes surviving the
    row (zero + positive + negative-if-reversible) and the locally
    generated, deduplicated, acceptance-tested candidates.  The caller
    concatenates (serial) or communicates/merges first (parallel).
    ``rank_cache`` optionally shares a support-pattern rank memo across
    iterations (and, for divide-and-conquer drivers, across subproblems).

    On the deferred pipeline the candidates travel through dedup and the
    rank test as a support-only :class:`~repro.core.state.CandidateBatch`;
    with ``materialize=True`` (the serial default) the accepted survivors
    come back as a dense :class:`ModeMatrix`, while ``materialize=False``
    hands the batch to the caller so a parallel driver can communicate the
    packed representation and materialize after the global merge.

    With ``options.iter_streaming == "on"`` (float arithmetic) the
    generate → dedup → rank-test sequence runs as a bounded-memory chunk
    stream (:func:`repro.core.iterstream.stream_iteration`) instead of
    three whole-set phases; the output is bit-identical either way.
    """
    signs = modes.sign_column(k)
    pos_idx = np.nonzero(signs > 0)[0]
    neg_idx = np.nonzero(signs < 0)[0]
    zero_mask = signs == 0
    stats.n_pos = int(pos_idx.size)
    stats.n_neg = int(neg_idx.size)
    stats.n_zero = int(zero_mask.sum())

    reversible = bool(problem.reversible[k])
    n_pairs_total = stats.n_pos * stats.n_neg

    cand = ModeMatrix.empty(modes.q, exact=modes.exact, policy=modes.policy)
    if n_pairs_total:
        pr = pair_range_for(n_pairs_total)
        # For TiledRange this is the balanced estimate; generate_candidates
        # overwrites it with the exact owned-tile pair count once the
        # iteration's tile geometry exists.
        stats.n_pairs = pr.count()
        # The combinatorial acceptance test is a per-PAIR adjacency test
        # and must run during generation, before duplicate removal; the
        # algebraic rank test is per-ray and runs after dedup (the paper's
        # Sort&RemoveDuplicates -> RankTests order).
        adjacency = None
        if options.acceptance in ("bittree", "both"):
            # ``processed_rows`` (the selector's realized prior set) is
            # required under dynamic ordering — see AdjacencyTest: the
            # prefix fallback is only valid for in-position processing.
            with PhaseTimer(stats, "t_rank_test"):
                adjacency = bittree.AdjacencyTest(
                    modes.supports.words, modes.q, k, processed=processed_rows
                )
        if options.iter_streaming == "on" and not modes.exact:
            cand = iterstream.stream_iteration(
                modes, k, pos_idx, neg_idx, pr, problem.n_perm,
                problem.rank, options, stats,
                zero_words=modes.supports.words[zero_mask],
                adjacency=adjacency,
                n_exact=n_exact,
                rank_cache=rank_cache,
            )
        else:
            with PhaseTimer(stats, "t_gen_cand"):
                cand = generate_candidates(
                    modes, k, pos_idx, neg_idx, pr, problem.rank, options,
                    stats, adjacency=adjacency,
                )
            with PhaseTimer(stats, "t_merge"):
                before = cand.n_modes
                cand = cand.dedup()
                # Drop candidates identical (by support) to zero-entry
                # modes that survive into the next iteration anyway.
                if cand.n_modes and stats.n_zero:
                    zero_words = modes.supports.words[zero_mask]
                    dup = bitset.rows_in(cand.supports.words, zero_words)
                    if dup.any():
                        cand = cand.select(~dup)
                stats.n_duplicates = before - cand.n_modes
            if options.acceptance in ("rank", "both"):
                stats.n_tested = cand.n_modes
                with PhaseTimer(stats, "t_rank_test"):
                    accept = rank_test(
                        cand,
                        problem.n_perm,
                        problem.rank,
                        policy=options.policy,
                        n_exact=n_exact,
                        backend=options.rank_backend,
                        cache=rank_cache,
                        stats=stats,
                    )
                if options.acceptance == "both" and not accept.all():
                    raise AlgorithmError(
                        "adjacency test accepted a candidate the rank test "
                        f"rejects at row {k} ({int((~accept).sum())} of "
                        f"{cand.n_modes})"
                    )
                cand = cand.select(accept)
        stats.n_accepted = cand.n_modes
        if materialize and isinstance(cand, CandidateBatch):
            # Deferred pipeline: dense normalized values exist only from
            # here on, and only for the accepted survivors.
            with PhaseTimer(stats, "t_merge"):
                cand = cand.materialize(modes.values)

    if reversible:
        kept = modes
        stats.n_neg_removed = 0
    else:
        keep_mask = signs >= 0
        stats.n_neg_removed = int((~keep_mask).sum())
        kept = modes.select(np.nonzero(keep_mask)[0])
    return kept, cand


def make_rank_binding(
    problem: NullspaceProblem, options: AlgorithmOptions
) -> CacheBinding | None:
    """A fresh per-run rank memo bound to ``problem`` (batched backend
    only; the loop backend and pure-bittree runs take no cache).

    Thin compatibility wrapper over
    :meth:`repro.engine.context.RunContext.rank_binding_for`, the single
    point of truth for rank-cache wiring.
    """
    return RunContext(options=options).rank_binding_for(problem)


def nullspace_algorithm(
    problem: NullspaceProblem,
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    stop_row: int | None = None,
    memory_check: MemoryCheck | None = None,
    context: RunContext | None = None,
) -> NullspaceResult:
    """Run Algorithm 1 on a prepared problem.

    Parameters
    ----------
    stop_row:
        Process rows up to (excluding) this position — Proposition 1's
        early stop for divide-and-conquer subproblems.  Default: all rows.
    memory_check:
        Called after every iteration with ``(iteration, modes)``; may raise
        :class:`repro.errors.OutOfMemoryError` to model a node-memory
        limit.  Overrides the context's memory model when given.
    context:
        The run's :class:`~repro.engine.context.RunContext`.  When absent a
        private one is built from ``options`` (legacy call style).
    """
    ctx = RunContext.ensure(context, options=options)
    options = ctx.options
    t_start = time.perf_counter()
    exact = options.arithmetic == "exact"
    n_exact = ctx.n_exact_for(problem)
    modes = ModeMatrix.from_kernel(problem.kernel, exact=exact, policy=options.policy)
    stats = RunStats()
    stop = problem.q if stop_row is None else stop_row
    if not (problem.first_row <= stop <= problem.q):
        raise AlgorithmError(f"stop_row {stop} out of range")
    check_acceptance_applicable(problem, options, stop)
    recorder = ctx.trace_recorder()
    rank_cache = ctx.rank_binding_for(problem)
    if memory_check is None:
        memory = ctx.fresh_memory()
        memory_check = memory.check if memory is not None else None

    # Dynamic ordering consults the selector at the top of every
    # iteration (scored from the live mode matrix); static orderings
    # replay the problem's baked-in permutation through the same seam.
    selector = ctx.row_selector_for(problem, stop)
    while selector.has_next():
        k = selector.next_row(modes)
        it = ctx.new_iteration(problem, k)
        selector.annotate(it)
        kept, cand = iterate_row(
            modes, k, problem, options, it, n_exact=n_exact,
            rank_cache=rank_cache, processed_rows=selector.adjacency_rows(),
        )
        with PhaseTimer(it, "t_merge"):
            modes = kept.concat(cand) if cand.n_modes else kept
        it.n_modes_end = modes.n_modes
        stats.add(it)
        stats.peak_mode_bytes = max(stats.peak_mode_bytes, modes.nbytes())
        recorder.capture(k, problem, modes, selector.last_score)
        if memory_check is not None:
            memory_check(k, modes)

    stats.t_total = time.perf_counter() - t_start
    ctx.collect(stats)
    return NullspaceResult(
        problem=problem,
        modes=modes,
        stats=stats,
        stopped_at=stop,
        trace=recorder.snapshots,
    )
