"""The algebraic rank test (RankTests) — refs [18], [20], [21], [30].

A candidate flux mode with support ``S`` is elementary iff the submatrix
``N[:, S]`` of the (reduced, permuted) stoichiometry has right-nullspace
dimension exactly 1: the steady-state solutions supported on ``S`` then
form a single ray, and no solution with a strictly smaller support exists
inside ``S``.  Nullity 0 cannot happen for a candidate (the candidate
itself is a witness); nullity >= 2 means a smaller-support solution exists
and the candidate is rejected.
"""

from __future__ import annotations

import numpy as np

from repro.config import DEFAULT_POLICY, NumericPolicy
from repro.core.state import ModeMatrix
from repro.errors import AlgorithmError
from repro.linalg import rational
from repro.linalg.numeric import numeric_rank


def rank_test(
    candidates: ModeMatrix,
    n_perm: np.ndarray,
    rank_bound: int,
    *,
    policy: NumericPolicy = DEFAULT_POLICY,
    n_exact: rational.FractionMatrix | None = None,
) -> np.ndarray:
    """Boolean acceptance mask for a batch of candidates.

    Parameters
    ----------
    candidates:
        Candidate modes (rows).
    n_perm:
        Stoichiometry in the problem's column permutation, ``(m, q)``.
    rank_bound:
        Rank of the full stoichiometry; supports larger than
        ``rank_bound + 1`` are summarily rejected (they cannot have nullity
        1 — the paper's "at least two more columns than rows" shortcut,
        tightened from row count to rank).
    n_exact:
        When given (exact-arithmetic runs), rank is computed over
        Fractions on the same column selection instead of by SVD.
    """
    n_cand = candidates.n_modes
    accept = np.zeros(n_cand, dtype=bool)
    if n_cand == 0:
        return accept
    if n_perm.shape[1] != candidates.q:
        raise AlgorithmError("stoichiometry/candidate width mismatch")

    support_mask = candidates.supports.to_bool()  # (q, n_cand)
    sizes = candidates.supports.popcounts()
    for c in range(n_cand):
        size = int(sizes[c])
        if size == 0 or size > rank_bound + 1:
            continue
        cols = np.nonzero(support_mask[:, c])[0]
        if n_exact is not None:
            sub = rational.select_columns(n_exact, cols.tolist())
            r = rational.exact_rank(sub)
        else:
            r = numeric_rank(n_perm[:, cols], policy)
        accept[c] = (size - r) == 1
    return accept
