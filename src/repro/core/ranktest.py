"""The algebraic rank test (RankTests) — refs [18], [20], [21], [30].

A candidate flux mode with support ``S`` is elementary iff the submatrix
``N[:, S]`` of the (reduced, permuted) stoichiometry has right-nullspace
dimension exactly 1: the steady-state solutions supported on ``S`` then
form a single ray, and no solution with a strictly smaller support exists
inside ``S``.  Nullity 0 cannot happen for a candidate (the candidate
itself is a witness); nullity >= 2 means a smaller-support solution exists
and the candidate is rejected.

Three backends compute the ranks:

``"modular"`` (default)
    The residue-field engine in :mod:`repro.linalg.modular`: the
    stoichiometry is rescaled to exact integers once per problem, the
    nullity query is rewritten in complement form against a gcd-reduced
    integer kernel basis, and batch ranks come from certified fraction-free
    elimination with an elimination-prefix reuse layer (mod-``p`` and SVD
    escalation for the rare stacks the exact arm cannot certify; wholesale
    SVD fallback for problems whose entries are not safely rational).
``"batched"``
    The engine in :mod:`repro.linalg.batched`: candidates are bucketed by
    support size, each bucket's submatrices are gathered into one 3-D
    stack and decomposed by a single gufunc-batched SVD call, and an
    optional support-pattern memo (:class:`repro.linalg.batched.RankCache`)
    skips repeated selections across iterations and divide-and-conquer
    subproblems.
``"loop"``
    The reference implementation: one Python-level
    :func:`~repro.linalg.numeric.numeric_rank` call per candidate.  Kept
    for parity testing and benchmarking.

All backends share the support-pattern rank memo and see only candidates
that survive summary rejection — the packed supports are unpacked solely
for those survivors, never for the full batch.
"""

from __future__ import annotations

import numpy as np

from repro.config import DEFAULT_POLICY, NumericPolicy, RankBackend
from repro.core.state import ModeMatrix
from repro.errors import AlgorithmError
from repro.linalg import rational
from repro.linalg.batched import CacheBinding, bucketed_ranks
from repro.linalg.bitset import unpack_supports
from repro.linalg.modular import modular_ranks
from repro.linalg.numeric import numeric_rank


def rank_test(
    candidates: ModeMatrix,
    n_perm: np.ndarray,
    rank_bound: int,
    *,
    policy: NumericPolicy = DEFAULT_POLICY,
    n_exact: rational.FractionMatrix | None = None,
    backend: RankBackend = "batched",
    cache: CacheBinding | None = None,
    stats=None,
) -> np.ndarray:
    """Boolean acceptance mask for a batch of candidates.

    Parameters
    ----------
    candidates:
        Candidate modes (rows).
    n_perm:
        Stoichiometry in the problem's column permutation, ``(m, q)``.
    rank_bound:
        Rank of the full stoichiometry; supports larger than
        ``rank_bound + 1`` are summarily rejected (they cannot have nullity
        1 — the paper's "at least two more columns than rows" shortcut,
        tightened from row count to rank).
    n_exact:
        When given (exact-arithmetic runs), rank is computed over
        Fractions on the same column selection instead of by SVD.
    backend:
        ``"modular"`` (residue-field kernel + memo), ``"batched"``
        (bucketed gufunc SVD + memo) or ``"loop"`` (one SVD per candidate)
        — see the module docstring.
    cache:
        Optional problem-bound rank memo (modular and batched backends).
    stats:
        Optional :class:`~repro.core.stats.IterationStats` receiving the
        engine's cache-hit and batch counters.
    """
    n_cand = candidates.n_modes
    accept = np.zeros(n_cand, dtype=bool)
    if n_cand == 0:
        return accept
    if n_perm.shape[1] != candidates.q:
        raise AlgorithmError("stoichiometry/candidate width mismatch")

    sizes = candidates.supports.popcounts()
    testable = (sizes > 0) & (sizes <= rank_bound + 1)
    idx = np.nonzero(testable)[0]
    if idx.size == 0:
        return accept

    # Unpack only the survivors of summary rejection — the full-batch bool
    # matrix is never materialized.
    words = candidates.supports.words[idx]
    support_mask = unpack_supports(words, candidates.q)  # (q, n_surv)
    surv_sizes = sizes[idx]

    if backend == "loop":
        for pos, c in enumerate(idx):
            cols = np.nonzero(support_mask[:, pos])[0]
            if n_exact is not None:
                sub = rational.select_columns(n_exact, cols.tolist())
                r = rational.exact_rank(sub)
            else:
                r = numeric_rank(n_perm[:, cols], policy)
            accept[c] = (int(surv_sizes[pos]) - r) == 1
        return accept
    if backend == "modular":
        ranks = modular_ranks(
            n_perm,
            support_mask,
            surv_sizes,
            policy=policy,
            n_exact=n_exact,
            words=words,
            cache=cache,
            stats=stats,
        )
        accept[idx] = (surv_sizes - ranks) == 1
        return accept
    if backend != "batched":
        raise AlgorithmError(f"unknown rank-test backend {backend!r}")

    ranks = bucketed_ranks(
        n_perm,
        support_mask,
        surv_sizes,
        policy=policy,
        n_exact=n_exact,
        words=words,
        cache=cache,
        stats=stats,
    )
    accept[idx] = (surv_sizes - ranks) == 1
    return accept
