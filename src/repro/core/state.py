"""Mode-matrix state of the Nullspace Algorithm.

A :class:`ModeMatrix` is the current set of (candidate) flux modes: a dense
value matrix with **modes as rows** (shape ``(n_modes, q)``, row-major so a
mode is contiguous) plus the packed support bitsets kept exactly in sync.
Sub-threshold values are snapped to exact ``0.0`` at construction, so sign
splits (``> 0`` / ``< 0`` / ``== 0``) never disagree with the support bits.

Exact mode: the same container holds ``dtype=object`` arrays of
``fractions.Fraction``; zero tests are then exact comparisons.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

import numpy as np

from repro.config import DEFAULT_POLICY, NumericPolicy
from repro.errors import AlgorithmError
from repro.linalg import bitset
from repro.linalg.bitset import PackedSupports


def canonicalize_rows(values: np.ndarray, policy: NumericPolicy) -> np.ndarray:
    """Normalize float mode rows to unit max-norm and snap sub-threshold
    entries to exact ``0.0`` (fresh C-contiguous array).

    This is *the* definition of a canonical mode row, shared by the
    :class:`ModeMatrix` constructor and the deferred candidate pipeline.
    Every operation is row-wise, so canonicalizing a matrix chunk by chunk
    yields bit-identical rows to one whole-matrix call — the eager/deferred
    equivalence contract rests on that.
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    if values.size == 0:
        return values.copy()
    # Row-wise unit max-norm.  The snap decision is made on the *raw*
    # magnitudes against a per-row threshold (|v| <= zero_tol * rowmax),
    # which keeps it division-free — canonical_support_mask reads the same
    # decision off the same comparison without ever normalizing.
    mag = np.abs(values)
    scale = mag.max(axis=1)
    scale[scale == 0.0] = 1.0
    out = values / scale[:, None]
    out[mag <= (scale * policy.zero_tol)[:, None]] = 0.0
    return out


def canonical_support_mask(values: np.ndarray, policy: NumericPolicy) -> np.ndarray:
    """Boolean support mask of float rows after canonicalization, without
    retaining the normalized matrix — shape ``(n_modes, q)``.

    Produces exactly the mask :func:`canonicalize_rows` implies: the snap
    decision there is ``|v| <= zero_tol * rowmax`` on the raw magnitudes,
    and a surviving entry cannot normalize to ``0.0`` (``|v| / rowmax``
    stays far above the underflow range), so the complement of the snap
    comparison *is* the support — no division needed.  All-zero rows keep
    scale 1 and stay all-False.
    """
    v = np.ascontiguousarray(values, dtype=np.float64)
    if v.size == 0:
        return np.zeros(v.shape, dtype=bool)
    mag = np.abs(v)
    scale = mag.max(axis=1)
    scale[scale == 0.0] = 1.0
    return mag > (scale * policy.zero_tol)[:, None]


class ModeMatrix:
    """An immutable batch of flux modes with synchronized supports.

    Parameters
    ----------
    values:
        ``(n_modes, q)`` array, float64 or object (Fraction).  Rows are
        modes.  The constructor normalizes (unit max-norm for floats,
        smallest co-prime integers for exact mode) and snaps zeros.
    policy:
        Zero-threshold policy (ignored in exact mode).
    normalized:
        Skip normalization/snapping when the caller guarantees the rows are
        already canonical (used on slicing paths).
    """

    __slots__ = ("values", "supports", "policy", "_signs", "dedup_index")

    def __init__(
        self,
        values: np.ndarray,
        *,
        policy: NumericPolicy = DEFAULT_POLICY,
        normalized: bool = False,
    ) -> None:
        values = np.atleast_2d(values)
        if values.ndim != 2:
            raise AlgorithmError("ModeMatrix expects a 2-D (n_modes, q) array")
        if not normalized:
            if values.dtype == object:
                values = _integerize_rows(values)
            else:
                values = canonicalize_rows(values, policy)
        self.values = values
        self.policy = policy
        self._signs = None
        self.dedup_index = None
        if values.dtype == object:
            mask = np.array(
                [[x != 0 for x in row] for row in values], dtype=bool
            ).reshape(values.shape)
        else:
            mask = values != 0.0
        self.supports = PackedSupports.from_bool(mask.T)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_parts(
        cls,
        values: np.ndarray,
        supports: PackedSupports,
        policy: NumericPolicy = DEFAULT_POLICY,
    ) -> "ModeMatrix":
        """Reassemble a ModeMatrix from already-canonical parts (message
        deserialization path — skips normalization and repacking)."""
        if values.shape[0] != len(supports):
            raise AlgorithmError("values/supports mode count mismatch")
        out = cls.__new__(cls)
        out.values = values
        out.supports = supports
        out.policy = policy
        out._signs = None
        out.dedup_index = None
        return out

    @classmethod
    def from_pairs(
        cls,
        source_values: np.ndarray,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        coef_a: np.ndarray,
        coef_b: np.ndarray,
        *,
        policy: NumericPolicy = DEFAULT_POLICY,
    ) -> "ModeMatrix":
        """Materialize candidate rows ``a * source[i] + b * source[j]`` —
        the deferred pipeline's single materialization point.

        The combination and the constructor's canonicalization are both
        row-wise, so the result is bit-identical to a matrix built eagerly
        from the same pairs in any chunking or order.
        """
        if pair_i.size == 0:
            return cls.empty(source_values.shape[1], policy=policy)
        vals = (
            source_values[pair_i] * coef_a[:, None]
            + source_values[pair_j] * coef_b[:, None]
        )
        return cls(vals, policy=policy)

    @classmethod
    def empty(cls, q: int, *, exact: bool = False,
              policy: NumericPolicy = DEFAULT_POLICY) -> "ModeMatrix":
        dtype = object if exact else np.float64
        return cls(np.zeros((0, q), dtype=dtype), policy=policy, normalized=True)

    @classmethod
    def from_kernel(cls, kernel: np.ndarray, *, exact: bool = False,
                    policy: NumericPolicy = DEFAULT_POLICY) -> "ModeMatrix":
        """Build the initial mode set from a ``(q, n_free)`` kernel whose
        *columns* are the starting modes."""
        vals = kernel.T
        if exact:
            obj = np.empty(vals.shape, dtype=object)
            for i in range(vals.shape[0]):
                for j in range(vals.shape[1]):
                    x = vals[i, j]
                    obj[i, j] = x if isinstance(x, Fraction) else Fraction(x).limit_denominator(10**9)
            vals = obj
        return cls(vals, policy=policy)

    # -- basic protocol ------------------------------------------------------

    @property
    def n_modes(self) -> int:
        return self.values.shape[0]

    @property
    def q(self) -> int:
        """Number of reactions (columns of the value matrix)."""
        return self.values.shape[1]

    @property
    def exact(self) -> bool:
        return self.values.dtype == object

    def __len__(self) -> int:
        return self.n_modes

    def nbytes(self) -> int:
        """Replicated storage footprint of this mode set (values +
        supports + the cached sign matrix once primed, plus an attached
        streaming dedup index while one is alive) — what the paper's
        memory bottleneck is made of."""
        signs = 0 if self._signs is None else int(self._signs.nbytes)
        extra = 0 if self.dedup_index is None else self.dedup_index.nbytes()
        if self.exact:
            # Fractions are heap objects; approximate with 32 bytes/entry.
            return self.values.size * 32 + self.supports.nbytes() + signs + extra
        return int(self.values.nbytes) + self.supports.nbytes() + signs + extra

    # -- row access -----------------------------------------------------------

    def column(self, k: int) -> np.ndarray:
        """Values of reaction-position ``k`` across all modes, shape
        ``(n_modes,)``."""
        return self.values[:, k]

    def sign_matrix(self) -> np.ndarray:
        """Entry signs as int8, shape ``(n_modes, q)``, computed once and
        cached.  ``select``/``concat`` propagate the cache, so after the
        first iteration touches it only *new* candidates pay the (for exact
        mode, per-element Python comparison) cost."""
        if self._signs is None:
            v = self.values
            if self.exact:
                self._signs = (v > 0).astype(np.int8) - (v < 0).astype(np.int8)
            else:
                self._signs = np.sign(v).astype(np.int8)
        return self._signs

    def sign_column(self, k: int) -> np.ndarray:
        """Signs of reaction-position ``k`` across all modes, int8."""
        return self.sign_matrix()[:, k]

    def select(self, idx: np.ndarray | Sequence[int]) -> "ModeMatrix":
        """Subset of modes by index or boolean mask (supports stay in
        sync without re-normalization)."""
        idx = np.asarray(idx)
        out = ModeMatrix.__new__(ModeMatrix)
        out.values = self.values[idx]
        out.policy = self.policy
        out.supports = self.supports[idx]
        out._signs = None if self._signs is None else self._signs[idx]
        out.dedup_index = None
        return out

    def concat(self, other: "ModeMatrix") -> "ModeMatrix":
        if other.q != self.q:
            raise AlgorithmError("concat of ModeMatrix with mismatched q")
        if other.exact != self.exact:
            raise AlgorithmError("cannot mix exact and float ModeMatrix")
        out = ModeMatrix.__new__(ModeMatrix)
        out.values = np.concatenate([self.values, other.values], axis=0)
        out.policy = self.policy
        out.supports = self.supports.concat(other.supports)
        out.dedup_index = None
        # Keep the sign cache warm once primed: only the (typically small)
        # other side recomputes, never the accumulated survivor block.
        if self._signs is None:
            out._signs = None
        else:
            out._signs = np.concatenate(
                [self.sign_matrix(), other.sign_matrix()], axis=0
            )
        return out

    def dedup(self) -> "ModeMatrix":
        """Remove modes with duplicate supports, keeping first occurrences
        (the paper's Sort&RemoveDuplicates)."""
        _, first = bitset.unique_rows(self.supports.words)
        if len(first) == self.n_modes:
            return self
        return self.select(first)

    def modes_as_columns(self) -> np.ndarray:
        """Values with modes as columns, shape ``(q, n_modes)`` — the
        paper's matrix orientation (eq. (5)), float64."""
        if self.exact:
            return np.array(
                [[float(x) for x in row] for row in self.values], dtype=np.float64
            ).T.reshape(self.q, self.n_modes)
        return self.values.T.copy()

    def __repr__(self) -> str:
        kind = "exact" if self.exact else "float"
        return f"<ModeMatrix {self.n_modes} modes x {self.q} reactions ({kind})>"


class CandidateBatch:
    """Deferred candidate modes: packed supports plus pair provenance.

    The support-first pipeline's intermediate representation.  Where the
    eager pipeline materializes every prefilter survivor as a dense
    normalized float64 row, this container carries only what dedup and the
    rank test actually consume — the canonical packed support words — plus
    the ``(i, j)`` source-mode indices and the iteration row ``row`` they
    were paired on.  That triple fully determines the dense row
    ``(-src[j, row]) * src[i] + src[i, row] * src[j]``, so not even the
    combination coefficients are stored: they are recomputed from the
    source matrix at the single materialization point
    (:meth:`materialize`), for accepted candidates only.

    Pair indices address rows of the *source* mode matrix the batch was
    generated from (the iteration's replicated mode set), so a batch is
    meaningful on any rank holding that replica — which is what lets the
    combinatorial allgather ship batches instead of dense rows.

    Float arithmetic only; exact-mode runs use the eager pipeline.
    """

    __slots__ = ("supports", "pair_i", "pair_j", "row", "policy", "dedup_index")

    def __init__(
        self,
        supports: PackedSupports,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        row: int,
        *,
        policy: NumericPolicy = DEFAULT_POLICY,
    ) -> None:
        n = len(supports)
        self.pair_i = np.ascontiguousarray(pair_i, dtype=np.int64)
        self.pair_j = np.ascontiguousarray(pair_j, dtype=np.int64)
        for arr in (self.pair_i, self.pair_j):
            if arr.shape != (n,):
                raise AlgorithmError("CandidateBatch supports/pairs length mismatch")
        self.supports = supports
        self.row = int(row)
        self.policy = policy
        self.dedup_index = None

    @classmethod
    def empty(
        cls, q: int, row: int = 0, policy: NumericPolicy = DEFAULT_POLICY
    ) -> "CandidateBatch":
        z = np.zeros(0, dtype=np.int64)
        return cls(PackedSupports.empty(q), z, z, row, policy=policy)

    @classmethod
    def _from_parts(
        cls,
        supports: PackedSupports,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        row: int,
        policy: NumericPolicy,
    ) -> "CandidateBatch":
        """Internal fast path: parts already coerced and length-checked
        (select / concat / dedup slicing — hot in the iteration loop)."""
        out = cls.__new__(cls)
        out.supports = supports
        out.pair_i = pair_i
        out.pair_j = pair_j
        out.row = row
        out.policy = policy
        out.dedup_index = None
        return out

    # -- ModeMatrix-compatible protocol (dedup / rank test surface) ----------

    @property
    def n_modes(self) -> int:
        return len(self.supports)

    @property
    def q(self) -> int:
        return self.supports.n_rows

    @property
    def exact(self) -> bool:
        return False

    def __len__(self) -> int:
        return self.n_modes

    def nbytes(self) -> int:
        """Retained footprint: support words + pair indices (no dense
        values and no coefficients, by construction), plus an attached
        streaming dedup index while one is alive."""
        return (
            self.supports.nbytes()
            + int(self.pair_i.nbytes)
            + int(self.pair_j.nbytes)
            + (0 if self.dedup_index is None else self.dedup_index.nbytes())
        )

    def select(self, idx: np.ndarray | Sequence[int]) -> "CandidateBatch":
        idx = np.asarray(idx)
        return CandidateBatch._from_parts(
            self.supports[idx],
            self.pair_i[idx],
            self.pair_j[idx],
            self.row,
            self.policy,
        )

    def concat(self, other: "CandidateBatch") -> "CandidateBatch":
        if other.q != self.q:
            raise AlgorithmError("concat of CandidateBatch with mismatched q")
        if other.row != self.row and other.n_modes and self.n_modes:
            raise AlgorithmError("concat of CandidateBatch from different rows")
        return CandidateBatch._from_parts(
            self.supports.concat(other.supports),
            np.concatenate([self.pair_i, other.pair_i]),
            np.concatenate([self.pair_j, other.pair_j]),
            self.row if self.n_modes else other.row,
            self.policy,
        )

    def dedup(self) -> "CandidateBatch":
        """First-occurrence support dedup — same canonical order as
        :meth:`ModeMatrix.dedup`, so eager and deferred runs keep identical
        survivors."""
        _, first = bitset.unique_rows(self.supports.words)
        if len(first) == self.n_modes:
            return self
        return self.select(first)

    # -- materialization and wire format -------------------------------------

    def materialize(self, source_values: np.ndarray) -> ModeMatrix:
        """Dense normalized rows for every candidate in the batch, rebuilt
        from the source mode values the pair indices address.

        The combination coefficients are recomputed here from the source
        matrix's ``row`` column exactly as generation formed them
        (``a = -col[j] > 0``, ``b = col[i] > 0``), and the batch's supports
        *are* the canonical supports of the rebuilt rows (extracted from
        the identical transient values at generation), so they are
        reattached directly instead of re-derived."""
        if self.n_modes == 0:
            return ModeMatrix.empty(self.q, policy=self.policy)
        col = source_values[:, self.row]
        # In-place on the two fancy-index copies.  ``b*y - c*x`` rounds
        # bit-identically to the eager chunk combination's
        # ``(-c)*x + b*y``: IEEE negation is exact and addition commutes,
        # so the subtraction spells the same multiply/multiply/add.
        sub = source_values[self.pair_i]
        sub *= col[self.pair_j][:, None]
        vals = source_values[self.pair_j]
        vals *= col[self.pair_i][:, None]
        vals -= sub
        return ModeMatrix.from_parts(
            canonicalize_rows(vals, self.policy), self.supports, self.policy
        )

    def to_wire(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Allgather payload: packed support words plus int32 pair indices.

        The iteration row is implicit (all ranks are on the same row of the
        same replicated matrix), and mode counts are far below 2**31 (a
        single replica would exceed any node memory first), so int32
        indices are safe.  Per candidate this is ``8 * words + 8`` bytes
        against the eager pipeline's ``8 * q + 8 * words``."""
        return (
            self.supports.words,
            self.pair_i.astype(np.int32),
            self.pair_j.astype(np.int32),
        )

    @classmethod
    def from_wire(
        cls,
        parts,
        q: int,
        row: int,
        policy: NumericPolicy = DEFAULT_POLICY,
    ) -> "CandidateBatch":
        """Rebuild a batch from :meth:`to_wire` parts.

        ``row`` is the iteration row the sender was processing — the
        receiver supplies it from its own loop counter (lockstep SPMD).
        Materialization recomputes the combination coefficients from the
        receiver's replica, which is bit-identical to the sender's."""
        words, pair_i, pair_j = parts
        # int32 indices index numpy arrays directly; no widening needed.
        return cls._from_parts(
            PackedSupports(words, q), pair_i, pair_j, row, policy
        )

    def __repr__(self) -> str:
        return f"<CandidateBatch {self.n_modes} candidates x {self.q} reactions>"


def _integerize_rows(values: np.ndarray) -> np.ndarray:
    """Scale each object-dtype row to smallest co-prime integers (as
    Fractions), preserving sign."""
    import math

    out = np.empty(values.shape, dtype=object)
    for i in range(values.shape[0]):
        row = [x if isinstance(x, Fraction) else Fraction(x) for x in values[i]]
        denom_lcm = 1
        for x in row:
            denom_lcm = denom_lcm * x.denominator // math.gcd(denom_lcm, x.denominator)
        ints = [int(x * denom_lcm) for x in row]
        g = 0
        for v in ints:
            g = math.gcd(g, abs(v))
        if g > 1:
            ints = [v // g for v in ints]
        for j, v in enumerate(ints):
            out[i, j] = Fraction(v)
    return out
