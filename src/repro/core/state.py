"""Mode-matrix state of the Nullspace Algorithm.

A :class:`ModeMatrix` is the current set of (candidate) flux modes: a dense
value matrix with **modes as rows** (shape ``(n_modes, q)``, row-major so a
mode is contiguous) plus the packed support bitsets kept exactly in sync.
Sub-threshold values are snapped to exact ``0.0`` at construction, so sign
splits (``> 0`` / ``< 0`` / ``== 0``) never disagree with the support bits.

Exact mode: the same container holds ``dtype=object`` arrays of
``fractions.Fraction``; zero tests are then exact comparisons.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

import numpy as np

from repro.config import DEFAULT_POLICY, NumericPolicy
from repro.errors import AlgorithmError
from repro.linalg import bitset
from repro.linalg.bitset import PackedSupports
from repro.linalg.numeric import column_normalize


class ModeMatrix:
    """An immutable batch of flux modes with synchronized supports.

    Parameters
    ----------
    values:
        ``(n_modes, q)`` array, float64 or object (Fraction).  Rows are
        modes.  The constructor normalizes (unit max-norm for floats,
        smallest co-prime integers for exact mode) and snaps zeros.
    policy:
        Zero-threshold policy (ignored in exact mode).
    normalized:
        Skip normalization/snapping when the caller guarantees the rows are
        already canonical (used on slicing paths).
    """

    __slots__ = ("values", "supports", "policy", "_signs")

    def __init__(
        self,
        values: np.ndarray,
        *,
        policy: NumericPolicy = DEFAULT_POLICY,
        normalized: bool = False,
    ) -> None:
        values = np.atleast_2d(values)
        if values.ndim != 2:
            raise AlgorithmError("ModeMatrix expects a 2-D (n_modes, q) array")
        if not normalized:
            if values.dtype == object:
                values = _integerize_rows(values)
            else:
                values = np.ascontiguousarray(values, dtype=np.float64)
                # Normalize per mode (rows) -> transpose view for the
                # column-normalizing helper.
                values = column_normalize(values.T).T.copy()
                colmax = np.abs(values).max(axis=1) if values.size else np.zeros(0)
                thresh = policy.zero_tol * np.maximum(colmax, 1.0)
                values[np.abs(values) <= thresh[:, None]] = 0.0
        self.values = values
        self.policy = policy
        self._signs = None
        if values.dtype == object:
            mask = np.array(
                [[x != 0 for x in row] for row in values], dtype=bool
            ).reshape(values.shape)
        else:
            mask = values != 0.0
        self.supports = PackedSupports.from_bool(mask.T)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_parts(
        cls,
        values: np.ndarray,
        supports: PackedSupports,
        policy: NumericPolicy = DEFAULT_POLICY,
    ) -> "ModeMatrix":
        """Reassemble a ModeMatrix from already-canonical parts (message
        deserialization path — skips normalization and repacking)."""
        if values.shape[0] != len(supports):
            raise AlgorithmError("values/supports mode count mismatch")
        out = cls.__new__(cls)
        out.values = values
        out.supports = supports
        out.policy = policy
        out._signs = None
        return out

    @classmethod
    def empty(cls, q: int, *, exact: bool = False,
              policy: NumericPolicy = DEFAULT_POLICY) -> "ModeMatrix":
        dtype = object if exact else np.float64
        return cls(np.zeros((0, q), dtype=dtype), policy=policy, normalized=True)

    @classmethod
    def from_kernel(cls, kernel: np.ndarray, *, exact: bool = False,
                    policy: NumericPolicy = DEFAULT_POLICY) -> "ModeMatrix":
        """Build the initial mode set from a ``(q, n_free)`` kernel whose
        *columns* are the starting modes."""
        vals = kernel.T
        if exact:
            obj = np.empty(vals.shape, dtype=object)
            for i in range(vals.shape[0]):
                for j in range(vals.shape[1]):
                    x = vals[i, j]
                    obj[i, j] = x if isinstance(x, Fraction) else Fraction(x).limit_denominator(10**9)
            vals = obj
        return cls(vals, policy=policy)

    # -- basic protocol ------------------------------------------------------

    @property
    def n_modes(self) -> int:
        return self.values.shape[0]

    @property
    def q(self) -> int:
        """Number of reactions (columns of the value matrix)."""
        return self.values.shape[1]

    @property
    def exact(self) -> bool:
        return self.values.dtype == object

    def __len__(self) -> int:
        return self.n_modes

    def nbytes(self) -> int:
        """Replicated storage footprint of this mode set (values +
        supports) — what the paper's memory bottleneck is made of."""
        if self.exact:
            # Fractions are heap objects; approximate with 32 bytes/entry.
            return self.values.size * 32 + self.supports.nbytes()
        return int(self.values.nbytes) + self.supports.nbytes()

    # -- row access -----------------------------------------------------------

    def column(self, k: int) -> np.ndarray:
        """Values of reaction-position ``k`` across all modes, shape
        ``(n_modes,)``."""
        return self.values[:, k]

    def sign_matrix(self) -> np.ndarray:
        """Entry signs as int8, shape ``(n_modes, q)``, computed once and
        cached.  ``select``/``concat`` propagate the cache, so after the
        first iteration touches it only *new* candidates pay the (for exact
        mode, per-element Python comparison) cost."""
        if self._signs is None:
            v = self.values
            if self.exact:
                self._signs = (v > 0).astype(np.int8) - (v < 0).astype(np.int8)
            else:
                self._signs = np.sign(v).astype(np.int8)
        return self._signs

    def sign_column(self, k: int) -> np.ndarray:
        """Signs of reaction-position ``k`` across all modes, int8."""
        return self.sign_matrix()[:, k]

    def select(self, idx: np.ndarray | Sequence[int]) -> "ModeMatrix":
        """Subset of modes by index or boolean mask (supports stay in
        sync without re-normalization)."""
        idx = np.asarray(idx)
        out = ModeMatrix.__new__(ModeMatrix)
        out.values = self.values[idx]
        out.policy = self.policy
        out.supports = self.supports[idx]
        out._signs = None if self._signs is None else self._signs[idx]
        return out

    def concat(self, other: "ModeMatrix") -> "ModeMatrix":
        if other.q != self.q:
            raise AlgorithmError("concat of ModeMatrix with mismatched q")
        if other.exact != self.exact:
            raise AlgorithmError("cannot mix exact and float ModeMatrix")
        out = ModeMatrix.__new__(ModeMatrix)
        out.values = np.concatenate([self.values, other.values], axis=0)
        out.policy = self.policy
        out.supports = self.supports.concat(other.supports)
        # Keep the sign cache warm once primed: only the (typically small)
        # other side recomputes, never the accumulated survivor block.
        if self._signs is None:
            out._signs = None
        else:
            out._signs = np.concatenate(
                [self.sign_matrix(), other.sign_matrix()], axis=0
            )
        return out

    def dedup(self) -> "ModeMatrix":
        """Remove modes with duplicate supports, keeping first occurrences
        (the paper's Sort&RemoveDuplicates)."""
        _, first = bitset.unique_rows(self.supports.words)
        if len(first) == self.n_modes:
            return self
        return self.select(first)

    def modes_as_columns(self) -> np.ndarray:
        """Values with modes as columns, shape ``(q, n_modes)`` — the
        paper's matrix orientation (eq. (5)), float64."""
        if self.exact:
            return np.array(
                [[float(x) for x in row] for row in self.values], dtype=np.float64
            ).T.reshape(self.q, self.n_modes)
        return self.values.T.copy()

    def __repr__(self) -> str:
        kind = "exact" if self.exact else "float"
        return f"<ModeMatrix {self.n_modes} modes x {self.q} reactions ({kind})>"


def _integerize_rows(values: np.ndarray) -> np.ndarray:
    """Scale each object-dtype row to smallest co-prime integers (as
    Fractions), preserving sign."""
    import math

    out = np.empty(values.shape, dtype=object)
    for i in range(values.shape[0]):
        row = [x if isinstance(x, Fraction) else Fraction(x) for x in values[i]]
        denom_lcm = 1
        for x in row:
            denom_lcm = denom_lcm * x.denominator // math.gcd(denom_lcm, x.denominator)
        ints = [int(x * denom_lcm) for x in row]
        g = 0
        for v in ints:
            g = math.gcd(g, abs(v))
        if g > 1:
            ints = [v // g for v in ints]
        for j, v in enumerate(ints):
            out[i, j] = Fraction(v)
    return out
