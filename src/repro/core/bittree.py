"""Bit-pattern superset test — the efmtool-style alternative acceptance
test (paper ref [19], Terzer & Stelling 2008).

A candidate generated at iteration ``k`` is elementary (within the current
iteration's cone) iff no mode of the *current* mode matrix has a support
that is a subset of the candidate's support.  Parent modes can never
trigger a false rejection: they carry a non-zero entry in row ``k`` that
the candidate annihilated, so their supports are never subsets.

Two implementations share one interface:

- :func:`subset_exists_vectorized` — numpy broadcast over packed words;
  fastest at the sizes pure Python reaches.
- :class:`BitPatternTree` — the actual tree of [19]: supports are
  recursively partitioned on a discriminating bit, and subtrees whose
  *union* pattern is not a subset of the query are pruned wholesale.  Kept
  for algorithmic fidelity and used by the acceptance-test ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.linalg import bitset


def subset_exists_vectorized(
    candidate_words: np.ndarray, reference_words: np.ndarray
) -> np.ndarray:
    """For each packed candidate support, does any reference support
    satisfy ``ref & cand == ref`` (subset-or-equal)?"""
    return bitset.subset_rows(candidate_words, reference_words)


class BitPatternTree:
    """Static bit-pattern tree over a set of packed supports.

    Built once per iteration from the current mode matrix's supports; the
    query :meth:`has_subset_of` answers "does the tree contain a support
    that is a subset of the query pattern?" in sub-linear time for
    clustered supports.

    Nodes split on the most-discriminating bit (closest to a 50/50 split)
    among bits still undecided in the node's pattern set; leaves hold up to
    ``leaf_size`` patterns and are scanned directly.  Every node caches the
    bitwise OR of its patterns — if that union is not a subset of the
    query, no pattern below can be, and the subtree is pruned.
    """

    __slots__ = ("words", "_root", "leaf_size")

    def __init__(self, words: np.ndarray, *, leaf_size: int = 16) -> None:
        self.words = np.ascontiguousarray(words, dtype=bitset.WORD)
        self.leaf_size = int(leaf_size)
        idx = np.arange(self.words.shape[0], dtype=np.intp)
        self._root = self._build(idx) if self.words.shape[0] else None

    def _build(self, idx: np.ndarray):
        pats = self.words[idx]
        union = np.bitwise_or.reduce(pats, axis=0)
        if idx.size <= self.leaf_size:
            return (union, idx, None, None, None)
        # Pick the bit whose set-count is closest to half the patterns —
        # one numpy pass: unpack the packed words to a (n, n_words*64)
        # bit matrix, column-sum, and argmin the distance to n/2.  Ties
        # and the ascending (word, bit) scan order of the reference
        # implementation are preserved by np.argmin's first-minimum rule.
        bits = np.unpackbits(
            pats.astype("<u8", copy=False).view(np.uint8),
            axis=1,
            bitorder="little",
        )
        cnt = bits.sum(axis=0, dtype=np.int64)
        score = np.abs(cnt - idx.size / 2.0)
        score[(cnt == 0) | (cnt == idx.size)] = np.inf
        best_bit = int(np.argmin(score))
        if not np.isfinite(score[best_bit]):  # all patterns identical
            return (union, idx, None, None, None)
        has = bits[:, best_bit] != 0
        left = self._build(idx[has])  # bit set
        right = self._build(idx[~has])  # bit clear
        return (union, None, best_bit, left, right)

    def has_subset_of(self, query: np.ndarray) -> bool:
        """True iff some stored pattern is a subset of ``query`` (a packed
        1-D word vector)."""
        if self._root is None:
            return False
        stack = [self._root]
        while stack:
            union, leaf_idx, bit, left, right = stack.pop()
            if _is_subset(union, query):
                # The union of a (non-empty) subtree fits inside the query,
                # so every pattern below is a subset — immediate hit.
                return True
            if leaf_idx is not None:
                pats = self.words[leaf_idx]
                fits = ((pats & query[None, :]) == pats).all(axis=1)
                if fits.any():
                    return True
                continue
            assert bit is not None
            w, b = divmod(bit, bitset.BITS_PER_WORD)
            # The bit-clear subtree is always a candidate; the bit-set
            # subtree only if the query itself has the bit (a pattern with
            # a bit the query lacks can never be a subset).
            stack.append(right)
            if (query[w] >> bitset.WORD(b)) & bitset.WORD(1):
                stack.append(left)
        return False

    def query_batch(self, candidate_words: np.ndarray) -> np.ndarray:
        """Vector of :meth:`has_subset_of` answers for candidate rows.

        Level-synchronous frontier traversal: instead of walking the tree
        once per query, each tree node is visited once per *level* with
        the packed batch of queries still alive at it — the union-subset
        shortcut, leaf scans and child routing all run as vectorized
        numpy passes over that batch.  Answers are identical to the
        scalar walk.
        """
        queries = np.ascontiguousarray(candidate_words, dtype=bitset.WORD)
        n = queries.shape[0]
        out = np.zeros(n, dtype=bool)
        if self._root is None or n == 0:
            return out
        frontier = [(self._root, np.arange(n, dtype=np.intp))]
        while frontier:
            next_frontier = []
            for node, qidx in frontier:
                qidx = qidx[~out[qidx]]  # drop already-answered queries
                if qidx.size == 0:
                    continue
                union, leaf_idx, bit, left, right = node
                qs = queries[qidx]
                # Subtree-union shortcut: union ⊆ query ⇒ immediate hit.
                hit = ((qs & union[None, :]) == union[None, :]).all(axis=1)
                if hit.any():
                    out[qidx[hit]] = True
                    qidx = qidx[~hit]
                    if qidx.size == 0:
                        continue
                    qs = queries[qidx]
                if leaf_idx is not None:
                    pats = self.words[leaf_idx]
                    fits = (
                        (pats[None, :, :] & qs[:, None, :]) == pats[None, :, :]
                    ).all(axis=2).any(axis=1)
                    out[qidx[fits]] = True
                    continue
                assert bit is not None
                w, b = divmod(bit, bitset.BITS_PER_WORD)
                # Bit-clear subtree for everyone; bit-set subtree only for
                # queries that have the bit (see has_subset_of).
                next_frontier.append((right, qidx))
                has = (qs[:, w] >> bitset.WORD(b)) & bitset.WORD(1) != 0
                if has.any():
                    next_frontier.append((left, qidx[has]))
            frontier = next_frontier
        return out


class SupportIndex:
    """Appendable exact-membership index over canonical packed supports —
    the incremental dedup structure of the streaming iteration engine
    (:mod:`repro.core.iterstream`).

    The batch iteration body deduplicates with one :func:`~repro.linalg.
    bitset.unique_rows` pass over the whole candidate set plus a
    membership test against the zero-entry survivors.  Streaming consumes
    the pair space chunk by chunk, so dedup must be *incremental*: a
    chunk's candidates are checked against the zero-entry survivors and
    every candidate *accepted* in earlier chunks, then the chunk's own
    accepted survivors are appended.  Keep-first throughout, so the
    surviving candidate order — and therefore the EFM output — is
    bit-identical to the batch path: a later duplicate of an accepted (or
    zero-surviving) support is dropped exactly as batch dedup drops it,
    and a later duplicate of a *rejected* support is re-tested instead —
    the rank test decides on the support pattern alone, so it is rejected
    again (a memo cache hit) and the output is unchanged; only the
    duplicate/tested counters can drift from batch.  Rejected supports are
    deliberately not stored: on low-acceptance iterations the index stays
    a fraction of the tested set.

    Storage is a geometrically grown ``(capacity, n_words)`` uint64
    buffer; probes are vectorized (:func:`~repro.linalg.bitset.rows_in`
    against the filled prefix).  ``frozen`` rows (the zero-entry
    survivors' supports) are held as a borrowed read-only reference, not
    copied: they live in the iteration's mode matrix either way — exactly
    as the batch path probes them in place — so :meth:`nbytes` charges
    only the appendable buffer, the memory the streaming state actually
    adds.
    """

    __slots__ = ("n_words", "frozen", "_buf", "_n", "n_probes")

    def __init__(self, n_words: int, frozen: np.ndarray | None = None) -> None:
        self.n_words = int(n_words)
        self.frozen = (
            frozen
            if frozen is not None and frozen.shape[0]
            else np.empty((0, self.n_words), dtype=bitset.WORD)
        )
        self._buf = np.empty((0, self.n_words), dtype=bitset.WORD)
        self._n = 0
        #: candidates probed against the index (streaming stats).
        self.n_probes = 0

    def __len__(self) -> int:
        return self._n

    @property
    def words(self) -> np.ndarray:
        """The filled prefix of the buffer (read-only view semantics:
        callers must not mutate)."""
        return self._buf[: self._n]

    def nbytes(self) -> int:
        """Allocated buffer bytes (capacity, not fill — the allocation is
        what the node pays for; borrowed ``frozen`` rows are charged to
        their owner, the mode matrix)."""
        return int(self._buf.nbytes)

    def seen(self, words: np.ndarray) -> np.ndarray:
        """Boolean mask: is each row already present in the index (frozen
        reference rows or appended ones)?"""
        self.n_probes += int(words.shape[0])
        hit = bitset.rows_in(words, self.words)
        if self.frozen.shape[0]:
            hit |= bitset.rows_in(words, self.frozen)
        return hit

    def add(self, words: np.ndarray) -> None:
        """Append rows (caller guarantees they are not already present —
        :meth:`seen` filtered them; duplicates *within* ``words`` are the
        caller's responsibility too, via first-occurrence dedup)."""
        m = int(words.shape[0])
        if m == 0:
            return
        need = self._n + m
        if need > self._buf.shape[0]:
            cap = max(need, 2 * self._buf.shape[0], 64)
            grown = np.empty((cap, self.n_words), dtype=bitset.WORD)
            grown[: self._n] = self._buf[: self._n]
            self._buf = grown
        self._buf[self._n : need] = words
        self._n = need


def _is_subset(a: np.ndarray, b: np.ndarray) -> bool:
    """Packed word-vector subset test: ``a ⊆ b``."""
    return bool(((a & b) == a).all())


def processed_rows_mask(n_rows: int, upto_position: int) -> np.ndarray:
    """Packed word mask selecting support bits of rows ``0..upto_position-1``
    (exclusive of ``upto_position``).

    The double-description adjacency test only 'sees' the inequality
    constraints processed *before* the current row: the zero sets being
    compared are over the identity-block rows plus the already-processed
    ``R2`` rows.  Including later rows (or the in-flight row ``k``) makes
    the combinatorial test disagree with the algebraic rank test in both
    directions — observed concretely as non-elementary survivors and as
    falsely rejected modes on random networks.
    """
    mask_bits = np.zeros((n_rows, 1), dtype=bool)
    mask_bits[:upto_position, 0] = True
    return bitset.pack_supports(mask_bits)[0]


class AdjacencyTest:
    """The combinatorial (bit-pattern) adjacency test of the double
    description method, as used by efmtool [19].

    A pair ``(p, n)`` of current modes is *adjacent* — and its convex
    combination a new elementary mode — iff no **third** current mode's
    zero set (over the processed rows) contains ``Z(p) ∩ Z(n)``.  In
    support language: counting current modes whose masked support is a
    subset of ``supp(p) | supp(n)`` must find exactly the two parents.

    Unlike the algebraic rank test this is a per-*pair* test and must run
    **before** duplicate removal: a ray generated by both an adjacent and a
    non-adjacent pair must be judged on the adjacent one.

    ``processed`` lists the row positions whose constraints the test may
    "see" — the identity block plus every row eliminated *before* the
    current one.  Static orderings process positions in ascending order,
    so their processed set is exactly the prefix ``0..k-1`` and the
    argument may be omitted; dynamic row selection eliminates rows out of
    position order, making the explicit set mandatory (a prefix mask
    would include constraints not yet enforced and exclude enforced ones,
    breaking the test in both directions).
    """

    __slots__ = ("refs", "mask")

    def __init__(
        self,
        current_words: np.ndarray,
        n_rows: int,
        k: int,
        processed: np.ndarray | None = None,
    ) -> None:
        if processed is None:
            self.mask = processed_rows_mask(n_rows, k)
        else:
            mask_bits = np.zeros((n_rows, 1), dtype=bool)
            mask_bits[np.asarray(processed, dtype=np.intp), 0] = True
            self.mask = bitset.pack_supports(mask_bits)[0]
        self.refs = current_words & self.mask[None, :]

    def adjacent(self, pair_union_words: np.ndarray) -> np.ndarray:
        """Boolean mask over pairs; ``pair_union_words[i]`` is the bitwise
        OR of the two parents' (unmasked) support words."""
        masked = pair_union_words & self.mask[None, :]
        return bitset.subset_count_rows(masked, self.refs) == 2
