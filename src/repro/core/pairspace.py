"""Hierarchical pair-space pruning: bitset zone maps over candidate pairs.

``GenerateEFMCands`` enumerates the full ``n_pos x n_neg`` pair space and
pays two packed-word gathers, an OR and a popcount per pair just to apply
the union-support prefilter (``popcount(sup_i | sup_j) <= rank + 2``).
This module rejects *regions* of that space instead of individual pairs:

1. each side's mode list is clustered by support similarity — a
   lexicographic sort of the packed support words
   (:func:`repro.linalg.bitset.lexsort_rows`), which places modes sharing
   high-order support bits next to each other;
2. the sorted lists are partitioned into fixed-size blocks of
   ``options.pair_block`` modes, turning the pair space into a coarse grid
   of tiles (one tile = one pos-block x one neg-block);
3. every block carries a *zone map*: the AND (intersection) and OR (union)
   of its member supports plus the min popcount over members.

For a tile ``(P, N)`` three sound bounds follow for every pair
``(i in P, j in N)``:

* **prune, intersection bound** — ``sup_i | sup_j ⊇ AND(P) | AND(N)``, so
  ``popcount(AND_P | AND_N) > rank + 2`` proves every pair in the tile
  fails the prefilter: the whole tile is skipped with one popcount;
* **prune, cardinality bound** — ``|sup_i ∪ sup_j| >= |sup_i| + |sup_j| -
  |sup_i ∩ sup_j|`` and ``sup_i ∩ sup_j ⊆ OR(P) ∩ OR(N)``, so
  ``minpc(P) + minpc(N) - popcount(OR_P & OR_N) > rank + 2`` also prunes
  the tile (catches tiles of large disjoint supports the AND bound misses);
* **full-pass bound** — ``sup_i | sup_j ⊆ OR(P) | OR(N)``, so
  ``popcount(OR_P | OR_N) <= rank + 2`` proves every pair *passes* the
  prefilter: the per-pair gather/OR/popcount work is skipped for the tile
  ("known-pass" tiles).

At ``block == 1`` (the ``"auto"`` choice for small spaces) all three
collapse into one: the zone *is* the mode's support, the intersection
bound is the exact prefilter evaluated as a single broadcast popcount
over sorted supports, and every live tile is known-pass — no per-pair
prefilter runs at all.

Pruned tiles and *generation-ineligible* modes (a mode whose own support
already exceeds ``rank + 2`` can never appear in a surviving pair; zone
maps treat them as neutral elements) only ever remove pairs that the
per-pair prefilter would reject, and known-pass tiles only ever skip tests
that would succeed — the surviving pair set, its enumeration order, and
therefore the final EFM set are bit-identical with pruning on or off.

Two consumption modes (see :func:`repro.core.candidates.generate_candidates`):
the legacy strategies ("strided"/"block"/serial full range) keep their pair
order and consult :meth:`PairSpace.pair_masks` per chunk; the "tiled"
strategy (:class:`repro.core.candidates.TiledRange`) enumerates tile-major
via :meth:`PairSpace.iter_share_chunks` — ranks receive contiguous,
pair-count-balanced tile shares, and pruned tiles' pairs are compressed
out of a *cached* expansion template (tile geometry and per-pair index
templates are pure functions of ``(n_pos, n_neg, block)`` and shared
across iterations, so the tile machinery adds almost no per-call cost).
"""

from __future__ import annotations

import functools

import numpy as np

from repro.linalg import bitset
from repro.linalg.bitset import WORD

#: Popcount stand-in for "no eligible member" under a min-reduction; large
#: enough that any bound involving it exceeds every realistic rank.
_INF_PC = np.int64(1) << np.int64(40)

#: Below this pair-space size zone-map *bounds* are skipped (the tiled
#: strategy still builds the cheap clustering + tile geometry).  Zone
#: construction is ~10-30 numpy dispatches depending on block width, so
#: it only pays on calls where pruned pairs number in the thousands;
#: measured on yeast-I-small the 256..4096-pair calls cost more to
#: zone-map than they save at *every* block width (block 1 included —
#: the fixed dispatch cost dominates at those sizes).
MIN_PRUNE_PAIRS = 4096


@functools.lru_cache(maxsize=512)
def _geometry(n_pos: int, n_neg: int, block: int):
    """Tile geometry of an ``n_pos x n_neg`` space: pure function of the
    shape, cached across iterations (sizes repeat heavily within a run).
    Returns read-only arrays — every PairSpace of the same shape shares
    them."""
    n_pb = -(-n_pos // block)
    n_nb = -(-n_neg // block)
    pstart = np.arange(n_pb, dtype=np.int64) * block
    nstart = np.arange(n_nb, dtype=np.int64) * block
    psz = np.minimum(pstart + block, n_pos) - pstart
    nsz = np.minimum(nstart + block, n_neg) - nstart
    tile_pairs = psz[:, None] * nsz[None, :]
    # Pair offset of each tile in tile-major enumeration order.
    offs = np.zeros(tile_pairs.size + 1, dtype=np.int64)
    np.cumsum(tile_pairs.ravel(), out=offs[1:])
    for arr in (pstart, nstart, psz, nsz, tile_pairs, offs):
        arr.setflags(write=False)
    return n_pb, n_nb, pstart, nstart, psz, nsz, tile_pairs, offs


@functools.lru_cache(maxsize=512)
def _expand_template(n_pos: int, n_neg: int, block: int):
    """Per-pair expansion template for the tile-major order: for every
    pair position ``p`` in the full enumeration, the owning tile id and
    the *sorted-list* row/column it addresses.  Also a pure function of
    the shape; consuming a tile share reduces to slicing these arrays and
    gathering through ``porder``/``norder``."""
    n_pb, n_nb, pstart, nstart, psz, nsz, tile_pairs, offs = _geometry(
        n_pos, n_neg, block
    )
    n_tiles = n_pb * n_nb
    counts = tile_pairs.ravel()
    tile_of = np.repeat(np.arange(n_tiles, dtype=np.intp), counts)
    pb, nb = np.divmod(tile_of, n_nb)
    off = np.arange(tile_of.size, dtype=np.int64) - offs[tile_of]
    arow, bcol = np.divmod(off, nsz[nb])
    srow = pstart[pb] + arow
    scol = nstart[nb] + bcol
    for arr in (tile_of, srow, scol):
        arr.setflags(write=False)
    return tile_of, srow, scol


def resolve_block(pair_block: int | str, n_pairs: int) -> int:
    """Concrete block size for ``options.pair_block``.

    ``"auto"`` stays at block 1 while the full tile grid (``n_pairs``
    cells) is still cheap: single-mode blocks make the intersection bound
    *exact* (the zone is the support itself), so the whole prefilter
    collapses into one broadcast popcount over sorted supports with no
    per-pair index gathers — measured strictly faster than block 2, which
    prunes fewer pairs and pays reduceat construction on top.  Only once
    the grid itself would get large does it widen to 4-mode blocks to
    keep zone-map memory at ``n_pairs / 16`` cells.
    """
    if pair_block == "auto":
        return 1 if n_pairs <= (1 << 17) else 4
    return max(1, int(pair_block))


def _popcount_grid(words3d: np.ndarray) -> np.ndarray:
    """Popcount over the word axis of a ``(n_pb, n_nb, n_words)`` grid."""
    if words3d.shape[2] == 1:
        return np.bitwise_count(words3d[:, :, 0]).astype(np.int64)
    return np.bitwise_count(words3d).sum(axis=2, dtype=np.int64)


class PairSpace:
    """Zone maps over one iteration's ``pos x neg`` candidate-pair space.

    Parameters
    ----------
    words:
        The current mode matrix's packed supports ``(n_modes, n_words)``.
    pos_idx, neg_idx:
        Mode indices with positive / negative entries in the pivot row.
    rank_bound:
        The stoichiometry rank; the prefilter bound is ``rank_bound + 2``.
    block:
        Modes per zone-map block on each side (already resolved).
    prune:
        With ``False`` only the clustering and tile geometry are built (the
        "tiled" enumeration order must not depend on whether pruning is
        active); zone maps, bounds and eligibility masks are skipped and
        nothing is ever dropped.
    """

    __slots__ = (
        "n_pos", "n_neg", "n_pairs", "block", "max_union", "prune",
        "porder", "norder", "pblk_of", "nblk_of",
        "n_pb", "n_nb", "n_tiles", "pstart", "nstart", "psz", "nsz",
        "tile_pairs", "offs", "elig_pos", "elig_neg", "live", "known",
        "n_tiles_pruned", "zone_nbytes", "_all_elig", "_or_pn",
    )

    def __init__(
        self,
        words: np.ndarray,
        pos_idx: np.ndarray,
        neg_idx: np.ndarray,
        rank_bound: int,
        *,
        block: int,
        prune: bool = True,
    ) -> None:
        self.n_pos = int(pos_idx.size)
        self.n_neg = int(neg_idx.size)
        self.n_pairs = self.n_pos * self.n_neg
        self.block = int(block)
        self.max_union = int(rank_bound) + 2
        self.prune = bool(prune)

        pw = words[pos_idx]
        nw = words[neg_idx]
        # Cluster each side by support similarity; ``porder[s]`` is the
        # list position of the s-th mode in sorted order.
        self.porder = bitset.lexsort_rows(pw)
        self.norder = bitset.lexsort_rows(nw)
        # Inverse permutations (list position -> block id) are only needed
        # by the legacy per-pair masks; built lazily in pair_masks.
        self.pblk_of = None
        self.nblk_of = None

        (
            self.n_pb, self.n_nb, self.pstart, self.nstart,
            self.psz, self.nsz, self.tile_pairs, self.offs,
        ) = _geometry(self.n_pos, self.n_neg, self.block)
        self.n_tiles = self.n_pb * self.n_nb

        if not self.prune or self.n_pairs < MIN_PRUNE_PAIRS:
            # Pruning off — or the space is too small for zone bounds to
            # pay for their own construction.  Either way nothing is ever
            # skipped; the clustering and tile geometry above are all the
            # "tiled" enumeration needs, and they are identical with
            # pruning on or off (the order-parity requirement).
            self.elig_pos = self.elig_neg = None
            self.live = self.known = None
            self._or_pn = None
            self.n_tiles_pruned = 0
            self.zone_nbytes = 0
            self._all_elig = True
            return

        p_pc = bitset.popcount(pw)
        n_pc = bitset.popcount(nw)
        # Generation eligibility: a support already over the bound can
        # never shrink by pairing — such modes are neutral in the zone
        # maps and their pairs are dropped at enumeration time.
        self.elig_pos = p_pc <= self.max_union
        self.elig_neg = n_pc <= self.max_union

        # One fused reduction pass over both sides: concatenate the sorted
        # pos and neg words and reduceat with the pos starts followed by
        # the (shifted) neg starts — halves the number of numpy reduction
        # calls, which dominate zone construction at small tile counts.
        sw = np.concatenate((pw[self.porder], nw[self.norder]), axis=0)
        se = np.concatenate(
            (self.elig_pos[self.porder], self.elig_neg[self.norder])
        )
        spc = np.concatenate((p_pc[self.porder], n_pc[self.norder]))
        starts = np.concatenate((self.pstart, self.n_pos + self.nstart))
        all_elig = bool(se.all())
        if all_elig:
            aw, ow = sw, sw
            mpc = spc
        else:
            e = se[:, None]
            aw = np.where(e, sw, ~WORD(0))
            ow = np.where(e, sw, WORD(0))
            mpc = np.where(se, spc, _INF_PC)
        if self.block == 1:
            # One mode per block: the reduceats are identity maps (each
            # zone *is* its mode's support, with ineligible modes already
            # neutralized to all-ones by ``aw`` — their tiles die on the
            # popcount automatically) and the cardinality bound collapses
            # into the intersection bound (``min + min - |OR ∩ OR|``
            # equals ``|AND | AND|`` when AND = OR = sup).  The grid below
            # is therefore the exact per-pair prefilter evaluated on the
            # broadcast of sorted supports — no per-pair index gathers.
            and_z, or_z, min_z = aw, ow, mpc
            and_p, and_n = aw[: self.n_pb], aw[self.n_pb :]
            or_p, or_n = ow[: self.n_pb], ow[self.n_pb :]
            lo = _popcount_grid(and_p[:, None, :] | and_n[None, :, :])
            self.live = lo <= self.max_union
        else:
            and_z = np.bitwise_and.reduceat(aw, starts, axis=0)
            or_z = np.bitwise_or.reduceat(ow, starts, axis=0)
            min_z = np.minimum.reduceat(mpc, starts)
            and_p, and_n = and_z[: self.n_pb], and_z[self.n_pb :]
            or_p, or_n = or_z[: self.n_pb], or_z[self.n_pb :]
            min_p, min_n = min_z[: self.n_pb], min_z[self.n_pb :]
            # Lower bounds on every eligible pair's union popcount.
            lo = _popcount_grid(and_p[:, None, :] | and_n[None, :, :])
            inter = _popcount_grid(or_p[:, None, :] & or_n[None, :, :])
            np.maximum(lo, min_p[:, None] + min_n[None, :] - inter, out=lo)
            self.live = lo <= self.max_union
        # The full-pass ("known") grid is rarely consulted — measured
        # known-tile rates on pruning-relevant calls are ~1% — so it is
        # built lazily from the OR zones on first use (legacy pair_masks);
        # the tiled consumption path never pays for it.
        self._or_pn = (or_p, or_n)
        self.known = None
        self.n_tiles_pruned = int(self.n_tiles - np.count_nonzero(self.live))
        # With every mode eligible the per-pair eligibility masks are
        # provably all-True and the enumeration can skip them.
        self._all_elig = all_elig
        self.zone_nbytes = int(
            and_z.nbytes + or_z.nbytes + min_z.nbytes
            + 2 * self.live.nbytes  # live + the lazily built known grid
        )

    # -- legacy-order consumption (strided / block / full ranges) ----------

    def known_grid(self) -> np.ndarray:
        """The full-pass grid, built on first use: the tile's worst-case
        union (``OR_P | OR_N``) still passes ⇒ every pair in it passes and
        the per-pair prefilter can be skipped for it."""
        if self.known is None:
            or_p, or_n = self._or_pn
            hi = _popcount_grid(or_p[:, None, :] | or_n[None, :, :])
            self.known = self.live & (hi <= self.max_union)
        return self.known

    def pair_masks(self, a: np.ndarray, b: np.ndarray):
        """Per-pair ``(keep, known)`` masks for pairs given as pos/neg
        *list positions* in legacy enumeration order.

        ``keep`` is False exactly for pairs the prefilter would reject
        anyway (pruned tile or ineligible parent); ``known`` is True for
        pairs the full-pass bound already proves accepted.  Both are
        aligned with the input (compress ``known`` by ``keep``).
        """
        if self.pblk_of is None:
            inv_p = np.empty(self.n_pos, dtype=np.intp)
            inv_p[self.porder] = np.arange(self.n_pos, dtype=np.intp)
            inv_n = np.empty(self.n_neg, dtype=np.intp)
            inv_n[self.norder] = np.arange(self.n_neg, dtype=np.intp)
            self.pblk_of = inv_p // self.block
            self.nblk_of = inv_n // self.block
        pb = self.pblk_of[a]
        nb = self.nblk_of[b]
        keep = self.live[pb, nb]
        keep &= self.elig_pos[a]
        keep &= self.elig_neg[b]
        return keep, self.known_grid()[pb, nb]

    @property
    def worth_masking(self) -> bool:
        """Whether per-pair masks can change anything: some tile pruned,
        some mode ineligible, or some tile provably all-pass."""
        if self.live is None:
            return False
        return bool(
            self.n_tiles_pruned
            or not self._all_elig
            or self.known_grid().any()
        )

    # -- tile-major consumption (the "tiled" strategy) ---------------------

    def tile_share(self, rank: int, size: int) -> np.ndarray:
        """Contiguous, pair-count-balanced tile ids owned by ``rank``.

        Tile ``t`` goes to ``floor(pairs_before_t * size / n_pairs)`` —
        deterministic, covering, and independent of pruning (tile pair
        counts include pairs a prune would skip), so the partition is
        identical with pruning on or off.
        """
        if size <= 1:
            return np.arange(self.n_tiles, dtype=np.intp)
        owner = (self.offs[:-1] * size) // max(1, self.n_pairs)
        return np.flatnonzero(owner == rank)

    def share_pair_count(self, tiles: np.ndarray) -> int:
        """Pairs in a tile share, *including* pairs pruning will skip (the
        paper's "generated candidate modes" counts the full pair space)."""
        if tiles.size == 0:
            return 0
        t0 = int(tiles[0])
        t1 = int(tiles[-1]) + 1
        if t1 - t0 == tiles.size:  # contiguous run (tile_share always is)
            return int(self.offs[t1] - self.offs[t0])
        return int(self.tile_pairs.ravel()[tiles].sum())

    def iter_share_chunks(self, tiles: np.ndarray, chunk: int):
        """Yield ``(a, b, known, n_skipped)`` pair chunks for a tile share
        in tile-major order (``a``/``b`` are pos/neg list positions).

        The share's pair list is a slice of the cached expansion template
        (:func:`_expand_template`) gathered through ``porder``/``norder``.
        With zone maps, dead tiles' pairs are compressed out of the
        *sorted-list* template — one boolean gather through the per-pair
        tile-id template, before the ``porder``/``norder`` gathers and the
        prefilter ever see them — and pairs with an ineligible parent are
        dropped in the same pass (both counted in ``n_skipped``).
        ``known`` is ``None`` on this path — *except* at block 1, where
        the intersection bound is the exact prefilter: a pair survives the
        live grid iff it passes, so surviving chunks carry the ``True``
        sentinel and the per-pair prefilter is skipped downstream.  (At
        wider blocks the full-pass grid is worth consulting per pair —
        legacy :meth:`pair_masks` — but measured all-known share rates are
        too low to pay for share-level checks.)  Dead-tile positions are
        ascending, so the emitted order of any surviving pair is the same
        with pruning on or off.
        """
        if tiles.size == 0:
            return
        t0 = int(tiles[0])
        t1 = int(tiles[-1]) + 1
        if t1 - t0 != tiles.size:  # pragma: no cover - tile_share invariant
            raise ValueError("tile share must be a contiguous run")
        tile_of, srow, scol = _expand_template(
            self.n_pos, self.n_neg, self.block
        )
        lo = int(self.offs[t0])
        hi = int(self.offs[t1])
        live_t = None if self.live is None else self.live.ravel()[t0:t1]
        # Exactness sentinel: at block 1 ``live`` *is* the prefilter, so
        # every emitted pair is proven to pass (ineligible modes were
        # AND-neutralized into dead tiles).
        known = True if (self.live is not None and self.block == 1) else None
        if live_t is None or (live_t.all() and self._all_elig):
            # No zone maps (pruning off / below the size gate) or nothing
            # to drop: straight template slices, nothing skipped.
            for s in range(lo, hi, chunk):
                e = min(s + chunk, hi)
                yield self.porder[srow[s:e]], self.norder[scol[s:e]], known, 0
            return

        # Dead tiles or ineligible parents: one mask over the share's
        # template slice selects the surviving pairs, so dead pairs never
        # reach the porder/norder gathers or the prefilter at all.
        keep = self.live.ravel()[tile_of[lo:hi]]
        srow_l = srow[lo:hi][keep]
        scol_l = scol[lo:hi][keep]
        a_all = self.porder[srow_l]
        b_all = self.norder[scol_l]
        total = int(srow_l.size)
        n_skipped = (hi - lo) - total
        if not self._all_elig and total and self.block != 1:
            ekeep = self.elig_pos[a_all] & self.elig_neg[b_all]
            n_keep = int(np.count_nonzero(ekeep))
            if n_keep != total:
                a_all = a_all[ekeep]
                b_all = b_all[ekeep]
                n_skipped += total - n_keep
                total = n_keep
        if total == 0:
            yield (
                np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp),
                known, n_skipped,
            )
            return
        for s in range(0, total, chunk):
            e = min(s + chunk, total)
            yield a_all[s:e], b_all[s:e], known, n_skipped if s == 0 else 0

    def zone_map_nbytes(self) -> int:
        """Bytes held by zone maps + tile geometry (memory accounting).

        Geometry arrays are shared through the shape caches, but each
        subproblem's working set still references them — charging them to
        every space keeps the per-subproblem surrogate conservative."""
        geom = (
            self.porder.nbytes + self.norder.nbytes
            + self.tile_pairs.nbytes + self.offs.nbytes
            + self.pstart.nbytes + self.nstart.nbytes
            + self.psz.nbytes + self.nsz.nbytes
        )
        elig = 0
        if self.live is not None:
            elig = self.elig_pos.nbytes + self.elig_neg.nbytes
        return int(geom + elig + self.zone_nbytes)
