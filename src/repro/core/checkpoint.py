"""Checkpoint / resume for long Nullspace Algorithm runs.

The paper's Network II computation "was interrupted two iteration steps
before the end" and could not be salvaged — a multi-hour enumeration lost
to a memory wall.  This module makes runs restartable: the full iteration
state (mode values, packed supports, iteration index, accumulated
statistics, and a fingerprint of the problem) serializes to a single
``.npz`` file after any iteration, and :func:`resume_nullspace_algorithm`
continues from the last saved row, on the same or a different machine.

The checkpoint is portable and versioned; loading verifies the problem
fingerprint so a checkpoint cannot silently resume against a different
network, permutation, or option set.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import time
from pathlib import Path

import numpy as np

from repro.config import AlgorithmOptions, DEFAULT_OPTIONS
from repro.core.kernel import NullspaceProblem
from repro.core.serial import NullspaceResult, check_acceptance_applicable, iterate_row
from repro.core.state import ModeMatrix
from repro.core.stats import IterationStats, PhaseTimer, RunStats
from repro.engine.context import RunContext
from repro.errors import AlgorithmError
from repro.linalg.bitset import PackedSupports

#: Format version; bump on incompatible layout changes.
CHECKPOINT_VERSION = 1


def problem_fingerprint(problem: NullspaceProblem, options: AlgorithmOptions) -> str:
    """Stable hash of everything that must match for a resume to be valid."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(problem.n_perm).tobytes())
    h.update(np.ascontiguousarray(problem.kernel).tobytes())
    h.update(np.ascontiguousarray(problem.reversible).tobytes())
    h.update("\x00".join(problem.names).encode())
    h.update(
        json.dumps(
            {
                "arithmetic": options.arithmetic,
                "acceptance": options.acceptance,
                "zero_tol": options.policy.zero_tol,
                "rank_tol": options.policy.rank_tol,
            },
            sort_keys=True,
        ).encode()
    )
    return h.hexdigest()


@dataclasses.dataclass
class Checkpoint:
    """A resumable snapshot taken after iteration ``next_row - 1``."""

    fingerprint: str
    next_row: int
    modes: ModeMatrix
    stats: RunStats
    elapsed: float

    def save(self, path: str | Path) -> None:
        """Write the snapshot atomically (tmp file + rename)."""
        path = Path(path)
        stats_blob = json.dumps(_stats_to_dict(self.stats)).encode()
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            version=np.int64(CHECKPOINT_VERSION),
            fingerprint=np.frombuffer(self.fingerprint.encode(), dtype=np.uint8),
            next_row=np.int64(self.next_row),
            values=self.modes.values.astype(np.float64),
            support_words=self.modes.supports.words,
            n_rows=np.int64(self.modes.supports.n_rows),
            stats=np.frombuffer(stats_blob, dtype=np.uint8),
            elapsed=np.float64(self.elapsed),
        )
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(buf.getvalue())
        tmp.replace(path)

    @classmethod
    def load(cls, path: str | Path) -> "Checkpoint":
        with np.load(Path(path)) as data:
            version = int(data["version"])
            if version != CHECKPOINT_VERSION:
                raise AlgorithmError(
                    f"checkpoint version {version} unsupported "
                    f"(expected {CHECKPOINT_VERSION})"
                )
            modes = ModeMatrix.from_parts(
                np.ascontiguousarray(data["values"]),
                PackedSupports(data["support_words"], int(data["n_rows"])),
            )
            stats = _stats_from_dict(
                json.loads(bytes(data["stats"].tobytes()).decode())
            )
            return cls(
                fingerprint=bytes(data["fingerprint"].tobytes()).decode(),
                next_row=int(data["next_row"]),
                modes=modes,
                stats=stats,
                elapsed=float(data["elapsed"]),
            )


def _stats_to_dict(stats: RunStats) -> dict:
    return {
        "t_total": stats.t_total,
        "bytes_sent": stats.bytes_sent,
        "messages_sent": stats.messages_sent,
        "peak_mode_bytes": stats.peak_mode_bytes,
        "iterations": [dataclasses.asdict(it) for it in stats.iterations],
    }


def _stats_from_dict(d: dict) -> RunStats:
    stats = RunStats(
        t_total=d["t_total"],
        bytes_sent=d["bytes_sent"],
        messages_sent=d["messages_sent"],
        peak_mode_bytes=d["peak_mode_bytes"],
    )
    for it in d["iterations"]:
        stats.add(IterationStats(**it))
    return stats


def checkpointed_nullspace_algorithm(
    problem: NullspaceProblem,
    checkpoint_path: str | Path | None = None,
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    checkpoint_every: int | None = None,
    stop_row: int | None = None,
    memory_check=None,
    context: RunContext | None = None,
) -> NullspaceResult:
    """Run (or resume) Algorithm 1 with periodic checkpoints.

    If ``checkpoint_path`` exists it is validated against the problem and
    the run continues from its ``next_row``; otherwise a fresh run starts.
    A snapshot is written every ``checkpoint_every`` iterations and after
    the final one.  Exact arithmetic is not checkpointable (Fractions
    don't round-trip through .npz) and raises.

    ``checkpoint_path`` / ``checkpoint_every`` default to the context's
    checkpoint configuration; at least one source must provide the path.
    """
    ctx = RunContext.ensure(context, options=options)
    options = ctx.options
    if checkpoint_path is None:
        checkpoint_path = ctx.checkpoint_path
    if checkpoint_every is None:
        checkpoint_every = ctx.checkpoint_every
    if checkpoint_path is None:
        raise AlgorithmError(
            "checkpointed run needs a checkpoint path (argument or context)"
        )
    if options.arithmetic != "float":
        raise AlgorithmError("checkpointing supports float arithmetic only")
    if checkpoint_every < 1:
        raise AlgorithmError("checkpoint_every must be >= 1")
    path = Path(checkpoint_path)
    fp = problem_fingerprint(problem, options)
    stop = problem.q if stop_row is None else stop_row

    if path.exists():
        ck = Checkpoint.load(path)
        if ck.fingerprint != fp:
            raise AlgorithmError(
                f"checkpoint {path} belongs to a different problem/options "
                "combination; refusing to resume"
            )
        modes, stats, start_row, elapsed0 = ck.modes, ck.stats, ck.next_row, ck.elapsed
    else:
        modes = ModeMatrix.from_kernel(problem.kernel, policy=options.policy)
        stats = RunStats()
        start_row = problem.first_row
        elapsed0 = 0.0

    if not (problem.first_row <= start_row <= stop):
        raise AlgorithmError(
            f"checkpoint row {start_row} outside the requested range"
        )

    t_start = time.perf_counter()
    n_exact = None
    if options.acceptance != "rank":
        check_acceptance_applicable(problem, options, stop)
    rank_cache = ctx.rank_binding_for(problem)
    if memory_check is None:
        memory = ctx.fresh_memory()
        memory_check = memory.check if memory is not None else None
    for k in range(start_row, stop):
        it = ctx.new_iteration(problem, k)
        kept, cand = iterate_row(
            modes, k, problem, options, it, n_exact=n_exact, rank_cache=rank_cache
        )
        with PhaseTimer(it, "t_merge"):
            modes = kept.concat(cand) if cand.n_modes else kept
        it.n_modes_end = modes.n_modes
        stats.add(it)
        stats.peak_mode_bytes = max(stats.peak_mode_bytes, modes.nbytes())
        if memory_check is not None:
            memory_check(k, modes)
        if (k - start_row) % checkpoint_every == checkpoint_every - 1 or k == stop - 1:
            stats.t_total = elapsed0 + time.perf_counter() - t_start
            Checkpoint(
                fingerprint=fp,
                next_row=k + 1,
                modes=modes,
                stats=stats,
                elapsed=stats.t_total,
            ).save(path)

    stats.t_total = elapsed0 + time.perf_counter() - t_start
    ctx.collect(stats)
    return NullspaceResult(
        problem=problem, modes=modes, stats=stats, stopped_at=stop
    )
