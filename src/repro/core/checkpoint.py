"""Checkpoint / resume for long Nullspace Algorithm runs.

The paper's Network II computation "was interrupted two iteration steps
before the end" and could not be salvaged — a multi-hour enumeration lost
to a memory wall.  This module makes runs restartable: the full iteration
state (mode values, packed supports, iteration index, accumulated
statistics, and a fingerprint of the problem) serializes to a single
``.npz`` file after any iteration, and :func:`resume_nullspace_algorithm`
continues from the last saved row, on the same or a different machine.

The checkpoint is portable and versioned; loading verifies the problem
fingerprint so a checkpoint cannot silently resume against a different
network, permutation, or option set.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import time
from pathlib import Path

import numpy as np

from repro.config import AlgorithmOptions, DEFAULT_OPTIONS
from repro.core.kernel import NullspaceProblem
from repro.core.serial import NullspaceResult, check_acceptance_applicable, iterate_row
from repro.core.state import ModeMatrix
from repro.core.stats import IterationStats, PhaseTimer, RunStats
from repro.engine.context import RunContext
from repro.errors import AlgorithmError
from repro.linalg.bitset import PackedSupports

#: Format version; bump on incompatible layout changes.  Version 2 added
#: the realized row order (``row_order``) and the ordering name to the
#: manifest: under ``ordering="dynamic"`` the processed rows are chosen at
#: run time from the live mode matrix, so a resume must replay the exact
#: realized prefix — silently resuming under a different order would
#: process rows twice or never.
CHECKPOINT_VERSION = 2


def problem_fingerprint(problem: NullspaceProblem, options: AlgorithmOptions) -> str:
    """Stable hash of everything that must match for a resume to be valid."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(problem.n_perm).tobytes())
    h.update(np.ascontiguousarray(problem.kernel).tobytes())
    h.update(np.ascontiguousarray(problem.reversible).tobytes())
    h.update("\x00".join(problem.names).encode())
    h.update(
        json.dumps(
            {
                "arithmetic": options.arithmetic,
                "acceptance": options.acceptance,
                "zero_tol": options.policy.zero_tol,
                "rank_tol": options.policy.rank_tol,
            },
            sort_keys=True,
        ).encode()
    )
    return h.hexdigest()


@dataclasses.dataclass
class Checkpoint:
    """A resumable snapshot taken after ``len(row_order)`` iterations.

    ``row_order`` is the *realized* processing order — the row positions
    already eliminated, in elimination order.  Static orderings realize
    their baked-in permutation; ``ordering="dynamic"`` realizes whatever
    the :class:`~repro.core.ordering.RowSelector` chose from the live mode
    matrix.  ``next_row`` is kept as a progress marker
    (``first_row + len(row_order)`` — a *count*, not a position, under
    dynamic ordering).
    """

    fingerprint: str
    next_row: int
    modes: ModeMatrix
    stats: RunStats
    elapsed: float
    #: realized elimination order (row positions, in processed order).
    row_order: tuple[int, ...] = ()
    #: the ordering name the run was started under.
    ordering: str = "paper"

    def save(self, path: str | Path) -> None:
        """Write the snapshot atomically (tmp file + rename)."""
        path = Path(path)
        stats_blob = json.dumps(_stats_to_dict(self.stats)).encode()
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            version=np.int64(CHECKPOINT_VERSION),
            fingerprint=np.frombuffer(self.fingerprint.encode(), dtype=np.uint8),
            next_row=np.int64(self.next_row),
            values=self.modes.values.astype(np.float64),
            support_words=self.modes.supports.words,
            n_rows=np.int64(self.modes.supports.n_rows),
            stats=np.frombuffer(stats_blob, dtype=np.uint8),
            elapsed=np.float64(self.elapsed),
            row_order=np.asarray(self.row_order, dtype=np.int64),
            ordering=np.frombuffer(self.ordering.encode(), dtype=np.uint8),
        )
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(buf.getvalue())
        tmp.replace(path)

    @classmethod
    def load(cls, path: str | Path) -> "Checkpoint":
        with np.load(Path(path)) as data:
            version = int(data["version"])
            if version != CHECKPOINT_VERSION:
                raise AlgorithmError(
                    f"checkpoint version {version} unsupported "
                    f"(expected {CHECKPOINT_VERSION})"
                )
            modes = ModeMatrix.from_parts(
                np.ascontiguousarray(data["values"]),
                PackedSupports(data["support_words"], int(data["n_rows"])),
            )
            stats = _stats_from_dict(
                json.loads(bytes(data["stats"].tobytes()).decode())
            )
            return cls(
                fingerprint=bytes(data["fingerprint"].tobytes()).decode(),
                next_row=int(data["next_row"]),
                modes=modes,
                stats=stats,
                elapsed=float(data["elapsed"]),
                row_order=tuple(int(r) for r in data["row_order"]),
                ordering=bytes(data["ordering"].tobytes()).decode(),
            )


def _stats_to_dict(stats: RunStats) -> dict:
    return {
        "t_total": stats.t_total,
        "bytes_sent": stats.bytes_sent,
        "messages_sent": stats.messages_sent,
        "peak_mode_bytes": stats.peak_mode_bytes,
        "iterations": [dataclasses.asdict(it) for it in stats.iterations],
    }


def _stats_from_dict(d: dict) -> RunStats:
    stats = RunStats(
        t_total=d["t_total"],
        bytes_sent=d["bytes_sent"],
        messages_sent=d["messages_sent"],
        peak_mode_bytes=d["peak_mode_bytes"],
    )
    for it in d["iterations"]:
        stats.add(IterationStats(**it))
    return stats


def checkpointed_nullspace_algorithm(
    problem: NullspaceProblem,
    checkpoint_path: str | Path | None = None,
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    checkpoint_every: int | None = None,
    stop_row: int | None = None,
    memory_check=None,
    context: RunContext | None = None,
) -> NullspaceResult:
    """Run (or resume) Algorithm 1 with periodic checkpoints.

    If ``checkpoint_path`` exists it is validated against the problem and
    the run continues from its ``next_row``; otherwise a fresh run starts.
    A snapshot is written every ``checkpoint_every`` iterations and after
    the final one.  Exact arithmetic is not checkpointable (Fractions
    don't round-trip through .npz) and raises.

    ``checkpoint_path`` / ``checkpoint_every`` default to the context's
    checkpoint configuration; at least one source must provide the path.
    """
    ctx = RunContext.ensure(context, options=options)
    options = ctx.options
    if checkpoint_path is None:
        checkpoint_path = ctx.checkpoint_path
    if checkpoint_every is None:
        checkpoint_every = ctx.checkpoint_every
    if checkpoint_path is None:
        raise AlgorithmError(
            "checkpointed run needs a checkpoint path (argument or context)"
        )
    if options.arithmetic != "float":
        raise AlgorithmError("checkpointing supports float arithmetic only")
    if checkpoint_every < 1:
        raise AlgorithmError("checkpoint_every must be >= 1")
    path = Path(checkpoint_path)
    fp = problem_fingerprint(problem, options)
    stop = problem.q if stop_row is None else stop_row

    if path.exists():
        ck = Checkpoint.load(path)
        if ck.fingerprint != fp:
            raise AlgorithmError(
                f"checkpoint {path} belongs to a different problem/options "
                "combination; refusing to resume"
            )
        if ck.ordering != options.ordering:
            raise AlgorithmError(
                f"checkpoint {path} was written under ordering="
                f"{ck.ordering!r} but this run requests "
                f"{options.ordering!r}; refusing to resume — the realized "
                "row order would not match the checkpointed prefix"
            )
        modes, stats, elapsed0 = ck.modes, ck.stats, ck.elapsed
        processed = ck.row_order
    else:
        modes = ModeMatrix.from_kernel(problem.kernel, policy=options.policy)
        stats = RunStats()
        elapsed0 = 0.0
        processed = ()

    t_start = time.perf_counter()
    n_exact = None
    if options.acceptance != "rank":
        check_acceptance_applicable(problem, options, stop)
    rank_cache = ctx.rank_binding_for(problem)
    if memory_check is None:
        memory = ctx.fresh_memory()
        memory_check = memory.check if memory is not None else None
    # The selector replays the checkpoint's realized prefix (its validation
    # rejects out-of-window rows and, for static orderings, any prefix that
    # is not the static order's own — a checkpoint written under a
    # different ordering name is rejected above before we get here).
    selector = ctx.row_selector_for(problem, stop, processed=processed)
    n_resumed = len(selector.realized)
    while selector.has_next():
        k = selector.next_row(modes)
        it = ctx.new_iteration(problem, k)
        selector.annotate(it)
        kept, cand = iterate_row(
            modes, k, problem, options, it, n_exact=n_exact,
            rank_cache=rank_cache, processed_rows=selector.adjacency_rows(),
        )
        with PhaseTimer(it, "t_merge"):
            modes = kept.concat(cand) if cand.n_modes else kept
        it.n_modes_end = modes.n_modes
        stats.add(it)
        stats.peak_mode_bytes = max(stats.peak_mode_bytes, modes.nbytes())
        if memory_check is not None:
            memory_check(k, modes)
        n_done = len(selector.realized) - n_resumed
        if n_done % checkpoint_every == 0 or not selector.has_next():
            stats.t_total = elapsed0 + time.perf_counter() - t_start
            Checkpoint(
                fingerprint=fp,
                next_row=problem.first_row + len(selector.realized),
                modes=modes,
                stats=stats,
                elapsed=stats.t_total,
                row_order=tuple(selector.realized),
                ordering=options.ordering,
            ).save(path)

    stats.t_total = elapsed0 + time.perf_counter() - t_start
    ctx.collect(stats)
    return NullspaceResult(
        problem=problem, modes=modes, stats=stats, stopped_at=stop
    )
