"""Per-iteration and per-run statistics of the Nullspace Algorithm.

The paper's tables report, per run: generation time, rank-test time,
communication time, merge time, total time, the total number of generated
candidate modes (Table II: 159,599,700,951 for Network I) and the final
EFM count.  Every counter needed to regenerate those rows is collected
here; the parallel drivers add communication metrics on top.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterator


@dataclasses.dataclass
class IterationStats:
    """Counters for one processed row of the mode matrix."""

    position: int
    reaction: str
    reversible: bool
    n_pos: int = 0
    n_neg: int = 0
    n_zero: int = 0
    #: pos x neg pairs formed — the paper's "generated candidate modes".
    n_pairs: int = 0
    #: zone-map tiles evaluated by this rank (pair_pruning="tiles"; the
    #: tiled strategy counts owned tiles, the legacy strategies count the
    #: full map each rank builds).
    n_tiles_total: int = 0
    #: tiles whose zone-map bound pruned them wholesale.
    n_tiles_pruned: int = 0
    #: pairs skipped without per-pair work (pruned tiles + generation-
    #: ineligible parents); always a subset of the prefilter rejections,
    #: so n_prefilter_kept is unaffected.
    n_pairs_skipped: int = 0
    #: pairs surviving the union-support summary rejection.
    n_prefilter_kept: int = 0
    #: pairs passing the combinatorial adjacency test (bittree mode only).
    n_adjacent: int = 0
    #: candidates removed as duplicates (among candidates + vs zero columns).
    n_duplicates: int = 0
    #: candidates submitted to the acceptance (rank / bittree) test.
    n_tested: int = 0
    n_accepted: int = 0
    #: rank tests answered from the support-pattern memo (memo-capable
    #: backends: modular, batched).
    n_rank_cache_hits: int = 0
    #: batched kernel/LAPACK calls issued (one per non-empty miss bucket on
    #: the batched backend, one per merged miss stack on the modular one).
    n_rank_batches: int = 0
    #: largest single batch handed to a rank kernel.
    rank_batch_max: int = 0
    #: rank tests certified by the modular residue-field kernel (exact
    #: fraction-free or mod-p arms; rank_backend="modular").
    n_rank_modular: int = 0
    #: rank tests the modular backend handed to the SVD engine instead —
    #: non-rational problems, unverifiable kernels, prime disagreements.
    n_rank_fallback: int = 0
    #: complement member-columns served from elimination-prefix snapshots
    #: instead of re-eliminated (the prefix-reuse layer's work saving).
    n_prefix_reused_cols: int = 0
    #: retained candidate-set footprint after generation (bytes): dense
    #: values + supports on the eager pipeline, packed supports + pair
    #: indices on the deferred one.  Transient per-chunk buffers are
    #: tracked separately in ``prefilter_bytes``.
    candidate_bytes: int = 0
    #: peak transient working set of one generation chunk (bytes): the
    #: pair-index vectors, gathered/ORed support words and prefilter mask,
    #: the dense candidate chunk (which the deferred pipeline frees right
    #: after support extraction but which exists at the peak), and any
    #: zone maps.  on_oom="degrade" decisions should add this to the
    #: retained footprint to see the true peak.
    prefilter_bytes: int = 0
    #: streaming chunks processed by this rank (iter_streaming="on";
    #: batch iterations leave this 0).
    n_chunks: int = 0
    #: largest retained candidate footprint of one streaming chunk
    #: (bytes): packed supports + pair indices on the deferred pipeline,
    #: the dense chunk matrix on the eager one.
    peak_chunk_bytes: int = 0
    #: candidates probed against the incremental dedup index
    #: (streaming; see repro.core.bittree.SupportIndex).
    n_dedup_probes: int = 0
    #: the chosen row's global |pos|*|neg| pair count at selection time
    #: (dynamic ordering; 0 on static paths — see repro.core.ordering).
    sel_score: int = 0
    #: remaining rows the dynamic selector scored before choosing this one
    #: (0 on static paths) — the per-iteration scoring-cost counter.
    sel_evaluated: int = 0
    #: old negative-entry columns dropped (irreversible rows only).
    n_neg_removed: int = 0
    #: mode count after the iteration.
    n_modes_end: int = 0
    t_gen_cand: float = 0.0
    t_rank_test: float = 0.0
    t_merge: float = 0.0
    t_communicate: float = 0.0


@dataclasses.dataclass
class RunStats:
    """Aggregated run statistics (one rank's view, or the serial run)."""

    iterations: list[IterationStats] = dataclasses.field(default_factory=list)
    #: wall-clock of the whole run (set by the driver).
    t_total: float = 0.0
    #: bytes sent by this rank (parallel runs), logical payload sizes.
    bytes_sent: int = 0
    #: messages sent by this rank (parallel runs).
    messages_sent: int = 0
    #: peak replicated mode-matrix footprint observed (bytes).
    peak_mode_bytes: int = 0
    #: serialized bytes this rank actually produced (parallel runs) — the
    #: serialize-once transports keep this flat in fan-out where the
    #: legacy per-peer pickling grew it by P-1.
    ser_bytes: int = 0
    #: payload serializations performed by this rank.
    n_serializations: int = 0
    #: bytes physically handed to the transport by this rank (pipe
    #: writes, slot deposits, shared-segment writes).
    wire_bytes_sent: int = 0
    #: peak mapped shared-memory segment footprint of one allgather round.
    segment_peak_bytes: int = 0

    def add(self, it: IterationStats) -> None:
        self.iterations.append(it)

    # -- table-row accessors -------------------------------------------------

    @property
    def total_candidates(self) -> int:
        """The paper's "Total # candidate modes"."""
        return sum(it.n_pairs for it in self.iterations)

    @property
    def total_rank_tests(self) -> int:
        return sum(it.n_tested for it in self.iterations)

    @property
    def total_tiles_pruned(self) -> int:
        return sum(it.n_tiles_pruned for it in self.iterations)

    @property
    def total_pairs_skipped(self) -> int:
        """Pairs never touched by per-pair work thanks to zone-map
        pruning (always prefilter rejections, so the candidate totals
        above are unaffected)."""
        return sum(it.n_pairs_skipped for it in self.iterations)

    @property
    def total_rank_cache_hits(self) -> int:
        return sum(it.n_rank_cache_hits for it in self.iterations)

    @property
    def total_rank_batches(self) -> int:
        return sum(it.n_rank_batches for it in self.iterations)

    @property
    def total_rank_modular(self) -> int:
        """Rank tests certified by the modular residue-field kernel."""
        return sum(it.n_rank_modular for it in self.iterations)

    @property
    def total_rank_fallback(self) -> int:
        """Rank tests the modular backend escalated to the SVD engine."""
        return sum(it.n_rank_fallback for it in self.iterations)

    @property
    def total_prefix_reused_cols(self) -> int:
        """Member-columns served from elimination-prefix snapshots."""
        return sum(it.n_prefix_reused_cols for it in self.iterations)

    @property
    def total_sel_evaluated(self) -> int:
        """Rows scored by the dynamic selector across all iterations (the
        ordering ablation's scoring-cost counter; 0 for static runs)."""
        return sum(it.sel_evaluated for it in self.iterations)

    @property
    def t_gen_cand(self) -> float:
        return sum(it.t_gen_cand for it in self.iterations)

    @property
    def t_rank_test(self) -> float:
        return sum(it.t_rank_test for it in self.iterations)

    @property
    def t_merge(self) -> float:
        return sum(it.t_merge for it in self.iterations)

    @property
    def t_communicate(self) -> float:
        return sum(it.t_communicate for it in self.iterations)

    @property
    def total_stream_chunks(self) -> int:
        """Streaming chunks processed across all iterations (0 for
        batch runs)."""
        return sum(it.n_chunks for it in self.iterations)

    @property
    def total_dedup_probes(self) -> int:
        """Candidates probed against the incremental dedup index."""
        return sum(it.n_dedup_probes for it in self.iterations)

    @property
    def peak_stream_chunk_bytes(self) -> int:
        """Largest retained single-chunk candidate footprint (streaming)."""
        return max((it.peak_chunk_bytes for it in self.iterations), default=0)

    @property
    def peak_candidate_bytes(self) -> int:
        """Largest per-iteration retained candidate-set footprint — the
        quantity the support-first pipeline exists to shrink."""
        return max((it.candidate_bytes for it in self.iterations), default=0)

    @property
    def peak_prefilter_bytes(self) -> int:
        """Largest transient generation working set (pair-chunk gathers,
        dense candidate chunk, zone maps) — see
        :attr:`IterationStats.prefilter_bytes`."""
        return max((it.prefilter_bytes for it in self.iterations), default=0)

    @property
    def n_efms(self) -> int:
        return self.iterations[-1].n_modes_end if self.iterations else 0

    def phase_times(self) -> dict[str, float]:
        """The four phase rows of Tables II/III plus the total."""
        return {
            "gen_cand": self.t_gen_cand,
            "rank_test": self.t_rank_test,
            "communicate": self.t_communicate,
            "merge": self.t_merge,
            "total": self.t_total,
        }

    def merged_with(self, other: "RunStats") -> "RunStats":
        """Element-wise union of two ranks' stats (max times per iteration —
        the bulk-synchronous model: each superstep costs its slowest rank —
        and summed candidate counters)."""
        if len(self.iterations) != len(other.iterations):
            raise ValueError("cannot merge RunStats with different iteration counts")
        merged = RunStats(
            t_total=max(self.t_total, other.t_total),
            bytes_sent=self.bytes_sent + other.bytes_sent,
            messages_sent=self.messages_sent + other.messages_sent,
            peak_mode_bytes=max(self.peak_mode_bytes, other.peak_mode_bytes),
            ser_bytes=self.ser_bytes + other.ser_bytes,
            n_serializations=self.n_serializations + other.n_serializations,
            wire_bytes_sent=self.wire_bytes_sent + other.wire_bytes_sent,
            segment_peak_bytes=max(self.segment_peak_bytes, other.segment_peak_bytes),
        )
        for a, b in zip(self.iterations, other.iterations):
            merged.add(
                IterationStats(
                    position=a.position,
                    reaction=a.reaction,
                    reversible=a.reversible,
                    n_pos=a.n_pos,
                    n_neg=a.n_neg,
                    n_zero=a.n_zero,
                    n_pairs=a.n_pairs + b.n_pairs,
                    n_tiles_total=a.n_tiles_total + b.n_tiles_total,
                    n_tiles_pruned=a.n_tiles_pruned + b.n_tiles_pruned,
                    n_pairs_skipped=a.n_pairs_skipped + b.n_pairs_skipped,
                    n_prefilter_kept=a.n_prefilter_kept + b.n_prefilter_kept,
                    n_adjacent=a.n_adjacent + b.n_adjacent,
                    n_duplicates=a.n_duplicates + b.n_duplicates,
                    n_tested=a.n_tested + b.n_tested,
                    n_accepted=a.n_accepted + b.n_accepted,
                    n_rank_cache_hits=a.n_rank_cache_hits + b.n_rank_cache_hits,
                    n_rank_batches=a.n_rank_batches + b.n_rank_batches,
                    rank_batch_max=max(a.rank_batch_max, b.rank_batch_max),
                    n_rank_modular=a.n_rank_modular + b.n_rank_modular,
                    n_rank_fallback=a.n_rank_fallback + b.n_rank_fallback,
                    n_prefix_reused_cols=(
                        a.n_prefix_reused_cols + b.n_prefix_reused_cols
                    ),
                    candidate_bytes=max(a.candidate_bytes, b.candidate_bytes),
                    prefilter_bytes=max(a.prefilter_bytes, b.prefilter_bytes),
                    n_chunks=a.n_chunks + b.n_chunks,
                    peak_chunk_bytes=max(a.peak_chunk_bytes, b.peak_chunk_bytes),
                    n_dedup_probes=a.n_dedup_probes + b.n_dedup_probes,
                    # Selection is replica-consistent, so these agree
                    # across ranks; max keeps the shared value.
                    sel_score=max(a.sel_score, b.sel_score),
                    sel_evaluated=max(a.sel_evaluated, b.sel_evaluated),
                    n_neg_removed=a.n_neg_removed,
                    n_modes_end=max(a.n_modes_end, b.n_modes_end),
                    t_gen_cand=max(a.t_gen_cand, b.t_gen_cand),
                    t_rank_test=max(a.t_rank_test, b.t_rank_test),
                    t_merge=max(a.t_merge, b.t_merge),
                    t_communicate=max(a.t_communicate, b.t_communicate),
                )
            )
        return merged


class PhaseTimer:
    """Tiny helper accumulating wall-clock into an IterationStats field."""

    __slots__ = ("_stats", "_field", "_t0")

    def __init__(self, stats: IterationStats, field: str) -> None:
        self._stats = stats
        self._field = field
        self._t0 = 0.0

    def __enter__(self) -> "PhaseTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        setattr(
            self._stats,
            self._field,
            getattr(self._stats, self._field) + time.perf_counter() - self._t0,
        )


def iter_phase_names() -> Iterator[str]:
    """Canonical phase ordering used by the table renderers."""
    yield from ("gen_cand", "rank_test", "communicate", "merge", "total")
