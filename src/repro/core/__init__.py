"""Core of the Nullspace Algorithm (Algorithm 1 of the paper) and its
building blocks: problem setup, mode matrices, candidate generation, the
algebraic rank test, duplicate removal, and per-iteration statistics."""

from repro.core.kernel import NullspaceProblem, build_problem
from repro.core.serial import NullspaceResult, nullspace_algorithm
from repro.core.state import ModeMatrix
from repro.core.stats import IterationStats, RunStats

__all__ = [
    "NullspaceProblem",
    "build_problem",
    "NullspaceResult",
    "nullspace_algorithm",
    "ModeMatrix",
    "IterationStats",
    "RunStats",
]
