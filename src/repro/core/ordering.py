"""Row-processing-order heuristics for the Nullspace Algorithm.

The paper (§II.C, refs [19], [21], [23]) orders the non-identity kernel
rows by increasing number of non-zero elements, "a heuristic proven to
often improve the efficiency", and processes rows of reversible reactions
last "because ... no column is removed" when a reversible row is processed.

That static permutation is computed once, from the *initial* kernel — it
is blind to how the pos/neg column split actually evolves as candidates
accumulate.  ``ordering="dynamic"`` (the default) instead treats the
permutation returned by :func:`order_rows` as a *candidate set* layout
and defers the actual choice to run time: a :class:`RowSelector`,
consulted by every driver at the top of every iteration, scores each
remaining row from the live mode matrix and picks the cheapest one.

Cost model
----------
The paper observes that "computation time is proportional to the number
of generated intermediate elementary modes", and an iteration on row
``r`` generates exactly ``|pos(r)| * |neg(r)|`` candidate pairs.  Both
counts are computed vectorized from the mode matrix's cached int8 sign
planes (O(q·m) work per iteration, negligible next to generation
itself).  The selection key is, in order:

1. ``|pos(r)| + |neg(r)|`` — the *active-mode* count, i.e. the paper's
   static min-nonzeros heuristic made exact on the live matrix.  This is
   deliberately the primary key rather than the pair count: greedily
   minimizing the immediate pair product is myopic — it defers rows whose
   active set is still growing, and measured cumulative candidate counts
   on yeast-I-small come out *worse* than the static paper order.
   Minimizing the active count both bounds the pair product
   (``p*n <= (p+n)^2/4``) and shrinks the growth feeding later
   iterations; cumulatively it beats the static order by ~1.26x there.
2. the exact pair count ``|pos(r)| * |neg(r)|`` — tie-break among rows
   with equal active counts.
3. the row position — final deterministic tie-break.

An optional one-step lookahead (``options.selection_lookahead``
shortlisted rows) additionally simulates the candidate row's
RemoveNegColumns effect — irreversible rows drop their negative modes,
which can zero out other remaining columns entirely — and credits each
shortlisted row with the number of follow-up rows it makes *free* (fully
inactive, hence zero-pair) eliminations.

Replica consistency
-------------------
Selection is bit-deterministic: integer scores, ties broken by ascending
row position.  The replicated SPMD drivers hold identical mode matrices
at the top of every iteration, so each rank computes the same argmin
locally with zero extra communication (the scores are invariant to the
*row order* of the mode matrix, which may differ per driver — only the
mode multiset matters, and that is replica-identical).  The
column-partitioned driver shards modes and instead allgathers tiny
per-row count vectors (:meth:`RowSelector.count_matrix` /
:meth:`RowSelector.next_row_from_counts`).

Hard filters (both preserved from the static heuristics):

* *reversible-last* — reversible rows are eligible only once no
  irreversible row remains;
* *subset membership* — only rows inside the driver's
  ``[first_row, stop)`` window are ever candidates, so divide-and-conquer
  pinned rows (Proposition 1) are untouched.
"""

from __future__ import annotations

import numpy as np

from repro.config import AlgorithmOptions
from repro.errors import AlgorithmError


def order_rows(
    kernel: np.ndarray,
    reversible: np.ndarray,
    n_free: int,
    options: AlgorithmOptions,
) -> np.ndarray:
    """Permutation of the non-identity kernel rows (positions ``n_free..q-1``).

    Returns an array ``order`` of *absolute* row positions (values in
    ``[n_free, q)``) giving the processing order.  The identity-part rows
    ``0..n_free-1`` are never reordered — they are no-ops (single
    non-negative entry) and the block structure of eq. (5) keeps them on
    top.

    Heuristics
    ----------
    - ``"dynamic"``: the returned permutation is only the *static layout*
      of the candidate set (the paper heuristic — a good initial layout
      and the memory model's planning surrogate); the processed order is
      chosen at run time by the :class:`RowSelector` each driver consults.
    - ``"paper"``: irreversible rows first, each group sorted by ascending
      non-zero count (ties by position for determinism).
    - ``"natural"``: kernel order as computed.
    - ``"most-nonzeros"``: adversarial inverse of ``"paper"`` (ablation).
    - ``"random"``: seeded shuffle (ablation).
    """
    q = kernel.shape[0]
    if not (0 <= n_free <= q):
        raise AlgorithmError(f"n_free={n_free} out of range for q={q}")
    tail = np.arange(n_free, q)
    if tail.size == 0:
        return tail
    nnz = np.count_nonzero(np.asarray(kernel)[tail], axis=1).astype(np.int64)
    rev = np.asarray(reversible, dtype=bool)[tail]

    if options.ordering == "natural":
        return tail
    if options.ordering == "random":
        rng = np.random.default_rng(options.ordering_seed)
        return tail[rng.permutation(tail.size)]
    if options.ordering in ("paper", "dynamic"):
        key = np.lexsort((tail, nnz, rev.astype(np.int8)))
        return tail[key]
    if options.ordering == "most-nonzeros":
        key = np.lexsort((tail, -nnz, rev.astype(np.int8)))
        return tail[key]
    raise AlgorithmError(f"unknown ordering {options.ordering!r}")


class RowSelector:
    """Chooses the next eliminated row, one iteration at a time.

    One selector per driver run.  Static orderings replay the problem's
    baked-in permutation (positions ``first_row..stop-1`` in order);
    ``ordering="dynamic"`` scores the remaining window rows from the live
    mode matrix (see the module docstring for the cost model and the
    replica-consistency argument).  The selector records the realized
    order (:attr:`realized`) — the checkpoint manifest persists it and
    validates it on resume.

    Parameters
    ----------
    problem:
        The prepared :class:`~repro.core.kernel.NullspaceProblem`.
    stop:
        End of the selection window ``[first_row, stop)`` — Proposition
        1's early-stop position for divide-and-conquer subproblems, so
        pinned rows are never candidates.
    options:
        Supplies ``ordering`` and ``selection_lookahead``.
    processed:
        Row positions already processed (checkpoint resume).  Must be
        in-window, duplicate-free, and — for static orderings — a prefix
        of the static sequence; :class:`~repro.errors.AlgorithmError`
        otherwise.
    """

    __slots__ = (
        "problem",
        "stop",
        "options",
        "dynamic",
        "lookahead",
        "_remaining",
        "realized",
        "last_score",
        "last_evaluated",
    )

    def __init__(
        self,
        problem,
        stop: int,
        options: AlgorithmOptions,
        *,
        processed: "np.ndarray | list[int] | tuple[int, ...]" = (),
    ) -> None:
        if not (problem.first_row <= stop <= problem.q):
            raise AlgorithmError(f"selector stop {stop} out of range")
        self.problem = problem
        self.stop = int(stop)
        self.options = options
        self.dynamic = options.ordering == "dynamic"
        self.lookahead = int(options.selection_lookahead) if self.dynamic else 0
        # Window rows in static replay order (for static orderings this IS
        # the processing order; for dynamic it is only the tie-break-free
        # canonical enumeration of the candidate set).
        window = list(range(problem.first_row, self.stop))
        processed = [int(p) for p in np.asarray(processed, dtype=np.int64).ravel()]
        if processed:
            pset = set(processed)
            if len(pset) != len(processed):
                raise AlgorithmError("processed row order contains duplicates")
            bad = sorted(pset - set(window))
            if bad:
                raise AlgorithmError(
                    f"processed rows {bad} outside the selection window "
                    f"[{problem.first_row}, {self.stop})"
                )
            if not self.dynamic and processed != window[: len(processed)]:
                raise AlgorithmError(
                    f"processed row order {processed} is not a prefix of the "
                    f"static {options.ordering!r} order; the checkpoint was "
                    "written under a different ordering"
                )
            window = [r for r in window if r not in pset]
        self._remaining = window
        self.realized: list[int] = list(processed)
        #: chosen row's global |pos|*|neg| pair count at selection time
        #: (0 on static paths — the split is not known before iterate_row).
        self.last_score = 0
        #: rows scored this iteration (0 on static paths).
        self.last_evaluated = 0

    # -- introspection -------------------------------------------------------

    @property
    def n_remaining(self) -> int:
        return len(self._remaining)

    def has_next(self) -> bool:
        return bool(self._remaining)

    def remaining_rows(self) -> np.ndarray:
        """Remaining window positions, ascending (the candidate set)."""
        return np.array(sorted(self._remaining), dtype=np.int64)

    def annotate(self, it) -> None:
        """Stamp the last selection's telemetry onto an IterationStats."""
        it.sel_score = self.last_score
        it.sel_evaluated = self.last_evaluated

    def adjacency_rows(self) -> np.ndarray:
        """Row positions the combinatorial adjacency test may "see" at the
        current iteration: the identity block plus every row eliminated
        *before* the one just returned by :meth:`next_row` (``realized``'s
        last entry is the in-flight row and is excluded).  Dynamic
        selection eliminates rows out of position order, so the bittree
        acceptance test must mask on this explicit set rather than the
        ``0..k-1`` prefix (see :class:`repro.core.bittree.AdjacencyTest`).
        """
        prior = self.realized[:-1] if self.realized else []
        return np.concatenate(
            [
                np.arange(self.problem.first_row, dtype=np.int64),
                np.asarray(prior, dtype=np.int64),
            ]
        )

    # -- selection -----------------------------------------------------------

    def next_row(self, modes=None) -> int:
        """Pick, record and return the next row to eliminate.

        Static orderings need no state (``modes`` may be ``None``);
        dynamic selection scores the remaining rows from ``modes`` — the
        live :class:`~repro.core.state.ModeMatrix`, replica-identical on
        every rank of a replicated driver.
        """
        if not self._remaining:
            raise AlgorithmError("row selector exhausted")
        if not self.dynamic:
            self.last_score = 0
            self.last_evaluated = 0
            k = self._remaining.pop(0)
            self.realized.append(k)
            return k
        if modes is None:
            raise AlgorithmError("dynamic selection needs the live mode matrix")
        rows = np.array(sorted(self._remaining), dtype=np.int64)
        signs = modes.sign_matrix()[:, rows]
        n_pos = (signs > 0).sum(axis=0, dtype=np.int64)
        n_neg = (signs < 0).sum(axis=0, dtype=np.int64)
        k = self._pick(rows, n_pos, n_neg, signs=signs, modes=modes)
        self._remaining.remove(k)
        self.realized.append(k)
        return k

    def count_matrix(self, modes) -> np.ndarray:
        """This rank's local ``(2, n_remaining)`` pos/neg counts over the
        remaining rows — the column-partitioned driver allgathers these
        (tiny: two int64 per remaining row) and feeds the element-wise sum
        to :meth:`next_row_from_counts`."""
        rows = np.array(sorted(self._remaining), dtype=np.int64)
        if modes.n_modes == 0 or rows.size == 0:
            return np.zeros((2, rows.size), dtype=np.int64)
        signs = modes.sign_matrix()[:, rows]
        return np.stack(
            [
                (signs > 0).sum(axis=0, dtype=np.int64),
                (signs < 0).sum(axis=0, dtype=np.int64),
            ]
        )

    def next_row_from_counts(
        self, n_pos: np.ndarray, n_neg: np.ndarray
    ) -> int:
        """Dynamic selection from globally summed pos/neg counts (aligned
        with :meth:`remaining_rows`).  Base score only — lookahead needs
        the joint sign distribution, which sharded drivers don't hold."""
        if not self._remaining:
            raise AlgorithmError("row selector exhausted")
        rows = np.array(sorted(self._remaining), dtype=np.int64)
        n_pos = np.asarray(n_pos, dtype=np.int64)
        n_neg = np.asarray(n_neg, dtype=np.int64)
        if n_pos.shape != rows.shape or n_neg.shape != rows.shape:
            raise AlgorithmError("count vectors misaligned with remaining rows")
        k = self._pick(rows, n_pos, n_neg, signs=None, modes=None)
        self._remaining.remove(k)
        self.realized.append(k)
        return k

    def _pick(self, rows, n_pos, n_neg, *, signs, modes) -> int:
        """Deterministic argmin over the eligible rows.

        Reversible-last hard filter, selection key ``(active, pairs,
        position)`` (see module docstring), optional one-step lookahead
        over a ``selection_lookahead``-sized shortlist.  All keys are
        integers and the final tie-break is the ascending row position
        (``np.lexsort((rows, pairs, active))`` realizes exactly that), so
        the choice is bit-deterministic and replica-consistent.
        """
        rev = np.asarray(self.problem.reversible, dtype=bool)[rows]
        if not rev.all():
            eligible = np.nonzero(~rev)[0]
        else:
            eligible = np.arange(rows.size)
        active = n_pos[eligible] + n_neg[eligible]
        pairs = n_pos[eligible] * n_neg[eligible]
        order = np.lexsort((rows[eligible], pairs, active))
        self.last_evaluated = int(eligible.size)
        depth = min(self.lookahead, order.size) if signs is not None else 0
        if depth <= 1 or order.size == 1:
            best = eligible[order[0]]
            self.last_score = int(pairs[order[0]])
            return int(rows[best])
        # One-step lookahead over the shortlist: simulate the candidate
        # row's RemoveNegColumns (irreversible rows drop their negative
        # modes -- possibly zeroing other remaining columns entirely) and
        # credit the number of follow-up rows made *free* (fully
        # inactive, hence zero-pair) eliminations.  New accepted
        # candidates are unknowable a priori and deliberately ignored:
        # the credit is a deterministic estimate, identical on every
        # replica.
        shortlist = eligible[order[:depth]]
        active_all = n_pos + n_neg
        best_key = None
        best_row = -1
        for idx in shortlist:
            r = int(rows[idx])
            others = np.nonzero(rows != r)[0]
            credit = 0
            if others.size and not bool(self.problem.reversible[r]):
                # Follow-up activity = current activity minus what the
                # dropped (negative-in-``r``) modes carried; slicing only
                # the dropped rows is far cheaper than re-summing the
                # kept majority of the sign matrix.
                dropped = np.nonzero(signs[:, idx] < 0)[0]
                if dropped.size:
                    lost = np.abs(signs[np.ix_(dropped, others)]).sum(
                        axis=0, dtype=np.int64
                    )
                    follow_active = active_all[others] - lost
                else:
                    follow_active = active_all[others]
                credit = int((follow_active == 0).sum())
            key = (
                int(n_pos[idx] + n_neg[idx]) - credit,
                int(n_pos[idx] * n_neg[idx]),
                r,
            )
            if best_key is None or key < best_key:
                best_key = key
                best_row = r
        i = int(np.nonzero(rows == best_row)[0][0])
        self.last_score = int(n_pos[i] * n_neg[i])
        return best_row

    # -- replica-consistency fingerprint -------------------------------------

    def fingerprint(self, k: int, modes) -> tuple[int, int, int]:
        """Cheap per-iteration selection fingerprint: the chosen row, the
        mode count and a word-sum digest of the support multiset (row-order
        invariant, so replicas that merely *store* their identical modes in
        different row orders agree).  Allgathered and compared only in
        debug/trace mode — production selection needs zero communication.
        """
        words = modes.supports.words
        digest = int(words.sum(dtype=np.uint64)) if words.size else 0
        return (int(k), int(modes.n_modes), digest)
