"""Row-processing-order heuristics for the Nullspace Algorithm.

The paper (§II.C, refs [19], [21], [23]) orders the non-identity kernel
rows by increasing number of non-zero elements, "a heuristic proven to
often improve the efficiency", and processes rows of reversible reactions
last "because ... no column is removed" when a reversible row is processed.
"""

from __future__ import annotations

import numpy as np

from repro.config import AlgorithmOptions
from repro.errors import AlgorithmError


def order_rows(
    kernel: np.ndarray,
    reversible: np.ndarray,
    n_free: int,
    options: AlgorithmOptions,
) -> np.ndarray:
    """Permutation of the non-identity kernel rows (positions ``n_free..q-1``).

    Returns an array ``order`` of *absolute* row positions (values in
    ``[n_free, q)``) giving the processing order.  The identity-part rows
    ``0..n_free-1`` are never reordered — they are no-ops (single
    non-negative entry) and the block structure of eq. (5) keeps them on
    top.

    Heuristics
    ----------
    - ``"paper"``: irreversible rows first, each group sorted by ascending
      non-zero count (ties by position for determinism).
    - ``"natural"``: kernel order as computed.
    - ``"most-nonzeros"``: adversarial inverse of ``"paper"`` (ablation).
    - ``"random"``: seeded shuffle (ablation).
    """
    q = kernel.shape[0]
    if not (0 <= n_free <= q):
        raise AlgorithmError(f"n_free={n_free} out of range for q={q}")
    tail = np.arange(n_free, q)
    if tail.size == 0:
        return tail
    nnz = np.array(
        [sum(1 for x in kernel[r] if x != 0) for r in tail], dtype=np.int64
    )
    rev = np.asarray(reversible, dtype=bool)[tail]

    if options.ordering == "natural":
        return tail
    if options.ordering == "random":
        rng = np.random.default_rng(options.ordering_seed)
        return tail[rng.permutation(tail.size)]
    if options.ordering == "paper":
        key = np.lexsort((tail, nnz, rev.astype(np.int8)))
        return tail[key]
    if options.ordering == "most-nonzeros":
        key = np.lexsort((tail, -nnz, rev.astype(np.int8)))
        return tail[key]
    raise AlgorithmError(f"unknown ordering {options.ordering!r}")
