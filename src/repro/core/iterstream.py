"""Streaming iteration engine: bounded-memory chunked candidate processing.

The batch iteration body (``iter_streaming="off"``) runs the paper's three
phases over the *whole* pair space: generate all prefilter survivors, then
``Sort&RemoveDuplicates`` over the full set, then ``RankTests`` — so one
iteration's entire surviving candidate set exists at once.  That retained
set is the paper's memory bottleneck (Algorithm 2 dies at iteration 59 on
4 GB nodes), and it is what :func:`stream_iteration` dismantles: the pair
space is consumed as a sequence of bounded chunks
(:func:`repro.core.candidates.survivor_chunks` — the same enumeration the
batch path uses, in the same order), and each chunk flows

    generate → incremental dedup → rank-test → accept

to completion before the next chunk's dense values exist.  Live state
between chunks is only the accepted set plus the incremental dedup index
(:class:`repro.core.bittree.SupportIndex`), both of which the batch path
holds anyway — the whole-iteration survivor set never materializes.

Streaming is orthogonal to *which* row an iteration eliminates: the
:class:`~repro.core.ordering.RowSelector` picks ``k`` before the
iteration body runs, and this engine then streams that row's pair space
exactly as the batch body would consume it.  Dynamic selection composes
multiplicatively — it shrinks the pair space that exists, streaming
bounds how much of it is resident at once — which is why the parity
suite pins ordering × streaming jointly.

Bit-identity with the batch path
--------------------------------

The streamed EFM output is bit-identical to batch because every stage is
order- and chunking-invariant:

* *Enumeration*: chunk granularity never reorders the pair space (see
  :func:`~repro.core.candidates.survivor_chunks`), so survivors arrive in
  exactly the batch order.
* *Dedup is keep-first*: within a chunk, first-occurrence
  :func:`~repro.linalg.bitset.unique_rows`; across chunks, membership in
  the index of zero-entry survivors plus earlier *accepted* candidates.  A
  later duplicate of an earlier **accepted** (or zero-entry) support is
  dropped exactly as the batch dedup drops it; a later duplicate of an
  earlier **rejected** support is re-tested instead — the rank test
  decides on the support pattern alone, so it is rejected again and the
  accepted set is unchanged (the support-pattern memo makes the re-test a
  cache hit; only the ``n_duplicates``/``n_tested`` counters can drift
  from batch, never the output).
* *Acceptance is per-candidate*: the algebraic rank test depends only on
  the candidate's own support, never on batch composition; the
  combinatorial adjacency test is per-*pair* and runs inside generation on
  both paths.
* *Materialization is row-wise*: accepted candidates materialize from
  ``(i, j, row)`` exactly as the batch path's deferred pipeline does.

The engine serves both candidate pipelines (dense chunk rows are kept for
accepted candidates on ``"eager"``, supports + pair indices on
``"deferred"``) and all three drivers: the serial/combinatorial bodies
enter through :func:`repro.core.serial.iterate_row`, the column-partitioned
driver streams its local pair share directly (no zero-entry preload — its
duplicate control against zero survivors is global, after the allgather).
Exact-arithmetic runs always take the batch path.
"""

from __future__ import annotations

import numpy as np

from repro.config import AlgorithmOptions
from repro.core.bittree import SupportIndex
from repro.core.candidates import PairRange, survivor_chunks
from repro.core.ranktest import rank_test
from repro.core.state import CandidateBatch, ModeMatrix, canonical_support_mask
from repro.core.stats import IterationStats, PhaseTimer
from repro.errors import AlgorithmError
from repro.linalg import bitset, rational
from repro.linalg.bitset import PackedSupports, pack_support_rows


def resolve_chunk_pairs(q: int, options: AlgorithmOptions) -> int:
    """Pairs per streaming chunk for this iteration's geometry — the
    ``iter_chunk_bytes`` budget divided by the per-pair transient cost
    (:func:`repro.cluster.memory.streaming_chunk_pairs`), never above
    ``options.pair_chunk``."""
    from repro.cluster.memory import streaming_chunk_pairs  # noqa: PLC0415

    return streaming_chunk_pairs(
        q,
        options.iter_chunk_bytes,
        options.pair_chunk,
        options.candidate_pipeline,
    )


def stream_iteration(
    modes: ModeMatrix,
    k: int,
    pos_idx: np.ndarray,
    neg_idx: np.ndarray,
    pair_range: PairRange,
    n_perm: np.ndarray,
    rank_bound: int,
    options: AlgorithmOptions,
    stats: IterationStats,
    *,
    zero_words: np.ndarray | None = None,
    adjacency=None,
    acceptance: str | None = None,
    n_exact: "rational.FractionMatrix | None" = None,
    rank_cache=None,
) -> ModeMatrix | CandidateBatch:
    """Run one iteration's candidate phase as a bounded-memory stream.

    Returns this worker's accepted candidates — a support-only
    :class:`~repro.core.state.CandidateBatch` on the deferred pipeline, a
    dense :class:`~repro.core.state.ModeMatrix` on the eager one — exactly
    what the batch ``generate → dedup → rank-test`` sequence returns, in
    the same order.  The live :class:`~repro.core.bittree.SupportIndex` is
    attached to the result as ``dedup_index`` so memory accounting
    (``nbytes``/``payload_nbytes``) sees the streaming state for as long
    as the caller keeps the candidates around.

    ``zero_words`` preloads the index with the zero-entry survivors'
    supports (the serial/combinatorial duplicate rule; the distributed
    driver passes ``None`` and keeps its global post-allgather control).
    ``acceptance`` overrides ``options.acceptance`` (the distributed
    driver always rank-tests).  Timings land in the same phase buckets as
    batch: generation in ``t_gen_cand``, dedup/accept bookkeeping in
    ``t_merge``, the acceptance test in ``t_rank_test``.
    """
    deferred = options.candidate_pipeline == "deferred" and not modes.exact
    if acceptance is None:
        acceptance = options.acceptance
    rank_mode = acceptance in ("rank", "both")
    n_words = modes.supports.words.shape[1]
    index = SupportIndex(n_words, frozen=zero_words)

    acc_words: list[np.ndarray] = []
    acc_i: list[np.ndarray] = []
    acc_j: list[np.ndarray] = []
    acc_modes: list[ModeMatrix] = []
    acc_bytes = 0
    n_accepted = 0

    gen = survivor_chunks(
        modes, k, pos_idx, neg_idx, pair_range, rank_bound, options, stats,
        adjacency=adjacency, chunk_pairs=resolve_chunk_pairs(modes.q, options),
    )
    while True:
        # Pull the next survivor chunk; the pair enumeration, zone-map
        # pruning and prefilter all run inside the generator, so their
        # cost lands in the generation bucket just as in batch.
        with PhaseTimer(stats, "t_gen_cand"):
            item = next(gen, None)
        if item is None:
            break
        i_ok, j_ok, raw, _transient = item
        stats.n_chunks += 1

        chunk_modes = None
        with PhaseTimer(stats, "t_merge"):
            if deferred:
                mask = canonical_support_mask(raw, modes.policy)
                words = pack_support_rows(mask)
                chunk_bytes = int(
                    words.nbytes + i_ok.nbytes + j_ok.nbytes
                )
            else:
                chunk_modes = ModeMatrix(raw, policy=modes.policy)
                words = chunk_modes.supports.words
                chunk_bytes = chunk_modes.nbytes()
            del raw  # the dense chunk dies before the next one is generated
            stats.peak_chunk_bytes = max(stats.peak_chunk_bytes, chunk_bytes)
            stats.candidate_bytes = max(
                stats.candidate_bytes, acc_bytes + index.nbytes() + chunk_bytes
            )
            # Keep-first dedup: within the chunk, then against everything
            # accepted (or zero-surviving) so far.
            _, first = bitset.unique_rows(words)
            n_dup = words.shape[0] - len(first)
            if n_dup:
                words = words[first]
                i_ok = i_ok[first]
                j_ok = j_ok[first]
            fresh = ~index.seen(words)
            n_seen = int(words.shape[0] - fresh.sum())
            if n_seen:
                words = words[fresh]
                i_ok = i_ok[fresh]
                j_ok = j_ok[fresh]
                if chunk_modes is not None:
                    first = first[fresh]
            stats.n_duplicates += n_dup + n_seen
            if deferred:
                cand = CandidateBatch._from_parts(
                    PackedSupports(words, modes.q), i_ok, j_ok, k,
                    modes.policy,
                )
            else:
                cand = chunk_modes.select(first)
        if cand.n_modes == 0:
            continue

        accept = None
        if rank_mode:
            stats.n_tested += cand.n_modes
            with PhaseTimer(stats, "t_rank_test"):
                accept = rank_test(
                    cand,
                    n_perm,
                    rank_bound,
                    policy=options.policy,
                    n_exact=n_exact,
                    backend=options.rank_backend,
                    cache=rank_cache,
                    stats=stats,
                )
            if acceptance == "both" and not accept.all():
                raise AlgorithmError(
                    "adjacency test accepted a candidate the rank test "
                    f"rejects at row {k} ({int((~accept).sum())} of "
                    f"{cand.n_modes})"
                )
            if not accept.all():
                cand = cand.select(np.flatnonzero(accept))

        with PhaseTimer(stats, "t_merge"):
            if cand.n_modes:
                n_accepted += cand.n_modes
                index.add(cand.supports.words)
                if deferred:
                    acc_words.append(cand.supports.words)
                    acc_i.append(cand.pair_i)
                    acc_j.append(cand.pair_j)
                else:
                    acc_modes.append(cand)
                acc_bytes += cand.nbytes()

    stats.n_dedup_probes += index.n_probes
    stats.candidate_bytes = max(stats.candidate_bytes, acc_bytes + index.nbytes())
    with PhaseTimer(stats, "t_merge"):
        if deferred:
            if acc_words:
                out = CandidateBatch._from_parts(
                    PackedSupports(np.concatenate(acc_words, axis=0), modes.q),
                    np.concatenate(acc_i),
                    np.concatenate(acc_j),
                    k,
                    modes.policy,
                )
            else:
                out = CandidateBatch.empty(modes.q, k, policy=modes.policy)
        else:
            if acc_modes:
                out = acc_modes[0]
                for m in acc_modes[1:]:
                    out = out.concat(m)
            else:
                out = ModeMatrix.empty(modes.q, policy=modes.policy)
        out.dedup_index = index
    return out
