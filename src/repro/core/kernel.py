"""Problem setup: the initial nullspace matrix in the paper's form.

Builds, from a (reduced) network or raw stoichiometry, the permuted problem
of eqs. (5)–(6): reaction columns permuted so the kernel reads ``(I; R2)``
with identity rows on top, the ``R2`` rows ordered by the processing
heuristic, and — for divide-and-conquer subproblems — selected reactions
forced to the bottom (Algorithm 3, line 11).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.config import DEFAULT_OPTIONS, AlgorithmOptions
from repro.core.ordering import order_rows
from repro.errors import (
    AlgorithmError,
    DependentPartitionError,
    ReversibleIdentityError,
)
from repro.linalg.numeric import kernel_identity_form
from repro.network.model import MetabolicNetwork
from repro.network.stoichiometry import stoichiometric_matrix


@dataclasses.dataclass(frozen=True)
class NullspaceProblem:
    """A fully prepared Nullspace Algorithm instance.

    All arrays are in the *processing* permutation: position ``i`` of the
    kernel rows / stoichiometric columns / names / reversibility flags is
    the reaction processed at iteration ``i`` (identity-block positions
    ``0..n_free-1`` are no-ops and skipped unless ``first_row == 0``).

    Attributes
    ----------
    n_perm:
        Stoichiometry with permuted columns, shape ``(m, q)`` (eq. (6)).
    kernel:
        Initial nullspace matrix, shape ``(q, n_free)`` (eq. (5)).
    reversible:
        Per-position reversibility flags.
    names:
        Per-position reaction names.
    perm:
        ``perm[i]`` = input-order reaction index at position ``i``.
    n_free:
        Kernel dimension (number of initial modes).
    rank:
        Rank of the stoichiometry (= ``q - n_free``); the rank test's
        summary-rejection bound.
    first_row:
        Position where iteration starts (``n_free`` normally; 0 when the
        permutation moved identity rows away from the top).
    """

    n_perm: np.ndarray
    kernel: np.ndarray
    reversible: np.ndarray
    names: tuple[str, ...]
    perm: np.ndarray
    n_free: int
    rank: int
    first_row: int

    @property
    def q(self) -> int:
        return self.n_perm.shape[1]

    @property
    def m(self) -> int:
        return self.n_perm.shape[0]

    @property
    def n_iterations(self) -> int:
        """Number of rows the standard (non-D&C) run processes."""
        return self.q - self.first_row

    def inverse_perm(self) -> np.ndarray:
        inv = np.empty_like(self.perm)
        inv[self.perm] = np.arange(self.perm.size)
        return inv

    def position_of(self, name: str) -> int:
        """Processing position of a reaction by name."""
        try:
            return self.names.index(name)
        except ValueError:
            raise AlgorithmError(f"reaction {name!r} not in problem") from None


def build_problem(
    network: MetabolicNetwork,
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    force_last: Sequence[str] = (),
    free_hint: Sequence[str] = (),
) -> NullspaceProblem:
    """Prepare a problem from a (typically compressed) network.

    ``force_last`` lists reaction names that must occupy the *bottom* rows,
    in the given order (the last listed name becomes the very last row) —
    the divide-and-conquer driver uses this to pin its partitioning
    reactions (Algorithm 3 line 11).

    ``free_hint`` lists reactions preferred for the identity (free) block —
    used to reproduce the paper's worked example verbatim; they must be
    irreversible.
    """
    n = stoichiometric_matrix(network)
    rev = np.array(network.reversibility, dtype=bool)
    return problem_from_matrices(
        n,
        rev,
        network.reaction_names,
        options=options,
        force_last=force_last,
        free_hint=free_hint,
    )


def problem_from_matrices(
    n: np.ndarray,
    reversible: np.ndarray,
    names: Sequence[str],
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    force_last: Sequence[str] = (),
    free_hint: Sequence[str] = (),
) -> NullspaceProblem:
    """Prepare a problem from a raw stoichiometry (input column order)."""
    n = np.asarray(n, dtype=np.float64)
    reversible = np.asarray(reversible, dtype=bool)
    names = tuple(names)
    q = n.shape[1]
    if reversible.shape != (q,) or len(names) != q:
        raise AlgorithmError("stoichiometry/reversibility/names size mismatch")
    if len(set(names)) != q:
        raise AlgorithmError("duplicate reaction names")
    for fname in force_last:
        if fname not in names:
            raise AlgorithmError(f"force_last reaction {fname!r} not in network")
    for fname in free_hint:
        if fname not in names:
            raise AlgorithmError(f"free_hint reaction {fname!r} not in network")
        if reversible[names.index(fname)]:
            raise AlgorithmError(
                f"free_hint reaction {fname!r} is reversible; the identity "
                "block must consist of irreversible reactions"
            )

    # Reversible reactions must become pivots (processed rows); a reversible
    # reaction in the identity block would never pair its negative fluxes.
    # Divide-and-conquer partition reactions (force_last) need sign
    # diversity at their rows for the same reason, so they get pivot
    # priority too (-2: even ahead of plain reversibles).  Reactions named
    # in free_hint are pushed the other way.
    force_idx = [names.index(f) for f in force_last]
    pivot_priority = np.zeros(q, dtype=np.int8)
    pivot_priority[reversible] = -1  # scan first -> pivots
    pivot_priority[force_idx] = -2
    pivot_priority[[names.index(f) for f in free_hint]] = 1  # scan last -> free

    kernel0, col_perm = kernel_identity_form(
        n, exact=True, policy=options.policy, pivot_priority=pivot_priority
    )
    n_free = kernel0.shape[1]
    if n_free == 0:
        raise AlgorithmError("stoichiometry has a trivial nullspace: no modes exist")
    free_names = {names[int(c)] for c in col_perm[:n_free]}
    forced_free = [f for f in force_last if f in free_names and reversible[names.index(f)]]
    if forced_free:
        raise DependentPartitionError(
            f"partition reactions {forced_free} are reversible but linearly "
            "dependent on the other pivot columns; their rows cannot carry "
            "negative entries and the zero/non-zero subset split would be "
            "incomplete"
        )
    rev_free = sorted(
        f for f in free_names if reversible[names.index(f)] and f not in force_last
    )
    if rev_free:
        raise ReversibleIdentityError(
            "the nullspace dimension exceeds the number of linearly "
            "independent irreversible reactions; reversible reactions "
            f"{rev_free} would land in the identity block and their "
            "negative-flux modes would be lost.  Split them into "
            "irreversible forward/backward pairs first "
            "(repro.efm.split_reversible, or compute_efms(auto_split=True)).",
            reactions=tuple(rev_free),
        )

    # Bake the static row permutation into the problem.  Under
    # ordering="dynamic" this is only the candidate-set *layout* (and the
    # planning surrogate's order) — the processed order is chosen at run
    # time by the RowSelector each driver consults; the permutation must
    # still be computed here so the problem's matrices, names and D&C
    # pinned positions agree across orderings.
    rev_perm0 = reversible[col_perm]
    tail_order = order_rows(kernel0, rev_perm0, n_free, options)
    base = np.concatenate([np.arange(n_free), tail_order])

    first_row = n_free
    if force_last:
        name_pos = {names[col_perm[p]]: i for i, p in enumerate(base)}
        forced_base_positions = [name_pos[f] for f in force_last]
        forced_set = set(forced_base_positions)
        rest = [i for i in range(q) if i not in forced_set]
        new_order = np.array(rest + forced_base_positions, dtype=np.intp)
        base = base[new_order]
        # If any forced reaction sat in the identity block, the block
        # structure is broken and every row must be processed.
        if any(p < n_free for p in forced_base_positions):
            first_row = 0

    perm = col_perm[base]
    return NullspaceProblem(
        n_perm=np.ascontiguousarray(n[:, perm]),
        kernel=np.ascontiguousarray(kernel0[base, :]),
        reversible=reversible[perm].copy(),
        names=tuple(names[int(i)] for i in perm),
        perm=np.asarray(perm, dtype=np.intp),
        n_free=n_free,
        rank=q - n_free,
        first_row=first_row,
    )
