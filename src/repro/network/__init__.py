"""Metabolic network substrate: model classes, reaction-equation parser,
stoichiometric matrices, and the compression preprocessing step."""

from repro.network.compression import CompressionRecord, compress_network
from repro.network.model import MetabolicNetwork, Metabolite, Reaction
from repro.network.parser import parse_reaction, network_from_equations
from repro.network.stoichiometry import stoichiometric_matrix
from repro.network.validation import validate_network

__all__ = [
    "CompressionRecord",
    "compress_network",
    "MetabolicNetwork",
    "Metabolite",
    "Reaction",
    "parse_reaction",
    "network_from_equations",
    "stoichiometric_matrix",
    "validate_network",
]
