"""Stoichiometric-matrix construction (eq. (2) of the paper)."""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.linalg.rational import FractionMatrix
from repro.network.model import MetabolicNetwork


def stoichiometric_matrix(network: MetabolicNetwork, *, dtype=np.float64) -> np.ndarray:
    """Dense stoichiometric matrix ``N``: rows = metabolites (network row
    order), columns = reactions (network column order), ``N[i, j]`` = molar
    coefficient of metabolite ``i`` in reaction ``j``."""
    n = np.zeros(network.shape, dtype=dtype)
    for j, rxn in enumerate(network.reactions):
        for met, coeff in rxn.stoich.items():
            n[network.metabolite_index(met), j] = float(coeff)
    return n


def exact_stoichiometric_matrix(network: MetabolicNetwork) -> FractionMatrix:
    """Exact (Fraction) stoichiometric matrix with the same layout."""
    m, q = network.shape
    out: FractionMatrix = [[Fraction(0)] * q for _ in range(m)]
    for j, rxn in enumerate(network.reactions):
        for met, coeff in rxn.stoich.items():
            out[network.metabolite_index(met)][j] = coeff
    return out


def reversibility_vector(network: MetabolicNetwork) -> np.ndarray:
    """Boolean per-reaction reversibility flags in column order."""
    return np.array(network.reversibility, dtype=bool)
