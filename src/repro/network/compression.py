"""Network compression — the paper's preprocessing reduction step.

Before the Nullspace Algorithm runs, "the metabolic network and its
stoichiometry matrix may be reduced by eliminating redundant reactions,
metabolites, and constraints" (§II.C, refs [19], [21], [29]); the reduced
network has an *equivalent* EFM set.  This module implements the three
classical lossless reductions, iterated to a fixpoint:

1. **Blocked-reaction removal** (dead ends): a metabolite that cannot be
   balanced forces every reaction touching it to zero flux.
2. **Coupled-reaction merging**: a metabolite touched by exactly two
   reactions ties their fluxes by an exact ratio, so the pair merges into
   one column and the metabolite row disappears (this is how the toy
   network's ``D`` row and ``r9`` column vanish, with ``r9 ≡ r3``).
3. **Unconstrained-column extraction**: a reaction whose merged column is
   identically zero is not constrained by steady state at all; it is an
   elementary mode by itself (e.g. a fully merged 2-cycle) and is lifted
   out as a *singleton EFM*.

Linearly dependent metabolite rows (conservation relations) beyond case 2
are left in place — they do not change the nullspace, only the echelon
reduction cost, and the exact-arithmetic kernel handles rank-deficient
stoichiometries directly.

The :class:`CompressionRecord` returned alongside the reduced network is an
exact linear map from reduced flux space back to the original reaction
space, so EFMs computed on the reduced network expand losslessly.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction
from typing import Mapping, Sequence

import numpy as np

from repro.errors import CompressionError
from repro.network.model import MetabolicNetwork, Metabolite, Reaction


@dataclasses.dataclass
class _LiveReaction:
    """Mutable working copy of a (possibly merged) reaction during
    compression."""

    name: str
    stoich: dict[str, Fraction]
    reversible: bool
    exchange: bool
    #: Exact map from this merged variable to original reaction fluxes.
    expansion: dict[str, Fraction]
    #: Original column order of the representative (for stable output order).
    order: int


@dataclasses.dataclass(frozen=True)
class SingletonEFM:
    """An elementary mode fully determined during compression.

    ``fluxes`` maps original reaction names to exact flux values; the mode
    is the ray ``{t * fluxes : t > 0}``.
    """

    fluxes: Mapping[str, Fraction]
    reversible: bool


@dataclasses.dataclass(frozen=True)
class CompressionRecord:
    """Losslessly invertible record of a compression run.

    Attributes
    ----------
    original, reduced:
        The input network and its compressed equivalent.
    expansion:
        Exact matrix (list-of-rows of Fractions), shape
        ``(n_original_reactions, n_reduced_reactions)``: a reduced flux
        vector ``v`` expands to original fluxes ``expansion @ v``.
    blocked:
        Original reaction names proven to carry zero flux in every steady
        state (they expand to 0 in every EFM).
    singletons:
        EFMs fully resolved during compression (zero columns / merged
        cycles); disjoint from the reduced network's EFMs.
    merged_groups:
        For each reduced reaction name, the original reactions folded into
        it (singleton groups mean "not merged").
    """

    original: MetabolicNetwork
    reduced: MetabolicNetwork
    expansion: list[list[Fraction]]
    blocked: tuple[str, ...]
    singletons: tuple[SingletonEFM, ...]
    merged_groups: Mapping[str, tuple[str, ...]]

    @property
    def expansion_array(self) -> np.ndarray:
        """Float64 view of :attr:`expansion`."""
        q_orig = self.original.n_reactions
        q_red = self.reduced.n_reactions
        out = np.zeros((q_orig, q_red))
        for i in range(q_orig):
            for j in range(q_red):
                out[i, j] = float(self.expansion[i][j])
        return out

    def expand_fluxes(self, reduced_fluxes: np.ndarray) -> np.ndarray:
        """Map a reduced flux matrix ``(q_red, n_modes)`` to the original
        reaction space ``(q_orig, n_modes)`` (float64)."""
        reduced_fluxes = np.atleast_2d(np.asarray(reduced_fluxes, dtype=np.float64))
        if reduced_fluxes.shape[0] != self.reduced.n_reactions:
            raise CompressionError(
                f"flux matrix has {reduced_fluxes.shape[0]} rows, expected "
                f"{self.reduced.n_reactions}"
            )
        return self.expansion_array @ reduced_fluxes

    def singleton_flux_matrix(self) -> np.ndarray:
        """Singleton EFMs as columns in the original reaction space."""
        q = self.original.n_reactions
        out = np.zeros((q, len(self.singletons)))
        for k, s in enumerate(self.singletons):
            for name, val in s.fluxes.items():
                out[self.original.reaction_index(name), k] = float(val)
        return out

    def summary(self) -> str:
        """One-line "62×78 → 35×55"-style report."""
        mo, qo = self.original.shape
        mr, qr = self.reduced.shape
        return (
            f"{self.original.name}: {mo}x{qo} -> {mr}x{qr} "
            f"({len(self.blocked)} blocked, {len(self.singletons)} singleton EFMs, "
            f"{sum(1 for g in self.merged_groups.values() if len(g) > 1)} merges)"
        )


def compress_network(
    network: MetabolicNetwork, *, max_rounds: int = 10_000
) -> CompressionRecord:
    """Compress ``network`` to an EFM-equivalent reduced network.

    Iterates blocked-reaction removal, coupled-pair merging, and
    unconstrained-column extraction to a fixpoint.  Deterministic: scans
    run in metabolite/reaction order and the lowest-index reaction of a
    merged pair becomes the representative.
    """
    live: list[_LiveReaction] = [
        _LiveReaction(
            name=r.name,
            stoich=dict(r.stoich),
            reversible=r.reversible,
            exchange=r.exchange,
            expansion={r.name: Fraction(1)},
            order=i,
        )
        for i, r in enumerate(network.reactions)
    ]
    live_mets: list[str] = list(network.metabolite_names)
    blocked: set[str] = set()
    singletons: list[SingletonEFM] = []

    for _ in range(max_rounds):
        if not _compression_round(live, live_mets, blocked, singletons):
            break
    else:  # pragma: no cover - defensive; rounds strictly shrink the problem
        raise CompressionError("compression did not reach a fixpoint")

    live.sort(key=lambda r: r.order)
    reduced_reactions = [
        Reaction(name=r.name, stoich=r.stoich, reversible=r.reversible, exchange=r.exchange)
        for r in live
    ]
    referenced = {m for r in live for m in r.stoich}
    reduced_mets = [Metabolite(m) for m in live_mets if m in referenced]
    reduced = MetabolicNetwork(network.name + "-reduced", reduced_mets, reduced_reactions)

    q_orig = network.n_reactions
    expansion: list[list[Fraction]] = [
        [Fraction(0)] * len(live) for _ in range(q_orig)
    ]
    merged_groups: dict[str, tuple[str, ...]] = {}
    for j, r in enumerate(live):
        members = []
        for orig_name, coeff in r.expansion.items():
            expansion[network.reaction_index(orig_name)][j] = coeff
            members.append(orig_name)
        merged_groups[r.name] = tuple(sorted(members))

    return CompressionRecord(
        original=network,
        reduced=reduced,
        expansion=expansion,
        blocked=tuple(sorted(blocked)),
        singletons=tuple(singletons),
        merged_groups=merged_groups,
    )


def _compression_round(
    live: list[_LiveReaction],
    live_mets: list[str],
    blocked: set[str],
    singletons: list[SingletonEFM],
) -> bool:
    """Run one scan of all three reductions; returns True if anything
    changed."""
    changed = False

    # 3. Unconstrained columns -> singleton EFMs.
    still_live: list[_LiveReaction] = []
    for r in live:
        if r.stoich:
            still_live.append(r)
        else:
            singletons.append(
                SingletonEFM(fluxes=dict(r.expansion), reversible=r.reversible)
            )
            changed = True
    live[:] = still_live

    # Index metabolite -> touching live reactions.
    touching: dict[str, list[_LiveReaction]] = {m: [] for m in live_mets}
    for r in live:
        for m in r.stoich:
            touching[m].append(r)

    # Drop untouched metabolite rows.
    untouched = [m for m in live_mets if not touching[m]]
    if untouched:
        for m in untouched:
            live_mets.remove(m)
            del touching[m]
        changed = True

    # 1. Dead-end blocking.
    to_block: set[str] = set()
    for m in live_mets:
        rxns = touching[m]
        if len(rxns) == 1:
            to_block.add(rxns[0].name)
            continue
        if any(r.reversible for r in rxns):
            continue
        signs = {1 if r.stoich[m] > 0 else -1 for r in rxns}
        if len(signs) == 1:  # only produced or only consumed
            to_block.update(r.name for r in rxns)
    if to_block:
        for r in live:
            if r.name in to_block:
                # Every original reaction folded into a blocked merged
                # variable carries zero flux in all steady states.
                blocked.update(r.expansion.keys())
        live[:] = [r for r in live if r.name not in to_block]
        return True  # restart the scan with fresh indices

    # 2. Coupled-pair merge (first applicable metabolite only, then rescan).
    for m in live_mets:
        rxns = touching[m]
        if len(rxns) != 2:
            continue
        j1, j2 = sorted(rxns, key=lambda r: r.order)
        merged, block_pair = _merge_pair(j1, j2, m)
        if block_pair:
            blocked.update(j1.expansion.keys())
            blocked.update(j2.expansion.keys())
            live[:] = [r for r in live if r is not j1 and r is not j2]
        else:
            assert merged is not None
            idx = live.index(j1)
            live[idx] = merged
            live.remove(j2)
        live_mets.remove(m)
        return True

    return changed


def _merge_pair(
    j1: _LiveReaction, j2: _LiveReaction, met: str
) -> tuple[_LiveReaction | None, bool]:
    """Merge two reactions coupled through ``met``.

    Steady state forces ``c1*v1 + c2*v2 = 0``, i.e. ``v2 = lam*v1`` with
    ``lam = -c1/c2``.  Returns ``(merged, blocked)``; ``blocked`` is True
    when the direction constraints force ``v1 = 0`` (both reactions dead).
    """
    c1 = j1.stoich[met]
    c2 = j2.stoich[met]
    lam = -c1 / c2

    # Direction constraint on v1 from each irreversible member:
    #  j1 irreversible -> v1 >= 0
    #  j2 irreversible -> lam*v1 >= 0  -> v1 >= 0 if lam > 0 else v1 <= 0
    lower = not j1.reversible or (not j2.reversible and lam > 0)  # v1 >= 0
    upper = not j2.reversible and lam < 0  # v1 <= 0
    if lower and upper:
        return None, True

    stoich: dict[str, Fraction] = dict(j1.stoich)
    for m, c in j2.stoich.items():
        stoich[m] = stoich.get(m, Fraction(0)) + lam * c
    stoich = {m: c for m, c in stoich.items() if c != 0}
    if met in stoich:  # pragma: no cover - cancellation is exact by construction
        raise CompressionError(f"merge through {met!r} failed to cancel")

    expansion: dict[str, Fraction] = dict(j1.expansion)
    for name, c in j2.expansion.items():
        expansion[name] = expansion.get(name, Fraction(0)) + lam * c
    expansion = {n: c for n, c in expansion.items() if c != 0}

    reversible = not (lower or upper)
    if upper:  # flip orientation so the merged flux variable is >= 0
        stoich = {m: -c for m, c in stoich.items()}
        expansion = {n: -c for n, c in expansion.items()}

    merged = _LiveReaction(
        name=j1.name,
        stoich=stoich,
        reversible=reversible,
        exchange=j1.exchange or j2.exchange,
        expansion=expansion,
        order=j1.order,
    )
    return merged, False
