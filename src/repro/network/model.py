"""Core metabolic-network model classes.

A :class:`MetabolicNetwork` is a set of internal metabolites and a list of
reactions with rational stoichiometric coefficients.  External metabolites
(the paper's ``*ext`` species outside the dotted system boundary of Fig. 1)
are *not* represented as rows — a reaction that consumes or produces only
external species simply has fewer internal terms; exchange reactions are
those that reference at least one external name in their equation, tracked
for reporting only.

Networks are immutable after construction (builder-style constructor), so
they can be shared freely across simulated compute ranks.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from repro.errors import NetworkError


@dataclasses.dataclass(frozen=True)
class Metabolite:
    """An internal metabolite (a row of the stoichiometric matrix)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise NetworkError(f"invalid metabolite name {self.name!r}")


@dataclasses.dataclass(frozen=True)
class Reaction:
    """A reaction (a column of the stoichiometric matrix).

    Parameters
    ----------
    name:
        Unique reaction identifier (e.g. ``"R8r"``).  The paper's convention
        of a trailing ``r`` for reversible reactions is *not* interpreted —
        reversibility is the explicit ``reversible`` flag.
    stoich:
        Mapping from internal metabolite name to its signed rational
        coefficient (negative = consumed, positive = produced).  Metabolites
        with zero coefficient must be omitted.
    reversible:
        Whether the flux may be negative.
    exchange:
        Whether the reaction crosses the system boundary (transports an
        external species).  Informational; does not affect the mathematics.
    """

    name: str
    stoich: Mapping[str, Fraction]
    reversible: bool = False
    exchange: bool = False

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise NetworkError(f"invalid reaction name {self.name!r}")
        frozen: dict[str, Fraction] = {}
        for met, coeff in self.stoich.items():
            c = coeff if isinstance(coeff, Fraction) else Fraction(coeff)
            if c == 0:
                raise NetworkError(
                    f"reaction {self.name!r} lists metabolite {met!r} with zero "
                    "coefficient; omit it instead"
                )
            frozen[met] = c
        object.__setattr__(self, "stoich", frozen)

    def __hash__(self) -> int:
        # dataclass-generated hashing chokes on the stoich dict; hash a
        # canonical frozen view instead (order-independent).
        return hash(
            (
                self.name,
                tuple(sorted(self.stoich.items())),
                self.reversible,
                self.exchange,
            )
        )

    @property
    def substrates(self) -> tuple[str, ...]:
        """Internal metabolites consumed (negative coefficient)."""
        return tuple(m for m, c in self.stoich.items() if c < 0)

    @property
    def products(self) -> tuple[str, ...]:
        """Internal metabolites produced (positive coefficient)."""
        return tuple(m for m, c in self.stoich.items() if c > 0)

    def reversed_copy(self) -> "Reaction":
        """The same conversion with all coefficients negated.

        Used when canonicalizing merged reactions during compression.
        """
        return Reaction(
            name=self.name,
            stoich={m: -c for m, c in self.stoich.items()},
            reversible=self.reversible,
            exchange=self.exchange,
        )


class MetabolicNetwork:
    """An immutable metabolic network.

    Parameters
    ----------
    name:
        Display name (``"toy"``, ``"yeast-I"``, ...).
    metabolites:
        Ordered internal metabolites; order fixes the stoichiometric row
        order.
    reactions:
        Ordered reactions; order fixes the column order.  Every metabolite
        referenced by a reaction must appear in ``metabolites``, and every
        metabolite must be referenced by at least one reaction unless
        ``allow_orphan_metabolites`` is set.
    """

    def __init__(
        self,
        name: str,
        metabolites: Sequence[Metabolite | str],
        reactions: Sequence[Reaction],
        *,
        allow_orphan_metabolites: bool = False,
    ) -> None:
        self.name = name
        self.metabolites: tuple[Metabolite, ...] = tuple(
            m if isinstance(m, Metabolite) else Metabolite(m) for m in metabolites
        )
        self.reactions: tuple[Reaction, ...] = tuple(reactions)

        met_names = [m.name for m in self.metabolites]
        if len(set(met_names)) != len(met_names):
            raise NetworkError(f"duplicate metabolite names in network {name!r}")
        rxn_names = [r.name for r in self.reactions]
        if len(set(rxn_names)) != len(rxn_names):
            raise NetworkError(f"duplicate reaction names in network {name!r}")

        self._met_index: dict[str, int] = {n: i for i, n in enumerate(met_names)}
        self._rxn_index: dict[str, int] = {n: i for i, n in enumerate(rxn_names)}

        referenced: set[str] = set()
        for rxn in self.reactions:
            for met in rxn.stoich:
                if met not in self._met_index:
                    raise NetworkError(
                        f"reaction {rxn.name!r} references unknown metabolite {met!r}"
                    )
                referenced.add(met)
        if not allow_orphan_metabolites:
            orphans = set(met_names) - referenced
            if orphans:
                raise NetworkError(
                    f"metabolites never referenced by any reaction: {sorted(orphans)}"
                )

    # -- sizes --------------------------------------------------------------

    @property
    def n_metabolites(self) -> int:
        return len(self.metabolites)

    @property
    def n_reactions(self) -> int:
        return len(self.reactions)

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_metabolites, n_reactions)`` — the stoichiometric shape."""
        return (self.n_metabolites, self.n_reactions)

    # -- lookups ------------------------------------------------------------

    def metabolite_index(self, name: str) -> int:
        try:
            return self._met_index[name]
        except KeyError:
            raise NetworkError(f"unknown metabolite {name!r}") from None

    def reaction_index(self, name: str) -> int:
        try:
            return self._rxn_index[name]
        except KeyError:
            raise NetworkError(f"unknown reaction {name!r}") from None

    def reaction(self, name: str) -> Reaction:
        return self.reactions[self.reaction_index(name)]

    def has_reaction(self, name: str) -> bool:
        return name in self._rxn_index

    @property
    def reaction_names(self) -> tuple[str, ...]:
        return tuple(r.name for r in self.reactions)

    @property
    def metabolite_names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self.metabolites)

    @property
    def reversibility(self) -> tuple[bool, ...]:
        """Per-reaction reversibility flags in column order."""
        return tuple(r.reversible for r in self.reactions)

    def reactions_consuming(self, met: str) -> tuple[Reaction, ...]:
        """Reactions with a negative coefficient for ``met``."""
        self.metabolite_index(met)
        return tuple(r for r in self.reactions if r.stoich.get(met, 0) < 0)

    def reactions_producing(self, met: str) -> tuple[Reaction, ...]:
        """Reactions with a positive coefficient for ``met``."""
        self.metabolite_index(met)
        return tuple(r for r in self.reactions if r.stoich.get(met, 0) > 0)

    # -- derived networks ----------------------------------------------------

    def without_reactions(self, names: Iterable[str], *, suffix: str = "-sub") -> "MetabolicNetwork":
        """Copy with the named reactions deleted (knockout / divide-and-
        conquer zero-flux subproblem).  Metabolites no longer referenced are
        dropped as well."""
        drop = set(names)
        unknown = drop - set(self.reaction_names)
        if unknown:
            raise NetworkError(f"cannot drop unknown reactions: {sorted(unknown)}")
        kept = [r for r in self.reactions if r.name not in drop]
        referenced = {m for r in kept for m in r.stoich}
        mets = [m for m in self.metabolites if m.name in referenced]
        return MetabolicNetwork(self.name + suffix, mets, kept)

    def with_reversibility(self, flags: Mapping[str, bool]) -> "MetabolicNetwork":
        """Copy with some reactions' reversibility flags overridden."""
        unknown = set(flags) - set(self.reaction_names)
        if unknown:
            raise NetworkError(f"unknown reactions in reversibility map: {sorted(unknown)}")
        new = [
            dataclasses.replace(r, reversible=flags.get(r.name, r.reversible))
            for r in self.reactions
        ]
        return MetabolicNetwork(self.name, self.metabolites, new,
                                allow_orphan_metabolites=True)

    # -- dunder ---------------------------------------------------------------

    def __repr__(self) -> str:
        nrev = sum(self.reversibility)
        return (
            f"<MetabolicNetwork {self.name!r}: {self.n_metabolites} metabolites, "
            f"{self.n_reactions} reactions ({nrev} reversible)>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetabolicNetwork):
            return NotImplemented
        return (
            self.metabolites == other.metabolites
            and self.reactions == other.reactions
        )

    def __hash__(self) -> int:
        return hash((self.metabolites, self.reactions))
