"""Reaction-equation parser.

Accepts the notation used in Figures 3–5 of the paper::

    R4 : F6P + ATP => FDP + ADP           (irreversible)
    R3r : G6P <=> F6P                     (reversible)
    R70 : 7437 G6P + 611 G3P + ... => 1000 BIO + ...

plus the unicode arrows the paper prints (``=⇒``, ``⇐⇒``).  Metabolites
whose names end in ``ext`` (case-insensitive) are treated as *external*
and excluded from the stoichiometry; a reaction touching any external
species is flagged as an exchange reaction.

The same grammar is used by :mod:`repro.efm.io` to round-trip networks
through text files.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Iterable, Sequence

from repro.errors import ParseError
from repro.network.model import MetabolicNetwork, Reaction

#: Arrow spellings, longest first so ``<=>`` wins over ``=>``.
_REVERSIBLE_ARROWS = ("<=>", "<==>", "⇐⇒", "<->")
_IRREVERSIBLE_ARROWS = ("=>", "==>", "=⇒", "->", "-->")

_TERM_RE = re.compile(
    r"^\s*(?:(?P<coeff>\d+(?:\.\d+)?(?:/\d+)?)\s+)?(?P<met>[A-Za-z_][A-Za-z0-9_']*)\s*$"
)


def _split_arrow(equation: str) -> tuple[str, str, bool]:
    """Split an equation at its arrow; returns (lhs, rhs, reversible)."""
    for arrow in _REVERSIBLE_ARROWS:
        if arrow in equation:
            lhs, _, rhs = equation.partition(arrow)
            return lhs, rhs, True
    for arrow in _IRREVERSIBLE_ARROWS:
        if arrow in equation:
            lhs, _, rhs = equation.partition(arrow)
            return lhs, rhs, False
    raise ParseError(f"no reaction arrow found in {equation!r}")


def _parse_side(side: str, equation: str) -> list[tuple[Fraction, str]]:
    """Parse one side of an equation into (coefficient, metabolite) terms."""
    side = side.strip()
    if not side:
        return []
    terms: list[tuple[Fraction, str]] = []
    for raw in side.split("+"):
        m = _TERM_RE.match(raw)
        if not m:
            raise ParseError(f"cannot parse term {raw.strip()!r} in {equation!r}")
        coeff_s = m.group("coeff")
        coeff = Fraction(coeff_s) if coeff_s else Fraction(1)
        if coeff <= 0:
            raise ParseError(f"non-positive coefficient in {equation!r}")
        terms.append((coeff, m.group("met")))
    return terms


def is_external(metabolite: str, externals: frozenset[str] = frozenset()) -> bool:
    """The paper's convention: names suffixed ``ext`` are outside the
    system boundary and carry no steady-state constraint.  ``externals``
    adds explicit names (e.g. the yeast biomass species ``BIO``, which the
    paper's model treats as unconstrained without the suffix)."""
    return metabolite.lower().endswith("ext") or metabolite in externals


def parse_reaction(spec: str, *, externals: frozenset[str] = frozenset()) -> Reaction:
    """Parse ``"NAME : lhs => rhs"`` (or ``<=>``) into a :class:`Reaction`.

    A trailing ``r`` in the name is *not* significant; reversibility comes
    from the arrow.  External (``*ext``) species are dropped from the
    stoichiometry; the reaction is flagged ``exchange`` if any were present.
    Species appearing on both sides have their coefficients netted; a
    species netting to zero is omitted entirely.
    """
    if ":" not in spec:
        raise ParseError(f"missing 'NAME :' prefix in {spec!r}")
    name, _, equation = spec.partition(":")
    name = name.strip()
    if not name:
        raise ParseError(f"empty reaction name in {spec!r}")
    lhs, rhs, reversible = _split_arrow(equation)
    stoich: dict[str, Fraction] = {}
    exchange = False
    for sign, side in ((-1, lhs), (+1, rhs)):
        for coeff, met in _parse_side(side, spec):
            if is_external(met, externals):
                exchange = True
                continue
            stoich[met] = stoich.get(met, Fraction(0)) + sign * coeff
    stoich = {m: c for m, c in stoich.items() if c != 0}
    if not stoich and not exchange:
        raise ParseError(f"reaction {name!r} has no metabolites at all")
    return Reaction(name=name, stoich=stoich, reversible=reversible, exchange=exchange)


def network_from_equations(
    name: str,
    specs: Iterable[str],
    *,
    metabolite_order: Sequence[str] | None = None,
    externals: Iterable[str] = (),
) -> MetabolicNetwork:
    """Build a network from reaction-equation strings.

    Metabolite row order defaults to first-appearance order across the
    equations; pass ``metabolite_order`` to fix it explicitly (extra names
    there are allowed only if referenced).

    Reactions that reference *only* external species (pure boundary
    transporters like ``R59 : NH3ext => NH3`` keep NH3 internal, but e.g.
    ``X : Aext => Bext`` would have an empty constraint column) are kept —
    they contribute an all-zero stoichiometric column, which compression
    removes while recording the reaction as unconstrained.
    """
    ext = frozenset(externals)
    reactions = [parse_reaction(s, externals=ext) for s in specs]
    seen: list[str] = []
    seen_set: set[str] = set()
    for rxn in reactions:
        for met in rxn.stoich:
            if met not in seen_set:
                seen.append(met)
                seen_set.add(met)
    if metabolite_order is not None:
        extra = seen_set - set(metabolite_order)
        if extra:
            raise ParseError(
                f"metabolite_order is missing referenced metabolites: {sorted(extra)}"
            )
        order = [m for m in metabolite_order if m in seen_set]
    else:
        order = seen
    return MetabolicNetwork(name, order, reactions)


def format_reaction(rxn: Reaction) -> str:
    """Render a reaction back to the paper's equation notation (internal
    species only; external species are not reconstructable)."""

    def side(items: list[tuple[str, Fraction]]) -> str:
        # An empty side renders as nothing; the parser accepts "=> A" and
        # "A =>" (pure boundary flows after external-species removal).
        parts = []
        for met, coeff in items:
            mag = abs(coeff)
            parts.append(met if mag == 1 else f"{mag} {met}")
        return " + ".join(parts)

    subs = sorted((m, c) for m, c in rxn.stoich.items() if c < 0)
    prods = sorted((m, c) for m, c in rxn.stoich.items() if c > 0)
    arrow = "<=>" if rxn.reversible else "=>"
    return f"{rxn.name} : {side(subs)} {arrow} {side(prods)}"
