"""Structural validation helpers for metabolic networks."""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.errors import NetworkError
from repro.network.model import MetabolicNetwork
from repro.network.stoichiometry import stoichiometric_matrix


def validate_network(network: MetabolicNetwork, *, strict: bool = False) -> list[str]:
    """Check structural sanity; returns a list of human-readable warnings.

    With ``strict=True`` any warning raises :class:`NetworkError` instead.
    Checks performed:

    - every metabolite participates in >= 2 reactions (a single-reaction
      metabolite blocks that reaction — legal, but usually a modeling slip);
    - no two reactions have identical (or exactly opposite) stoichiometry
      and compatible directions (they make each EFM-set member ambiguous);
    - coefficients are "reasonable" rationals (denominator <= 1e6).
    """
    warnings: list[str] = []

    counts: dict[str, int] = {m.name: 0 for m in network.metabolites}
    for rxn in network.reactions:
        for met in rxn.stoich:
            counts[met] += 1
    for met, c in counts.items():
        if c < 2:
            warnings.append(
                f"metabolite {met!r} participates in {c} reaction(s); "
                "every reaction touching it is blocked"
            )

    seen: dict[tuple, str] = {}
    for rxn in network.reactions:
        key = _canonical_column(network, rxn.name)
        if key in seen:
            warnings.append(
                f"reactions {seen[key]!r} and {rxn.name!r} have proportional "
                "stoichiometric columns"
            )
        else:
            seen[key] = rxn.name

    for rxn in network.reactions:
        for met, coeff in rxn.stoich.items():
            if abs(Fraction(coeff).denominator) > 10**6:
                warnings.append(
                    f"reaction {rxn.name!r} has an extreme coefficient for "
                    f"{met!r}: {coeff}"
                )

    if strict and warnings:
        raise NetworkError("; ".join(warnings))
    return warnings


def _canonical_column(network: MetabolicNetwork, rxn_name: str) -> tuple:
    """Scale-and-sign-invariant fingerprint of a stoichiometric column."""
    rxn = network.reaction(rxn_name)
    items = sorted((m, Fraction(c)) for m, c in rxn.stoich.items())
    if not items:
        return ()
    lead = items[0][1]
    normalized = tuple((m, c / abs(lead)) for m, c in items)
    # Fold sign so a column and its negation collide.
    if normalized[0][1] < 0:
        normalized = tuple((m, -c) for m, c in normalized)
    return normalized


def assert_steady_state(
    network: MetabolicNetwork, fluxes: np.ndarray, *, atol: float = 1e-7
) -> None:
    """Assert ``N @ fluxes ~= 0`` for one flux vector or a matrix of
    columns; raises :class:`NetworkError` with the worst metabolite
    imbalance otherwise."""
    n = stoichiometric_matrix(network)
    fluxes = np.asarray(fluxes, dtype=np.float64)
    if fluxes.ndim == 1:
        fluxes = fluxes[:, None]
    scale = max(1.0, float(np.abs(fluxes).max())) * max(1.0, float(np.abs(n).max()))
    resid = np.abs(n @ fluxes)
    if resid.size and resid.max() > atol * scale:
        i, j = np.unravel_index(int(resid.argmax()), resid.shape)
        raise NetworkError(
            f"steady-state violation: metabolite {network.metabolites[i].name!r} "
            f"imbalance {resid[i, j]:.3e} in flux column {j}"
        )
