"""repro — divide-and-conquer parallel computation of elementary flux modes.

A production-quality reproduction of *Jevremovic, Boley & Sosa,
"Divide-and-conquer approach to the parallel computation of elementary
flux modes in metabolic networks", IEEE IPDPS 2011*: the Nullspace
Algorithm, its combinatorial distributed-memory parallelization, and the
combined divide-and-conquer algorithm, plus every substrate they need
(network model & compression, exact/float kernels, packed bitsets, an
MPI-like message-passing layer, and HPC platform models for Blue Gene/P
and Calhoun).

Quickstart::

    from repro import compute_efms, toy_network

    result = compute_efms(toy_network())
    print(result.summary())          # 8 elementary flux modes ...
    result.validate()                # steady state + feasibility + minimality
"""

from repro.config import AlgorithmOptions, NumericPolicy
from repro.efm.api import compute_efms
from repro.efm.result import EFMResult
from repro.efm.splitting import split_reversible
from repro.efm.targeted import efms_avoiding, efms_through, exists_mode_through
from repro.errors import (
    AlgorithmError,
    CommunicatorError,
    CompressionError,
    LinAlgError,
    NetworkError,
    OutOfMemoryError,
    ParseError,
    PartitionError,
    ReproError,
    ReversibleIdentityError,
)
from repro.models import (
    get_network,
    list_networks,
    random_network,
    toy_network,
    yeast_network_1,
    yeast_network_2,
)
from repro.network.compression import compress_network
from repro.network.model import MetabolicNetwork, Metabolite, Reaction
from repro.network.parser import network_from_equations, parse_reaction

__version__ = "1.0.0"

__all__ = [
    "AlgorithmOptions",
    "NumericPolicy",
    "compute_efms",
    "EFMResult",
    "split_reversible",
    "efms_avoiding",
    "efms_through",
    "exists_mode_through",
    "AlgorithmError",
    "CommunicatorError",
    "CompressionError",
    "LinAlgError",
    "NetworkError",
    "OutOfMemoryError",
    "ParseError",
    "PartitionError",
    "ReproError",
    "ReversibleIdentityError",
    "get_network",
    "list_networks",
    "random_network",
    "toy_network",
    "yeast_network_1",
    "yeast_network_2",
    "compress_network",
    "MetabolicNetwork",
    "Metabolite",
    "Reaction",
    "network_from_equations",
    "parse_reaction",
    "__version__",
]
