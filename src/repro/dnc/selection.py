"""Partition-reaction selection heuristics (the paper's future-work #2).

"It is yet unclear how to select the subset of reactions in
divide-and-conquer that may maximally decrease the number of intermediate
candidate elementary flux modes ... An automated method to select the
subset and estimate the approximate number of elementary modes for a given
reaction partition would be helpful" (§IV.A, §IV.C).

Three strategies are provided:

- ``"tail"`` — what the paper did by hand: take the reactions occupying
  the last ``q_sub`` rows of the reordered nullspace matrix (reversible,
  densest rows).  Zeroing a reaction that would otherwise be processed
  last prunes the largest intermediate sets.
- ``"balance"`` — score candidate reactions by the sign balance of their
  kernel row: a row with many positive *and* many negative entries
  generates the most pairs, so splitting on it removes the most work.
- ``"probe"`` — empirical: run each candidate single-reaction split with a
  small mode-count budget and keep the reactions whose zero-side probe
  generates the fewest candidates (a miniature of the full run; costs a
  few truncated runs).
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from repro.config import DEFAULT_OPTIONS, AlgorithmOptions
from repro.core.kernel import build_problem  # noqa: F401 - re-exported for tests
from repro.core.serial import nullspace_algorithm
from repro.core.state import ModeMatrix
from repro.errors import OutOfMemoryError, PartitionError
from repro.network.model import MetabolicNetwork

SelectionMethod = Literal["tail", "balance", "probe"]


def select_partition_reactions(
    reduced: MetabolicNetwork,
    q_sub: int,
    *,
    method: SelectionMethod = "tail",
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    probe_mode_budget: int = 2000,
) -> tuple[str, ...]:
    """Choose ``q_sub`` partition reactions for Algorithm 3.

    Returns names ordered so the last element should occupy the bottom row
    (the :class:`~repro.dnc.subsets.SubsetSpec` convention).
    """
    if q_sub < 1:
        raise PartitionError("q_sub must be >= 1")
    if q_sub >= reduced.n_reactions:
        raise PartitionError("q_sub must be smaller than the reaction count")
    from repro.efm.api import build_problem_with_split  # noqa: PLC0415 - cycle guard
    from repro.efm.splitting import FWD_SUFFIX, BWD_SUFFIX  # noqa: PLC0415

    problem, _split = build_problem_with_split(reduced, options)

    def unsplit(name: str) -> str:
        for suffix in (FWD_SUFFIX, BWD_SUFFIX):
            if name.endswith(suffix):
                return name[: -len(suffix)]
        return name

    def last_positions(ranked_names: list[str]) -> tuple[str, ...]:
        """Map (possibly split) names to original names, dedup preserving
        order, keep the last q_sub."""
        seen: dict[str, None] = {}
        for nm in ranked_names:
            seen.setdefault(unsplit(nm), None)
        out = list(seen)
        return tuple(out[-q_sub:]) if len(out) >= q_sub else tuple(out)

    if method == "tail":
        chosen = last_positions(list(problem.names))
    elif method == "balance":
        scores = _balance_scores(problem.kernel, problem.names, problem.n_free)
        ranked = sorted(scores, key=scores.get)  # ascending: best last
        chosen = last_positions(ranked)
    elif method == "probe":
        candidates = {unsplit(n) for n in problem.names[problem.n_free :]}
        scores = _probe_scores(reduced, sorted(candidates), options, probe_mode_budget)
        ranked = sorted(scores, key=scores.get)  # ascending cost: best first
        chosen = tuple(sorted(ranked[:q_sub],
                              key=lambda nm: reduced.reaction_index(nm)))
    else:
        raise PartitionError(f"unknown selection method {method!r}")
    if len(chosen) < q_sub:
        raise PartitionError(
            f"could only select {len(chosen)} partition reactions, wanted {q_sub}"
        )
    return chosen


def _balance_scores(
    kernel: np.ndarray, names: Sequence[str], n_free: int
) -> dict[str, float]:
    """pos*neg product of each processed kernel row (higher = the row
    would generate more pairs = better to partition on)."""
    scores: dict[str, float] = {}
    for pos in range(n_free, kernel.shape[0]):
        row = kernel[pos]
        n_pos = int((row > 0).sum())
        n_neg = int((row < 0).sum())
        scores[names[pos]] = float(n_pos * n_neg) + 0.001 * (n_pos + n_neg)
    return scores


def _probe_scores(
    reduced: MetabolicNetwork,
    candidates: Sequence[str],
    options: AlgorithmOptions,
    mode_budget: int,
) -> dict[str, float]:
    """Truncated-run cost of the zero-side subproblem of each candidate."""
    scores: dict[str, float] = {}
    for name in candidates:
        sub = reduced.without_reactions([name], suffix="-probe")
        try:
            from repro.efm.api import build_problem_with_split  # noqa: PLC0415

            prob, _split = build_problem_with_split(sub, options)
        except Exception:
            scores[name] = float("inf")
            continue
        try:
            res = nullspace_algorithm(
                prob,
                options=options,
                memory_check=_budget_check(mode_budget),
            )
            scores[name] = float(res.stats.total_candidates)
        except OutOfMemoryError as exc:
            # Hit the probe budget: score by pressure at the cutoff.
            scores[name] = float(exc.required_bytes or mode_budget) * 1e6
    return scores


def _budget_check(mode_budget: int):
    def check(iteration: int, modes: ModeMatrix) -> None:
        if modes.n_modes > mode_budget:
            raise OutOfMemoryError(
                f"probe budget of {mode_budget} modes exceeded",
                iteration=iteration,
                required_bytes=modes.n_modes,
                capacity_bytes=mode_budget,
            )

    return check


def estimate_subset_counts(
    reduced: MetabolicNetwork,
    partition: Sequence[str],
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    mode_budget: int = 5000,
) -> dict[int, int | None]:
    """Cheap per-subset candidate estimates by truncated runs.

    Returns subset_id -> total candidates, or ``None`` where the probe
    budget was exceeded (subset probably large).  Used to pre-plan Table IV
    style runs before committing compute.
    """
    from repro.cluster.memory import MemoryModel, estimate_mode_bytes  # noqa: PLC0415
    from repro.dnc.combined import solve_subset  # noqa: PLC0415 - cycle guard
    from repro.dnc.subsets import enumerate_subsets  # noqa: PLC0415

    budget = MemoryModel(
        capacity_bytes=estimate_mode_bytes(mode_budget, reduced.n_reactions),
        working_factor=1.0,
    )
    out: dict[int, int | None] = {}
    for spec in enumerate_subsets(tuple(partition)):
        result = solve_subset(
            reduced, spec, 1, options=options, memory_model=budget
        )
        out[spec.subset_id] = result.n_candidates if result.completed else None
    return out
