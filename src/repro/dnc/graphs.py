"""Graph-based partitioning analysis — the paper's future-work item 3.

"Different algorithmic paradigms such as partitioning of the metabolic
network graph as an alternative to the divide-and-conquer approach exposed
in this paper should also be considered" (§V).

This module explores that direction on top of networkx:

* :func:`reaction_graph` — the weighted reaction-adjacency graph (two
  reactions connect when they share a metabolite; weight = number of
  shared metabolites).
* :func:`metabolite_reaction_graph` — the bipartite species/reaction
  graph.
* :func:`graph_bisection` — a Kernighan–Lin bisection of the reaction
  graph into two balanced blocks with a small metabolite cut.
* :func:`cut_metabolites` / :func:`cut_reactions` — the interface a
  graph-driven decomposition would have to reason about.
* :func:`suggest_partition_from_cut` — bridges back to Algorithm 3: the
  reactions straddling a small graph cut are natural divide-and-conquer
  partition candidates, because zeroing them decouples the blocks.

The headline negative/positive finding (bench E-EXT1): cut-straddling
reactions are *competitive* with the kernel-based heuristics on candidate
counts, supporting the paper's intuition that network topology carries
partitioning signal.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import PartitionError
from repro.network.model import MetabolicNetwork


def metabolite_reaction_graph(network: MetabolicNetwork) -> nx.Graph:
    """Bipartite graph: metabolite nodes (``kind="metabolite"``) joined to
    the reactions (``kind="reaction"``) that consume or produce them."""
    g = nx.Graph()
    for met in network.metabolite_names:
        g.add_node(("M", met), kind="metabolite", name=met)
    for rxn in network.reactions:
        g.add_node(("R", rxn.name), kind="reaction", name=rxn.name)
        for met, coeff in rxn.stoich.items():
            g.add_edge(("R", rxn.name), ("M", met), coefficient=float(coeff))
    return g


def reaction_graph(network: MetabolicNetwork) -> nx.Graph:
    """Reaction-adjacency graph: nodes are reactions; an edge connects two
    reactions sharing at least one metabolite, weighted by the number of
    shared metabolites."""
    g = nx.Graph()
    g.add_nodes_from(network.reaction_names)
    by_met: dict[str, list[str]] = {}
    for rxn in network.reactions:
        for met in rxn.stoich:
            by_met.setdefault(met, []).append(rxn.name)
    for met, rxns in by_met.items():
        for i in range(len(rxns)):
            for j in range(i + 1, len(rxns)):
                a, b = rxns[i], rxns[j]
                if g.has_edge(a, b):
                    g[a][b]["weight"] += 1
                    g[a][b]["metabolites"].append(met)
                else:
                    g.add_edge(a, b, weight=1, metabolites=[met])
    return g


def graph_bisection(
    network: MetabolicNetwork, *, seed: int = 0, max_iter: int = 20
) -> tuple[frozenset[str], frozenset[str]]:
    """Balanced two-block partition of the reactions (Kernighan–Lin on
    the weighted reaction graph)."""
    if network.n_reactions < 2:
        raise PartitionError("need at least two reactions to bisect")
    g = reaction_graph(network)
    a, b = nx.algorithms.community.kernighan_lin_bisection(
        g, weight="weight", seed=seed, max_iter=max_iter
    )
    return frozenset(a), frozenset(b)


def cut_metabolites(
    network: MetabolicNetwork, block_a: frozenset[str], block_b: frozenset[str]
) -> tuple[str, ...]:
    """Metabolites touched by reactions of *both* blocks — the coupling
    interface a graph-based decomposition would have to coordinate."""
    touched_a: set[str] = set()
    touched_b: set[str] = set()
    for rxn in network.reactions:
        target = touched_a if rxn.name in block_a else touched_b
        target.update(rxn.stoich)
    return tuple(sorted(touched_a & touched_b))


def cut_reactions(
    network: MetabolicNetwork, block_a: frozenset[str], block_b: frozenset[str]
) -> tuple[str, ...]:
    """Reactions with at least one metabolite on the cut, ranked by how
    many cut metabolites they touch (descending) — the natural candidates
    for divide-and-conquer partitioning."""
    cut = set(cut_metabolites(network, block_a, block_b))
    scored = []
    for rxn in network.reactions:
        k = sum(1 for m in rxn.stoich if m in cut)
        if k:
            scored.append((k, rxn.name))
    scored.sort(key=lambda t: (-t[0], t[1]))
    return tuple(name for _, name in scored)


def suggest_partition_from_cut(
    network: MetabolicNetwork, q_sub: int, *, seed: int = 0
) -> tuple[str, ...]:
    """Graph-driven partition-reaction suggestion for Algorithm 3.

    Bisects the reaction graph and returns the ``q_sub`` cut-straddling
    reactions *least* entangled with the cut (fewest cut metabolites).
    Empirically the peripheral "bridge" reactions beat the hub reactions
    decisively: pinning a hub to non-zero flux leaves subsets that still
    carry essentially the whole problem, while zeroing a low-coupling
    bridge cheaply decouples the blocks (see bench E-EXT1 — the hub
    choice costs ~13x more intermediate candidates on the yeast variant).
    """
    if not (1 <= q_sub < network.n_reactions):
        raise PartitionError("q_sub out of range")
    block_a, block_b = graph_bisection(network, seed=seed)
    ranked = cut_reactions(network, block_a, block_b)
    if len(ranked) < q_sub:
        raise PartitionError(
            f"cut yields only {len(ranked)} candidate reactions, wanted {q_sub}"
        )
    # Keep the least-entangled tier (cut-touch count equal to the
    # minimum), then break ties by the kernel-row sign balance: among
    # equally cheap decouplers, prefer the one whose row would generate
    # the most candidate pairs if left unsplit.
    cut = set(cut_metabolites(network, block_a, block_b))
    touch = {n: sum(1 for m in network.reaction(n).stoich if m in cut) for n in ranked}
    min_touch = min(touch.values())
    tier = [n for n in ranked if touch[n] <= min_touch]
    if len(tier) < q_sub:
        tier = list(ranked[-max(q_sub, len(tier)) :])
    balance = _kernel_balance_scores(network)
    tier.sort(key=lambda n: balance.get(n, 0.0), reverse=True)
    chosen = tier[:q_sub]
    # SubsetSpec convention: last element = bottom row; order by column
    # position for determinism.
    chosen.sort(key=network.reaction_index)
    return tuple(chosen)


def _kernel_balance_scores(network: MetabolicNetwork) -> dict[str, float]:
    """pos x neg product of each reaction's kernel row (0.0 when the
    kernel cannot be built, e.g. degenerate subnetworks)."""
    try:
        from repro.efm.api import build_problem_with_split  # noqa: PLC0415
        from repro.dnc.selection import _balance_scores  # noqa: PLC0415

        problem, _ = build_problem_with_split(network)
        raw = _balance_scores(problem.kernel, problem.names, problem.n_free)
    except Exception:
        return {}
    out: dict[str, float] = {}
    for name, score in raw.items():
        base = name.split("__")[0]  # fold split halves onto the original
        out[base] = max(out.get(base, 0.0), score)
    return out


def partition_quality(
    network: MetabolicNetwork, block_a: frozenset[str], block_b: frozenset[str]
) -> dict[str, float]:
    """Bisection diagnostics: balance and normalized cut size."""
    if block_a | block_b != set(network.reaction_names) or (block_a & block_b):
        raise PartitionError("blocks must partition the reaction set")
    cut = cut_metabolites(network, block_a, block_b)
    balance = min(len(block_a), len(block_b)) / max(len(block_a), len(block_b))
    return {
        "balance": balance,
        "cut_metabolites": float(len(cut)),
        "cut_fraction": len(cut) / max(1, network.n_metabolites),
    }
