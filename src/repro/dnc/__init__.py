"""Divide-and-conquer machinery: subset enumeration (Proposition 1), the
combined parallel Nullspace Algorithm (Algorithm 3), partition-reaction
selection heuristics, and memory-driven adaptive refinement."""

from repro.dnc.adaptive import AdaptiveResult, adaptive_combined
from repro.dnc.combined import CombinedRunResult, SubsetResult, combined_parallel, solve_subset
from repro.dnc.selection import select_partition_reactions
from repro.dnc.subsets import SubsetSpec, enumerate_subsets

__all__ = [
    "AdaptiveResult",
    "adaptive_combined",
    "CombinedRunResult",
    "SubsetResult",
    "combined_parallel",
    "solve_subset",
    "select_partition_reactions",
    "SubsetSpec",
    "enumerate_subsets",
]
