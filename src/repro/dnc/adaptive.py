"""Memory-driven adaptive refinement of the divide-and-conquer partition.

The paper performed this manually: Network II's 3-reaction split left two
subsets ("R60r R90r ~R54r" and its sibling) that exhausted node memory, so
the authors "performed further splitting within the two subsets using four
instead of three reactions" (§IV).  §IV.C calls for automating the
procedure; this module does so: subsets are solved under a
:class:`~repro.cluster.memory.MemoryModel`, and any subset that raises
:class:`~repro.errors.OutOfMemoryError` is re-queued as two children
refined by one more reaction, until everything fits or the refinement
budget is exhausted.

Dynamic row selection (the default ``ordering``, DESIGN.md §14) lowers
the pressure this module exists to relieve: each subproblem's peak pair
space shrinks when the cheapest live row is eliminated first, so fewer
subsets hit the memory wall in the first place — the refinement loop is
unchanged, it just fires later.  A refined child re-runs under a fresh
:class:`~repro.core.ordering.RowSelector`, so its realized order adapts
to the child's own (smaller) mode matrix rather than replaying the
parent's.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

from repro.config import DEFAULT_OPTIONS, AlgorithmOptions
from repro.cluster.memory import MemoryModel
from repro.dnc.combined import CombinedRunResult, SubsetResult, solve_subset
from repro.dnc.subsets import SubsetSpec, enumerate_subsets, validate_partition
from repro.engine.context import RunContext
from repro.errors import PartitionError
from repro.mpi.spmd import BackendName
from repro.network.model import MetabolicNetwork


@dataclasses.dataclass(frozen=True)
class RefinementEvent:
    """Record of one adaptive split (for reporting/EXPERIMENTS.md)."""

    parent: SubsetSpec
    added_reaction: str
    at_iteration: int | None
    required_bytes: int | None


@dataclasses.dataclass
class AdaptiveResult:
    """Final subsets (all completed within memory) plus the refinement
    history."""

    combined: CombinedRunResult
    events: list[RefinementEvent]
    #: subsets that still failed after exhausting max_depth refinements.
    failed: list[SubsetResult]

    @property
    def complete(self) -> bool:
        return not self.failed


ExtensionChooser = Callable[[SubsetSpec, MetabolicNetwork], str]


def default_extension_chooser(
    spec: SubsetSpec, reduced: MetabolicNetwork
) -> str:
    """Pick the next partition reaction for an OOM'd subset.

    Prefers reversible reactions (their rows never shed columns during the
    run, so zeroing them prunes the most work — the paper's choices R54r,
    R90r, R60r, R22r are all reversible) that are not already in the
    partition, falling back to any remaining reaction.
    """
    used = set(spec.partition)
    reversibles = [
        r.name for r in reduced.reactions if r.reversible and r.name not in used
    ]
    if reversibles:
        return reversibles[-1]
    others = [r.name for r in reduced.reactions if r.name not in used]
    if not others:
        raise PartitionError(
            f"subset {spec.label()} exhausted every reaction without fitting "
            "in memory"
        )
    return others[-1]


def adaptive_combined(
    reduced: MetabolicNetwork,
    partition: Sequence[str],
    n_ranks: int,
    memory_model: MemoryModel,
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    backend: BackendName = "sequential",
    max_depth: int = 4,
    extension_chooser: ExtensionChooser = default_extension_chooser,
    context: RunContext | None = None,
) -> AdaptiveResult:
    """Algorithm 3 with automatic memory-driven subset refinement.

    ``max_depth`` bounds how many reactions may be *added* to the initial
    partition for any one subset (the paper needed depth 1: 3 -> 4
    reactions).
    """
    validate_partition(reduced, tuple(partition))
    ctx = RunContext.ensure(context, options=options, memory_model=memory_model)
    if ctx.memory_model is None:
        ctx.memory_model = memory_model
    if ctx.shared_rank_memo is None:
        ctx.bind_shared_rank_memo(reduced)
    queue: list[tuple[SubsetSpec, int]] = [
        (spec, 0) for spec in enumerate_subsets(tuple(partition))
    ]
    done: list[SubsetResult] = []
    failed: list[SubsetResult] = []
    events: list[RefinementEvent] = []

    while queue:
        spec, depth = queue.pop(0)
        result = solve_subset(
            reduced,
            spec,
            n_ranks,
            backend=backend,
            context=ctx,
        )
        if result.completed:
            done.append(result)
            continue
        if depth >= max_depth:
            failed.append(result)
            continue
        extra = extension_chooser(spec, reduced)
        assert result.oom is not None
        events.append(
            RefinementEvent(
                parent=spec,
                added_reaction=extra,
                at_iteration=result.oom.iteration,
                required_bytes=result.oom.required_bytes,
            )
        )
        child_zero, child_nonzero = spec.refine(extra)
        queue.append((child_zero, depth + 1))
        queue.append((child_nonzero, depth + 1))

    done.sort(key=lambda r: (len(r.spec.partition), r.spec.subset_id))
    return AdaptiveResult(
        combined=CombinedRunResult(network=reduced, subsets=done),
        events=events,
        failed=failed,
    )
