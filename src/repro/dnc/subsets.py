"""Divide-and-conquer subset specifications.

The EFM set is partitioned across ``q_sub`` chosen reactions into
``2**q_sub`` disjoint subsets: subset ``i`` holds exactly the EFMs whose
zero / non-zero flux pattern over those reactions matches the binary
representation of ``i`` (§II.E).  Bit ``j`` (LSB first) corresponds to
``partition[j]``; bit value 1 means *non-zero* flux.

Convention for row placement (Algorithm 3, line 11): the partition tuple
is ordered so its **last** element occupies the very last row of the
reordered nullspace matrix — matching the paper's "{R54r, R90r, R60r},
where the reaction R60r corresponds to the last row".
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.errors import PartitionError
from repro.network.model import MetabolicNetwork


@dataclasses.dataclass(frozen=True)
class SubsetSpec:
    """One subproblem of a divide-and-conquer partition."""

    subset_id: int
    partition: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.partition)) != len(self.partition):
            raise PartitionError(f"duplicate partition reactions: {self.partition}")
        if not (0 <= self.subset_id < 2 ** len(self.partition)):
            raise PartitionError(
                f"subset id {self.subset_id} out of range for "
                f"{len(self.partition)} partition reactions"
            )

    @property
    def q_sub(self) -> int:
        return len(self.partition)

    @property
    def nonzero(self) -> tuple[str, ...]:
        """Reactions required to carry non-zero flux, in partition order."""
        return tuple(
            r for j, r in enumerate(self.partition) if (self.subset_id >> j) & 1
        )

    @property
    def zero(self) -> tuple[str, ...]:
        """Reactions required to carry zero flux."""
        return tuple(
            r for j, r in enumerate(self.partition) if not (self.subset_id >> j) & 1
        )

    def label(self) -> str:
        """Paper-style label: zero-flux reactions are overlined (rendered
        here with a '~' prefix, e.g. ``~R89r R74r``)."""
        parts = []
        for j, r in enumerate(self.partition):
            parts.append(r if (self.subset_id >> j) & 1 else f"~{r}")
        return " ".join(parts)

    def refine(self, extra_reaction: str) -> tuple["SubsetSpec", "SubsetSpec"]:
        """Split this subset by one more reaction (prepended, so it sits
        above the existing partition rows — the paper's 3->4-reaction
        refinement of Table IV).  Returns the (zero, non-zero) children."""
        if extra_reaction in self.partition:
            raise PartitionError(f"{extra_reaction!r} already partitions this subset")
        new_partition = (extra_reaction,) + self.partition
        base = self.subset_id << 1
        return (
            SubsetSpec(subset_id=base, partition=new_partition),
            SubsetSpec(subset_id=base | 1, partition=new_partition),
        )


def enumerate_subsets(partition: Sequence[str]) -> list[SubsetSpec]:
    """All ``2**len(partition)`` subset specs, ordered by subset id."""
    partition = tuple(partition)
    if not partition:
        raise PartitionError("empty partition")
    return [
        SubsetSpec(subset_id=i, partition=partition)
        for i in range(2 ** len(partition))
    ]


def validate_partition(network: MetabolicNetwork, partition: Sequence[str]) -> None:
    """Check partition reactions exist in the (reduced) network.

    The paper notes the reactions "can not be randomly selected, as the
    pre-processing step of reducing metabolic network size will eliminate
    some of them" — the caller must pass *reduced-network* names, and this
    raises :class:`~repro.errors.PartitionError` with the surviving-name
    hint if a name was compressed away.
    """
    missing = [r for r in partition if not network.has_reaction(r)]
    if missing:
        raise PartitionError(
            f"partition reactions {missing} do not exist in network "
            f"{network.name!r} (eliminated by compression?).  Surviving "
            f"reactions: {', '.join(network.reaction_names)}"
        )
