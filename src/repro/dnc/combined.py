"""The combined parallel Nullspace Algorithm (Algorithm 3).

For each subset of the divide-and-conquer partition:

1. delete the zero-flux reactions' columns from the reduced stoichiometry
   (line 8) and recompute the kernel (line 9);
2. pin the non-zero-flux reactions to the bottom rows (line 11);
3. run the combinatorial parallel algorithm (Algorithm 2) up to — but not
   including — the pinned rows (line 14, Proposition 1);
4. keep only the columns with non-zero flux in every pinned row — with a
   positive sign where the pinned reaction is irreversible (lines 15–17);
5. re-insert zero rows for the deleted reactions (lines 18–21).

The union over all subsets is the complete EFM set; the subsets are
pairwise disjoint by construction (distinct zero/non-zero patterns).
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.config import DEFAULT_OPTIONS, AlgorithmOptions
from repro.core.kernel import build_problem
from repro.core.stats import RunStats
from repro.cluster.memory import MemoryModel
from repro.dnc.subsets import SubsetSpec, enumerate_subsets, validate_partition
from repro.errors import (
    AlgorithmError,
    DependentPartitionError,
    OutOfMemoryError,
    PartitionError,
    ReversibleIdentityError,
)
from repro.efm.splitting import BWD_SUFFIX, FWD_SUFFIX, SplitRecord, split_reversible
from repro.linalg.batched import CacheBinding, RankCache, problem_token
from repro.mpi.spmd import BackendName
from repro.mpi.tracing import CommTrace
from repro.network.model import MetabolicNetwork
from repro.network.stoichiometry import stoichiometric_matrix
from repro.parallel.combinatorial import combinatorial_parallel
from repro.parallel.pairs import PairStrategyName


@dataclasses.dataclass
class SubsetResult:
    """Outcome of one divide-and-conquer subproblem."""

    spec: SubsetSpec
    #: EFM rows in the *reduced network's* reaction order (zero columns
    #: re-inserted); empty array when the subset is empty or OOM'd.
    efms: np.ndarray
    stats: RunStats | None
    rank_traces: list[CommTrace]
    #: memory failure, if the subproblem exceeded the modeled capacity.
    oom: OutOfMemoryError | None = None
    wall_time: float = 0.0

    @property
    def n_efms(self) -> int:
        return int(self.efms.shape[0])

    @property
    def n_candidates(self) -> int:
        return self.stats.total_candidates if self.stats is not None else 0

    @property
    def completed(self) -> bool:
        return self.oom is None


@dataclasses.dataclass
class CombinedRunResult:
    """Aggregated outcome of Algorithm 3 over every subset."""

    network: MetabolicNetwork
    subsets: list[SubsetResult]

    @property
    def complete(self) -> bool:
        return all(s.completed for s in self.subsets)

    @property
    def n_efms(self) -> int:
        return sum(s.n_efms for s in self.subsets)

    @property
    def total_candidates(self) -> int:
        return sum(s.n_candidates for s in self.subsets)

    @property
    def total_wall_time(self) -> float:
        return sum(s.wall_time for s in self.subsets)

    def efms(self) -> np.ndarray:
        """Union of all subsets, rows = modes, reduced-network order."""
        if not self.complete:
            raise AlgorithmError("some subsets failed; EFM set incomplete")
        parts = [s.efms for s in self.subsets if s.n_efms]
        if not parts:
            return np.zeros((0, self.network.n_reactions))
        return np.concatenate(parts, axis=0)


def shared_rank_cache(
    reduced: MetabolicNetwork, options: AlgorithmOptions
) -> tuple[RankCache, bytes] | None:
    """One rank memo for *all* subproblems of a divide-and-conquer run.

    Every subproblem's stoichiometry is the reduced network's with some
    columns deleted (and possibly split into sign-flipped copies), so the
    rank of a submatrix depends only on which reduced-network columns the
    support selects — disjoint subsets repeatedly test overlapping
    supports of the same matrix, and Algorithm 3's redundancy becomes
    cache hits.  Returns ``(cache, token)`` or ``None`` when the batched
    backend is off.
    """
    if options.rank_backend != "batched" or options.acceptance == "bittree":
        return None
    token = problem_token(
        stoichiometric_matrix(reduced),
        options.policy,
        options.arithmetic == "exact",
    )
    return RankCache(), token


def _canonical_name(name: str) -> str:
    """Map a (possibly split) work-net reaction name back to its
    reduced-network origin."""
    for suffix in (FWD_SUFFIX, BWD_SUFFIX):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def solve_subset(
    reduced: MetabolicNetwork,
    spec: SubsetSpec,
    n_ranks: int,
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    backend: BackendName = "sequential",
    pair_strategy: PairStrategyName = "strided",
    memory_model: MemoryModel | None = None,
    auto_split: bool = True,
    rank_memo: tuple[RankCache, bytes] | None = None,
) -> SubsetResult:
    """Solve one subset's subproblem with Algorithm 2 (lines 3–22).

    ``rank_memo`` (from :func:`shared_rank_cache`) shares support-pattern
    rank results with the run's other subproblems; keys are canonical
    reduced-network column sets, so differing permutations, deletions and
    reversible splits all address the same entries.
    """
    validate_partition(reduced, spec.partition)
    t0 = time.perf_counter()
    q_red = reduced.n_reactions

    sub = reduced.without_reactions(spec.zero, suffix=f"-s{spec.subset_id}") if spec.zero else reduced
    force_last = list(spec.nonzero)

    # Build the subproblem; auto-split reversible reactions that cannot be
    # pivots in the shrunken stoichiometry.  Partition reactions carry
    # pivot priority; if one is still linearly dependent (reversible only),
    # Proposition 1's early stop is unsound for this subset and we fall
    # back to full enumeration of the subnetwork plus filtering.
    split_rec: SplitRecord | None = None
    work_net = sub
    fallback = False
    for _ in range(2 * q_red + 2):
        try:
            problem = build_problem(
                work_net,
                options=options,
                force_last=() if fallback else force_last,
            )
            break
        except DependentPartitionError:
            fallback = True
        except ReversibleIdentityError as exc:
            if not auto_split:
                raise
            rec = split_reversible(work_net, exc.reactions)
            split_rec = rec if split_rec is None else _compose_splits(split_rec, rec)
            work_net = rec.split
        except AlgorithmError as exc:
            if "trivial nullspace" in str(exc):
                # The shrunken network admits no flux at all: empty subset.
                return SubsetResult(
                    spec=spec,
                    efms=np.zeros((0, q_red)),
                    stats=None,
                    rank_traces=[],
                    wall_time=time.perf_counter() - t0,
                )
            raise
    else:  # pragma: no cover - each retry strictly reduces failure modes
        raise PartitionError(f"subset {spec.label()}: splitting did not converge")

    stop = problem.q if fallback else problem.q - len(force_last)
    binding = None
    if rank_memo is not None:
        cache, token = rank_memo
        canon = {name: j for j, name in enumerate(reduced.reaction_names)}
        col_ids = np.array(
            [canon[_canonical_name(nm)] for nm in problem.names], dtype=np.int64
        )
        binding = CacheBinding(cache, token, col_ids)
    try:
        run = combinatorial_parallel(
            problem,
            n_ranks,
            options=options,
            backend=backend,
            pair_strategy=pair_strategy,
            stop_row=stop,
            memory_model=memory_model.fresh() if memory_model is not None else None,
            rank_cache=binding,
        )
    except OutOfMemoryError as exc:
        return SubsetResult(
            spec=spec,
            efms=np.zeros((0, q_red)),
            stats=None,
            rank_traces=[],
            oom=exc,
            wall_time=time.perf_counter() - t0,
        )

    res = run.result
    vals = res.modes.values
    if res.modes.exact:
        vals = np.array(
            [[float(x) for x in row] for row in vals], dtype=np.float64
        ).reshape(vals.shape)

    # Lines 15–17: keep columns with non-zero flux in every pinned row
    # (strictly positive where the pinned reaction is irreversible: a
    # negative flux there can never be part of a valid EFM, and the
    # candidates that would have zeroed it belong to other subsets).
    if not fallback:
        keep = np.ones(vals.shape[0], dtype=bool)
        for pos in range(stop, problem.q):
            v = vals[:, pos]
            keep &= (v != 0.0) if problem.reversible[pos] else (v > 0.0)
        vals = vals[keep]
    vals = vals[:, problem.inverse_perm()]  # work_net reaction order

    if split_rec is not None:
        vals = split_rec.fold_modes(vals)  # back to sub's reaction order
        # fold_modes returns columns in split_rec.original order == sub order
    src = split_rec.original if split_rec is not None else sub

    if fallback:
        # Full enumeration ran: filter the finished (hence sign-feasible)
        # EFMs by the non-zero pattern instead of by pinned rows.
        keep = np.ones(vals.shape[0], dtype=bool)
        for name in force_last:
            keep &= np.abs(vals[:, src.reaction_index(name)]) > 1e-12
        vals = vals[keep]

    # Lines 18–21: expand back to the reduced network's full reaction set.
    efms = np.zeros((vals.shape[0], q_red))
    for j, name in enumerate(src.reaction_names):
        efms[:, reduced.reaction_index(name)] = vals[:, j]

    return SubsetResult(
        spec=spec,
        efms=efms,
        stats=run.stats,
        rank_traces=run.rank_traces,
        wall_time=time.perf_counter() - t0,
    )


def _compose_splits(first: SplitRecord, second: SplitRecord) -> SplitRecord:
    """Compose two successive split records into one original->final map."""
    return SplitRecord(
        original=first.original,
        split=second.split,
        split_names=first.split_names + second.split_names,
    )


def combined_parallel(
    reduced: MetabolicNetwork,
    partition: tuple[str, ...] | list[str],
    n_ranks: int,
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    backend: BackendName = "sequential",
    pair_strategy: PairStrategyName = "strided",
    memory_model: MemoryModel | None = None,
    subset_ids: list[int] | None = None,
) -> CombinedRunResult:
    """Algorithm 3: solve every subset of the partition independently.

    ``subset_ids`` restricts the run to selected subsets (each subset is an
    independent job in the paper's setting — Table IV runs them as separate
    Blue Gene/P submissions).
    """
    validate_partition(reduced, tuple(partition))
    specs = enumerate_subsets(tuple(partition))
    if subset_ids is not None:
        specs = [specs[i] for i in subset_ids]
    rank_memo = shared_rank_cache(reduced, options)
    results = [
        solve_subset(
            reduced,
            spec,
            n_ranks,
            options=options,
            backend=backend,
            pair_strategy=pair_strategy,
            memory_model=memory_model,
            rank_memo=rank_memo,
        )
        for spec in specs
    ]
    return CombinedRunResult(network=reduced, subsets=results)
