"""The combined parallel Nullspace Algorithm (Algorithm 3).

For each subset of the divide-and-conquer partition:

1. delete the zero-flux reactions' columns from the reduced stoichiometry
   (line 8) and recompute the kernel (line 9);
2. pin the non-zero-flux reactions to the bottom rows (line 11);
3. run the combinatorial parallel algorithm (Algorithm 2) up to — but not
   including — the pinned rows (line 14, Proposition 1);
4. keep only the columns with non-zero flux in every pinned row — with a
   positive sign where the pinned reaction is irreversible (lines 15–17);
5. re-insert zero rows for the deleted reactions (lines 18–21).

The union over all subsets is the complete EFM set; the subsets are
pairwise disjoint by construction (distinct zero/non-zero patterns).

Row ordering composes per subproblem: the pinned rows sit at the bottom
and the driver's selection window is ``[first_row, stop)``, so under
``ordering="dynamic"`` each subproblem's :class:`RowSelector` re-decides
its own elimination order from its own live mode matrix — always inside
its window, never touching a pinned row — and Proposition 1's argument
(the pinned rows are simply *not processed*) is untouched by the order
in which the window rows fall.

Steps 1–2 and 4–5 are shared by every way of *running* a subproblem
(:func:`prepare_subset` / :meth:`PreparedSubset.finalize`); the default
runner is Algorithm 2 (:func:`solve_subset`) and the degraded runner is
the checkpointed serial path
(:func:`solve_subset_checkpointed_serial`), which the
:class:`~repro.engine.scheduler.SubproblemScheduler` falls back to when a
subset exceeds the modeled node memory.  :func:`combined_parallel`
delegates subset ordering, dispatch and failure isolation to that
scheduler.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.config import DEFAULT_OPTIONS, AlgorithmOptions
from repro.core.kernel import NullspaceProblem, build_problem
from repro.core.stats import RunStats
from repro.cluster.memory import MemoryModel
from repro.dnc.subsets import SubsetSpec, enumerate_subsets, validate_partition
from repro.engine.context import RunContext
from repro.errors import (
    AlgorithmError,
    DependentPartitionError,
    OutOfMemoryError,
    PartitionError,
    ReversibleIdentityError,
)
from repro.efm.splitting import BWD_SUFFIX, FWD_SUFFIX, SplitRecord, split_reversible
from repro.linalg.batched import RankCache, problem_token
from repro.mpi.spmd import BackendName
from repro.mpi.tracing import CommTrace
from repro.network.model import MetabolicNetwork
from repro.network.stoichiometry import stoichiometric_matrix
from repro.parallel.combinatorial import combinatorial_parallel
from repro.parallel.pairs import PairStrategyName


@dataclasses.dataclass
class SubsetResult:
    """Outcome of one divide-and-conquer subproblem."""

    spec: SubsetSpec
    #: EFM rows in the *reduced network's* reaction order (zero columns
    #: re-inserted); empty array when the subset is empty or OOM'd.
    efms: np.ndarray
    stats: RunStats | None
    rank_traces: list[CommTrace]
    #: per-rank statistics from the Algorithm 2 run (``stats`` is the
    #: bulk-synchronous max-merge of these); empty on serial/degraded paths.
    rank_stats: list[RunStats] = dataclasses.field(default_factory=list)
    #: memory failure, if the subproblem exceeded the modeled capacity.
    oom: OutOfMemoryError | None = None
    wall_time: float = 0.0
    #: solved by the checkpointed serial fallback after an OOM (or an
    #: admission rejection) instead of Algorithm 2.
    degraded: bool = False
    #: restored from a scheduler checkpoint instead of recomputed.
    resumed: bool = False
    #: the scheduler's a-priori peak-footprint prediction, when scheduled.
    predicted_peak_bytes: int | None = None

    @property
    def n_efms(self) -> int:
        return int(self.efms.shape[0])

    @property
    def n_candidates(self) -> int:
        return self.stats.total_candidates if self.stats is not None else 0

    @property
    def completed(self) -> bool:
        return self.oom is None


@dataclasses.dataclass
class CombinedRunResult:
    """Aggregated outcome of Algorithm 3 over every subset.

    ``subsets`` is always in the run's *canonical* order (the subset
    enumeration order, or the caller's ``subset_ids`` order) regardless of
    the schedule or executor that produced the results — this is what
    makes the union bit-identical across executors and schedules.
    """

    network: MetabolicNetwork
    subsets: list[SubsetResult]
    #: scheduler/executor information (executor name, schedule, admission
    #: budget, degraded/resumed counts); empty for directly built results.
    meta: dict = dataclasses.field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return all(s.completed for s in self.subsets)

    @property
    def n_efms(self) -> int:
        return sum(s.n_efms for s in self.subsets)

    @property
    def total_candidates(self) -> int:
        return sum(s.n_candidates for s in self.subsets)

    @property
    def total_wall_time(self) -> float:
        return sum(s.wall_time for s in self.subsets)

    def efms(self) -> np.ndarray:
        """Union of all subsets, rows = modes, reduced-network order."""
        if not self.complete:
            raise AlgorithmError("some subsets failed; EFM set incomplete")
        parts = [s.efms for s in self.subsets if s.n_efms]
        if not parts:
            return np.zeros((0, self.network.n_reactions))
        return np.concatenate(parts, axis=0)


def shared_rank_cache(
    reduced: MetabolicNetwork, options: AlgorithmOptions
) -> tuple[RankCache, bytes] | None:
    """One rank memo for *all* subproblems of a divide-and-conquer run.

    Compatibility accessor; the canonical home of this wiring is
    :meth:`repro.engine.context.RunContext.bind_shared_rank_memo`, which
    every engine-driven run uses.  Returns ``(cache, token)`` or ``None``
    when no memo-capable backend (batched, modular) is on.
    """
    if (
        options.rank_backend not in ("batched", "modular")
        or options.acceptance == "bittree"
    ):
        return None
    token = problem_token(
        stoichiometric_matrix(reduced),
        options.policy,
        options.arithmetic == "exact",
    )
    return RankCache(), token


def _canonical_name(name: str) -> str:
    """Map a (possibly split) work-net reaction name back to its
    reduced-network origin."""
    for suffix in (FWD_SUFFIX, BWD_SUFFIX):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


@dataclasses.dataclass
class PreparedSubset:
    """Lines 8–14 of Algorithm 3, ready to run: the shrunken problem with
    partition reactions pinned, plus everything
    :meth:`finalize` needs to map the run's modes back to the reduced
    network (lines 15–21).

    ``problem`` is ``None`` for structurally empty subsets (the shrunken
    network admits no flux at all).
    """

    spec: SubsetSpec
    reduced: MetabolicNetwork
    problem: NullspaceProblem | None
    #: first pinned row — Proposition 1's early-stop position (== the full
    #: ``q`` when the dependent-partition fallback enumerates everything).
    stop: int
    #: full enumeration + filtering instead of the pinned early stop.
    fallback: bool
    split_rec: SplitRecord | None
    #: the network whose reaction order the folded modes are in.
    src: MetabolicNetwork
    force_last: tuple[str, ...]
    #: canonical reduced-network column id per problem position (for the
    #: shared rank memo), ``None`` for empty subsets.
    col_ids: np.ndarray | None

    @property
    def q_red(self) -> int:
        return self.reduced.n_reactions

    def empty_result(self, wall_time: float = 0.0) -> SubsetResult:
        return SubsetResult(
            spec=self.spec,
            efms=np.zeros((0, self.q_red)),
            stats=None,
            rank_traces=[],
            wall_time=wall_time,
        )

    def finalize(self, vals: np.ndarray) -> np.ndarray:
        """Lines 15–21: filter by the pinned rows' sign pattern, undo the
        processing permutation and any reversible splits, and re-insert
        the deleted reactions' zero columns."""
        problem = self.problem
        assert problem is not None
        # Lines 15–17: keep columns with non-zero flux in every pinned row
        # (strictly positive where the pinned reaction is irreversible: a
        # negative flux there can never be part of a valid EFM, and the
        # candidates that would have zeroed it belong to other subsets).
        if not self.fallback:
            keep = np.ones(vals.shape[0], dtype=bool)
            for pos in range(self.stop, problem.q):
                v = vals[:, pos]
                keep &= (v != 0.0) if problem.reversible[pos] else (v > 0.0)
            vals = vals[keep]
        vals = vals[:, problem.inverse_perm()]  # work_net reaction order

        if self.split_rec is not None:
            vals = self.split_rec.fold_modes(vals)  # back to src reaction order

        if self.fallback:
            # Full enumeration ran: filter the finished (hence
            # sign-feasible) EFMs by the non-zero pattern instead of by
            # pinned rows.
            keep = np.ones(vals.shape[0], dtype=bool)
            for name in self.force_last:
                keep &= np.abs(vals[:, self.src.reaction_index(name)]) > 1e-12
            vals = vals[keep]

        # Lines 18–21: expand back to the reduced network's full reaction set.
        efms = np.zeros((vals.shape[0], self.q_red))
        for j, name in enumerate(self.src.reaction_names):
            efms[:, self.reduced.reaction_index(name)] = vals[:, j]
        return efms


def prepare_subset(
    reduced: MetabolicNetwork,
    spec: SubsetSpec,
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    auto_split: bool = True,
) -> PreparedSubset:
    """Build one subset's pinned subproblem (lines 8–14).

    Auto-splits reversible reactions that cannot be pivots in the
    shrunken stoichiometry.  Partition reactions carry pivot priority; if
    one is still linearly dependent (reversible only), Proposition 1's
    early stop is unsound for this subset and the prepared problem falls
    back to full enumeration of the subnetwork plus filtering.
    """
    validate_partition(reduced, spec.partition)
    q_red = reduced.n_reactions

    sub = (
        reduced.without_reactions(spec.zero, suffix=f"-s{spec.subset_id}")
        if spec.zero
        else reduced
    )
    force_last = list(spec.nonzero)

    split_rec: SplitRecord | None = None
    work_net = sub
    fallback = False
    problem: NullspaceProblem | None = None
    for _ in range(2 * q_red + 2):
        try:
            problem = build_problem(
                work_net,
                options=options,
                force_last=() if fallback else force_last,
            )
            break
        except DependentPartitionError:
            fallback = True
        except ReversibleIdentityError as exc:
            if not auto_split:
                raise
            rec = split_reversible(work_net, exc.reactions)
            split_rec = rec if split_rec is None else _compose_splits(split_rec, rec)
            work_net = rec.split
        except AlgorithmError as exc:
            if "trivial nullspace" in str(exc):
                # The shrunken network admits no flux at all: empty subset.
                return PreparedSubset(
                    spec=spec,
                    reduced=reduced,
                    problem=None,
                    stop=0,
                    fallback=False,
                    split_rec=None,
                    src=sub,
                    force_last=tuple(force_last),
                    col_ids=None,
                )
            raise
    else:  # pragma: no cover - each retry strictly reduces failure modes
        raise PartitionError(f"subset {spec.label()}: splitting did not converge")

    assert problem is not None
    stop = problem.q if fallback else problem.q - len(force_last)
    canon = {name: j for j, name in enumerate(reduced.reaction_names)}
    col_ids = np.array(
        [canon[_canonical_name(nm)] for nm in problem.names], dtype=np.int64
    )
    return PreparedSubset(
        spec=spec,
        reduced=reduced,
        problem=problem,
        stop=stop,
        fallback=fallback,
        split_rec=split_rec,
        src=split_rec.original if split_rec is not None else sub,
        force_last=tuple(force_last),
        col_ids=col_ids,
    )


def _float_values(modes) -> np.ndarray:
    vals = modes.values
    if modes.exact:
        vals = np.array(
            [[float(x) for x in row] for row in vals], dtype=np.float64
        ).reshape(vals.shape)
    return vals


def solve_subset(
    reduced: MetabolicNetwork,
    spec: SubsetSpec,
    n_ranks: int,
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    backend: BackendName = "sequential",
    pair_strategy: PairStrategyName = "strided",
    memory_model: MemoryModel | None = None,
    auto_split: bool = True,
    rank_memo: tuple[RankCache, bytes] | None = None,
    context: RunContext | None = None,
) -> SubsetResult:
    """Solve one subset's subproblem with Algorithm 2 (lines 3–22).

    The context's shared rank memo (see
    :meth:`~repro.engine.context.RunContext.bind_shared_rank_memo`)
    shares support-pattern rank results with the run's other subproblems;
    keys are canonical reduced-network column sets, so differing
    permutations, deletions and reversible splits all address the same
    entries.  ``rank_memo`` is the legacy spelling of the same thing and
    is folded into a private context when no context is given.
    """
    ctx = RunContext.ensure(context, options=options, memory_model=memory_model)
    if context is None and rank_memo is not None:
        ctx.shared_rank_memo = rank_memo
    t0 = time.perf_counter()
    prep = prepare_subset(reduced, spec, options=ctx.options, auto_split=auto_split)
    if prep.problem is None:
        return prep.empty_result(wall_time=time.perf_counter() - t0)

    binding = ctx.rank_binding_for(prep.problem, prep.col_ids)
    try:
        run = combinatorial_parallel(
            prep.problem,
            n_ranks,
            backend=backend,
            pair_strategy=pair_strategy,
            stop_row=prep.stop,
            memory_model=ctx.fresh_memory(),
            rank_cache=binding,
            context=ctx,
        )
    except OutOfMemoryError as exc:
        return SubsetResult(
            spec=spec,
            efms=np.zeros((0, prep.q_red)),
            stats=None,
            rank_traces=[],
            oom=exc,
            wall_time=time.perf_counter() - t0,
        )

    efms = prep.finalize(_float_values(run.result.modes))
    return SubsetResult(
        spec=spec,
        efms=efms,
        stats=run.stats,
        rank_traces=run.rank_traces,
        rank_stats=run.rank_stats,
        wall_time=time.perf_counter() - t0,
    )


def solve_subset_checkpointed_serial(
    reduced: MetabolicNetwork,
    spec: SubsetSpec,
    *,
    context: RunContext | None = None,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = 1,
    auto_split: bool = True,
) -> SubsetResult:
    """Solve one subset on the checkpointed serial path (degraded mode).

    The scheduler's failure-isolation fallback: when Algorithm 2 on a
    subset exceeds the modeled node memory, the subset re-runs here —
    serial Algorithm 1 with periodic snapshots, memory accounting in
    recording (non-enforcing) mode — so one oversized subset slows the
    run down instead of aborting it, and an interrupted fallback resumes
    from its last snapshot.  With exact arithmetic (not checkpointable)
    the plain serial driver runs instead.
    """
    from repro.core.checkpoint import checkpointed_nullspace_algorithm  # noqa: PLC0415
    from repro.core.serial import nullspace_algorithm  # noqa: PLC0415

    ctx = RunContext.ensure(context, options=options)
    dry_memory = None
    if ctx.memory_model is not None:
        dry_memory = ctx.memory_model.fresh()
        dry_memory.enforcing = False
    run_ctx = dataclasses.replace(ctx, memory_model=dry_memory)

    t0 = time.perf_counter()
    prep = prepare_subset(reduced, spec, options=ctx.options, auto_split=auto_split)
    if prep.problem is None:
        return prep.empty_result(wall_time=time.perf_counter() - t0)

    # The serial drivers build their rank binding without a canonical
    # column map, so the shared memo is bypassed here (a private memo is
    # sound; sharing without col_ids would not be).
    if ctx.options.arithmetic == "float" and checkpoint_path is not None:
        res = checkpointed_nullspace_algorithm(
            prep.problem,
            checkpoint_path,
            checkpoint_every=checkpoint_every,
            stop_row=prep.stop,
            context=run_ctx,
        )
    else:
        res = nullspace_algorithm(
            prep.problem, stop_row=prep.stop, context=run_ctx
        )

    efms = prep.finalize(_float_values(res.modes))
    return SubsetResult(
        spec=spec,
        efms=efms,
        stats=res.stats,
        rank_traces=[],
        wall_time=time.perf_counter() - t0,
        degraded=True,
    )


def _compose_splits(first: SplitRecord, second: SplitRecord) -> SplitRecord:
    """Compose two successive split records into one original->final map."""
    return SplitRecord(
        original=first.original,
        split=second.split,
        split_names=first.split_names + second.split_names,
    )


def combined_parallel(
    reduced: MetabolicNetwork,
    partition: tuple[str, ...] | list[str],
    n_ranks: int,
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    backend: BackendName = "sequential",
    pair_strategy: PairStrategyName = "strided",
    memory_model: MemoryModel | None = None,
    subset_ids: list[int] | None = None,
    executor: str = "inline",
    max_workers: int | None = None,
    schedule: str | Sequence[int] = "predicted-peak",
    on_oom: str = "record",
    checkpoint_dir: str | Path | None = None,
    context: RunContext | None = None,
) -> CombinedRunResult:
    """Algorithm 3: solve every subset of the partition independently.

    Subset ordering, dispatch and failure isolation are delegated to the
    :class:`~repro.engine.scheduler.SubproblemScheduler`:

    * ``executor`` — ``"inline"`` (sequential, in-process),
      ``"process-pool"`` (work-stealing worker processes) or ``"spmd"``
      (subsets strided over simulated-MPI ranks); the union is
      bit-identical across all of them.
    * ``schedule`` — ``"predicted-peak"`` (largest predicted footprint
      first), ``"subset-id"``, ``"reverse"``, or an explicit permutation
      of subset indices.
    * ``on_oom`` — ``"record"`` captures a subset's
      :class:`~repro.errors.OutOfMemoryError` in its result (legacy
      behaviour, feeds the adaptive refiner); ``"degrade"`` re-runs the
      subset on the checkpointed serial path so the run still completes.
    * ``checkpoint_dir`` — persist each completed subset; a rerun resumes
      from what finished.

    ``subset_ids`` restricts the run to selected subsets (each subset is an
    independent job in the paper's setting — Table IV runs them as separate
    Blue Gene/P submissions).
    """
    from repro.engine.scheduler import SubproblemScheduler  # noqa: PLC0415

    validate_partition(reduced, tuple(partition))
    specs = enumerate_subsets(tuple(partition))
    if subset_ids is not None:
        specs = [specs[i] for i in subset_ids]
    ctx = RunContext.ensure(context, options=options, memory_model=memory_model)
    if ctx.shared_rank_memo is None:
        ctx.bind_shared_rank_memo(reduced)
    scheduler = SubproblemScheduler(
        reduced,
        specs,
        context=ctx,
        n_ranks=n_ranks,
        backend=backend,
        pair_strategy=pair_strategy,
        executor=executor,
        max_workers=max_workers,
        schedule=schedule,
        on_oom=on_oom,
        checkpoint_dir=checkpoint_dir,
    )
    return scheduler.run()
