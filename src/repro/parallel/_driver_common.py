"""Helpers shared by the SPMD parallel drivers.

The combinatorial (replicated) and distributed (column-partitioned)
drivers grew copy-pasted plumbing — mode (de)serialization for the
allgather rounds, transport-counter collection, and the tracing wrapper
handed to :func:`repro.mpi.spmd.run_spmd`.  One copy of each lives here.
"""

from __future__ import annotations

import functools
import os

import numpy as np

from repro.cluster.memory import MemoryModel
from repro.config import AlgorithmOptions, NumericPolicy
from repro.core.state import ModeMatrix
from repro.core.stats import RunStats
from repro.errors import AlgorithmError
from repro.linalg.bitset import PackedSupports
from repro.mpi.comm import Communicator
from repro.mpi.tracing import TracingCommunicator


def pack_modes(modes: ModeMatrix) -> tuple[np.ndarray, np.ndarray]:
    """Wire parts of a mode matrix: dense values + packed support words."""
    return modes.values, modes.supports.words


def unpack_modes(parts, q: int, policy: NumericPolicy) -> ModeMatrix:
    """Rebuild one rank's :func:`pack_modes` payload (rows are already
    canonical, so normalization is skipped)."""
    values, words = parts
    return ModeMatrix.from_parts(values, PackedSupports(words, q), policy)


def concat_mode_parts(parts, q: int, policy: NumericPolicy) -> ModeMatrix:
    """Concatenate many ranks' ``(values, words)`` payloads into one mode
    matrix (rank-major order, single allocation per array)."""
    vals = np.concatenate([p[0] for p in parts], axis=0)
    words = np.concatenate([p[1] for p in parts], axis=0)
    return ModeMatrix.from_parts(vals, PackedSupports(words, q), policy)


def collect_wire_stats(
    comm: Communicator, stats: RunStats, memory: MemoryModel | None
) -> None:
    """Copy the backend's measured transport counters into the run stats
    (and the segment peak into the memory model's capacity report)."""
    w = getattr(comm, "wire", None)
    if w is None:
        return
    stats.ser_bytes = w.ser_bytes
    stats.n_serializations = w.n_ser
    stats.wire_bytes_sent = w.wire_out
    stats.segment_peak_bytes = w.peak_segment_bytes
    if memory is not None and w.peak_segment_bytes:
        memory.note_segments(w.peak_segment_bytes)


def selection_debug_enabled(options: AlgorithmOptions) -> bool:
    """Whether the per-iteration selection-consistency fingerprint check
    runs (debug/trace mode: ``record_trace`` or ``REPRO_SELECTION_DEBUG``).
    Production dynamic selection is communication-free — every replica
    computes the same argmin locally — so the allgathered fingerprint is
    strictly a debugging assertion, never a correctness dependency."""
    return options.record_trace or bool(os.environ.get("REPRO_SELECTION_DEBUG"))


def check_selection_consistency(
    comm: Communicator, fingerprint: tuple[int, int, int]
) -> None:
    """Assert all ranks selected the same row from the same replica state.

    Allgathers each rank's cheap ``(row, n_modes, support-digest)``
    fingerprint (see :meth:`repro.core.ordering.RowSelector.fingerprint`)
    and raises :class:`~repro.errors.AlgorithmError` on the first
    divergence — a replica whose mode matrix drifted, or a
    non-deterministic selector, would otherwise corrupt the run silently.
    """
    gathered = comm.allgather(tuple(int(x) for x in fingerprint))
    bad = [r for r, fp in enumerate(gathered) if tuple(fp) != tuple(gathered[0])]
    if bad:
        raise AlgorithmError(
            f"dynamic row selection diverged across ranks: rank 0 chose "
            f"{gathered[0]} but ranks {bad} chose "
            f"{[tuple(gathered[r]) for r in bad]}"
        )


def _traced_call(worker_fn, comm: Communicator, *args, **kwargs):
    traced = TracingCommunicator(comm)
    result = worker_fn(traced, *args, **kwargs)
    if isinstance(result, tuple):
        return (*result, traced.trace)
    return result, traced.trace


def traced_worker(worker_fn):
    """Wrap an SPMD worker so its communicator is traced and the trace is
    appended to the worker's return value.

    Returns a :func:`functools.partial` over module-level functions, so
    the wrapper stays picklable for the process backend.
    """
    return functools.partial(_traced_call, worker_fn)
