"""Column-partitioned parallel Nullspace Algorithm (future-work item 1).

The paper's §V: "the current nullspace matrix should not be stored across
all the compute nodes ... but should be partitioned in an efficient way
instead."  This variant shards the mode matrix across ranks:

* each rank owns a disjoint subset of modes (initially a cyclic split of
  the kernel columns);
* at iteration ``k`` only the modes *active* in row ``k`` (positive or
  negative entry) are exchanged — the zero-entry majority never moves;
* the global pos x neg pair space is partitioned combinatorially, each
  rank keeps the candidates it generates (ownership follows generation);
* duplicate control needs global knowledge, so the packed *supports* of
  new candidates are allgathered (64x smaller than the values) and a
  deterministic first-owner rule drops repeats.

Per-rank storage is ``O(total/P + active(k))`` instead of ``O(total)`` —
the memory-scaling benchmark (E-ABL4) measures exactly this difference.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.config import DEFAULT_OPTIONS, AlgorithmOptions
from repro.core.candidates import generate_candidates, strided_range
from repro.core.iterstream import stream_iteration
from repro.core.kernel import NullspaceProblem
from repro.core.ranktest import rank_test
from repro.core.state import CandidateBatch, ModeMatrix
from repro.core.stats import PhaseTimer, RunStats
from repro.engine.context import RunContext
from repro.errors import AlgorithmError
from repro.linalg import bitset
from repro.mpi.comm import Communicator
from repro.mpi.spmd import BackendName, run_spmd
from repro.mpi.tracing import CommTrace, TracingCommunicator
from repro.parallel._driver_common import (
    collect_wire_stats,
    concat_mode_parts,
    traced_worker,
)


@dataclasses.dataclass
class DistributedRunResult:
    """Outcome of a column-partitioned run."""

    #: every rank's local modes, problem order (concatenate for the full set).
    rank_modes: list[ModeMatrix]
    rank_stats: list[RunStats]
    rank_traces: list[CommTrace]
    problem: NullspaceProblem
    #: first unprocessed row; ``problem.q`` for a full run (early-stopped
    #: runs hold an intermediate matrix, not EFMs).
    stopped_at: int = -1

    def __post_init__(self) -> None:
        if self.stopped_at < 0:
            self.stopped_at = self.problem.q

    @property
    def complete(self) -> bool:
        return self.stopped_at >= self.problem.q

    @property
    def n_efms(self) -> int:
        return sum(m.n_modes for m in self.rank_modes)

    def all_modes(self) -> ModeMatrix:
        out = self.rank_modes[0]
        for m in self.rank_modes[1:]:
            out = out.concat(m)
        return out

    def efms_input_order(self) -> np.ndarray:
        """The union of all ranks' modes in input reaction order.

        Raises :class:`~repro.errors.AlgorithmError` for early-stopped
        runs — intermediate modes are not EFMs (mirrors
        :meth:`repro.core.serial.NullspaceResult.efms_input_order`).
        """
        if not self.complete:
            raise AlgorithmError(
                f"run stopped early at row {self.stopped_at} of "
                f"{self.problem.q}; the distributed mode shards are an "
                "intermediate nullspace state, not an EFM set — read "
                ".rank_modes for intermediate access"
            )
        return np.ascontiguousarray(
            self.all_modes().values[:, self.problem.inverse_perm()]
        )

    @property
    def peak_rank_bytes(self) -> int:
        """Worst per-rank mode storage over the run — the quantity the
        partitioning is meant to shrink."""
        return max(s.peak_mode_bytes for s in self.rank_stats)


def distributed_worker(
    comm: Communicator,
    problem: NullspaceProblem,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    *,
    stop_row: int | None = None,
    context: RunContext | None = None,
) -> tuple[ModeMatrix, RunStats]:
    """SPMD body of the column-partitioned algorithm."""
    ctx = RunContext.ensure(context, options=options)
    options = ctx.options
    t_start = time.perf_counter()
    if options.arithmetic == "exact":
        raise AlgorithmError("distributed variant supports float arithmetic only")
    q = problem.q
    kernel_modes = ModeMatrix.from_kernel(problem.kernel, policy=options.policy)
    local = kernel_modes.select(np.arange(comm.rank, kernel_modes.n_modes, comm.size))
    stats = RunStats()
    stop = problem.q if stop_row is None else stop_row
    rank_cache = ctx.rank_binding_for(problem)

    # Dynamic row selection under sharding: no rank sees the whole mode
    # matrix, so the selector's scores come from globally summed pos/neg
    # count vectors — one extra tiny allgather (two int64 per remaining
    # row) per iteration, base score only (the sharded-driver exception
    # to the replicated drivers' communication-free selection; lookahead
    # needs the joint sign distribution only replicas hold).  Static
    # orderings take the replay path with no extra communication.
    selector = ctx.row_selector_for(problem, stop)
    while selector.has_next():
        if selector.dynamic:
            t0 = time.perf_counter()
            count_parts = comm.allgather(selector.count_matrix(local))
            dt_select = time.perf_counter() - t0
            totals = np.sum(np.stack(count_parts), axis=0)
            k = selector.next_row_from_counts(totals[0], totals[1])
        else:
            dt_select = 0.0
            k = selector.next_row()
        it = ctx.new_iteration(problem, k)
        selector.annotate(it)
        it.t_communicate += dt_select
        signs = local.sign_column(k)
        my_pos = local.select(np.nonzero(signs > 0)[0])
        my_neg = local.select(np.nonzero(signs < 0)[0])
        zero_keep = local.select(np.nonzero(signs == 0)[0])

        # Exchange only the active modes of this row.
        t0 = time.perf_counter()
        gathered = comm.allgather(
            (my_pos.values, my_pos.supports.words, my_neg.values, my_neg.supports.words)
        )
        it.t_communicate += time.perf_counter() - t0

        pos_all = concat_mode_parts(
            [(g[0], g[1]) for g in gathered], q, options.policy
        )
        neg_all = concat_mode_parts(
            [(g[2], g[3]) for g in gathered], q, options.policy
        )
        it.n_pos = pos_all.n_modes
        it.n_neg = neg_all.n_modes
        it.n_zero = zero_keep.n_modes  # local share only

        cand = ModeMatrix.empty(q, policy=options.policy)
        n_pairs_total = pos_all.n_modes * neg_all.n_modes
        if n_pairs_total:
            active = pos_all.concat(neg_all)
            pos_idx = np.arange(pos_all.n_modes)
            neg_idx = pos_all.n_modes + np.arange(neg_all.n_modes)
            pr = strided_range(n_pairs_total, comm.rank, comm.size)
            it.n_pairs = pr.count()
            if options.iter_streaming == "on":
                # Stream the local pair share chunk by chunk.  No
                # zero-entry preload: duplicate control against zero
                # survivors is global here, after the allgather below.
                cand = stream_iteration(
                    active, k, pos_idx, neg_idx, pr, problem.n_perm,
                    problem.rank, options, it,
                    acceptance="rank", rank_cache=rank_cache,
                )
            else:
                with PhaseTimer(it, "t_gen_cand"):
                    cand = generate_candidates(
                        active, k, pos_idx, neg_idx, pr, problem.rank,
                        options, it,
                    )
                with PhaseTimer(it, "t_merge"):
                    before = cand.n_modes
                    cand = cand.dedup()
                    it.n_duplicates += before - cand.n_modes
                it.n_tested = cand.n_modes
                with PhaseTimer(it, "t_rank_test"):
                    accept = rank_test(
                        cand,
                        problem.n_perm,
                        problem.rank,
                        policy=options.policy,
                        backend=options.rank_backend,
                        cache=rank_cache,
                        stats=it,
                    )
                    cand = cand.select(accept)
            it.n_accepted = cand.n_modes

        # Global duplicate control over supports only: a candidate is kept
        # by the lowest rank that generated it, and dropped everywhere if
        # some rank's surviving zero-entry mode already carries its support.
        t0 = time.perf_counter()
        zero_words_all = comm.allgather(zero_keep.supports.words)
        cand_words_all = comm.allgather(cand.supports.words)
        it.t_communicate += time.perf_counter() - t0
        with PhaseTimer(it, "t_merge"):
            zero_words = np.concatenate(zero_words_all, axis=0)
            if cand.n_modes:
                drop = bitset.rows_in(cand.supports.words, zero_words)
                lower_ranks = (
                    np.concatenate(cand_words_all[: comm.rank], axis=0)
                    if comm.rank
                    else np.zeros((0, cand.supports.words.shape[1]), dtype=bitset.WORD)
                )
                if lower_ranks.shape[0]:
                    drop |= bitset.rows_in(cand.supports.words, lower_ranks)
                if drop.any():
                    it.n_duplicates += int(drop.sum())
                    cand = cand.select(~drop)
                if isinstance(cand, CandidateBatch):
                    # Deferred pipeline: the global duplicate control above
                    # ran on supports alone; dense rows are rebuilt here,
                    # once, for the survivors this rank owns.
                    cand = cand.materialize(active.values)

            if bool(problem.reversible[k]):
                survivors = local
            else:
                keep_mask = signs >= 0
                it.n_neg_removed = int((~keep_mask).sum())
                survivors = local.select(np.nonzero(keep_mask)[0])
            local = survivors.concat(cand) if cand.n_modes else survivors
        it.n_modes_end = local.n_modes
        stats.add(it)
        stats.peak_mode_bytes = max(
            stats.peak_mode_bytes,
            local.nbytes() + pos_all.nbytes() + neg_all.nbytes(),
        )

    stats.t_total = time.perf_counter() - t_start
    if isinstance(comm, TracingCommunicator):
        stats.bytes_sent = comm.trace.bytes_sent
        stats.messages_sent = comm.trace.n_messages
    collect_wire_stats(comm, stats, None)
    ctx.collect(stats)
    return local, stats


def distributed_parallel(
    problem: NullspaceProblem,
    n_ranks: int,
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    backend: BackendName = "sequential",
    stop_row: int | None = None,
    context: RunContext | None = None,
) -> DistributedRunResult:
    """Run the column-partitioned algorithm on ``n_ranks`` ranks."""
    ctx = RunContext.ensure(context, options=options)
    outs = run_spmd(
        traced_worker(distributed_worker),
        n_ranks,
        backend=backend,
        args=(problem, ctx.options),
        kwargs={"stop_row": stop_row, "context": ctx},
        wire_protocol=ctx.options.wire_protocol,
        comm_timeout=ctx.options.comm_timeout_s,
    )
    return DistributedRunResult(
        rank_modes=[o[0] for o in outs],
        rank_stats=[o[1] for o in outs],
        rank_traces=[o[2] for o in outs],
        problem=problem,
        stopped_at=problem.q if stop_row is None else stop_row,
    )
