"""Distributed-memory parallel Nullspace Algorithms: the combinatorial
replicated-state algorithm (Algorithm 2) and the column-partitioned
variant (the paper's future-work item 1)."""

from repro.parallel.combinatorial import ParallelRunResult, combinatorial_parallel
from repro.parallel.distributed import distributed_parallel
from repro.parallel.pairs import PairStrategy, get_pair_strategy

__all__ = [
    "ParallelRunResult",
    "combinatorial_parallel",
    "distributed_parallel",
    "PairStrategy",
    "get_pair_strategy",
]
