"""The combinatorial parallel Nullspace Algorithm (Algorithm 2).

SPMD over a :class:`~repro.mpi.comm.Communicator`: every rank replicates
the current mode matrix; each iteration the candidate pairs are
partitioned across ranks (ParallelGenerateEFMCands), each rank locally
deduplicates (Sort&RemoveDuplicates) and rank-tests its share, then an
allgather exchanges the accepted candidates (Communicate&Merge) and every
rank appends the identical merged candidate set, keeping the replicas in
lockstep.  On the default deferred candidate pipeline the allgather ships
packed supports + int32 pair indices instead of dense float rows (~``8*q``
bytes per candidate cheaper); every rank recomputes the combination
coefficients from its replica and rebuilds the dense survivors after the
global dedup.

Determinism: the merged candidate order is canonical (rank-major gather
order, first-occurrence dedup), so all replicas stay bit-identical and the
final EFM set is independent of the number of ranks — property-tested
against the serial algorithm.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.config import DEFAULT_OPTIONS, AlgorithmOptions
from repro.core.kernel import NullspaceProblem
from repro.core.serial import (
    NullspaceResult,
    check_acceptance_applicable,
    iterate_row,
)
from repro.core.state import CandidateBatch, ModeMatrix, canonicalize_rows
from repro.core.stats import RunStats
from repro.cluster.memory import MemoryModel
from repro.engine.context import RunContext
from repro.errors import AlgorithmError
from repro.linalg import bitset
from repro.linalg.batched import CacheBinding
from repro.linalg.bitset import PackedSupports
from repro.mpi.comm import Communicator
from repro.mpi.spmd import BackendName, run_spmd
from repro.mpi.tracing import CommTrace, TracingCommunicator
from repro.parallel._driver_common import (
    check_selection_consistency,
    collect_wire_stats,
    pack_modes,
    selection_debug_enabled,
    traced_worker,
    unpack_modes,
)
from repro.parallel.pairs import PairStrategyName, get_pair_strategy


@dataclasses.dataclass
class ParallelRunResult:
    """Outcome of a parallel run: the (replicated) result plus per-rank
    statistics and communication traces."""

    result: NullspaceResult
    rank_stats: list[RunStats]
    rank_traces: list[CommTrace]

    @property
    def n_ranks(self) -> int:
        return len(self.rank_stats)

    @property
    def stats(self) -> RunStats:
        """Bulk-synchronous aggregate: per-iteration max times across ranks,
        summed candidate counters."""
        agg = self.rank_stats[0]
        for s in self.rank_stats[1:]:
            agg = agg.merged_with(s)
        return agg


def combinatorial_worker(
    comm: Communicator,
    problem: NullspaceProblem,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    *,
    pair_strategy: PairStrategyName = "strided",
    stop_row: int | None = None,
    memory_model: MemoryModel | None = None,
    rank_cache: CacheBinding | None = None,
    context: RunContext | None = None,
) -> NullspaceResult:
    """SPMD body of Algorithm 2 — call through :func:`combinatorial_parallel`
    or hand it directly to :func:`repro.mpi.spmd.run_spmd`.

    ``rank_cache`` overrides the per-worker rank memo — the
    divide-and-conquer driver passes a binding shared across subproblems
    (in-process backends share the dict; the process backend degrades to
    per-process copies, which is merely a smaller cache, never wrong).
    """
    ctx = RunContext.ensure(context, options=options)
    options = ctx.options
    t_start = time.perf_counter()
    strategy = get_pair_strategy(pair_strategy)
    exact = options.arithmetic == "exact"
    n_exact = ctx.n_exact_for(problem)
    modes = ModeMatrix.from_kernel(problem.kernel, exact=exact, policy=options.policy)
    stats = RunStats()
    # The model instance is shared across in-process ranks deliberately:
    # replicas have identical footprints, and sharing lets a dry-run probe
    # report the observed peak back to the caller.  Per-subproblem
    # isolation is the *driver's* job (solve_subset calls .fresh()).
    memory = memory_model if memory_model is not None else ctx.memory_model
    stop = problem.q if stop_row is None else stop_row
    if not (problem.first_row <= stop <= problem.q):
        raise AlgorithmError(f"stop_row {stop} out of range")
    check_acceptance_applicable(problem, options, stop)
    if rank_cache is None:
        rank_cache = ctx.rank_binding_for(problem)

    # Row selection is replica-consistent by construction: every rank
    # holds an identical mode matrix at the top of the iteration, so each
    # computes the same argmin locally — zero extra communication.  The
    # fingerprint allgather below asserts exactly that, in debug/trace
    # mode only.
    selector = ctx.row_selector_for(problem, stop)
    selection_debug = selection_debug_enabled(options)
    while selector.has_next():
        k = selector.next_row(modes)
        if selection_debug:
            check_selection_consistency(comm, selector.fingerprint(k, modes))
        it = ctx.new_iteration(problem, k)
        selector.annotate(it)
        kept, cand_local = iterate_row(
            modes,
            k,
            problem,
            options,
            it,
            pair_range_for=lambda n: strategy(n, comm.rank, comm.size),
            n_exact=n_exact,
            rank_cache=rank_cache,
            materialize=False,
            processed_rows=selector.adjacency_rows(),
        )

        # Communicate&Merge: exchange accepted local candidates; every rank
        # rebuilds the identical global candidate set.  The deferred
        # pipeline ships packed supports + int32 pair indices (the indices
        # address the replicated pre-iteration mode matrix, identical on
        # every rank, so the combination coefficients are recomputed from
        # the local replica's row-``k`` column); the eager reference ships
        # the dense normalized rows.
        if isinstance(cand_local, CandidateBatch):
            t0 = time.perf_counter()
            gathered = comm.allgather(cand_local.to_wire())
            it.t_communicate += time.perf_counter() - t0

            t0 = time.perf_counter()
            # Most ranks contribute nothing on a typical iteration (a
            # handful of acceptances spread over all ranks), so assemble
            # only the non-empty parts — and when a single rank
            # contributed, adopt its arrays without any copy.
            parts = [g for g in gathered if g[0].shape[0]]
            if parts:
                if len(parts) == 1:
                    # A single contributing rank: its batch is already
                    # locally deduplicated, and unique_rows preserves
                    # first-occurrence order, so the global dedup below
                    # would be an exact identity — skip it.
                    words, pair_i, pair_j = parts[0]
                else:
                    # Dedup on the packed words alone, *before* touching
                    # any dense data — only the surviving pair indices are
                    # sliced and only the survivors' coefficients
                    # recomputed.
                    words = np.concatenate([g[0] for g in parts])
                    pair_i = np.concatenate([g[1] for g in parts])
                    pair_j = np.concatenate([g[2] for g in parts])
                    words, first = bitset.unique_rows(words)
                    if first.size != pair_i.size:
                        pair_i = pair_i[first]
                        pair_j = pair_j[first]
                # Dense values are materialized here, once, for the
                # globally accepted survivors only.  Same rank-major
                # gather order, first-occurrence dedup, and rounding as
                # the eager path (``b*y - c*x`` is bit-identical to the
                # generation-side ``(-c)*x + b*y``: IEEE negation is
                # exact and addition commutes), so the rebuilt rows match
                # the dense rows it would have gathered (see
                # CandidateBatch.materialize, which this inlines).
                col = modes.values[:, k]
                sub = modes.values[pair_i]
                sub *= col[pair_j][:, None]
                vals = modes.values[pair_j]
                vals *= col[pair_i][:, None]
                vals -= sub
                merged = ModeMatrix.from_parts(
                    canonicalize_rows(vals, options.policy),
                    PackedSupports._wrap(words, problem.q),
                    options.policy,
                )
            else:
                merged = ModeMatrix.empty(problem.q, policy=options.policy)
        else:
            t0 = time.perf_counter()
            gathered = comm.allgather(pack_modes(cand_local))
            it.t_communicate += time.perf_counter() - t0

            t0 = time.perf_counter()
            parts = [unpack_modes(g, problem.q, options.policy) for g in gathered]
            merged = parts[0]
            for p in parts[1:]:
                merged = merged.concat(p)
            merged = merged.dedup()
        # Cross-rank duplicates against surviving zero columns were already
        # removed locally (replicated state), but two ranks may accept the
        # same ray from different pairs — the global dedup above covers it.
        modes = kept.concat(merged) if merged.n_modes else kept
        it.t_merge += time.perf_counter() - t0

        it.n_modes_end = modes.n_modes
        stats.add(it)
        stats.peak_mode_bytes = max(stats.peak_mode_bytes, modes.nbytes())
        if memory is not None:
            memory.check(k, modes)

    stats.t_total = time.perf_counter() - t_start
    if isinstance(comm, TracingCommunicator):
        stats.bytes_sent = comm.trace.bytes_sent
        stats.messages_sent = comm.trace.n_messages
    collect_wire_stats(comm, stats, memory)
    ctx.collect(stats)
    return NullspaceResult(
        problem=problem, modes=modes, stats=stats, stopped_at=stop
    )


def combinatorial_parallel(
    problem: NullspaceProblem,
    n_ranks: int,
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    backend: BackendName = "sequential",
    pair_strategy: PairStrategyName = "strided",
    stop_row: int | None = None,
    memory_model: MemoryModel | None = None,
    rank_cache: CacheBinding | None = None,
    context: RunContext | None = None,
) -> ParallelRunResult:
    """Run Algorithm 2 on ``n_ranks`` simulated ranks.

    All replicas converge to the same mode matrix; the returned
    :class:`ParallelRunResult` carries rank 0's result plus every rank's
    statistics and communication trace (for modeled timing).
    """
    ctx = RunContext.ensure(context, options=options)
    outs = run_spmd(
        traced_worker(combinatorial_worker),
        n_ranks,
        backend=backend,
        args=(problem, ctx.options),
        kwargs={
            "pair_strategy": pair_strategy,
            "stop_row": stop_row,
            "memory_model": memory_model,
            "rank_cache": rank_cache,
            "context": ctx,
        },
        wire_protocol=ctx.options.wire_protocol,
        comm_timeout=ctx.options.comm_timeout_s,
    )
    results = [r for r, _ in outs]
    traces = [t for _, t in outs]
    # Replica consistency is an algorithm invariant — verify it.
    words0 = results[0].modes.supports.words
    for r, res in enumerate(results[1:], start=1):
        if not np.array_equal(res.modes.supports.words, words0):
            raise AlgorithmError(f"rank {r} replica diverged from rank 0")
    return ParallelRunResult(
        result=results[0],
        rank_stats=[r.stats for r in results],
        rank_traces=traces,
    )
