"""Pair-partitioning strategies for ParallelGenerateEFMCands.

At each iteration the ``n_pos * n_neg`` candidate pairs are split across
ranks.  Reference [17] distributes pairs "combinatorially" — a cyclic
(strided) assignment so that consecutive pairs, whose costs correlate
(they share a positive mode), land on different ranks.  A contiguous block
split is provided as the ablation baseline.  The "tiled" strategy aligns
rank shares with the zone-map tile grid of :mod:`repro.core.pairspace`:
each rank takes a contiguous, pair-count-balanced run of tiles, so tile
pruning never straddles a rank boundary and pruned tiles are dropped
before their pair indices are materialized.
"""

from __future__ import annotations

from typing import Callable, Literal

from repro.core.candidates import PairRange, block_range, strided_range, tiled_range
from repro.errors import AlgorithmError

PairStrategyName = Literal["strided", "block", "tiled"]
PairStrategy = Callable[[int, int, int], PairRange]


def get_pair_strategy(name: PairStrategyName) -> PairStrategy:
    """Strategy factory: ``(n_pairs, rank, size) -> PairRange``."""
    if name == "strided":
        return lambda n_pairs, rank, size: strided_range(n_pairs, rank, size)
    if name == "block":
        return lambda n_pairs, rank, size: block_range(n_pairs, rank, size)
    if name == "tiled":
        return lambda n_pairs, rank, size: tiled_range(n_pairs, rank, size)
    raise AlgorithmError(f"unknown pair strategy {name!r}")


def pair_share_counts(n_pairs: int, size: int, name: PairStrategyName) -> list[int]:
    """Per-rank pair counts under a strategy (load-balance reporting).

    For the "tiled" strategy these are the balanced *estimates* of
    :meth:`~repro.core.candidates.TiledRange.count`; the exact share
    depends on the iteration's tile geometry and is recorded in
    ``IterationStats.n_pairs`` at generation time.
    """
    strategy = get_pair_strategy(name)
    return [strategy(n_pairs, r, size).count() for r in range(size)]
