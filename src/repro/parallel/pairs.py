"""Pair-partitioning strategies for ParallelGenerateEFMCands.

At each iteration the ``n_pos * n_neg`` candidate pairs are split across
ranks.  Reference [17] distributes pairs "combinatorially" — a cyclic
(strided) assignment so that consecutive pairs, whose costs correlate
(they share a positive mode), land on different ranks.  A contiguous block
split is provided as the ablation baseline.
"""

from __future__ import annotations

from typing import Callable, Literal

from repro.core.candidates import PairRange, block_range, strided_range
from repro.errors import AlgorithmError

PairStrategyName = Literal["strided", "block"]
PairStrategy = Callable[[int, int, int], PairRange]


def get_pair_strategy(name: PairStrategyName) -> PairStrategy:
    """Strategy factory: ``(n_pairs, rank, size) -> PairRange``."""
    if name == "strided":
        return lambda n_pairs, rank, size: strided_range(n_pairs, rank, size)
    if name == "block":
        return lambda n_pairs, rank, size: block_range(n_pairs, rank, size)
    raise AlgorithmError(f"unknown pair strategy {name!r}")


def pair_share_counts(n_pairs: int, size: int, name: PairStrategyName) -> list[int]:
    """Per-rank pair counts under a strategy (load-balance reporting)."""
    strategy = get_pair_strategy(name)
    return [strategy(n_pairs, r, size).count() for r in range(size)]
