"""Extreme pathways and their relation to elementary flux modes.

The paper's rank test comes from the authors' own study of extreme
pathways (ref [30], Jevremovic, Trinh, Srienc & Boley, *J. Comp. Biology*
2010, "On algebraic properties of extreme pathways in metabolic
networks").  Extreme pathways (ExPas) are the extreme rays of the flux
cone of the network with every reversible *internal* reaction split into
an irreversible forward/backward pair; elementary flux modes are the
support-minimal feasible fluxes of the original network.  Key facts this
module implements and the tests verify:

* every ExPa is an EFM of the split network (and the spurious two-cycles
  are neither);
* every EFM of the original network maps to at least one EFM of the split
  network, but not every split-network EFM is extreme: ExPas ⊆ EFMs;
* an EFM is an ExPa iff it is *conically independent* of the others —
  testable by linear programming (:func:`is_extreme_ray`).
"""

from __future__ import annotations

import numpy as np

from repro.config import DEFAULT_OPTIONS, AlgorithmOptions
from repro.efm.result import EFMResult
from repro.efm.splitting import split_reversible
from repro.errors import AlgorithmError
from repro.network.model import MetabolicNetwork


def split_all_reversible(network: MetabolicNetwork):
    """Split every reversible reaction (the ExPa configuration)."""
    names = tuple(r.name for r in network.reactions if r.reversible)
    return split_reversible(network, names)


def extreme_pathways(
    network: MetabolicNetwork,
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    drop_two_cycles: bool = True,
) -> EFMResult:
    """Compute the extreme pathways of ``network``.

    Returns an :class:`EFMResult` over the *split* network (the natural
    coordinate system for ExPas — every flux is non-negative).  With the
    whole network irreversible, the flux cone is pointed and its extreme
    rays coincide with its support-minimal elements minus the spurious
    split two-cycles, which are dropped by default.
    """
    from repro.efm.api import compute_efms  # noqa: PLC0415 - cycle guard

    rec = split_all_reversible(network)
    result = compute_efms(rec.split, options=options)
    if not drop_two_cycles and rec.split_names:
        return result
    if rec.split_names:
        keep = np.ones(result.n_efms, dtype=bool)
        for name in rec.split_names:
            jf = rec.split.reaction_index(name + "__fwd")
            jb = rec.split.reaction_index(name + "__bwd")
            both = (np.abs(result.fluxes[:, jf]) > 1e-9) & (
                np.abs(result.fluxes[:, jb]) > 1e-9
            )
            keep &= ~both
        result = EFMResult(
            network=rec.split,
            fluxes=result.fluxes[keep],
            method="extreme-pathways",
            meta=dict(result.meta, split_names=rec.split_names),
        )
    return result


def is_extreme_ray(rays: np.ndarray, i: int, *, tol: float = 1e-8) -> bool:
    """Is ray ``i`` conically independent of the other rows of ``rays``?

    Solves the LP feasibility problem ``sum_j w_j rays[j] = rays[i]``,
    ``w >= 0``, ``w_i = 0``; ray ``i`` is extreme iff no such combination
    exists.  All rays must be non-negative (split coordinates).
    """
    import scipy.optimize  # noqa: PLC0415

    rays = np.asarray(rays, dtype=np.float64)
    if not (0 <= i < rays.shape[0]):
        raise AlgorithmError(f"ray index {i} out of range")
    others = np.delete(rays, i, axis=0)
    if others.shape[0] == 0:
        return True
    target = rays[i]
    res = scipy.optimize.linprog(
        c=np.zeros(others.shape[0]),
        A_eq=others.T,
        b_eq=target,
        bounds=[(0, None)] * others.shape[0],
        method="highs",
    )
    if not res.success:
        return True  # infeasible -> cannot be composed -> extreme
    resid = float(np.abs(others.T @ res.x - target).max())
    return resid > tol * max(1.0, float(np.abs(target).max()))


def classify_extreme(result: EFMResult, *, tol: float = 1e-8) -> np.ndarray:
    """Boolean mask over a split-space EFM set: which modes are extreme
    rays (i.e. extreme pathways)?"""
    fluxes = result.fluxes
    if fluxes.size and fluxes.min() < -tol:
        raise AlgorithmError(
            "extreme-ray classification needs non-negative (split) "
            "coordinates; compute on the split network"
        )
    return np.array(
        [is_extreme_ray(fluxes, i, tol=tol) for i in range(result.n_efms)],
        dtype=bool,
    )
