"""Reversible-reaction splitting.

The Nullspace Algorithm needs every reversible reaction in the *processed*
(pivot) block of the kernel; when a network has more independent reversible
directions than the stoichiometric rank can absorb, some reversible
reactions would land in the identity block and their negative-flux modes
would be silently lost.  The classical remedy is to split such a reaction
``r`` into an irreversible forward/backward pair::

    r  (A <=> B)   ->   r<fwd> (A => B),  r<bwd> (B => A)

The EFMs of the split network are exactly the EFMs of the original network
(via ``v_r = v_fwd - v_bwd``) plus (a) one spurious two-cycle
``{r<fwd>, r<bwd>}`` per split reaction and (b) a second, sign-flipped copy
of every EFM whose support touches a split reaction *and* lies entirely in
reversible reactions.  :meth:`SplitRecord.fold_modes` removes both
artifacts when mapping results back.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction
from typing import Iterable, Sequence

import numpy as np

from repro.errors import NetworkError
from repro.network.model import MetabolicNetwork, Reaction

#: Suffixes of the split halves (chosen to stay valid reaction names).
FWD_SUFFIX = "__fwd"
BWD_SUFFIX = "__bwd"


@dataclasses.dataclass(frozen=True)
class SplitRecord:
    """Mapping between a network and its reversible-split derivative."""

    original: MetabolicNetwork
    split: MetabolicNetwork
    #: names of the original reactions that were split.
    split_names: tuple[str, ...]

    @property
    def is_trivial(self) -> bool:
        return not self.split_names

    def fold_modes(
        self, modes_split: np.ndarray, *, tol: float = 1e-12
    ) -> np.ndarray:
        """Map mode rows from split-network order back to original order.

        ``modes_split``: ``(n_modes, q_split)`` with columns in
        ``self.split.reaction_names`` order.  Returns ``(n_kept, q_orig)``
        rows in ``self.original.reaction_names`` order with two-cycle
        artifacts dropped and sign-flipped duplicates removed.
        """
        modes_split = np.atleast_2d(np.asarray(modes_split, dtype=np.float64))
        if modes_split.shape[1] != self.split.n_reactions:
            raise NetworkError(
                f"mode width {modes_split.shape[1]} != split network width "
                f"{self.split.n_reactions}"
            )
        q_orig = self.original.n_reactions
        out = np.zeros((modes_split.shape[0], q_orig))
        split_set = set(self.split_names)
        for j, name in enumerate(self.original.reaction_names):
            if name in split_set:
                jf = self.split.reaction_index(name + FWD_SUFFIX)
                jb = self.split.reaction_index(name + BWD_SUFFIX)
                out[:, j] = modes_split[:, jf] - modes_split[:, jb]
            else:
                out[:, j] = modes_split[:, self.split.reaction_index(name)]

        # Drop two-cycle artifacts: both halves of some split reaction
        # active.  Elementarity in the split network guarantees such a mode
        # IS the bare two-cycle, which folds to the zero vector.
        keep = (np.abs(out) > tol).any(axis=1)
        out = out[keep]

        # Canonicalize sign of fully-reversible-support modes and dedup the
        # flipped copies.
        irr = ~np.array(self.original.reversibility, dtype=bool)
        for i in range(out.shape[0]):
            row = out[i]
            if (np.abs(row[irr]) <= tol).all():
                nz = np.nonzero(np.abs(row) > tol)[0]
                if nz.size and row[nz[0]] < 0:
                    out[i] = -row
        return _dedup_rows(out, tol)

    def blow_up_names(self, names: Iterable[str]) -> list[str]:
        """Translate original reaction names to split-network names (a
        split reaction maps to its forward half)."""
        out = []
        split_set = set(self.split_names)
        for n in names:
            out.append(n + FWD_SUFFIX if n in split_set else n)
        return out


def split_reversible(
    network: MetabolicNetwork, names: Sequence[str]
) -> SplitRecord:
    """Split the named reversible reactions into forward/backward pairs."""
    names = tuple(names)
    for n in names:
        rxn = network.reaction(n)
        if not rxn.reversible:
            raise NetworkError(f"reaction {n!r} is not reversible; cannot split")
        for suffix in (FWD_SUFFIX, BWD_SUFFIX):
            if network.has_reaction(n + suffix):
                raise NetworkError(f"name collision: {n + suffix!r} already exists")
    if not names:
        return SplitRecord(original=network, split=network, split_names=())

    split_set = set(names)
    new_reactions: list[Reaction] = []
    for rxn in network.reactions:
        if rxn.name in split_set:
            new_reactions.append(
                Reaction(
                    name=rxn.name + FWD_SUFFIX,
                    stoich=dict(rxn.stoich),
                    reversible=False,
                    exchange=rxn.exchange,
                )
            )
            new_reactions.append(
                Reaction(
                    name=rxn.name + BWD_SUFFIX,
                    stoich={m: -c for m, c in rxn.stoich.items()},
                    reversible=False,
                    exchange=rxn.exchange,
                )
            )
        else:
            new_reactions.append(rxn)
    split_net = MetabolicNetwork(
        network.name + "-split", network.metabolites, new_reactions
    )
    return SplitRecord(original=network, split=split_net, split_names=names)


def _dedup_rows(rows: np.ndarray, tol: float) -> np.ndarray:
    """Remove near-duplicate rows up to positive scaling (ray identity)."""
    if rows.shape[0] <= 1:
        return rows
    normed = rows.copy()
    for i in range(normed.shape[0]):
        m = np.abs(normed[i]).max()
        if m > 0:
            normed[i] /= m
    keys = np.round(normed, 9)
    _, first = np.unique(keys, axis=0, return_index=True)
    first.sort()
    return rows[first]
