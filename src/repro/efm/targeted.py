"""Targeted EFM enumeration via Proposition 1.

§IV.C of the paper: "to enumerate all the elementary modes having non-zero
flux for a specific reaction is NP-hard [26], [27].  In addition, to
decide if there exists an elementary mode with non-zero fluxes for two or
more given reactions is NP-hard as well."  Hard in general — but the
divide-and-conquer machinery computes exactly these sets *without
enumerating the rest*: the subset of EFMs with non-zero flux through given
reactions is one subproblem of Algorithm 3 (all partition bits set), and
the subset with zero flux is the complementary subproblem (a plain run on
the shrunken network).

These helpers expose that as a first-class query:

* :func:`efms_through` — all EFMs with non-zero flux through every listed
  reaction (subset id ``2**k - 1``);
* :func:`efms_avoiding` — all EFMs with zero flux through every listed
  reaction (subset id ``0``);
* :func:`exists_mode_through` — the §IV.C decision problem, answered by
  running the single subproblem with an early-exit mode budget.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import DEFAULT_OPTIONS, AlgorithmOptions
from repro.cluster.memory import MemoryModel, estimate_mode_bytes
from repro.dnc.combined import solve_subset
from repro.dnc.subsets import SubsetSpec, validate_partition
from repro.efm.result import EFMResult
from repro.errors import PartitionError
from repro.mpi.spmd import BackendName
from repro.network.compression import compress_network
from repro.network.model import MetabolicNetwork


def _subset_query(
    network: MetabolicNetwork,
    reactions: Sequence[str],
    subset_id: int,
    *,
    options: AlgorithmOptions,
    n_ranks: int,
    backend: BackendName,
    memory_model: MemoryModel | None,
) -> EFMResult:
    reactions = tuple(reactions)
    if not reactions:
        raise PartitionError("give at least one target reaction")
    through = subset_id != 0
    rec = compress_network(network)
    reduced = rec.reduced
    # Map original names through compression.  Three cases:
    #  - blocked: no steady-state flux ever -> a through-query is empty,
    #    an avoiding-query is vacuous;
    #  - merged into a surviving reduced reaction: query its representative;
    #  - absorbed into a compression singleton: every reduced-network EFM
    #    expands to zero flux there, so the reduced subproblem contributes
    #    nothing to a through-query and is unconstrained for an avoiding
    #    one; the singleton post-filter below settles the rest.
    mapped: list[str] = []
    singleton_resolved = False
    for name in reactions:
        network.reaction_index(name)  # validates existence
        if name in rec.blocked:
            if through:
                return EFMResult(
                    network=network,
                    fluxes=np.zeros((0, network.n_reactions)),
                    method="targeted",
                )
            continue  # zero-flux through a blocked reaction is vacuous
        rep = next(
            (g for g, members in rec.merged_groups.items() if name in members),
            None,
        )
        if rep is not None:
            if rep not in mapped:
                mapped.append(rep)
            continue
        if any(name in s.fluxes for s in rec.singletons):
            singleton_resolved = True
            continue
        raise PartitionError(  # pragma: no cover - compression invariant
            f"reaction {name!r} was eliminated by compression in an "
            "unexpected way"
        )

    n_candidates = 0
    if through and singleton_resolved:
        # Reduced EFMs all expand to zero flux at a singleton-resolved
        # target: only the singletons can answer a through-query.
        full = np.zeros((0, network.n_reactions))
    elif mapped:
        validate_partition(reduced, mapped)
        full_id = (2 ** len(mapped) - 1) if through else 0
        spec = SubsetSpec(subset_id=full_id, partition=tuple(mapped))
        result = solve_subset(
            reduced, spec, n_ranks, options=options, backend=backend,
            memory_model=memory_model,
        )
        if not result.completed:
            assert result.oom is not None
            raise result.oom
        n_candidates = result.n_candidates
        reduced_fluxes = result.efms  # rows, reduced order
        full = rec.expand_fluxes(reduced_fluxes.T).T if reduced_fluxes.size else (
            np.zeros((0, network.n_reactions))
        )
    else:
        # No constraint binds the reduced part: enumerate it fully.
        from repro.efm.api import compute_efms  # noqa: PLC0415

        base = compute_efms(network, options=options)
        # compute_efms already appended the singletons; re-filter all modes
        # uniformly below by splitting them back apart is unnecessary —
        # filter the complete set directly and return.
        keep = np.ones(base.n_efms, dtype=bool)
        for name in reactions:
            j = network.reaction_index(name)
            active = np.abs(base.fluxes[:, j]) > 1e-12
            keep &= active if through else ~active
        out = EFMResult(
            network=network, fluxes=base.fluxes[keep], method="targeted",
            meta={"targets": reactions, "through": through,
                  "candidates": base.stats.total_candidates if base.stats else 0},
        )
        return out.canonical()
    # Singleton EFMs (resolved during compression) join the answer set iff
    # they match the query pattern.
    singles = rec.singleton_flux_matrix().T
    if singles.shape[0]:
        keep = np.ones(singles.shape[0], dtype=bool)
        for name in reactions:
            j = network.reaction_index(name)
            active = np.abs(singles[:, j]) > 1e-12
            keep &= active if subset_id != 0 else ~active
        if keep.any():
            full = np.concatenate([full, singles[keep]], axis=0) if full.size else singles[keep]
    out = EFMResult(network=network, fluxes=full, method="targeted",
                    meta={"targets": reactions, "through": through,
                          "candidates": n_candidates})
    return out.canonical()


def efms_through(
    network: MetabolicNetwork,
    reactions: Sequence[str] | str,
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    n_ranks: int = 1,
    backend: BackendName = "sequential",
    memory_model: MemoryModel | None = None,
) -> EFMResult:
    """All EFMs with non-zero flux through *every* listed reaction.

    Runs exactly one divide-and-conquer subproblem (Proposition 1) instead
    of the full enumeration.
    """
    if isinstance(reactions, str):
        reactions = (reactions,)
    return _subset_query(
        network, reactions, subset_id=1,
        options=options, n_ranks=n_ranks, backend=backend,
        memory_model=memory_model,
    )


def efms_avoiding(
    network: MetabolicNetwork,
    reactions: Sequence[str] | str,
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    n_ranks: int = 1,
    backend: BackendName = "sequential",
    memory_model: MemoryModel | None = None,
) -> EFMResult:
    """All EFMs with zero flux through every listed reaction (the
    knockout EFM set, computed directly on the shrunken network)."""
    if isinstance(reactions, str):
        reactions = (reactions,)
    return _subset_query(
        network, reactions, subset_id=0,
        options=options, n_ranks=n_ranks, backend=backend,
        memory_model=memory_model,
    )


def exists_mode_through(
    network: MetabolicNetwork,
    reactions: Sequence[str] | str,
    *,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    mode_budget: int = 100_000,
) -> bool:
    """The §IV.C decision problem: does *any* EFM use all the listed
    reactions simultaneously?

    Runs the single targeted subproblem under a mode budget; a budget
    overrun is re-raised (the caller decides whether to spend more) rather
    than guessed at.
    """
    if isinstance(reactions, str):
        reactions = (reactions,)
    budget = MemoryModel(
        capacity_bytes=estimate_mode_bytes(mode_budget, network.n_reactions),
        working_factor=1.0,
    )
    result = efms_through(
        network, reactions, options=options, memory_model=budget
    )
    return result.n_efms > 0
