"""High-level EFM API: one-call computation, result containers, reversible
splitting, application-level analyses, and text IO."""

from repro.efm.api import build_problem_with_split, compute_efms
from repro.efm.extreme_pathways import classify_extreme, extreme_pathways
from repro.efm.result import EFMResult
from repro.efm.splitting import SplitRecord, split_reversible
from repro.efm.targeted import efms_avoiding, efms_through, exists_mode_through

__all__ = [
    "build_problem_with_split",
    "compute_efms",
    "classify_extreme",
    "extreme_pathways",
    "EFMResult",
    "SplitRecord",
    "split_reversible",
    "efms_avoiding",
    "efms_through",
    "exists_mode_through",
]
