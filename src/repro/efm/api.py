"""One-call EFM computation: ``compute_efms(network, ...)``.

Chains the full pipeline of the paper: network compression (§II.C), kernel
construction in ``(I; R)`` form with the processing heuristics, the chosen
algorithm (serial Algorithm 1, combinatorial parallel Algorithm 2,
column-partitioned variant, or the combined divide-and-conquer Algorithm
3), reversible-splitting fallbacks, and expansion of the results back to
the original reaction space (merged reactions unfolded, blocked reactions
zero, compression-time singleton EFMs appended).
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from pathlib import Path

from repro.config import DEFAULT_OPTIONS, AlgorithmOptions
from repro.core.kernel import NullspaceProblem, build_problem
from repro.core.serial import nullspace_algorithm
from repro.cluster.memory import MemoryModel
from repro.dnc.combined import combined_parallel
from repro.engine.context import RunContext
from repro.dnc.selection import SelectionMethod, select_partition_reactions
from repro.efm.result import EFMResult
from repro.efm.splitting import SplitRecord, split_reversible
from repro.errors import AlgorithmError, PartitionError, ReversibleIdentityError
from repro.mpi.spmd import BackendName
from repro.network.compression import CompressionRecord, compress_network
from repro.network.model import MetabolicNetwork
from repro.parallel.combinatorial import combinatorial_parallel
from repro.parallel.distributed import distributed_parallel
from repro.parallel.pairs import PairStrategyName

Method = Literal["serial", "parallel", "distributed", "combined"]


def compute_efms(
    network: MetabolicNetwork,
    *,
    method: Method = "serial",
    n_ranks: int = 1,
    backend: BackendName = "sequential",
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    compress: bool = True,
    auto_split: bool = True,
    partition: Sequence[str] | int | None = None,
    partition_method: SelectionMethod = "tail",
    pair_strategy: PairStrategyName = "strided",
    memory_model: MemoryModel | None = None,
    executor: str = "inline",
    max_workers: int | None = None,
    schedule: str | Sequence[int] = "predicted-peak",
    on_oom: str = "record",
    checkpoint_path: str | Path | None = None,
    context: RunContext | None = None,
) -> EFMResult:
    """Compute all elementary flux modes of ``network``.

    Parameters
    ----------
    method:
        ``"serial"`` — Algorithm 1; ``"parallel"`` — Algorithm 2 on
        ``n_ranks`` simulated ranks; ``"distributed"`` — the
        column-partitioned variant; ``"combined"`` — Algorithm 3
        (divide-and-conquer over ``partition``).
    compress:
        Run the lossless network reduction first (recommended; the paper
        always does).
    auto_split:
        Automatically split reversible reactions that cannot be kernel
        pivots (see :mod:`repro.efm.splitting`); with ``False`` such
        networks raise :class:`~repro.errors.ReversibleIdentityError`.
    partition:
        For ``method="combined"``: either explicit *reduced-network*
        reaction names (bottom row last) or an integer ``q_sub`` to select
        automatically via ``partition_method``.
    memory_model:
        Optional per-rank memory cap (modeled); see
        :class:`repro.cluster.memory.MemoryModel`.
    executor, max_workers, schedule:
        For ``method="combined"``: how the subproblem scheduler dispatches
        the subsets — ``"inline"``, ``"process-pool"`` (OS worker
        processes with work stealing) or ``"spmd"``; the EFM set is
        bit-identical across all three.  See
        :class:`repro.engine.scheduler.SubproblemScheduler`.
    on_oom:
        For ``method="combined"`` with a memory model: ``"record"``
        (default) raises when a subset exceeds memory, pointing at the
        adaptive refiner; ``"degrade"`` re-runs such subsets on the
        checkpointed serial path so the call still completes.
    checkpoint_path:
        ``method="serial"``: snapshot ``.npz`` for the checkpointed
        driver.  ``method="combined"``: scheduler checkpoint *directory*
        — completed subsets persist and a rerun resumes from them.
    context:
        A pre-built :class:`~repro.engine.context.RunContext`; overrides
        ``options``/``memory_model``/``checkpoint_path``.

    Returns
    -------
    EFMResult
        Modes in the original network's reaction order.
    """
    ctx = context if context is not None else RunContext(
        options=options,
        memory_model=memory_model,
        checkpoint_path=checkpoint_path,
    )
    options = ctx.options
    if compress:
        rec = compress_network(network)
    else:
        rec = _identity_record(network)
    reduced = rec.reduced

    meta: dict = {"compression": rec.summary(), "backend": backend}
    if reduced.n_reactions == 0:
        efms_reduced = np.zeros((0, 0))
        stats = None
    elif method == "combined":
        part = _resolve_partition(reduced, partition, partition_method, options)
        meta["partition"] = part
        run = combined_parallel(
            reduced,
            part,
            n_ranks,
            backend=backend,
            pair_strategy=pair_strategy,
            executor=executor,
            max_workers=max_workers,
            schedule=schedule,
            on_oom=on_oom,
            context=ctx,
        )
        if not run.complete:
            failed = [s.spec.label() for s in run.subsets if not s.completed]
            raise AlgorithmError(
                f"divide-and-conquer subsets exceeded memory: {failed}; use "
                "on_oom='degrade' to fall back to the checkpointed serial "
                "path, or repro.dnc.adaptive.adaptive_combined for automatic "
                "refinement"
            )
        efms_reduced = run.efms()
        stats = None
        meta["executor"] = executor
        meta["scheduler"] = run.meta
        meta["subsets"] = [
            (s.spec.label(), s.n_efms, s.n_candidates) for s in run.subsets
        ]
        meta["total_candidates"] = run.total_candidates
    else:
        problem, split_rec = build_problem_with_split(reduced, options, auto_split)
        if method == "serial":
            if n_ranks != 1:
                raise AlgorithmError("serial method runs on exactly 1 rank")
            if ctx.checkpoint_path is not None:
                from repro.core.checkpoint import (  # noqa: PLC0415
                    checkpointed_nullspace_algorithm,
                )

                res = checkpointed_nullspace_algorithm(problem, context=ctx)
            else:
                res = nullspace_algorithm(problem, context=ctx)
            efms_work = res.efms_input_order()
            stats = res.stats
        elif method == "parallel":
            run = combinatorial_parallel(
                problem,
                n_ranks,
                backend=backend,
                pair_strategy=pair_strategy,
                context=ctx,
            )
            efms_work = run.result.efms_input_order()
            stats = run.stats
        elif method == "distributed":
            drun = distributed_parallel(
                problem, n_ranks, backend=backend, context=ctx
            )
            efms_work = drun.efms_input_order()
            stats = drun.rank_stats[0]
            for s in drun.rank_stats[1:]:
                stats = stats.merged_with(s)
        else:
            raise AlgorithmError(f"unknown method {method!r}")
        if split_rec is not None:
            meta["split"] = split_rec.split_names
            efms_reduced = _reorder_to(
                split_rec.fold_modes(efms_work), split_rec.original, reduced
            )
        else:
            efms_reduced = efms_work

    # Expand to the original reaction space and append singleton EFMs.
    if efms_reduced.size:
        full = rec.expand_fluxes(efms_reduced.T).T
    else:
        full = np.zeros((0, network.n_reactions))
    singles = rec.singleton_flux_matrix().T
    if singles.shape[0]:
        full = np.concatenate([full, singles], axis=0) if full.size else singles

    result = EFMResult(network=network, fluxes=full, method=method, stats=stats, meta=meta)
    return result.canonical()


def _identity_record(network: MetabolicNetwork) -> CompressionRecord:
    """A no-op compression record (compress=False path)."""
    from fractions import Fraction

    q = network.n_reactions
    expansion = [
        [Fraction(1) if i == j else Fraction(0) for j in range(q)] for i in range(q)
    ]
    return CompressionRecord(
        original=network,
        reduced=network,
        expansion=expansion,
        blocked=(),
        singletons=(),
        merged_groups={r.name: (r.name,) for r in network.reactions},
    )


def build_problem_with_split(
    reduced: MetabolicNetwork,
    options: AlgorithmOptions = DEFAULT_OPTIONS,
    auto_split: bool = True,
) -> tuple["NullspaceProblem", SplitRecord | None]:
    """Build the kernel problem, splitting reversible reactions that cannot
    be pivots until construction succeeds.  Returns ``(problem,
    split_record)`` with ``split_record=None`` when no split was needed.

    The combinatorial acceptance test (``acceptance='bittree'``/``'both'``)
    is only exact on fully irreversible systems, so those options split
    *every* reversible reaction up front.
    """
    split_rec: SplitRecord | None = None
    work = reduced
    if options.acceptance != "rank":
        reversibles = tuple(r.name for r in reduced.reactions if r.reversible)
        if reversibles:
            if not auto_split:
                raise AlgorithmError(
                    f"acceptance={options.acceptance!r} needs auto_split=True "
                    "on networks with reversible reactions"
                )
            split_rec = split_reversible(reduced, reversibles)
            work = split_rec.split
    for _ in range(reduced.n_reactions + 1):
        try:
            return build_problem(work, options=options), split_rec
        except ReversibleIdentityError as exc:
            if not auto_split:
                raise
            rec = split_reversible(work, exc.reactions)
            if split_rec is None:
                split_rec = rec
            else:
                split_rec = SplitRecord(
                    original=split_rec.original,
                    split=rec.split,
                    split_names=split_rec.split_names + rec.split_names,
                )
            work = rec.split
    raise AlgorithmError("reversible splitting did not converge")  # pragma: no cover


def _reorder_to(
    modes: np.ndarray, src: MetabolicNetwork, dst: MetabolicNetwork
) -> np.ndarray:
    """Reorder mode columns from ``src`` order to ``dst`` order (same
    reaction name sets)."""
    if src.reaction_names == dst.reaction_names:
        return modes
    out = np.zeros((modes.shape[0], dst.n_reactions))
    for j, name in enumerate(src.reaction_names):
        out[:, dst.reaction_index(name)] = modes[:, j]
    return out


def _resolve_partition(
    reduced: MetabolicNetwork,
    partition: Sequence[str] | int | None,
    partition_method: SelectionMethod,
    options: AlgorithmOptions,
) -> tuple[str, ...]:
    if partition is None:
        raise PartitionError(
            "method='combined' needs partition=<names or q_sub integer>"
        )
    if isinstance(partition, int):
        return select_partition_reactions(
            reduced, partition, method=partition_method, options=options
        )
    return tuple(partition)
