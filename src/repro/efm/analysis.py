"""EFM application analyses — the uses motivating the paper's intro.

* Gene/reaction knockout studies (refs [4]–[7]): which modes survive a
  deletion, and which target sets abolish a capability while preserving
  another (the "minimal cut set" flavor).
* Yield analysis / phenotype prediction (refs [1]–[3]): per-mode ratios of
  a product flux to a substrate flux, and the yield-optimal modes.
* Flux-distribution decomposition scaffolding (refs [8]–[12]): express an
  observed flux vector as a non-negative combination of modes.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Mapping, Sequence

import numpy as np

from repro.efm.result import EFMResult
from repro.errors import AlgorithmError


def knockout(result: EFMResult, reactions: Sequence[str], *, tol: float = 1e-9) -> EFMResult:
    """Modes surviving deletion of ``reactions`` (all must carry zero flux).

    The EFM set of the knocked-out network is exactly the subset of the
    wild-type modes inactive on every deleted reaction — no recomputation
    needed (this closure property is why EFMs suit knockout screening).
    """
    fluxes = result.fluxes
    mask = np.ones(result.n_efms, dtype=bool)
    for r in reactions:
        j = result.network.reaction_index(r)
        mask &= np.abs(fluxes[:, j]) <= tol
    return dataclasses.replace(result, fluxes=fluxes[mask])


@dataclasses.dataclass(frozen=True)
class KnockoutReport:
    """Outcome of a single- or multi-reaction knockout screen entry."""

    targets: tuple[str, ...]
    n_surviving: int
    n_wild_type: int
    #: modes through the reaction of interest that survive (None if no
    #: objective given).
    n_objective_surviving: int | None = None

    @property
    def lethal(self) -> bool:
        return self.n_surviving == 0


def knockout_screen(
    result: EFMResult,
    *,
    targets: Sequence[str] | None = None,
    objective: str | None = None,
    max_set_size: int = 1,
) -> list[KnockoutReport]:
    """Screen single (and optionally multi-) reaction deletions.

    Parameters
    ----------
    targets:
        Reactions to consider (default: all).
    objective:
        If given, also report how many modes through this reaction survive
        each knockout — e.g. ``objective="R66"`` (ethanol export) asks
        which deletions preserve ethanol production.
    max_set_size:
        1 = single knockouts; 2 = also all pairs; etc.  Combinatorial —
        keep small.
    """
    names = list(targets) if targets is not None else list(result.network.reaction_names)
    reports: list[KnockoutReport] = []
    obj_modes = result.with_active(objective) if objective is not None else None
    for size in range(1, max_set_size + 1):
        for combo in itertools.combinations(names, size):
            surviving = knockout(result, combo)
            n_obj = None
            if obj_modes is not None:
                n_obj = knockout(obj_modes, combo).n_efms
            reports.append(
                KnockoutReport(
                    targets=combo,
                    n_surviving=surviving.n_efms,
                    n_wild_type=result.n_efms,
                    n_objective_surviving=n_obj,
                )
            )
    return reports


def minimal_cut_sets(
    result: EFMResult,
    objective: str,
    *,
    max_size: int = 2,
    candidates: Sequence[str] | None = None,
) -> list[tuple[str, ...]]:
    """Reaction sets whose deletion abolishes every mode through
    ``objective`` (brute-force over small set sizes; refs [4]).

    Returns minimal sets only (no returned set contains another).
    """
    target_modes = result.with_active(objective)
    if target_modes.n_efms == 0:
        raise AlgorithmError(f"no modes use {objective!r}; nothing to cut")
    sup = target_modes.supports()
    names = list(candidates) if candidates is not None else [
        n for n in result.network.reaction_names if n != objective
    ]
    idx = {n: result.network.reaction_index(n) for n in names}
    cuts: list[tuple[str, ...]] = []
    for size in range(1, max_size + 1):
        for combo in itertools.combinations(names, size):
            if any(set(c) < set(combo) for c in cuts):
                continue  # a subset already cuts everything
            cols = [idx[n] for n in combo]
            if sup[:, cols].any(axis=1).all():
                cuts.append(combo)
    return cuts


def yields(
    result: EFMResult, product: str, substrate: str, *, tol: float = 1e-9
) -> np.ndarray:
    """Per-mode molar yield ``|flux(product)| / |flux(substrate)|``.

    Modes not consuming the substrate get yield NaN (filter before use).
    """
    jp = result.network.reaction_index(product)
    js = result.network.reaction_index(substrate)
    prod = np.abs(result.fluxes[:, jp])
    subs = np.abs(result.fluxes[:, js])
    out = np.full(result.n_efms, np.nan)
    active = subs > tol
    out[active] = prod[active] / subs[active]
    return out


def best_yield_mode(
    result: EFMResult, product: str, substrate: str
) -> tuple[int, float]:
    """Index and value of the yield-optimal mode (NaN-safe)."""
    y = yields(result, product, substrate)
    if np.isnan(y).all():
        raise AlgorithmError(f"no mode consumes {substrate!r}")
    i = int(np.nanargmax(y))
    return i, float(y[i])


def classify_modes(
    result: EFMResult, markers: Mapping[str, str], *, tol: float = 1e-9
) -> dict[str, int]:
    """Count modes by activity pattern over named marker reactions.

    ``markers`` maps a label to a reaction name; a mode is counted under
    every label whose reaction it uses.  A ``"(silent)"`` bucket counts
    modes using none of the markers.
    """
    counts = {label: 0 for label in markers}
    counts["(silent)"] = 0
    cols = {label: result.network.reaction_index(r) for label, r in markers.items()}
    for row in result.fluxes:
        hit = False
        for label, j in cols.items():
            if abs(row[j]) > tol:
                counts[label] += 1
                hit = True
        if not hit:
            counts["(silent)"] += 1
    return counts


def decompose_flux(
    result: EFMResult, observed: np.ndarray, *, rcond: float = 1e-10
) -> np.ndarray:
    """Non-negative least-squares decomposition of an observed flux vector
    onto the modes (refs [8]–[12]): weights ``w >= 0`` minimizing
    ``|| F.T w - observed ||``.

    Uses scipy's NNLS.  Returns the weight vector (length ``n_efms``).
    """
    import scipy.optimize  # noqa: PLC0415

    observed = np.asarray(observed, dtype=np.float64)
    if observed.shape != (result.network.n_reactions,):
        raise AlgorithmError("observed flux vector has wrong length")
    w, _ = scipy.optimize.nnls(result.fluxes.T, observed)
    return w
