"""Plain-text IO for networks and EFM sets.

Formats are deliberately simple and diff-friendly:

* **Network files** (``*.rxn``): one reaction equation per line in the
  paper's Figure 3–5 notation, ``#`` comments, plus optional directives
  ``@name <network name>`` and ``@external <species>...``.
* **EFM files** (``*.efm``): a header line ``# reactions: r1 r2 ...``
  followed by one tab-separated flux row per mode.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.efm.result import EFMResult
from repro.errors import ParseError
from repro.network.model import MetabolicNetwork
from repro.network.parser import format_reaction, network_from_equations


def dump_network(network: MetabolicNetwork, fp: TextIO) -> None:
    """Write a network in the reaction-equation format.

    Only internal species are reconstructable from a
    :class:`MetabolicNetwork`, so exchange markers are emitted as comments.
    """
    fp.write(f"@name {network.name}\n")
    for rxn in network.reactions:
        line = format_reaction(rxn)
        if rxn.exchange:
            line += "  # exchange"
        fp.write(line + "\n")


def dumps_network(network: MetabolicNetwork) -> str:
    buf = io.StringIO()
    dump_network(network, buf)
    return buf.getvalue()


def load_network(fp: TextIO, *, default_name: str = "unnamed") -> MetabolicNetwork:
    """Read a network written by :func:`dump_network` (or hand-authored in
    the same notation)."""
    name = default_name
    externals: list[str] = []
    specs: list[str] = []
    for lineno, raw in enumerate(fp, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("@name"):
            parts = line.split(maxsplit=1)
            if len(parts) != 2:
                raise ParseError(f"line {lineno}: @name needs a value")
            name = parts[1]
        elif line.startswith("@external"):
            externals.extend(line.split()[1:])
        elif line.startswith("@"):
            raise ParseError(f"line {lineno}: unknown directive {line.split()[0]!r}")
        else:
            specs.append(line)
    if not specs:
        raise ParseError("network file contains no reactions")
    return network_from_equations(name, specs, externals=externals)


def loads_network(text: str, *, default_name: str = "unnamed") -> MetabolicNetwork:
    return load_network(io.StringIO(text), default_name=default_name)


def save_network(network: MetabolicNetwork, path: str | Path) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        dump_network(network, fp)


def read_network(path: str | Path) -> MetabolicNetwork:
    p = Path(path)
    with open(p, encoding="utf-8") as fp:
        return load_network(fp, default_name=p.stem)


def dump_efms(result: EFMResult, fp: TextIO, *, fmt: str = "%.12g") -> None:
    """Write an EFM set: reaction-name header + one row per mode."""
    fp.write("# network: " + result.network.name + "\n")
    fp.write("# method: " + result.method + "\n")
    fp.write("# reactions: " + " ".join(result.network.reaction_names) + "\n")
    for row in result.fluxes:
        fp.write("\t".join(fmt % x for x in row) + "\n")


def load_efms(fp: TextIO, network: MetabolicNetwork) -> EFMResult:
    """Read an EFM set back against a network (validates the header)."""
    header_names: tuple[str, ...] | None = None
    method = "loaded"
    rows: list[list[float]] = []
    for lineno, raw in enumerate(fp, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("reactions:"):
                header_names = tuple(body.split(":", 1)[1].split())
            elif body.startswith("method:"):
                method = body.split(":", 1)[1].strip()
            continue
        try:
            rows.append([float(x) for x in line.split("\t")])
        except ValueError:
            raise ParseError(f"line {lineno}: bad flux row") from None
    if header_names is None:
        raise ParseError("EFM file lacks a '# reactions:' header")
    if header_names != network.reaction_names:
        raise ParseError(
            "EFM file reaction order does not match the supplied network"
        )
    fluxes = (
        np.array(rows, dtype=np.float64)
        if rows
        else np.zeros((0, network.n_reactions))
    )
    return EFMResult(network=network, fluxes=fluxes, method=method)


def save_efms(result: EFMResult, path: str | Path) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        dump_efms(result, fp)


def read_efms(path: str | Path, network: MetabolicNetwork) -> EFMResult:
    with open(path, encoding="utf-8") as fp:
        return load_efms(fp, network)
