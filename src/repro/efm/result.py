"""EFM result container in the *original* network's reaction space."""

from __future__ import annotations

import dataclasses
from typing import Iterator, Mapping

import numpy as np

from repro.core.stats import RunStats
from repro.errors import AlgorithmError
from repro.network.model import MetabolicNetwork
from repro.network.stoichiometry import stoichiometric_matrix


@dataclasses.dataclass
class EFMResult:
    """The elementary flux modes of a network.

    Attributes
    ----------
    network:
        The original (uncompressed) network.
    fluxes:
        ``(n_efms, n_reactions)`` float64, rows are modes, columns follow
        ``network.reaction_names``.  Each mode is normalized to unit
        max-norm; modes are rays (any positive scaling is the same mode).
    method:
        ``"serial"`` / ``"parallel"`` / ``"distributed"`` / ``"combined"``.
    stats:
        Run statistics (aggregated across ranks for parallel runs; ``None``
        for results assembled from sub-results that carry their own stats).
    meta:
        Free-form extras (subset tables, compression summary, ...).
    """

    network: MetabolicNetwork
    fluxes: np.ndarray
    method: str = "serial"
    stats: RunStats | None = None
    meta: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        self.fluxes = np.atleast_2d(np.asarray(self.fluxes, dtype=np.float64))
        if self.fluxes.shape[1] != self.network.n_reactions and self.fluxes.size:
            raise AlgorithmError(
                f"flux width {self.fluxes.shape[1]} != network reaction count "
                f"{self.network.n_reactions}"
            )

    # -- basics ----------------------------------------------------------------

    @property
    def n_efms(self) -> int:
        return int(self.fluxes.shape[0])

    def __len__(self) -> int:
        return self.n_efms

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.fluxes)

    def supports(self, *, tol: float = 1e-9) -> np.ndarray:
        """Boolean ``(n_efms, n_reactions)`` support mask."""
        return np.abs(self.fluxes) > tol

    def mode_as_dict(self, i: int, *, tol: float = 1e-9) -> Mapping[str, float]:
        """Mode ``i`` as ``{reaction: flux}`` over its support."""
        row = self.fluxes[i]
        return {
            name: float(row[j])
            for j, name in enumerate(self.network.reaction_names)
            if abs(row[j]) > tol
        }

    # -- canonicalization ---------------------------------------------------------

    def canonical(self) -> "EFMResult":
        """Rows scaled to unit max-norm and sorted lexicographically —
        the canonical form used to compare EFM sets across methods."""
        if not self.n_efms:
            return self
        v = self.fluxes.copy()
        scale = np.abs(v).max(axis=1, keepdims=True)
        scale[scale == 0] = 1.0
        v /= scale
        keys = np.round(v, 9)
        order = np.lexsort(keys.T[::-1])
        return dataclasses.replace(self, fluxes=v[order])

    def same_modes_as(self, other: "EFMResult", *, atol: float = 1e-7) -> bool:
        """Set-equality of two EFM results (order/scale independent)."""
        a, b = self.canonical(), other.canonical()
        return a.fluxes.shape == b.fluxes.shape and bool(
            np.allclose(a.fluxes, b.fluxes, atol=atol)
        )

    # -- filters ---------------------------------------------------------------

    def with_active(self, reaction: str, *, tol: float = 1e-9) -> "EFMResult":
        """Modes carrying non-zero flux through ``reaction``."""
        j = self.network.reaction_index(reaction)
        mask = np.abs(self.fluxes[:, j]) > tol
        return dataclasses.replace(self, fluxes=self.fluxes[mask])

    def without_active(self, reaction: str, *, tol: float = 1e-9) -> "EFMResult":
        """Modes with zero flux through ``reaction``."""
        j = self.network.reaction_index(reaction)
        mask = np.abs(self.fluxes[:, j]) <= tol
        return dataclasses.replace(self, fluxes=self.fluxes[mask])

    # -- validation ----------------------------------------------------------------

    def validate(self, *, atol: float = 1e-7, check_minimality: bool = True) -> None:
        """Assert the three defining EFM properties.

        1. steady state: ``N @ e == 0`` for every mode;
        2. thermodynamic feasibility: irreversible fluxes are >= 0;
        3. elementarity: no mode's support strictly contains another's.

        Raises :class:`~repro.errors.AlgorithmError` on the first failure.
        Minimality is O(n_efms^2) — disable for very large sets.
        """
        if not self.n_efms:
            return
        n = stoichiometric_matrix(self.network)
        resid = np.abs(n @ self.fluxes.T)
        scale = max(1.0, float(np.abs(n).max()))
        if resid.size and resid.max() > atol * scale:
            raise AlgorithmError(f"steady-state violation: {resid.max():.3e}")
        irr = ~np.array(self.network.reversibility, dtype=bool)
        if irr.any():
            worst = self.fluxes[:, irr].min(initial=0.0)
            if worst < -atol:
                raise AlgorithmError(
                    f"irreversible reaction carries negative flux: {worst:.3e}"
                )
        if check_minimality:
            sup = self.supports()
            packed = np.packbits(sup, axis=1)
            for i in range(self.n_efms):
                inside = (packed & packed[i]) == packed
                inside = inside.all(axis=1)
                inside[i] = False
                if inside.any():
                    j = int(np.nonzero(inside)[0][0])
                    if (sup[j] != sup[i]).any():
                        raise AlgorithmError(
                            f"mode {i} support strictly contains mode {j}'s"
                        )
                    raise AlgorithmError(f"modes {i} and {j} share a support")

    # -- presentation ------------------------------------------------------------

    def integerized(self, *, max_denominator: int = 10**6) -> np.ndarray:
        """Modes scaled to smallest co-prime integers (paper's eq. (7)
        presentation)."""
        from fractions import Fraction
        import math

        out = np.zeros_like(self.fluxes)
        for i, row in enumerate(self.fluxes):
            fracs = [Fraction(float(x)).limit_denominator(max_denominator) for x in row]
            lcm = 1
            for f in fracs:
                lcm = lcm * f.denominator // math.gcd(lcm, f.denominator)
            ints = [int(f * lcm) for f in fracs]
            g = 0
            for v in ints:
                g = math.gcd(g, abs(v))
            if g > 1:
                ints = [v // g for v in ints]
            out[i] = ints
        return out

    def summary(self) -> str:
        return (
            f"{self.n_efms} elementary flux modes of {self.network.name!r} "
            f"({self.network.n_metabolites}x{self.network.n_reactions}) "
            f"via {self.method}"
        )
