"""Deterministic sequential backend.

Runs the same SPMD callable as the other engines, but schedules the rank
"fibers" one at a time on worker threads guarded by a turn lock: exactly
one rank executes at any instant, and ranks hand the turn over only when
they block in a communication call.  Execution is therefore fully
deterministic (rank 0 runs to its first communication point, then rank 1,
...), which makes failures reproducible — this is the default engine for
tests and for modeled-time benchmark runs, where wall-clock overlap is
irrelevant because the clock is the platform model, not the host.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from repro.errors import CommunicatorError
from repro.mpi import wire
from repro.mpi.comm import Communicator


class _Scheduler:
    """Round-robin turn scheduler over rank threads."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.cv = threading.Condition()
        self.runnable: deque[int] = deque(range(size))
        self.current: int | None = None
        self.done = [False] * size
        self.failed: BaseException | None = None

    def wait_turn(self, rank: int) -> None:
        with self.cv:
            while self.current != rank:
                if self.failed is not None:
                    raise CommunicatorError("another rank failed") from self.failed
                self.cv.wait(timeout=60.0)

    def start(self) -> None:
        with self.cv:
            self.current = self.runnable.popleft() if self.runnable else None
            self.cv.notify_all()

    def yield_turn(self, rank: int, *, finished: bool = False) -> None:
        """Give the turn to the next runnable rank (requeuing this one
        unless finished), then wait to be rescheduled."""
        with self.cv:
            if finished:
                self.done[rank] = True
            else:
                self.runnable.append(rank)
            self.current = self.runnable.popleft() if self.runnable else None
            self.cv.notify_all()
        if not finished:
            self.wait_turn(rank)


class SequentialCommunicator(Communicator):
    """Rank endpoint of the sequential engine."""

    def __init__(
        self, rank: int, size: int, world: "_World", *, protocol: str = "pickle"
    ) -> None:
        super().__init__(rank, size, protocol)
        self._world = world
        self._protocol = protocol

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not (0 <= dest < self.size):
            raise CommunicatorError(f"send to invalid rank {dest}")
        blob = wire.pack_message(obj, self._protocol, self.wire)
        self.wire.wire_out += len(blob)
        self._world.mail[dest].append((self.rank, tag, blob))

    def recv(self, source: int, tag: int = 0) -> Any:
        world = self._world
        for _ in range(10_000_000):
            box = world.mail[self.rank]
            for i, (src, t, blob) in enumerate(box):
                if src == source and t == tag:
                    del box[i]
                    self.wire.wire_in += len(blob)
                    return wire.unpack_message(blob)
            # Nothing yet: cede the turn so the sender can run.
            world.scheduler.yield_turn(self.rank)
        raise CommunicatorError("recv starved")  # pragma: no cover

    def barrier(self) -> None:
        self._rendezvous("barrier", None)

    def allgather(self, obj: Any) -> list[Any]:
        blob = wire.pack_message(obj, self._protocol, self.wire)
        self.wire.wire_out += len(blob)
        slots = self._rendezvous("allgather", blob)
        out = []
        for r, s in enumerate(slots):
            if r != self.rank:
                self.wire.wire_in += len(s)
            out.append(wire.unpack_message(s))
        return out

    def _rendezvous(self, kind: str, payload: Any) -> list[Any]:
        """Generic collective: deposit a slot, spin (yielding the turn)
        until all ranks of this collective round have deposited."""
        world = self._world
        round_no = world.round_counter[self.rank]
        world.round_counter[self.rank] += 1
        key = (kind, round_no)
        slots = world.collectives.setdefault(key, [None] * self.size)
        deposited = world.deposited.setdefault(key, [False] * self.size)
        slots[self.rank] = payload
        deposited[self.rank] = True
        while not all(deposited):
            world.scheduler.yield_turn(self.rank)
        result = list(slots)
        world.arrived.setdefault(key, set()).add(self.rank)
        if len(world.arrived[key]) == self.size:
            # Last reader cleans up the round.
            del world.collectives[key], world.deposited[key], world.arrived[key]
        return result


class _World:
    def __init__(self, size: int) -> None:
        self.scheduler = _Scheduler(size)
        self.mail: list[list[tuple[int, int, bytes]]] = [[] for _ in range(size)]
        self.collectives: dict[tuple, list[Any]] = {}
        self.deposited: dict[tuple, list[bool]] = {}
        self.arrived: dict[tuple, set[int]] = {}
        self.round_counter = [0] * size


class SequentialEngine:
    """Deterministic one-rank-at-a-time SPMD engine."""

    name = "sequential"

    def __init__(self, *, wire_protocol: str | None = None, comm_timeout: float | None = None) -> None:
        self.wire_protocol = wire.resolve_protocol(wire_protocol)
        self.comm_timeout = wire.resolve_timeout(comm_timeout)

    def run(self, fn, size: int, args: tuple = (), kwargs: dict | None = None) -> list[Any]:
        kwargs = kwargs or {}
        world = _World(size)
        sched = world.scheduler
        results: list[Any] = [None] * size
        errors: list[BaseException | None] = [None] * size

        def worker(rank: int) -> None:
            comm = SequentialCommunicator(rank, size, world, protocol=self.wire_protocol)
            try:
                sched.wait_turn(rank)
                results[rank] = fn(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors[rank] = exc
                with sched.cv:
                    if sched.failed is None:  # keep the root cause
                        sched.failed = exc
                    sched.cv.notify_all()
            finally:
                if errors[rank] is None:
                    sched.yield_turn(rank, finished=True)

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"seq-rank-{r}", daemon=True)
            for r in range(size)
        ]
        for t in threads:
            t.start()
        sched.start()
        for t in threads:
            t.join(timeout=600.0)
        if sched.failed is not None:
            raise sched.failed  # the root cause, not a secondary stall
        for exc in errors:
            if exc is not None:
                raise exc
        for t in threads:
            if t.is_alive():
                raise CommunicatorError("sequential engine deadlocked")
        return results
