"""Typed zero-copy wire codec for the message-passing substrate.

The parallel Nullspace Algorithm is bulk-synchronous and its hot payloads
have a handful of known shapes: ndarrays, tuples of ndarrays (the deferred
pipeline's ``CandidateBatch.to_wire`` triple, the distributed variant's
active-mode 4-tuple), and small scalars/None for control traffic.  Generic
``pickle`` serializes those shapes correctly but wastefully — every peer
of a mesh allgather re-pickled the same object, and every receiver paid a
full deep copy on load.

This module frames a known payload into **one contiguous blob** via the
buffer protocol:

``[prefix 16B][typed header][pad][buffer 0][pad][buffer 1]...``

* the prefix is ``(magic "RWF1", version, header_len, data_start)``;
* the header is a compact recursive type tree (tag bytes plus struct-packed
  scalars, dtype/shape metadata for arrays, child counts for containers);
* array payload bytes land in the data section, 8-byte aligned, in header
  walk order — no per-buffer offsets are stored, decode re-derives them.

Encoding touches each array's memory exactly once (the memcpy into the
output blob — or directly into a shared-memory segment via
:meth:`Frame.write_into`).  Decoding allocates **nothing** for array
payloads: ``np.frombuffer`` views into the (read-only) blob are returned
with ``writeable=False``, so a receiver can never corrupt the sender.
Unknown payload types fall back to an embedded pickle node — the escape
hatch that keeps the codec total.

The codec is deliberately independent of any communicator: backends call
:func:`encode` / :func:`decode` and account the byte counts in their
:class:`WireCounters`.
"""

from __future__ import annotations

import os
import pickle
import struct
from typing import Any

import numpy as np

from repro.errors import CommunicatorError


class WireError(CommunicatorError):
    """Malformed frame or unencodable payload with fallback disabled."""


#: First bytes of every frame.  Pickle streams start with ``b"\x80"``
#: (PROTO opcode) for every protocol this package emits, so sniffing the
#: magic cleanly separates framed from pickled blobs on a shared pipe.
MAGIC = b"RWF1"
VERSION = 1

_PREFIX = struct.Struct("<4sIII")  # magic, version, header_len, data_start
_ALIGN = 8

# Header tags (one byte each).
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3  # 64-bit signed; wider ints take the pickle path
_T_FLOAT = 4
_T_STR = 5
_T_BYTES = 6
_T_ARRAY = 7
_T_TUPLE = 8
_T_LIST = 9
_T_PICKLE = 10

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


def _align(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


class Frame:
    """An encoded payload: typed header plus zero-copy buffer references.

    The buffers still alias the caller's arrays — nothing has been copied
    yet.  :meth:`to_bytes` materializes the one contiguous blob;
    :meth:`write_into` performs the same single copy into caller-provided
    memory (a shared-memory segment), skipping the intermediate ``bytes``.
    """

    __slots__ = ("header", "buffers", "nbytes", "data_start", "n_pickled")

    def __init__(self, header: bytes, buffers: list, n_pickled: int) -> None:
        self.header = header
        self.buffers = buffers
        self.n_pickled = n_pickled
        self.data_start = _align(_PREFIX.size + len(header))
        off = self.data_start
        for buf in buffers:
            off = _align(off) + buf.nbytes
        self.nbytes = off

    def write_into(self, target) -> int:
        """Assemble the frame into ``target`` (a writable buffer of at
        least :attr:`nbytes` bytes); returns the frame size."""
        mv = memoryview(target).cast("B")
        if len(mv) < self.nbytes:
            raise WireError(
                f"frame needs {self.nbytes} bytes, target has {len(mv)}"
            )
        _PREFIX.pack_into(
            mv, 0, MAGIC, VERSION, len(self.header), self.data_start
        )
        mv[_PREFIX.size : _PREFIX.size + len(self.header)] = self.header
        off = self.data_start
        for buf in self.buffers:
            off = _align(off)
            n = buf.nbytes
            if n:  # empty buffers (0-row arrays) carry no data bytes
                mv[off : off + n] = memoryview(buf).cast("B")
            off += n
        return self.nbytes

    def to_bytes(self) -> bytes:
        out = bytearray(self.nbytes)
        self.write_into(out)
        return bytes(out)


def encode(obj: Any, *, fallback: bool = True) -> Frame:
    """Frame a payload; unknown node types become embedded pickle nodes
    unless ``fallback=False`` (then they raise :class:`WireError`)."""
    header = bytearray()
    buffers: list = []
    n_pickled = _encode_node(obj, header, buffers, fallback)
    return Frame(bytes(header), buffers, n_pickled)


def _encode_node(obj: Any, header: bytearray, buffers: list, fallback: bool) -> int:
    """Append one node to the header/buffers; returns pickle-node count."""
    if obj is None:
        header.append(_T_NONE)
        return 0
    t = type(obj)
    if t is bool:
        header.append(_T_TRUE if obj else _T_FALSE)
        return 0
    if t is int:
        if _INT64_MIN <= obj <= _INT64_MAX:
            header.append(_T_INT)
            header += _I64.pack(obj)
            return 0
        return _encode_pickle(obj, header, buffers, fallback)
    if t is float:
        header.append(_T_FLOAT)
        header += _F64.pack(obj)
        return 0
    if t is str:
        raw = obj.encode("utf-8")
        header.append(_T_STR)
        header += _U32.pack(len(raw))
        header += raw
        return 0
    if t is bytes or t is bytearray:
        header.append(_T_BYTES)
        header += _U64.pack(len(obj))
        buffers.append(memoryview(obj).cast("B"))
        return 0
    if isinstance(obj, np.ndarray):
        if obj.dtype.hasobject:
            # Object arrays (exact-arithmetic Fractions) have no buffer
            # protocol representation — pickle the node.
            return _encode_pickle(obj, header, buffers, fallback)
        # ascontiguousarray promotes 0-d to 1-d, so the shape metadata is
        # taken from the original array.
        arr = obj if obj.flags.c_contiguous else np.ascontiguousarray(obj)
        dt = arr.dtype.str.encode("ascii")
        header.append(_T_ARRAY)
        header.append(len(dt))
        header += dt
        header.append(obj.ndim)
        for dim in obj.shape:
            header += _U64.pack(dim)
        header += _U64.pack(arr.nbytes)
        buffers.append(arr)
        return 0
    if t is tuple or t is list:
        header.append(_T_TUPLE if t is tuple else _T_LIST)
        header += _U32.pack(len(obj))
        n = 0
        for child in obj:
            n += _encode_node(child, header, buffers, fallback)
        return n
    return _encode_pickle(obj, header, buffers, fallback)


def _encode_pickle(obj: Any, header: bytearray, buffers: list, fallback: bool) -> int:
    if not fallback:
        raise WireError(f"cannot frame {type(obj).__name__} with fallback off")
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    header.append(_T_PICKLE)
    header += _U64.pack(len(blob))
    buffers.append(memoryview(blob))
    return 1


def is_frame(blob) -> bool:
    """True when ``blob`` starts with a codec frame prefix."""
    mv = memoryview(blob)
    return len(mv) >= _PREFIX.size and bytes(mv[:4]) == MAGIC


def decode(blob) -> Any:
    """Rebuild the payload of one frame.

    Array nodes come back as **read-only views** into ``blob`` — zero
    copies, so the decoded object stays valid exactly as long as ``blob``
    (or the shared-memory segment backing it) does.  Callers that need the
    arrays to outlive the blob must copy; the algorithm's merge paths all
    concatenate (and therefore copy) before the next iteration.
    """
    mv = memoryview(blob).cast("B")
    if not mv.readonly:
        mv = mv.toreadonly()
    if len(mv) < _PREFIX.size:
        raise WireError("truncated frame prefix")
    magic, version, header_len, data_start = _PREFIX.unpack_from(mv, 0)
    if magic != MAGIC:
        raise WireError("bad frame magic")
    if version != VERSION:
        raise WireError(f"unsupported frame version {version}")
    header = mv[_PREFIX.size : _PREFIX.size + header_len]
    obj, hpos, dpos = _decode_node(header, 0, mv, data_start)
    if hpos != header_len:
        raise WireError("trailing header bytes")
    return obj


def _decode_node(header, hpos: int, data, dpos: int):
    tag = header[hpos]
    hpos += 1
    if tag == _T_NONE:
        return None, hpos, dpos
    if tag == _T_TRUE:
        return True, hpos, dpos
    if tag == _T_FALSE:
        return False, hpos, dpos
    if tag == _T_INT:
        return _I64.unpack_from(header, hpos)[0], hpos + 8, dpos
    if tag == _T_FLOAT:
        return _F64.unpack_from(header, hpos)[0], hpos + 8, dpos
    if tag == _T_STR:
        n = _U32.unpack_from(header, hpos)[0]
        hpos += 4
        return bytes(header[hpos : hpos + n]).decode("utf-8"), hpos + n, dpos
    if tag == _T_BYTES:
        n = _U64.unpack_from(header, hpos)[0]
        hpos += 8
        dpos = _align(dpos)
        return bytes(data[dpos : dpos + n]), hpos, dpos + n
    if tag == _T_ARRAY:
        dt_len = header[hpos]
        hpos += 1
        dtype = np.dtype(bytes(header[hpos : hpos + dt_len]).decode("ascii"))
        hpos += dt_len
        ndim = header[hpos]
        hpos += 1
        shape = tuple(
            _U64.unpack_from(header, hpos + 8 * i)[0] for i in range(ndim)
        )
        hpos += 8 * ndim
        nbytes = _U64.unpack_from(header, hpos)[0]
        hpos += 8
        dpos = _align(dpos)
        arr = np.frombuffer(data[dpos : dpos + nbytes], dtype=dtype)
        return arr.reshape(shape), hpos, dpos + nbytes
    if tag in (_T_TUPLE, _T_LIST):
        count = _U32.unpack_from(header, hpos)[0]
        hpos += 4
        items = []
        for _ in range(count):
            child, hpos, dpos = _decode_node(header, hpos, data, dpos)
            items.append(child)
        return (tuple(items) if tag == _T_TUPLE else items), hpos, dpos
    if tag == _T_PICKLE:
        n = _U64.unpack_from(header, hpos)[0]
        hpos += 8
        dpos = _align(dpos)
        return pickle.loads(data[dpos : dpos + n]), hpos, dpos + n
    raise WireError(f"unknown frame tag {tag}")


# -- protocol selection --------------------------------------------------------

#: The two wire protocols of the in-process MPI substitutes.
PROTOCOLS = ("typed", "pickle")


def resolve_protocol(value: str | None = None) -> str:
    """The effective wire protocol: an explicit value, else the
    ``REPRO_WIRE_PROTOCOL`` environment default, else ``"typed"``."""
    out = value if value is not None else os.environ.get(
        "REPRO_WIRE_PROTOCOL", "typed"
    )
    if out not in PROTOCOLS:
        raise WireError(
            f"unknown wire protocol {out!r}; available: {', '.join(PROTOCOLS)}"
        )
    return out


def resolve_timeout(value: float | None = None) -> float:
    """Blocking-receive poll timeout in seconds (``REPRO_COMM_TIMEOUT_S``,
    default 300 — the previously hard-coded process-backend constant)."""
    if value is not None:
        out = float(value)
    else:
        out = float(os.environ.get("REPRO_COMM_TIMEOUT_S", "300"))
    if out <= 0:
        raise WireError(f"comm timeout must be positive, got {out}")
    return out


DEFAULT_SEGMENT_MIN = 32768


def resolve_segment_min(value: int | None = None) -> int:
    """Minimum logical payload size (bytes) for which the process backend
    routes an allgather through its shared-memory arena
    (``REPRO_WIRE_SEGMENT_MIN``, default 32768).  Payloads below the
    threshold ride inline in the dissemination control messages — the
    classic eager/rendezvous switch of real MPI implementations: small
    frames fit the 64 KiB pipe buffer and skip the segment map entirely,
    while large frames must use the arena anyway (an all-send-then-recv
    exchange of multi-MB blobs over bounded pipes would deadlock).  Set
    to 0 to force every typed allgather through the arena."""
    if value is not None:
        out = int(value)
    else:
        out = int(
            os.environ.get("REPRO_WIRE_SEGMENT_MIN", str(DEFAULT_SEGMENT_MIN))
        )
    if out < 0:
        raise WireError(f"segment-min threshold must be >= 0, got {out}")
    return out


def segments_enabled(value: bool | None = None) -> bool:
    """Whether the process backend may use shared-memory allgather
    segments (``REPRO_WIRE_SEGMENTS=off|ring|none|0`` disables, forcing
    the ring fallback that models a real MPI network)."""
    if value is not None:
        return bool(value)
    return os.environ.get("REPRO_WIRE_SEGMENTS", "on").lower() not in (
        "off",
        "ring",
        "none",
        "0",
    )


class WireCounters:
    """Per-communicator transport accounting, updated by every backend.

    ``ser_bytes``/``n_ser`` measure serialization *work* (bytes produced
    by payload encodes/pickles); ``wire_out``/``wire_in`` measure
    *serialized payload* bytes physically moved through the transport
    (pipe writes, slot deposits, shared-segment writes) — the quantity
    the shared-memory allgather collapses from O(P) copies of each
    payload to one; ``ctrl_out`` separately counts control-plane bytes
    (segment announcements, ring forwarding envelopes) that a real MPI
    allgather would not put on the network.  Segment fields track the
    shared-memory plane: ``last_segment_bytes`` is the total mapped
    segment footprint of the most recent allgather round, which
    :meth:`repro.cluster.memory.MemoryModel.note_segments` records.
    """

    __slots__ = (
        "protocol",
        "n_ser",
        "ser_bytes",
        "n_pickle_fallbacks",
        "wire_out",
        "wire_in",
        "ctrl_out",
        "msgs_out",
        "counts_messages",
        "segment_bytes",
        "last_segment_bytes",
        "peak_segment_bytes",
    )

    def __init__(self, protocol: str = "pickle") -> None:
        self.protocol = protocol
        self.n_ser = 0
        self.ser_bytes = 0
        self.n_pickle_fallbacks = 0
        self.wire_out = 0
        self.wire_in = 0
        self.ctrl_out = 0
        #: transport messages this rank put on the wire; only meaningful
        #: when the backend sets ``counts_messages`` (the process backend
        #: does — simulator backends keep the legacy mesh estimate).
        self.msgs_out = 0
        self.counts_messages = False
        self.segment_bytes = 0
        self.last_segment_bytes = 0
        self.peak_segment_bytes = 0

    def count_ser(self, nbytes: int, *, pickled: int = 0) -> None:
        self.n_ser += 1
        self.ser_bytes += int(nbytes)
        self.n_pickle_fallbacks += int(pickled)

    def note_segment_round(self, mapped_bytes: int) -> None:
        self.last_segment_bytes = int(mapped_bytes)
        self.peak_segment_bytes = max(self.peak_segment_bytes, int(mapped_bytes))

    def snapshot(self) -> tuple[int, int, int, int, int]:
        """(wire_out, wire_in, ser_bytes, n_ser, msgs_out) — tracing
        takes deltas around an operation to attribute counters to
        events."""
        return (
            self.wire_out,
            self.wire_in,
            self.ser_bytes,
            self.n_ser,
            self.msgs_out,
        )


def pack_message(
    obj: Any, protocol: str, counters: WireCounters | None = None
) -> bytes:
    """Serialize one payload exactly once under ``protocol``."""
    if protocol == "typed":
        frame = encode(obj)
        blob = frame.to_bytes()
        if counters is not None:
            counters.count_ser(len(blob), pickled=frame.n_pickled)
        return blob
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if counters is not None:
        counters.count_ser(len(blob), pickled=1)
    return blob


def unpack_message(blob) -> Any:
    """Deserialize a blob produced by :func:`pack_message` (either
    protocol — frames are sniffed by magic)."""
    if is_frame(blob):
        return decode(blob)
    return pickle.loads(blob)
