"""SPMD launcher: one entry point over the three engines."""

from __future__ import annotations

import os
from typing import Any, Callable, Literal

from repro.errors import CommunicatorError
from repro.mpi.comm import Communicator

BackendName = Literal["sequential", "thread", "process"]


def available_parallelism(cap: int = 8) -> int:
    """Usable worker-process count on this host, capped.

    The subproblem scheduler's default ``max_workers``: the scheduling
    overhead of more workers than cores is pure loss for the CPU-bound
    rank-test phases, and benchmark hosts vary from 1-core CI runners to
    large shared machines, so this clamps ``os.cpu_count()`` to
    ``[1, cap]``.
    """
    return max(1, min(cap, os.cpu_count() or 1))


def get_engine(
    backend: BackendName,
    *,
    wire_protocol: str | None = None,
    comm_timeout: float | None = None,
):
    """Instantiate an engine by name (lazy imports keep multiprocessing out
    of sequential-only runs).

    ``wire_protocol``/``comm_timeout`` default from the environment
    (``REPRO_WIRE_PROTOCOL``, ``REPRO_COMM_TIMEOUT_S``) when ``None``.
    """
    if backend == "sequential":
        from repro.mpi.sequential import SequentialEngine  # noqa: PLC0415

        return SequentialEngine(wire_protocol=wire_protocol, comm_timeout=comm_timeout)
    if backend == "thread":
        from repro.mpi.threads import ThreadEngine  # noqa: PLC0415

        return ThreadEngine(wire_protocol=wire_protocol, comm_timeout=comm_timeout)
    if backend == "process":
        from repro.mpi.process import ProcessEngine  # noqa: PLC0415

        return ProcessEngine(wire_protocol=wire_protocol, comm_timeout=comm_timeout)
    raise CommunicatorError(f"unknown backend {backend!r}")


def run_spmd(
    fn: Callable[..., Any],
    size: int,
    *,
    backend: BackendName = "sequential",
    args: tuple = (),
    kwargs: dict | None = None,
    wire_protocol: str | None = None,
    comm_timeout: float | None = None,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` ranks; returns the
    per-rank return values.

    ``backend="sequential"`` is deterministic and single-threaded (the
    default, and the right choice for modeled-time benchmarks);
    ``"thread"`` overlaps numpy kernels; ``"process"`` uses real OS
    processes (picklable ``fn``/``args`` required).
    """
    if size < 1:
        raise CommunicatorError("size must be >= 1")
    engine = get_engine(backend, wire_protocol=wire_protocol, comm_timeout=comm_timeout)
    return engine.run(fn, size, args=args, kwargs=kwargs or {})


__all__ = [
    "run_spmd",
    "get_engine",
    "available_parallelism",
    "BackendName",
    "Communicator",
]
