"""Communication tracing: message/byte counters for modeled timing.

Wrap any :class:`~repro.mpi.comm.Communicator` in a
:class:`TracingCommunicator` and every send / allgather / barrier is
recorded into a :class:`CommTrace`.  The cluster platform models
(:mod:`repro.cluster.platform`) replay a trace against latency/bandwidth
specs to produce the modeled "communicate" column of the paper's tables.

Two byte measures coexist per event.  The *logical* sizes (``bytes_out``/
``bytes_in``, via :func:`payload_nbytes`) describe the payload contents
and are stable across wire protocols — they are what the scaling tables
compare.  The *measured* wire counters (``ser_bytes``/``n_ser``/
``wire_out``/``wire_in``, taken as deltas of the backend's
:class:`~repro.mpi.wire.WireCounters` around the operation) describe what
the transport actually did: how many times the payload was serialized,
how many framed-or-pickled bytes were produced, and how many bytes moved.
Platform replay prefers the measured sizes when present (see
``modeled_bytes_sent``) and falls back to the logical ones for
hand-built traces.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.mpi.comm import Communicator, payload_nbytes


@dataclasses.dataclass(frozen=True)
class CommEvent:
    """One traced communication operation (as seen by one rank).

    The trailing keyword fields carry measured wire-counter deltas;
    their defaults (``0`` / ``-1`` = "not measured") keep hand-built
    positional events — and traces recorded before the typed wire
    protocol existed — meaningful.
    """

    kind: str  # "send" | "recv" | "allgather" | "barrier" | "bcast"
    bytes_out: int
    bytes_in: int
    peers: int  # ranks involved besides self
    ser_bytes: int = 0  # serialized bytes produced during this op
    n_ser: int = 0  # payload serializations performed during this op
    wire_out: int = -1  # transport bytes out (-1: not measured)
    wire_in: int = -1  # transport bytes in (-1: not measured)
    n_msgs: int = -1  # transport messages sent (-1: not measured)


@dataclasses.dataclass
class CommTrace:
    """Accumulated communication behaviour of one rank."""

    events: list[CommEvent] = dataclasses.field(default_factory=list)

    @property
    def bytes_sent(self) -> int:
        return sum(e.bytes_out for e in self.events)

    @property
    def bytes_received(self) -> int:
        return sum(e.bytes_in for e in self.events)

    @property
    def allgather_bytes(self) -> int:
        """Bytes this rank pushed into allgather collectives — the hot
        Communicate&Merge traffic the packed-support wire format shrinks."""
        return sum(e.bytes_out for e in self.events if e.kind == "allgather")

    @property
    def n_messages(self) -> int:
        """Transport messages this rank sent: the measured count when the
        backend records one (the process backend does — e.g. an allgather
        over the shared-memory plane is ceil(log2 P) descriptor messages,
        a pickle mesh P-1 payload sends), else the legacy mesh estimate
        (allgather among P ranks as P-1 sends)."""
        out = 0
        for e in self.events:
            if e.n_msgs >= 0:
                out += e.n_msgs
            elif e.kind == "send":
                out += 1
            elif e.kind == "allgather":
                out += e.peers
            elif e.kind == "bcast":
                # Root fans out to each peer; a non-root rank's bcast is
                # one inbound message.
                out += e.peers if e.bytes_out > 0 else 1
        return out

    # -- measured wire counters (0 / legacy fallbacks where unmeasured) -------

    @property
    def ser_bytes(self) -> int:
        """Serialized bytes actually produced (serialization *work*) —
        under serialize-once transports this stays flat in fan-out where
        the legacy path grew by a factor of P-1."""
        return sum(e.ser_bytes for e in self.events)

    @property
    def n_serializations(self) -> int:
        return sum(e.n_ser for e in self.events)

    @property
    def wire_bytes_sent(self) -> int:
        """Bytes physically handed to the transport (pipe writes, slot
        deposits, segment writes); logical sizes where not measured."""
        return sum(e.wire_out if e.wire_out >= 0 else e.bytes_out for e in self.events)

    @property
    def wire_bytes_received(self) -> int:
        return sum(e.wire_in if e.wire_in >= 0 else e.bytes_in for e in self.events)

    @property
    def modeled_bytes_sent(self) -> int:
        """Outbound volume a real network transport would move: the
        serialized payload travels once per peer for collectives (the
        shared-memory plane's single segment write still reaches P-1
        readers), measured wire bytes for point-to-point, logical sizes
        for unmeasured events."""
        out = 0
        for e in self.events:
            if e.kind in ("allgather", "bcast") and e.n_ser > 0:
                out += e.ser_bytes * e.peers
            elif e.wire_out >= 0:
                out += e.wire_out
            else:
                out += e.bytes_out
        return out

    @property
    def modeled_bytes_received(self) -> int:
        return sum(e.wire_in if e.wire_in >= 0 else e.bytes_in for e in self.events)

    def merge(self, other: "CommTrace") -> "CommTrace":
        return CommTrace(events=self.events + other.events)

    def clear(self) -> None:
        self.events.clear()


class TracingCommunicator(Communicator):
    """Transparent tracing wrapper around another communicator."""

    def __init__(self, inner: Communicator, trace: CommTrace | None = None) -> None:
        super().__init__(inner.rank, inner.size, inner.wire.protocol)
        self.inner = inner
        # Share the backend's counters so callers reading either object
        # see the same totals.
        self.wire = inner.wire
        self.trace = trace if trace is not None else CommTrace()

    def _delta(self, before: tuple[int, int, int, int, int]) -> dict[str, int]:
        out, in_, ser, n, msgs = self.inner.wire.snapshot()
        d = {
            "wire_out": out - before[0],
            "wire_in": in_ - before[1],
            "ser_bytes": ser - before[2],
            "n_ser": n - before[3],
        }
        # Only transports that actually count sends report n_msgs; the
        # simulator backends keep -1 so n_messages uses the mesh estimate.
        d["n_msgs"] = (msgs - before[4]) if self.inner.wire.counts_messages else -1
        return d

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        before = self.inner.wire.snapshot()
        self.inner.send(obj, dest, tag)
        self.trace.events.append(
            CommEvent(
                "send",
                bytes_out=payload_nbytes(obj),
                bytes_in=0,
                peers=1,
                **self._delta(before),
            )
        )

    def recv(self, source: int, tag: int = 0) -> Any:
        before = self.inner.wire.snapshot()
        obj = self.inner.recv(source, tag)
        self.trace.events.append(
            CommEvent(
                "recv",
                bytes_out=0,
                bytes_in=payload_nbytes(obj),
                peers=1,
                **self._delta(before),
            )
        )
        return obj

    def barrier(self) -> None:
        self.trace.events.append(CommEvent("barrier", 0, 0, self.size - 1))
        self.inner.barrier()

    def allgather(self, obj: Any) -> list[Any]:
        before = self.inner.wire.snapshot()
        out = self.inner.allgather(obj)
        bytes_in = sum(payload_nbytes(x) for i, x in enumerate(out) if i != self.rank)
        self.trace.events.append(
            CommEvent(
                "allgather",
                bytes_out=payload_nbytes(obj) * (self.size - 1),
                bytes_in=bytes_in,
                peers=self.size - 1,
                **self._delta(before),
            )
        )
        return out

    def bcast(self, obj: Any, root: int = 0) -> Any:
        # Delegate so a backend's root-only bcast is used (the base-class
        # default would silently run over the traced allgather instead).
        before = self.inner.wire.snapshot()
        out = self.inner.bcast(obj, root)
        if self.rank == root:
            logical_out, logical_in = payload_nbytes(obj) * (self.size - 1), 0
        else:
            logical_out, logical_in = 0, payload_nbytes(out)
        self.trace.events.append(
            CommEvent(
                "bcast",
                bytes_out=logical_out,
                bytes_in=logical_in,
                peers=self.size - 1,
                **self._delta(before),
            )
        )
        return out
