"""Communication tracing: message/byte counters for modeled timing.

Wrap any :class:`~repro.mpi.comm.Communicator` in a
:class:`TracingCommunicator` and every send / allgather / barrier is
recorded into a :class:`CommTrace`.  The cluster platform models
(:mod:`repro.cluster.platform`) replay a trace against latency/bandwidth
specs to produce the modeled "communicate" column of the paper's tables.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.mpi.comm import Communicator, payload_nbytes


@dataclasses.dataclass(frozen=True)
class CommEvent:
    """One traced communication operation (as seen by one rank)."""

    kind: str  # "send" | "recv" | "allgather" | "barrier" | "bcast"
    bytes_out: int
    bytes_in: int
    peers: int  # ranks involved besides self


@dataclasses.dataclass
class CommTrace:
    """Accumulated communication behaviour of one rank."""

    events: list[CommEvent] = dataclasses.field(default_factory=list)

    @property
    def bytes_sent(self) -> int:
        return sum(e.bytes_out for e in self.events)

    @property
    def bytes_received(self) -> int:
        return sum(e.bytes_in for e in self.events)

    @property
    def allgather_bytes(self) -> int:
        """Bytes this rank pushed into allgather collectives — the hot
        Communicate&Merge traffic the packed-support wire format shrinks."""
        return sum(e.bytes_out for e in self.events if e.kind == "allgather")

    @property
    def n_messages(self) -> int:
        """Point-to-point message count, counting an allgather among P
        ranks as P-1 sends (mesh implementation)."""
        out = 0
        for e in self.events:
            if e.kind == "send":
                out += 1
            elif e.kind in ("allgather", "bcast"):
                out += e.peers
        return out

    def merge(self, other: "CommTrace") -> "CommTrace":
        return CommTrace(events=self.events + other.events)

    def clear(self) -> None:
        self.events.clear()


class TracingCommunicator(Communicator):
    """Transparent tracing wrapper around another communicator."""

    def __init__(self, inner: Communicator, trace: CommTrace | None = None) -> None:
        super().__init__(inner.rank, inner.size)
        self.inner = inner
        self.trace = trace if trace is not None else CommTrace()

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self.trace.events.append(
            CommEvent("send", bytes_out=payload_nbytes(obj), bytes_in=0, peers=1)
        )
        self.inner.send(obj, dest, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        obj = self.inner.recv(source, tag)
        self.trace.events.append(
            CommEvent("recv", bytes_out=0, bytes_in=payload_nbytes(obj), peers=1)
        )
        return obj

    def barrier(self) -> None:
        self.trace.events.append(CommEvent("barrier", 0, 0, self.size - 1))
        self.inner.barrier()

    def allgather(self, obj: Any) -> list[Any]:
        out = self.inner.allgather(obj)
        bytes_in = sum(payload_nbytes(x) for i, x in enumerate(out) if i != self.rank)
        self.trace.events.append(
            CommEvent(
                "allgather",
                bytes_out=payload_nbytes(obj) * (self.size - 1),
                bytes_in=bytes_in,
                peers=self.size - 1,
            )
        )
        return out
