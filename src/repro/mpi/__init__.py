"""Message-passing substrate: an MPI-like communicator API with
interchangeable backends (sequential superstep simulator, lockstep threads,
multiprocessing) plus tracing of bytes/messages for modeled timing."""

from repro.mpi.comm import Communicator
from repro.mpi.sequential import SequentialEngine
from repro.mpi.spmd import run_spmd
from repro.mpi.threads import ThreadEngine
from repro.mpi.tracing import CommEvent, CommTrace, TracingCommunicator
from repro.mpi.wire import (
    PROTOCOLS,
    WireCounters,
    WireError,
    decode,
    encode,
    is_frame,
    pack_message,
    resolve_protocol,
    unpack_message,
)

__all__ = [
    "Communicator",
    "SequentialEngine",
    "run_spmd",
    "ThreadEngine",
    "CommEvent",
    "CommTrace",
    "TracingCommunicator",
    "PROTOCOLS",
    "WireCounters",
    "WireError",
    "decode",
    "encode",
    "is_frame",
    "pack_message",
    "resolve_protocol",
    "unpack_message",
]
