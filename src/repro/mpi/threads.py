"""Lockstep thread backend: N ranks as threads in one process.

NumPy releases the GIL inside its kernels, so the heavy phases (candidate
generation, SVD rank tests) overlap to the extent the host has cores;
regardless of overlap the *semantics* are those of a distributed-memory
run — ranks share nothing except explicit messages.  Under the legacy
``pickle`` protocol payloads are deep copies; under the ``typed``
protocol a payload is framed once into a bytes blob and every receiver
decodes zero-copy ``writeable=False`` array views of it — a rank cannot
corrupt a peer because the views refuse mutation, and nothing aliases
the sender's live arrays (the frame is its own buffer).
"""

from __future__ import annotations

import queue
import threading
from typing import Any

from repro.errors import CommunicatorError
from repro.mpi import wire
from repro.mpi.comm import Communicator


class _SharedState:
    """State shared by the rank endpoints of one ThreadEngine world."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        # mailbox[dest] holds (source, tag, blob) triples.
        self.mailboxes: list[queue.Queue] = [queue.Queue() for _ in range(size)]
        # allgather rendezvous slots, double-buffered by phase parity so a
        # fast rank starting the next allgather cannot clobber a slow
        # rank's unread slot from the previous one.
        self.slots: list[list[Any]] = [[None] * size, [None] * size]
        self.gather_barrier = threading.Barrier(size)


class ThreadCommunicator(Communicator):
    """One rank endpoint of the thread backend."""

    def __init__(
        self,
        rank: int,
        shared: _SharedState,
        *,
        protocol: str = "pickle",
        recv_timeout: float = 120.0,
    ) -> None:
        super().__init__(rank, shared.size, protocol)
        self._shared = shared
        self._stash: list[tuple[int, int, bytes]] = []
        self._phase = 0
        self._protocol = protocol
        self._recv_timeout = float(recv_timeout)

    def _unpack(self, blob: bytes) -> Any:
        self.wire.wire_in += len(blob)
        return wire.unpack_message(blob)

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not (0 <= dest < self.size):
            raise CommunicatorError(f"send to invalid rank {dest}")
        blob = wire.pack_message(obj, self._protocol, self.wire)
        self.wire.wire_out += len(blob)
        self._shared.mailboxes[dest].put((self.rank, tag, blob))

    def recv(self, source: int, tag: int = 0) -> Any:
        # Check messages stashed by earlier mismatched receives first.
        for i, (src, t, blob) in enumerate(self._stash):
            if src == source and t == tag:
                del self._stash[i]
                return self._unpack(blob)
        box = self._shared.mailboxes[self.rank]
        while True:
            try:
                src, t, blob = box.get(timeout=self._recv_timeout)
            except queue.Empty:
                raise CommunicatorError(
                    f"rank {self.rank} timed out waiting for (src={source}, "
                    f"tag={tag}); likely deadlock"
                ) from None
            if src == source and t == tag:
                return self._unpack(blob)
            self._stash.append((src, t, blob))

    def barrier(self) -> None:
        try:
            self._shared.barrier.wait(timeout=self._recv_timeout)
        except threading.BrokenBarrierError:
            raise CommunicatorError("barrier broken (a rank died?)") from None

    def allgather(self, obj: Any) -> list[Any]:
        shared = self._shared
        slots = shared.slots[self._phase]
        self._phase ^= 1
        # One serialization, deposited once; every reader decodes straight
        # from the shared blob (typed: zero-copy read-only array views).
        blob = wire.pack_message(obj, self._protocol, self.wire)
        self.wire.wire_out += len(blob)
        slots[self.rank] = blob
        try:
            shared.gather_barrier.wait(timeout=self._recv_timeout)
        except threading.BrokenBarrierError:
            raise CommunicatorError("allgather barrier broken") from None
        out = []
        for r, s in enumerate(slots):
            if r != self.rank:
                self.wire.wire_in += len(s)
            out.append(wire.unpack_message(s))
        # Second barrier so nobody rewrites this parity's slots before all
        # ranks finished reading (two parities + barrier = safe).
        try:
            shared.gather_barrier.wait(timeout=self._recv_timeout)
        except threading.BrokenBarrierError:
            raise CommunicatorError("allgather barrier broken") from None
        return out


class ThreadEngine:
    """Launches an SPMD callable across N rank threads."""

    name = "thread"

    def __init__(
        self,
        *,
        wire_protocol: str | None = None,
        comm_timeout: float | None = None,
    ) -> None:
        self.wire_protocol = wire.resolve_protocol(wire_protocol)
        self.comm_timeout = wire.resolve_timeout(comm_timeout)

    def run(self, fn, size: int, args: tuple = (), kwargs: dict | None = None) -> list[Any]:
        """Run ``fn(comm, *args, **kwargs)`` on every rank; returns per-rank
        results (re-raises the first rank exception, if any)."""
        kwargs = kwargs or {}
        shared = _SharedState(size)
        results: list[Any] = [None] * size
        errors: list[BaseException | None] = [None] * size

        def worker(rank: int) -> None:
            comm = ThreadCommunicator(
                rank,
                shared,
                protocol=self.wire_protocol,
                recv_timeout=self.comm_timeout,
            )
            try:
                results[rank] = fn(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors[rank] = exc
                shared.barrier.abort()
                shared.gather_barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"rank-{r}", daemon=True)
            for r in range(size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Prefer a root-cause exception over secondary broken-barrier noise.
        secondary = None
        for exc in errors:
            if exc is None:
                continue
            if isinstance(exc, CommunicatorError):
                secondary = secondary or exc
            else:
                raise exc
        if secondary is not None:
            raise secondary
        return results
