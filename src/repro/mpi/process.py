"""Multiprocessing backend: ranks as OS processes with pipe mesh.

The closest in-box substitute for a real MPI job: genuinely separate
address spaces, explicit serialization on every message, and per-process
peak-memory isolation.  On a single-core host this demonstrates semantics
rather than speedup; on multi-core hosts the heavy phases parallelize.

The SPMD callable and its arguments must be picklable module-level
objects (the same restriction ``mpiexec python script.py`` imposes in
spirit).
"""

from __future__ import annotations

import multiprocessing as mp
from multiprocessing.connection import Connection
from typing import Any

from repro.errors import CommunicatorError
from repro.mpi.comm import Communicator


class ProcessCommunicator(Communicator):
    """Rank endpoint over a full pipe mesh."""

    def __init__(self, rank: int, size: int, pipes: dict[int, Connection]) -> None:
        super().__init__(rank, size)
        self._pipes = pipes  # peer rank -> Connection
        self._stash: list[tuple[int, int, Any]] = []

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if dest == self.rank:
            self._stash.append((self.rank, tag, obj))
            return
        try:
            self._pipes[dest].send((self.rank, tag, obj))
        except KeyError:
            raise CommunicatorError(f"send to invalid rank {dest}") from None

    def recv(self, source: int, tag: int = 0) -> Any:
        for i, (src, t, obj) in enumerate(self._stash):
            if src == source and t == tag:
                del self._stash[i]
                return obj
        if source == self.rank:
            raise CommunicatorError("self-recv with no matching self-send")
        conn = self._pipes[source]
        while True:
            if not conn.poll(timeout=300.0):
                raise CommunicatorError(
                    f"rank {self.rank} timed out receiving from {source}"
                )
            src, t, obj = conn.recv()
            if src == source and t == tag:
                return obj
            self._stash.append((src, t, obj))

    def barrier(self) -> None:
        # Dissemination barrier over the mesh (log rounds).
        round_ = 1
        while round_ < self.size:
            peer_to = (self.rank + round_) % self.size
            peer_from = (self.rank - round_) % self.size
            self.send(None, peer_to, tag=-1)
            self.recv(peer_from, tag=-1)
            round_ <<= 1

    def allgather(self, obj: Any) -> list[Any]:
        out: list[Any] = [None] * self.size
        out[self.rank] = obj
        for peer in range(self.size):
            if peer != self.rank:
                self.send(obj, peer, tag=-2)
        for peer in range(self.size):
            if peer != self.rank:
                out[peer] = self.recv(peer, tag=-2)
        return out


def _worker(rank, size, fan, fn, args, kwargs, result_conn):
    comm = ProcessCommunicator(rank, size, fan)
    try:
        result_conn.send(("ok", fn(comm, *args, **kwargs)))
    except BaseException as exc:  # noqa: BLE001 - marshalled to parent
        result_conn.send(("error", repr(exc)))


class ProcessEngine:
    """Launches an SPMD callable across N rank processes."""

    name = "process"

    def run(self, fn, size: int, args: tuple = (), kwargs: dict | None = None) -> list[Any]:
        kwargs = kwargs or {}
        ctx = mp.get_context("fork")
        # Full mesh of pipes: mesh[i][j] is i's endpoint to j.
        mesh: list[dict[int, Connection]] = [dict() for _ in range(size)]
        for i in range(size):
            for j in range(i + 1, size):
                a, b = ctx.Pipe(duplex=True)
                mesh[i][j] = a
                mesh[j][i] = b
        result_pipes = [ctx.Pipe(duplex=False) for _ in range(size)]
        procs = [
            ctx.Process(
                target=_worker,
                args=(r, size, mesh[r], fn, args, kwargs, result_pipes[r][1]),
                name=f"proc-rank-{r}",
            )
            for r in range(size)
        ]
        for p in procs:
            p.start()
        results: list[Any] = [None] * size
        errors: list[str | None] = [None] * size
        for r, (rx, _tx) in enumerate(result_pipes):
            if rx.poll(timeout=600.0):
                status, payload = rx.recv()
                if status == "ok":
                    results[r] = payload
                else:
                    errors[r] = payload
            else:
                errors[r] = "timed out"
        for p in procs:
            p.join(timeout=30.0)
            if p.is_alive():  # pragma: no cover - stuck worker
                p.terminate()
        failed = [f"rank {r}: {e}" for r, e in enumerate(errors) if e is not None]
        if failed:
            raise CommunicatorError("; ".join(failed))
        return results
