"""Multiprocessing backend: ranks as OS processes with pipe mesh.

The closest in-box substitute for a real MPI job: genuinely separate
address spaces, explicit serialization on every message, and per-process
peak-memory isolation.  On a single-core host this demonstrates semantics
rather than speedup; on multi-core hosts the heavy phases parallelize.

Transport: every pipe message is a pre-serialized blob (typed codec frame
or pickle, selected by ``wire_protocol``) shipped with
``Connection.send_bytes`` — a payload is serialized **once** no matter how
many peers it goes to.  Under the typed protocol the hot allgather runs
over a shared-memory plane: each rank writes its framed blob into a
per-round ``multiprocessing.shared_memory`` segment once and peers decode
read-only views, so the pipe mesh's O(P²) payload copies become O(P)
segment writes (the pipes carry only tiny control messages).  Three
latency measures keep the plane competitive with plain pipes even for
frequent rounds: frames below ``REPRO_WIRE_SEGMENT_MIN`` are inlined into
the control message instead of paying per-round segment syscalls (the
eager/rendezvous switch of real MPI); segment creates/attaches bypass the
``resource_tracker`` (whose per-handle pipe round-trips to the singleton
tracker process dominate small rounds); and instead of an attach-ack
round, a creator defers unlinking its segment by one round — receiving
every peer's *next* control message proves they all finished the current
round, hence attached the segment.  When segments are disabled
(``REPRO_WIRE_SEGMENTS=off``) a ring allgather stands in — P-1 neighbor
hops of already-serialized bytes, the pattern a real MPI implementation
uses on a network.

The SPMD callable and its arguments must be picklable module-level
objects (the same restriction ``mpiexec python script.py`` imposes in
spirit).
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
from multiprocessing.connection import Connection
from typing import Any

from repro.errors import CommunicatorError
from repro.mpi import wire
from repro.mpi.comm import Communicator, payload_nbytes

#: Reserved (negative) tags of the collective operations.
_TAG_BARRIER = -1
_TAG_GATHER = -2
_TAG_BCAST = -3
_TAG_RING_BASE = -1000  # ring step ``s`` uses tag ``_TAG_RING_BASE - s``

#: Floor for a freshly created arena — amortizes creation for the common
#: case of many small rounds that grew past the inline threshold once.
_ARENA_MIN_BYTES = 1 << 16


@contextlib.contextmanager
def _untracked_shm():
    """Suppress ``resource_tracker`` bookkeeping for segment operations.

    Every ``SharedMemory`` create/attach/unlink ships a message over a
    pipe to the singleton tracker process; at one tracker round-trip per
    handle per rank per allgather round that traffic dominates
    small-payload rounds (and on a single CPU forces a context switch
    each time).  Segment lifetime is managed deterministically here —
    creators always unlink (deferred one round, forced at close) — so
    tracker protection buys nothing but the syscalls.  Only a hard-killed
    creator can leak a segment, the same failure mode as an orphaned pipe.
    """
    try:
        from multiprocessing import resource_tracker  # noqa: PLC0415

        orig_register = resource_tracker.register
        orig_unregister = resource_tracker.unregister
    except Exception:  # pragma: no cover - stdlib internals moved
        yield
        return
    resource_tracker.register = lambda *a, **k: None
    resource_tracker.unregister = lambda *a, **k: None
    try:
        yield
    finally:
        resource_tracker.register = orig_register
        resource_tracker.unregister = orig_unregister


class ProcessCommunicator(Communicator):
    """Rank endpoint over a full pipe mesh plus a shared-memory plane."""

    def __init__(
        self,
        rank: int,
        size: int,
        pipes: dict[int, Connection],
        *,
        protocol: str = "pickle",
        recv_timeout: float = 300.0,
        use_segments: bool = True,
        segment_min: int | None = None,
    ) -> None:
        super().__init__(rank, size, protocol)
        self._pipes = pipes  # peer rank -> Connection
        self._stash: list[tuple[int, int, Any]] = []
        self._protocol = protocol
        self._recv_timeout = float(recv_timeout)
        self._use_segments = bool(use_segments)
        self._segment_min = wire.resolve_segment_min(segment_min)
        self.wire.counts_messages = True  # real transport, real counts
        #: reader-side segment handles whose zero-copy views may still be
        #: alive; retired (closed) as soon as the views die.
        self._open_segments: list = []
        #: creator-side append-only arena: offsets never reused, so peer
        #: views stay valid for the communicator's lifetime.
        self._arena = None
        self._arena_used = 0
        self._old_arenas: list = []  # outgrown arenas, unlinked at quiesce
        #: per-peer cached arena attachments: peer -> (name, SharedMemory)
        self._peer_arenas: dict[int, tuple[str, Any]] = {}
        self._needs_quiesce = False

    # -- blob plumbing -------------------------------------------------------

    def _pack(self, src: int, tag: int, obj: Any, *, count: bool = True) -> bytes:
        """Serialize one ``(src, tag, payload)`` message exactly once.

        ``count=False`` marks control traffic (segment names, acks, ring
        forwards) whose serialization is not payload work.
        """
        return wire.pack_message(
            (src, tag, obj), self._protocol, self.wire if count else None
        )

    def _send_raw(self, blob: bytes, dest: int) -> None:
        try:
            self._pipes[dest].send_bytes(blob)
        except KeyError:
            raise CommunicatorError(f"send to invalid rank {dest}") from None
        self.wire.msgs_out += 1

    def _send_blob(self, blob: bytes, dest: int) -> None:
        """Ship a serialized-payload blob (counted on the payload plane)."""
        self._send_raw(blob, dest)
        self.wire.wire_out += len(blob)

    def _send_ctrl(self, blob: bytes, dest: int, *, payload_bytes: int = 0) -> None:
        """Ship a control message; ``payload_bytes`` of it (an inlined or
        ring-forwarded frame) count on the payload plane, the envelope on
        the control plane."""
        self._send_raw(blob, dest)
        self.wire.wire_out += payload_bytes
        self.wire.ctrl_out += len(blob) - payload_bytes

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if dest == self.rank:
            self._stash.append((self.rank, tag, obj))
            return
        self._send_blob(self._pack(self.rank, tag, obj), dest)

    def recv(self, source: int, tag: int = 0) -> Any:
        for i, (src, t, obj) in enumerate(self._stash):
            if src == source and t == tag:
                del self._stash[i]
                return obj
        if source == self.rank:
            raise CommunicatorError("self-recv with no matching self-send")
        conn = self._pipes[source]
        while True:
            if not conn.poll(timeout=self._recv_timeout):
                raise CommunicatorError(
                    f"rank {self.rank} timed out receiving from {source} "
                    f"after {self._recv_timeout:g}s"
                )
            raw = conn.recv_bytes()
            self.wire.wire_in += len(raw)
            src, t, obj = wire.unpack_message(raw)
            if src == source and t == tag:
                return obj
            self._stash.append((src, t, obj))

    def barrier(self) -> None:
        # Dissemination barrier over the mesh (log rounds); pure control
        # traffic, packed once and kept off the payload counters.
        blob: bytes | None = None
        round_ = 1
        while round_ < self.size:
            peer_to = (self.rank + round_) % self.size
            peer_from = (self.rank - round_) % self.size
            if blob is None:
                blob = self._pack(self.rank, _TAG_BARRIER, None, count=False)
            self._send_ctrl(blob, peer_to)
            self.recv(peer_from, tag=_TAG_BARRIER)
            round_ <<= 1

    # -- collectives ---------------------------------------------------------

    def allgather(self, obj: Any) -> list[Any]:
        if self.size == 1:
            return [obj]
        if self._protocol == "typed":
            if self._use_segments:
                return self._allgather_segments(obj)
            return self._allgather_ring(obj)
        # Legacy pickle protocol: mesh fan-out, but the payload is still
        # serialized once and the same blob shipped to every peer.  Phased
        # pairwise exchange (send to rank+d while rank+d receives from us)
        # keeps the mesh deadlock-free even when a blob exceeds the pipe
        # buffer — every blocking send has a matching receive posted in
        # the same phase.
        blob = self._pack(self.rank, _TAG_GATHER, obj)
        out: list[Any] = [None] * self.size
        out[self.rank] = obj
        for d in range(1, self.size):
            self._send_blob(blob, (self.rank + d) % self.size)
            peer = (self.rank - d) % self.size
            out[peer] = self.recv(peer, tag=_TAG_GATHER)
        return out

    def _allgather_segments(self, obj: Any) -> list[Any]:
        """Shared-memory allgather: arena writes + dissemination exchange.

        Payload plane — each rank owns one append-only ``SharedMemory``
        arena for the communicator's lifetime: a round encodes its frame
        once into the next 8-aligned offset (a memcpy, no syscalls) and
        peers decode read-only zero-copy views straight out of the arena,
        attaching it once (cached per origin).  Offsets are never reused,
        so a view handed to the caller stays valid forever.  When an
        arena fills up, a bigger one replaces it (geometric growth); the
        outgrown arena stays mapped for live views and is unlinked at
        :meth:`quiesce`/:meth:`close` after a barrier proves every peer
        is done reading.

        Control plane — only ``("s", origin, name, offset, nbytes)``
        descriptors travel over the pipes, via a dissemination exchange:
        at hop ``h = 1, 2, 4, …`` each rank sends every descriptor it
        knows to ``rank+h`` and merges the batch from ``rank-h``, so all
        P descriptors arrive in ceil(log2 P) messages per rank instead of
        the mesh's P-1 — the payload never rides the pipes at all.  Each
        hop's send has a matching receive posted by its partner in the
        same hop, so the schedule cannot deadlock.

        Payloads below the segment-min threshold — and ranks whose arena
        creation fails (shm exhausted) — degrade to an ``("i", origin,
        blob)`` descriptor carrying the frame itself, forwarded verbatim
        (serialize-once) along the same hops; peers handle both variants
        per origin, so no global agreement is needed.
        """
        w = self.wire
        entry = None
        if payload_nbytes(obj) >= self._segment_min:
            entry = self._arena_write(obj)
        if entry is not None:
            name, off, nbytes = entry
            mine: tuple = ("s", self.rank, name, off, nbytes)
        else:
            mine = ("i", self.rank, wire.pack_message(obj, "typed", w))
        known: dict[int, tuple] = {self.rank: mine}
        hop = 1
        while hop < self.size:
            dest = (self.rank + hop) % self.size
            srcp = (self.rank - hop) % self.size
            batch = list(known.values())
            inline_bytes = sum(len(e[2]) for e in batch if e[0] == "i")
            env = self._pack(self.rank, _TAG_GATHER, batch, count=False)
            self._send_ctrl(env, dest, payload_bytes=inline_bytes)
            for e in self.recv(srcp, tag=_TAG_GATHER):
                origin = e[1]
                if origin not in known:
                    # Normalize forwarded inline blobs to bytes so they
                    # re-encode cleanly on the next hop.
                    known[origin] = (
                        (e[0], origin, bytes(e[2])) if e[0] == "i" else tuple(e)
                    )
            hop <<= 1
        out: list[Any] = [None] * self.size
        out[self.rank] = obj
        saw_segment = entry is not None
        for origin in range(self.size):
            if origin == self.rank:
                continue
            e = known.get(origin)
            if e is None:  # pragma: no cover - dissemination covers all P
                raise CommunicatorError(
                    f"allgather missing descriptor for rank {origin}"
                )
            if e[0] == "s":
                _, _, pname, poff, pnbytes = e
                view = self._arena_view(origin, pname, poff, pnbytes)
                out[origin] = wire.decode(view)
                w.wire_in += pnbytes
                saw_segment = True
            else:
                out[origin] = wire.unpack_message(e[2])
        if saw_segment:
            # Every rank sees the full descriptor set, so the flag — and
            # hence participation in the quiesce barrier — is globally
            # consistent.
            self._needs_quiesce = True
            w.note_segment_round(self._mapped_segment_bytes())
        return out

    def _arena_write(self, obj: Any) -> tuple[str, int, int] | None:
        """Encode ``obj`` into the own arena; returns ``(name, offset,
        nbytes)`` or ``None`` when shared memory is unavailable."""
        from multiprocessing import shared_memory  # noqa: PLC0415

        w = self.wire
        frame = wire.encode(obj)
        need = frame.nbytes
        if self._arena is None or self._arena_used + need > self._arena.size:
            size = max(need, _ARENA_MIN_BYTES)
            if self._arena is not None:
                size = max(size, 2 * self._arena.size)
            try:
                with _untracked_shm():
                    arena = shared_memory.SharedMemory(create=True, size=size)
            except OSError:  # pragma: no cover - shm exhausted
                return None
            if self._arena is not None:
                self._old_arenas.append(self._arena)
            self._arena = arena
            self._arena_used = 0
        off = self._arena_used
        frame.write_into(memoryview(self._arena.buf)[off : off + need])
        self._arena_used = (off + need + 7) & ~7  # keep offsets 8-aligned
        w.count_ser(need, pickled=frame.n_pickled)
        w.wire_out += need
        w.segment_bytes += need
        return (self._arena.name, off, need)

    def _arena_view(self, peer: int, name: str, off: int, nbytes: int):
        """Read-only view into a peer's arena, attaching (once) on first
        use or when the peer outgrew into a new arena."""
        from multiprocessing import shared_memory  # noqa: PLC0415

        cached = self._peer_arenas.get(peer)
        if cached is None or cached[0] != name:
            with _untracked_shm():
                seg = shared_memory.SharedMemory(name=name)
            if cached is not None:
                # Outgrown peer arena: keep mapped while views live.
                self._open_segments.append(cached[1])
            self._peer_arenas[peer] = (name, seg)
        else:
            seg = cached[1]
        return memoryview(seg.buf)[off : off + nbytes].toreadonly()

    def _mapped_segment_bytes(self) -> int:
        total = self._arena.size if self._arena is not None else 0
        for _, seg in self._peer_arenas.values():
            total += seg.size
        return total

    def _allgather_ring(self, obj: Any) -> list[Any]:
        """Ring allgather of pre-serialized blobs (segments disabled).

        P-1 neighbor hops; each rank serializes its payload once and
        forwards received blobs verbatim — the copy pattern of a real MPI
        allgather on a network, which is what the platform models replay.
        """
        w = self.wire
        blob = wire.pack_message(obj, "typed", w)
        out: list[Any] = [None] * self.size
        out[self.rank] = obj
        nxt = (self.rank + 1) % self.size
        prv = (self.rank - 1) % self.size
        cur = blob
        for step in range(1, self.size):
            tag = _TAG_RING_BASE - step
            env = self._pack(self.rank, tag, cur, count=False)
            # The forwarded frame is payload moved; the envelope is not.
            self._send_ctrl(env, nxt, payload_bytes=len(cur))
            cur = self.recv(prv, tag=tag)
            origin = (self.rank - step) % self.size
            out[origin] = wire.unpack_message(cur)
        return out

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Root-only payload movement: root serializes once and ships the
        blob to each peer; nothing else moves (the allgather-based default
        shipped every non-root rank's ``None`` and root's payload P
        times)."""
        if self.size == 1:
            return obj
        if self.rank == root:
            blob = self._pack(self.rank, _TAG_BCAST, obj)
            for peer in range(self.size):
                if peer != self.rank:
                    self._send_blob(blob, peer)
            return obj
        return self.recv(root, tag=_TAG_BCAST)

    # -- segment bookkeeping -------------------------------------------------

    def _retire_segments(self) -> None:
        """Close reader-side handles whose zero-copy views have died
        (closing while views are alive raises ``BufferError`` — those
        handles are kept for the next attempt)."""
        kept = []
        for seg in self._open_segments:
            try:
                seg.close()
            except BufferError:
                kept.append(seg)
        self._open_segments = kept

    def _release_arenas(self) -> None:
        """Close + unlink every creator-side arena (current + outgrown)."""
        arenas = self._old_arenas + ([self._arena] if self._arena else [])
        self._arena = None
        self._arena_used = 0
        self._old_arenas = []
        with _untracked_shm():
            for seg in arenas:
                try:
                    seg.close()
                except BufferError:  # pragma: no cover - views linger
                    pass
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    def quiesce(self) -> None:
        """Drain the shared-memory plane after the SPMD body succeeds.

        Completing the barrier proves every rank finished its last
        collective — hence read everything it will ever read from this
        rank's arenas — so unlinking is safe.  Skipped entirely when no
        round ever used a segment (the flag is globally consistent, see
        :meth:`_allgather_segments`)."""
        if self._needs_quiesce and self.size > 1:
            self.barrier()
            self._needs_quiesce = False
        self._release_arenas()

    def close(self) -> None:
        """Best-effort teardown (error paths included): unlink the own
        arenas even if some peer may still be reading — the run is
        already failing — and drop whatever reader handles can close."""
        self._release_arenas()
        for _, seg in self._peer_arenas.values():
            self._open_segments.append(seg)
        self._peer_arenas = {}
        self._retire_segments()


def _worker(rank, size, fan, fn, args, kwargs, result_conn, comm_kwargs):
    comm = ProcessCommunicator(rank, size, fan, **(comm_kwargs or {}))
    try:
        out = fn(comm, *args, **kwargs)
        comm.quiesce()
        result_conn.send(("ok", out))
    except BaseException as exc:  # noqa: BLE001 - marshalled to parent
        result_conn.send(("error", repr(exc)))
    finally:
        comm.close()


class ProcessEngine:
    """Launches an SPMD callable across N rank processes."""

    name = "process"

    def __init__(
        self,
        *,
        wire_protocol: str | None = None,
        comm_timeout: float | None = None,
        use_segments: bool | None = None,
    ) -> None:
        self.wire_protocol = wire.resolve_protocol(wire_protocol)
        self.comm_timeout = wire.resolve_timeout(comm_timeout)
        self.use_segments = wire.segments_enabled(use_segments)

    def run(self, fn, size: int, args: tuple = (), kwargs: dict | None = None) -> list[Any]:
        kwargs = kwargs or {}
        ctx = mp.get_context("fork")
        # Full mesh of pipes: mesh[i][j] is i's endpoint to j.
        mesh: list[dict[int, Connection]] = [dict() for _ in range(size)]
        for i in range(size):
            for j in range(i + 1, size):
                a, b = ctx.Pipe(duplex=True)
                mesh[i][j] = a
                mesh[j][i] = b
        comm_kwargs = {
            "protocol": self.wire_protocol,
            "recv_timeout": self.comm_timeout,
            "use_segments": self.use_segments,
        }
        result_pipes = [ctx.Pipe(duplex=False) for _ in range(size)]
        procs = [
            ctx.Process(
                target=_worker,
                args=(r, size, mesh[r], fn, args, kwargs, result_pipes[r][1], comm_kwargs),
                name=f"proc-rank-{r}",
            )
            for r in range(size)
        ]
        for p in procs:
            p.start()
        results: list[Any] = [None] * size
        errors: list[str | None] = [None] * size
        result_timeout = max(600.0, 2.0 * self.comm_timeout)
        for r, (rx, _tx) in enumerate(result_pipes):
            if rx.poll(timeout=result_timeout):
                status, payload = rx.recv()
                if status == "ok":
                    results[r] = payload
                else:
                    errors[r] = payload
            else:
                errors[r] = "timed out"
        for p in procs:
            p.join(timeout=30.0)
            if p.is_alive():  # pragma: no cover - stuck worker
                p.terminate()
        failed = [f"rank {r}: {e}" for r, e in enumerate(errors) if e is not None]
        if failed:
            raise CommunicatorError("; ".join(failed))
        return results
