"""Abstract communicator: the MPI subset the parallel algorithms use.

The combinatorial parallel Nullspace Algorithm is bulk-synchronous — its
only hot operation is the per-iteration ``allgather`` of locally accepted
candidate modes (Communicate&Merge) — but the full point-to-point API is
provided so the column-partitioned variant and tests can express richer
patterns.  The interface follows mpi4py's lower-case object API (pickled
Python objects); the backends are in-process substitutes for an MPI
cluster, which this host cannot run (no mpi4py, single core).
"""

from __future__ import annotations

import abc
import pickle
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import CommunicatorError
from repro.mpi.wire import WireCounters


class Communicator(abc.ABC):
    """One rank's endpoint of a communicator of ``size`` ranks.

    Every communicator carries :attr:`wire` —
    :class:`~repro.mpi.wire.WireCounters` that the backends update with
    serialization and transport byte counts; the tracing wrapper takes
    deltas around each operation to attribute them to events.
    """

    def __init__(self, rank: int, size: int, protocol: str = "pickle") -> None:
        if not (0 <= rank < size):
            raise CommunicatorError(f"rank {rank} out of range for size {size}")
        self._rank = rank
        self._size = size
        self.wire = WireCounters(protocol)

    @property
    def rank(self) -> int:
        """This process's rank (``Get_rank`` in MPI terms)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks (``Get_size``)."""
        return self._size

    # -- point to point ------------------------------------------------------

    @abc.abstractmethod
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking-semantics send of a picklable object."""

    @abc.abstractmethod
    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive matching ``(source, tag)``."""

    # -- collectives -----------------------------------------------------------

    @abc.abstractmethod
    def barrier(self) -> None:
        """Synchronize all ranks."""

    @abc.abstractmethod
    def allgather(self, obj: Any) -> list[Any]:
        """Gather one object from every rank onto every rank; the returned
        list is indexed by rank."""

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast from ``root``; default implementation over allgather."""
        return self.allgather(obj if self.rank == root else None)[root]

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather to ``root`` (None elsewhere); default over allgather."""
        everything = self.allgather(obj)
        return everything if self.rank == root else None

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Reduce a value across ranks (default: sum for numbers/arrays)."""
        parts = self.allgather(value)
        if op is None:
            acc = parts[0]
            for p in parts[1:]:
                acc = acc + p
            return acc
        acc = parts[0]
        for p in parts[1:]:
            acc = op(acc, p)
        return acc

    def __repr__(self) -> str:
        return f"<{type(self).__name__} rank {self.rank}/{self.size}>"


def payload_nbytes(obj: Any) -> int:
    """Estimate the wire size of a message payload.

    Arrays and objects exposing ``nbytes`` are measured directly (what an
    MPI buffer send would move); lists, tuples and dict values are summed
    recursively, element by element, so the structured wire payloads of
    the parallel drivers — e.g. the deferred pipeline's ``(words, pair_i,
    pair_j)`` allgather tuple, or a dict of named array parts — are
    measured by their array contents rather than a whole-container
    pickle.  Everything else is
    measured by pickling — exactly what the in-process backends (and
    mpi4py's lower-case API) would serialize.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    nb = getattr(obj, "nbytes", None)
    if callable(nb):
        return int(nb())
    if isinstance(nb, (int, np.integer)):
        return int(nb)
    if isinstance(obj, (list, tuple)):
        return int(sum(payload_nbytes(x) for x in obj))
    if isinstance(obj, dict):
        # Keys are metadata (short strings); the payload is the values.
        return int(sum(payload_nbytes(v) for v in obj.values()))
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # pragma: no cover - unpicklable payloads are caller bugs
        return 0


def check_same_value(comm: Communicator, value: Any, *, what: str) -> None:
    """Debugging collective: assert all ranks hold an equal ``value``."""
    everything = comm.allgather(value)
    for r, v in enumerate(everything):
        same = v == everything[0]
        if isinstance(same, np.ndarray):
            same = bool(same.all())
        if not same:
            raise CommunicatorError(
                f"ranks diverged on {what}: rank 0 has {everything[0]!r}, "
                f"rank {r} has {v!r}"
            )


def partition_evenly(n_items: int, size: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` shares of ``n_items`` for each rank."""
    base, extra = divmod(n_items, size)
    out: list[tuple[int, int]] = []
    start = 0
    for r in range(size):
        stop = start + base + (1 if r < extra else 0)
        out.append((start, stop))
        start = stop
    return out


def ranks_of(seq: Sequence[Any]) -> range:
    """Convenience: ``range(len(seq))`` with intent."""
    return range(len(seq))
